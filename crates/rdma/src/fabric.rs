//! The RDMA fabric: hosts, regions, permissions, and one-sided operations.

use std::collections::BTreeMap;

use ubft_sim::net::{HopOutcome, NetworkModel};
use ubft_sim::{HostId, SimRng};
use ubft_types::{Duration, Time};

use crate::region::Region;

/// Globally unique identifier of a registered memory region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u64);

/// Capability granting write access to one region (the RDMA rkey with
/// remote-write permission). Readers do not need a token: every region is
/// world-readable, matching the paper's chunk model (§2.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AccessToken(u64);

/// Why an RDMA operation could not be issued or will not complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RdmaError {
    /// The issuer presented the wrong write token.
    PermissionDenied,
    /// Offset/length exceed the region bounds.
    OutOfBounds,
    /// The target host has crashed; the operation will never complete.
    TargetUnavailable,
    /// The issuing host has crashed.
    IssuerUnavailable,
    /// The region id is unknown.
    UnknownRegion,
}

impl core::fmt::Display for RdmaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            RdmaError::PermissionDenied => "write permission denied",
            RdmaError::OutOfBounds => "region access out of bounds",
            RdmaError::TargetUnavailable => "target host unavailable",
            RdmaError::IssuerUnavailable => "issuing host unavailable",
            RdmaError::UnknownRegion => "unknown region",
        };
        f.write_str(s)
    }
}

impl std::error::Error for RdmaError {}

/// Completion information for a WRITE.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteTicket {
    /// When the data lands in the target's memory (start of the torn
    /// application window).
    pub arrival: Time,
    /// When the issuer learns of completion. Includes the read-after-write
    /// PCIe-fence round trip the paper issues to guarantee visibility
    /// (§6.2 footnote 4).
    pub completion: Time,
}

/// Completion information for a READ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadTicket {
    /// When the issuer receives the data.
    pub completion: Time,
    /// The bytes observed (possibly torn if concurrent with a write).
    pub data: Vec<u8>,
}

struct RegionEntry {
    host: HostId,
    writer: AccessToken,
    region: Region,
}

/// The simulated RDMA fabric. One instance models the whole cluster's
/// NICs, switch, and exposed memory.
pub struct Fabric {
    net: NetworkModel,
    rng: SimRng,
    regions: BTreeMap<RegionId, RegionEntry>,
    next_region: u64,
    next_token: u64,
    /// FIFO enforcement per (issuer, target) ordered channel, like a
    /// reliable-connection queue pair: ops between the same pair of hosts
    /// arrive in issue order.
    last_arrival: BTreeMap<(HostId, HostId), Time>,
    /// Total region bytes registered per host (Table 2 accounting).
    bytes_per_host: BTreeMap<HostId, usize>,
}

impl Fabric {
    /// Creates a fabric over `net` with randomness from `rng`.
    pub fn new(net: NetworkModel, rng: SimRng) -> Self {
        Fabric {
            net,
            rng,
            regions: BTreeMap::new(),
            next_region: 0,
            next_token: 0xF00D,
            last_arrival: BTreeMap::new(),
            bytes_per_host: BTreeMap::new(),
        }
    }

    /// Registers a `size`-byte region on `host`, returning its id and the
    /// unique write capability.
    pub fn create_region(&mut self, host: HostId, size: usize) -> (RegionId, AccessToken) {
        let id = RegionId(self.next_region);
        self.next_region += 1;
        let token = AccessToken(self.next_token);
        self.next_token = self.next_token.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        self.regions.insert(id, RegionEntry { host, writer: token, region: Region::new(size) });
        *self.bytes_per_host.entry(host).or_insert(0) += size;
        (id, token)
    }

    /// The host a region lives on.
    pub fn region_host(&self, region: RegionId) -> Option<HostId> {
        self.regions.get(&region).map(|e| e.host)
    }

    /// Total registered region bytes on `host` (disaggregated-memory
    /// accounting for Table 2).
    pub fn host_bytes(&self, host: HostId) -> usize {
        self.bytes_per_host.get(&host).copied().unwrap_or(0)
    }

    /// Mutable access to the network model (crash/partition injection).
    pub fn net_mut(&mut self) -> &mut NetworkModel {
        &mut self.net
    }

    /// The network model.
    pub fn net(&self) -> &NetworkModel {
        &self.net
    }

    fn fifo_arrival(&mut self, src: HostId, dst: HostId, proposed: Time) -> Time {
        let key = (src, dst);
        let last = self.last_arrival.get(&key).copied().unwrap_or(Time::ZERO);
        let arrival = if proposed <= last { last + Duration::from_nanos(1) } else { proposed };
        self.last_arrival.insert(key, arrival);
        arrival
    }

    /// Issues a one-sided WRITE of `data` into `region` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns an [`RdmaError`] if permissions, bounds, or host liveness
    /// checks fail. A `TargetUnavailable` error means the op will never
    /// complete; callers model this as a lost completion.
    pub fn write(
        &mut self,
        issuer: HostId,
        token: AccessToken,
        region: RegionId,
        offset: usize,
        data: &[u8],
        now: Time,
    ) -> Result<WriteTicket, RdmaError> {
        let entry = self.regions.get(&region).ok_or(RdmaError::UnknownRegion)?;
        if entry.writer != token {
            return Err(RdmaError::PermissionDenied);
        }
        if offset + data.len() > entry.region.len() {
            return Err(RdmaError::OutOfBounds);
        }
        if self.net.is_crashed(issuer, now) {
            return Err(RdmaError::IssuerUnavailable);
        }
        let target = entry.host;
        let outcome = self.net.hop(&mut self.rng, issuer, target, data.len(), now);
        let delay = match outcome {
            HopOutcome::Delivered(d) => d,
            HopOutcome::Dropped => return Err(RdmaError::TargetUnavailable),
        };
        let arrival = self.fifo_arrival(issuer, target, now + delay);
        // Data streams into memory at wire rate; this is the torn window.
        let spread =
            Duration::from_nanos((data.len() as u64 * self.net.latency().picos_per_byte) / 1000);
        let entry = self.regions.get_mut(&region).expect("checked above");
        entry.region.begin_write(offset, data.to_vec(), arrival, spread);
        // Completion: ack hop back, plus the read-after-write fence RTT the
        // register layer relies on for visibility ordering.
        let ack = match self.net.hop(&mut self.rng, target, issuer, 16, arrival) {
            HopOutcome::Delivered(d) => d,
            // If the issuer crashed mid-flight the completion is lost, but
            // the data still landed; report the arrival as completion so the
            // simulation bookkeeping stays consistent.
            HopOutcome::Dropped => Duration::ZERO,
        };
        Ok(WriteTicket { arrival, completion: arrival + ack })
    }

    /// Issues a one-sided READ of `len` bytes from `region` at `offset`.
    ///
    /// The returned data is sampled when the read arrives at the target, so
    /// it may be torn with respect to concurrent writes.
    ///
    /// # Errors
    ///
    /// Returns an [`RdmaError`] if bounds or host liveness checks fail.
    pub fn read(
        &mut self,
        issuer: HostId,
        region: RegionId,
        offset: usize,
        len: usize,
        now: Time,
    ) -> Result<ReadTicket, RdmaError> {
        let entry = self.regions.get(&region).ok_or(RdmaError::UnknownRegion)?;
        if offset + len > entry.region.len() {
            return Err(RdmaError::OutOfBounds);
        }
        if self.net.is_crashed(issuer, now) {
            return Err(RdmaError::IssuerUnavailable);
        }
        let target = entry.host;
        // Request hop (small), then response hop carrying `len` bytes.
        let req = match self.net.hop(&mut self.rng, issuer, target, 32, now) {
            HopOutcome::Delivered(d) => d,
            HopOutcome::Dropped => return Err(RdmaError::TargetUnavailable),
        };
        let sample_at = self.fifo_arrival(issuer, target, now + req);
        let entry = self.regions.get_mut(&region).expect("checked above");
        let data = entry.region.sample(offset, len, sample_at);
        let resp = match self.net.hop(&mut self.rng, target, issuer, len, sample_at) {
            HopOutcome::Delivered(d) => d,
            HopOutcome::Dropped => return Err(RdmaError::TargetUnavailable),
        };
        Ok(ReadTicket { completion: sample_at + resp, data })
    }

    /// Reads a region that lives on the issuer's own host: no network hops,
    /// the bytes are sampled as they appear at `now`. This is how a receiver
    /// polls its RDMA-exposed circular buffer (§6.2) — local RAM access, with
    /// any CPU cost charged by the caller's cost model.
    ///
    /// # Errors
    ///
    /// Returns an [`RdmaError`] if the region is unknown, not local to
    /// `issuer`, out of bounds, or the host has crashed.
    pub fn local_read(
        &mut self,
        issuer: HostId,
        region: RegionId,
        offset: usize,
        len: usize,
        now: Time,
    ) -> Result<Vec<u8>, RdmaError> {
        let entry = self.regions.get_mut(&region).ok_or(RdmaError::UnknownRegion)?;
        if entry.host != issuer {
            return Err(RdmaError::PermissionDenied);
        }
        if offset + len > entry.region.len() {
            return Err(RdmaError::OutOfBounds);
        }
        if self.net.is_crashed(issuer, now) {
            return Err(RdmaError::IssuerUnavailable);
        }
        Ok(entry.region.sample(offset, len, now))
    }

    /// Test helper: the settled contents of a region (all writes applied).
    pub fn settled_region(&mut self, region: RegionId) -> Option<Vec<u8>> {
        self.regions.get_mut(&region).map(|e| e.region.settled().to_vec())
    }
}

impl core::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Fabric")
            .field("regions", &self.regions.len())
            .field("hosts_with_memory", &self.bytes_per_host.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubft_sim::net::LatencyModel;

    fn fabric() -> Fabric {
        let net = NetworkModel::synchronous(LatencyModel::paper_testbed(), 4);
        Fabric::new(net, SimRng::new(42))
    }

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut f = fabric();
        let (r, tok) = f.create_region(HostId(1), 64);
        let w = f.write(HostId(0), tok, r, 0, &[0xAA; 64], t(0)).unwrap();
        assert!(w.arrival > t(0));
        assert!(w.completion > w.arrival);
        // Read well after the write settled.
        let rd = f.read(HostId(2), r, 0, 64, w.completion + Duration::from_micros(1)).unwrap();
        assert_eq!(rd.data, vec![0xAA; 64]);
        assert!(rd.completion > w.completion);
    }

    #[test]
    fn wrong_token_rejected() {
        let mut f = fabric();
        let (r, _tok) = f.create_region(HostId(1), 8);
        let (_r2, other_tok) = f.create_region(HostId(1), 8);
        assert_eq!(
            f.write(HostId(0), other_tok, r, 0, &[1], t(0)),
            Err(RdmaError::PermissionDenied)
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut f = fabric();
        let (r, tok) = f.create_region(HostId(1), 8);
        assert_eq!(f.write(HostId(0), tok, r, 4, &[0; 8], t(0)), Err(RdmaError::OutOfBounds));
        assert_eq!(f.read(HostId(0), r, 0, 9, t(0)).unwrap_err(), RdmaError::OutOfBounds);
    }

    #[test]
    fn unknown_region_rejected() {
        let mut f = fabric();
        assert_eq!(
            f.read(HostId(0), RegionId(99), 0, 1, t(0)).unwrap_err(),
            RdmaError::UnknownRegion
        );
    }

    #[test]
    fn crashed_target_never_completes() {
        let mut f = fabric();
        let (r, tok) = f.create_region(HostId(1), 8);
        f.net_mut().crash_host(HostId(1), t(100));
        assert!(f.write(HostId(0), tok, r, 0, &[1; 8], t(50)).is_ok());
        assert_eq!(
            f.write(HostId(0), tok, r, 0, &[1; 8], t(100)),
            Err(RdmaError::TargetUnavailable)
        );
        assert_eq!(f.read(HostId(2), r, 0, 8, t(100)).unwrap_err(), RdmaError::TargetUnavailable);
    }

    #[test]
    fn crashed_issuer_cannot_issue() {
        let mut f = fabric();
        let (r, tok) = f.create_region(HostId(1), 8);
        f.net_mut().crash_host(HostId(0), t(10));
        assert_eq!(
            f.write(HostId(0), tok, r, 0, &[1; 8], t(10)),
            Err(RdmaError::IssuerUnavailable)
        );
    }

    #[test]
    fn same_pair_ops_arrive_fifo() {
        let mut f = fabric();
        let (r, tok) = f.create_region(HostId(1), 8);
        let mut prev = Time::ZERO;
        for i in 0..20 {
            let w = f.write(HostId(0), tok, r, 0, &[i as u8; 8], t(i)).unwrap();
            assert!(w.arrival > prev, "op {i} arrived out of order");
            prev = w.arrival;
        }
        // Last writer wins.
        assert_eq!(f.settled_region(r).unwrap(), vec![19u8; 8]);
    }

    #[test]
    fn concurrent_read_can_tear() {
        // A read arriving mid-write of a large buffer observes a torn mix.
        let mut f = fabric();
        let (r, tok) = f.create_region(HostId(1), 4096);
        let w = f.write(HostId(0), tok, r, 0, &[0x11; 4096], t(0)).unwrap();
        // Wait for first write to settle, then start a second write and read
        // during its application window.
        let start2 = w.completion + Duration::from_micros(5);
        let _w2 = f.write(HostId(0), tok, r, 0, &[0x22; 4096], start2).unwrap();
        // 4096 B at 80 ps/B ≈ 327 ns application window. A read issued at the
        // same instant from a distinct host arrives ~1 µs later, i.e. in the
        // vicinity of the window; either way the result must be consistent.
        let rd = f.read(HostId(2), r, 0, 4096, start2).unwrap();
        let saw_new = rd.data.contains(&0x22);
        let saw_old = rd.data.contains(&0x11);
        // Timing depends on latency sampling, so just require the read to be
        // *consistent with the model*: all-old, all-new, or a torn mix where
        // new data forms a prefix.
        if saw_new && saw_old {
            let first_old = rd.data.iter().position(|&b| b == 0x11).unwrap();
            assert!(rd.data[first_old..].iter().all(|&b| b == 0x11));
            assert!(rd.data[..first_old].iter().all(|&b| b == 0x22));
        }
    }

    #[test]
    fn host_byte_accounting() {
        let mut f = fabric();
        f.create_region(HostId(3), 100);
        f.create_region(HostId(3), 28);
        f.create_region(HostId(1), 7);
        assert_eq!(f.host_bytes(HostId(3)), 128);
        assert_eq!(f.host_bytes(HostId(1)), 7);
        assert_eq!(f.host_bytes(HostId(0)), 0);
    }
}
