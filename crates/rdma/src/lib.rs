//! Simulated RDMA fabric: the disaggregated-memory substrate.
//!
//! The paper's prototype exposes memory over RDMA on InfiniBand (§2.3, §6).
//! This crate reproduces the four properties the protocols rely on:
//!
//! 1. **One-sided access** — a [`Fabric::write`]/[`Fabric::read`] completes
//!    without involving the target host's CPU; the target may be a passive
//!    memory node.
//! 2. **Access permissions** — each region has a single writer capability
//!    ([`AccessToken`]); writes with the wrong token are rejected, which is
//!    how single-writer multi-reader semantics are enforced in hardware.
//! 3. **8-byte atomicity** — a read that overlaps an in-flight write returns
//!    a *torn* mix of old and new data at 8-byte granularity ([`region`]),
//!    which is exactly the hazard the checksummed register framing of
//!    `ubft-dmem` exists to detect.
//! 4. **Microsecond latency** — per-op latency follows the calibrated
//!    [`ubft_sim::net::LatencyModel`], and same-pair operations arrive in
//!    FIFO order like a reliable-connection queue pair.
//!
//! Host crashes make a host's regions permanently unavailable; ops targeting
//! them report [`RdmaError::TargetUnavailable`] and *never complete*, which
//! is how the replicated register layer exercises its majority quorums.

pub mod fabric;
pub mod region;

pub use fabric::{AccessToken, Fabric, RdmaError, ReadTicket, RegionId, WriteTicket};
