//! Memory regions with 8-byte-granularity torn-write modelling.
//!
//! RDMA guarantees atomicity only per 8-byte word (§3.2 "data accesses can be
//! inconsistent, since RDMA provides only 8-byte atomicity"). We model a
//! write as streaming into the region word by word over a short application
//! window; a read sampling the region mid-window observes a prefix of new
//! words followed by old words — a *torn* value. The SWMR register layer must
//! detect this via checksums, and the tests there rely on this model being
//! faithful.

use ubft_types::{Duration, Time};

/// A write still streaming into memory.
#[derive(Clone, Debug)]
struct InflightWrite {
    offset: usize,
    data: Vec<u8>,
    start: Time,
    /// Virtual time between consecutive word flips.
    word_gap: Duration,
}

impl InflightWrite {
    /// Number of words whose new value is visible at `t`.
    fn words_visible(&self, t: Time) -> usize {
        if t < self.start {
            return 0;
        }
        let n_words = self.data.len().div_ceil(8);
        if self.word_gap == Duration::ZERO {
            return n_words;
        }
        let elapsed = t.since(self.start).as_nanos();
        let visible = (elapsed / self.word_gap.as_nanos().max(1)) as usize;
        visible.min(n_words)
    }

    fn fully_applied_at(&self) -> Time {
        let n_words = self.data.len().div_ceil(8) as u64;
        self.start + Duration::from_nanos(self.word_gap.as_nanos() * n_words)
    }
}

/// A byte region of host memory exposed over the fabric.
#[derive(Clone, Debug)]
pub(crate) struct Region {
    committed: Vec<u8>,
    inflight: Vec<InflightWrite>,
}

impl Region {
    pub(crate) fn new(size: usize) -> Self {
        Region { committed: vec![0u8; size], inflight: Vec::new() }
    }

    pub(crate) fn len(&self) -> usize {
        self.committed.len()
    }

    /// Begins applying `data` at `offset` starting at time `start`, taking
    /// `spread` of virtual time to stream in word by word.
    pub(crate) fn begin_write(
        &mut self,
        offset: usize,
        data: Vec<u8>,
        start: Time,
        spread: Duration,
    ) {
        debug_assert!(offset + data.len() <= self.committed.len());
        self.compact(start);
        let n_words = data.len().div_ceil(8).max(1) as u64;
        let word_gap = Duration::from_nanos(spread.as_nanos() / n_words);
        self.inflight.push(InflightWrite { offset, data, start, word_gap });
    }

    /// Folds fully-applied writes into the committed image.
    fn compact(&mut self, now: Time) {
        // Writes must fold in arrival order to preserve last-writer-wins.
        let mut remaining = Vec::new();
        let inflight = std::mem::take(&mut self.inflight);
        let mut still_pending = false;
        for w in inflight {
            if !still_pending && w.fully_applied_at() <= now {
                let end = w.offset + w.data.len();
                self.committed[w.offset..end].copy_from_slice(&w.data);
            } else {
                // Once one write is still pending, keep all later writes
                // in-flight too so ordering is preserved.
                still_pending = true;
                remaining.push(w);
            }
        }
        self.inflight = remaining;
    }

    /// Samples `len` bytes at `offset` as they appear at time `t`, applying
    /// the torn-word model for any in-flight writes.
    pub(crate) fn sample(&mut self, offset: usize, len: usize, t: Time) -> Vec<u8> {
        self.compact(t);
        let mut out = self.committed[offset..offset + len].to_vec();
        for w in self.inflight.iter() {
            let visible_words = w.words_visible(t);
            let visible_bytes = (visible_words * 8).min(w.data.len());
            // Overlap of [w.offset, w.offset + visible_bytes) with the read.
            let w_start = w.offset;
            let w_end = w.offset + visible_bytes;
            let r_start = offset;
            let r_end = offset + len;
            let lo = w_start.max(r_start);
            let hi = w_end.min(r_end);
            if lo < hi {
                out[lo - r_start..hi - r_start]
                    .copy_from_slice(&w.data[lo - w_start..hi - w_start]);
            }
        }
        out
    }

    /// The final contents once every in-flight write has landed (test/debug
    /// helper; equivalent to sampling at `Time::MAX`).
    pub(crate) fn settled(&mut self) -> &[u8] {
        self.compact(Time::MAX);
        // A write with word_gap 0 folds immediately; Time::MAX folds the rest.
        debug_assert!(self.inflight.is_empty());
        &self.committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    #[test]
    fn instant_write_visible_immediately() {
        let mut r = Region::new(16);
        r.begin_write(0, vec![7u8; 16], t(10), Duration::ZERO);
        assert_eq!(r.sample(0, 16, t(10)), vec![7u8; 16]);
    }

    #[test]
    fn torn_read_mixes_words() {
        let mut r = Region::new(32);
        r.begin_write(0, vec![0x11u8; 32], t(0), Duration::ZERO);
        // Second write streams in over 40 ns: one word per 10 ns.
        r.begin_write(0, vec![0x22u8; 32], t(100), Duration::from_nanos(40));
        // At t=100 nothing of the new write is visible.
        assert_eq!(r.sample(0, 32, t(100)), vec![0x11u8; 32]);
        // At t=115, one word (8 bytes) flipped.
        let mid = r.sample(0, 32, t(115));
        assert_eq!(&mid[..8], &[0x22u8; 8][..]);
        assert_eq!(&mid[8..], &[0x11u8; 24][..]);
        // At t=140 everything flipped.
        assert_eq!(r.sample(0, 32, t(140)), vec![0x22u8; 32]);
    }

    #[test]
    fn reads_before_write_see_old() {
        let mut r = Region::new(8);
        r.begin_write(0, vec![9u8; 8], t(50), Duration::from_nanos(8));
        assert_eq!(r.sample(0, 8, t(49)), vec![0u8; 8]);
    }

    #[test]
    fn partial_range_sampling() {
        let mut r = Region::new(24);
        r.begin_write(8, vec![5u8; 8], t(0), Duration::ZERO);
        let s = r.sample(4, 12, t(0));
        assert_eq!(&s[..4], &[0u8; 4][..]);
        assert_eq!(&s[4..12], &[5u8; 8][..]);
    }

    #[test]
    fn later_write_wins_after_settle() {
        let mut r = Region::new(8);
        r.begin_write(0, vec![1u8; 8], t(0), Duration::from_nanos(100));
        r.begin_write(0, vec![2u8; 8], t(1), Duration::from_nanos(100));
        assert_eq!(r.settled(), &[2u8; 8][..]);
    }

    #[test]
    fn ordering_preserved_when_first_still_pending() {
        let mut r = Region::new(8);
        // First write streams slowly; second is instant but arrives later.
        r.begin_write(0, vec![1u8; 8], t(0), Duration::from_nanos(1000));
        r.begin_write(0, vec![2u8; 8], t(10), Duration::ZERO);
        // Sampling far in the future must show the *second* write, not let
        // the slow first write clobber it out of order.
        assert_eq!(r.sample(0, 8, t(10_000)), vec![2u8; 8]);
    }

    #[test]
    fn sub_word_write() {
        let mut r = Region::new(8);
        r.begin_write(0, vec![0xAB; 3], t(0), Duration::from_nanos(5));
        assert_eq!(r.sample(0, 3, t(5)), vec![0xAB; 3]);
    }
}
