//! USIG: the trusted monotonic counter inside a (simulated) SGX enclave.

use ubft_crypto::hmac::{digest_eq, hmac_sha256};
use ubft_crypto::Digest;
use ubft_types::ReplicaId;

/// A unique identifier certificate: `(counter, HMAC(secret, msg ‖ counter ‖
/// id))`. Unforgeable outside the enclaves because `secret` never leaves
/// them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UsigCert {
    /// The monotonic counter value bound to the message.
    pub counter: u64,
    /// The authenticating tag.
    pub tag: Digest,
}

/// One replica's enclave. The shared `secret` models the attestation-time
/// key exchange among enclaves.
#[derive(Clone, Debug)]
pub struct Usig {
    id: ReplicaId,
    secret: [u8; 32],
    counter: u64,
    /// Enclave crossings performed (the runtime charges 7–12.5 µs each).
    accesses: u64,
    /// Highest counter verified per remote replica (sequentiality check).
    last_seen: std::collections::BTreeMap<ReplicaId, u64>,
}

impl Usig {
    /// Creates the enclave for `id` with the group-shared `secret`.
    pub fn new(id: ReplicaId, secret: [u8; 32]) -> Self {
        Usig { id, secret, counter: 0, accesses: 0, last_seen: Default::default() }
    }

    fn tag(&self, msg: &[u8], counter: u64, id: ReplicaId) -> Digest {
        let mut buf = msg.to_vec();
        buf.extend_from_slice(&counter.to_le_bytes());
        buf.extend_from_slice(&id.0.to_le_bytes());
        hmac_sha256(&self.secret, &buf)
    }

    /// `createUI`: binds the next counter value to `msg`.
    pub fn create_ui(&mut self, msg: &[u8]) -> UsigCert {
        self.accesses += 1;
        self.counter += 1;
        UsigCert { counter: self.counter, tag: self.tag(msg, self.counter, self.id) }
    }

    /// `verifyUI`: checks that `cert` authenticates `msg` from `from` and
    /// that the counter is fresh and sequential (no gaps, no reuse).
    pub fn verify_ui(&mut self, from: ReplicaId, msg: &[u8], cert: &UsigCert) -> bool {
        self.accesses += 1;
        let expected = self.tag(msg, cert.counter, from);
        if !digest_eq(&expected, &cert.tag) {
            return false;
        }
        let last = self.last_seen.entry(from).or_insert(0);
        if cert.counter != *last + 1 {
            return false; // gap or replay: possible equivocation
        }
        *last = cert.counter;
        true
    }

    /// A plain enclave MAC over `msg` that does **not** consume a counter
    /// (used for client-request authentication in the HMAC variant).
    pub fn mac(&mut self, msg: &[u8]) -> Digest {
        self.accesses += 1;
        hmac_sha256(&self.secret, msg)
    }

    /// Enclave crossings so far (drained by the runtime for time charging).
    pub fn take_accesses(&mut self) -> u64 {
        std::mem::take(&mut self.accesses)
    }

    /// Current counter value (diagnostics).
    pub fn counter(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Usig, Usig) {
        let secret = [7u8; 32];
        (Usig::new(ReplicaId(0), secret), Usig::new(ReplicaId(1), secret))
    }

    #[test]
    fn create_verify_roundtrip() {
        let (mut a, mut b) = pair();
        let ui = a.create_ui(b"hello");
        assert_eq!(ui.counter, 1);
        assert!(b.verify_ui(ReplicaId(0), b"hello", &ui));
    }

    #[test]
    fn wrong_message_rejected() {
        let (mut a, mut b) = pair();
        let ui = a.create_ui(b"hello");
        assert!(!b.verify_ui(ReplicaId(0), b"other", &ui));
    }

    #[test]
    fn replayed_counter_rejected() {
        let (mut a, mut b) = pair();
        let ui = a.create_ui(b"m1");
        assert!(b.verify_ui(ReplicaId(0), b"m1", &ui));
        assert!(!b.verify_ui(ReplicaId(0), b"m1", &ui), "replay must fail");
    }

    #[test]
    fn counter_gap_rejected() {
        let (mut a, mut b) = pair();
        let _skipped = a.create_ui(b"m1");
        let ui2 = a.create_ui(b"m2");
        assert!(!b.verify_ui(ReplicaId(0), b"m2", &ui2), "gap must fail");
    }

    #[test]
    fn equivocation_impossible_same_counter() {
        // A Byzantine replica cannot bind two different messages to the same
        // counter: createUI always increments, and receivers enforce
        // sequentiality, so at most one message per counter verifies.
        let (mut a, mut b) = pair();
        let ui1 = a.create_ui(b"to-alice");
        let forged = UsigCert { counter: ui1.counter, tag: ui1.tag };
        assert!(b.verify_ui(ReplicaId(0), b"to-alice", &ui1));
        assert!(!b.verify_ui(ReplicaId(0), b"to-bob", &forged));
    }

    #[test]
    fn different_secret_rejected() {
        let mut a = Usig::new(ReplicaId(0), [1u8; 32]);
        let mut b = Usig::new(ReplicaId(1), [2u8; 32]);
        let ui = a.create_ui(b"m");
        assert!(!b.verify_ui(ReplicaId(0), b"m", &ui));
    }

    #[test]
    fn access_metering() {
        let (mut a, mut b) = pair();
        let ui = a.create_ui(b"m");
        b.verify_ui(ReplicaId(0), b"m", &ui);
        assert_eq!(a.take_accesses(), 1);
        assert_eq!(b.take_accesses(), 1);
        assert_eq!(a.take_accesses(), 0);
    }
}
