//! MinBFT (IEEE TC '13): the 2f+1 BFT baseline built on a trusted counter
//! (§7.2, §7.4).
//!
//! MinBFT prevents equivocation with a **USIG** (Unique Sequential
//! Identifier Generator) living in an SGX enclave: every outgoing message is
//! bound to a monotonically increasing counter with an HMAC keyed by a
//! secret shared among enclaves. The protocol then needs only two phases
//! (PREPARE by the leader, COMMIT by everyone) across `2f + 1` replicas.
//!
//! Our setup has no SGX — neither did the paper's RDMA testbed; they
//! emulated enclave latency from separate measurements (7–12.5 µs per
//! access, §7.4) and so do we: [`usig::Usig`] is functionally real (HMAC
//! over message ‖ counter ‖ id) while the *enclave-access count* is metered
//! so the runtime charges virtual time per access.
//!
//! Two client configurations, as in Figure 8:
//! * **vanilla** — clients sign requests with public-key crypto;
//! * **HMAC** — clients use enclave HMACs too, removing PK ops entirely.

pub mod protocol;
pub mod usig;

pub use protocol::{ClientAuth, MinbftEffect, MinbftReplica};
pub use usig::{Usig, UsigCert};
