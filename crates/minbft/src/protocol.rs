//! The MinBFT two-phase protocol (failure-free path).
//!
//! Leader: on a client request, `createUI` over a PREPARE and send it to
//! all followers. Follower: `verifyUI` the PREPARE, `createUI` over a COMMIT
//! and send it to everyone. A replica executes once it holds the PREPARE
//! and `f` matching COMMITs from *other* replicas (with its own, `f + 1`
//! total), then replies to the client, which waits for `f + 1` matching
//! replies. View changes are out of scope for the latency experiments — the
//! paper measures MinBFT's failure-free path only.

use std::collections::BTreeMap;

use ubft_core::msg::{Reply, Request};
use ubft_crypto::{KeyRing, Signature};
use ubft_types::{ProcessId, ReplicaId, Slot};

use crate::usig::{Usig, UsigCert};

/// How clients authenticate requests (Figure 8's two MinBFT variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientAuth {
    /// Vanilla MinBFT: public-key client signatures (costed at sign/verify
    /// rates).
    Signatures,
    /// The HMAC variant: clients own an enclave too; request authentication
    /// is one enclave access at the client and one per replica.
    EnclaveHmac,
}

/// Effects emitted by a MinBFT replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MinbftEffect {
    /// Send a PREPARE (leader only).
    SendPrepare {
        /// Destination.
        to: ReplicaId,
        /// Ordered slot.
        slot: Slot,
        /// The request.
        req: Request,
        /// The leader's UI over the prepare.
        ui: UsigCert,
    },
    /// Send a COMMIT.
    SendCommit {
        /// Destination.
        to: ReplicaId,
        /// The slot being committed.
        slot: Slot,
        /// This replica's UI over the commit.
        ui: UsigCert,
    },
    /// Execute the request and reply to its client.
    Execute {
        /// The slot.
        slot: Slot,
        /// The request.
        req: Request,
    },
}

#[derive(Clone, Debug, Default)]
struct SlotProgress {
    req: Option<Request>,
    commits: usize,
    sent_commit: bool,
    executed: bool,
}

/// One MinBFT replica (leader or follower decided by id 0 convention).
pub struct MinbftReplica {
    me: ReplicaId,
    peers: Vec<ReplicaId>,
    f: usize,
    usig: Usig,
    ring: KeyRing,
    auth: ClientAuth,
    next_slot: Slot,
    slots: BTreeMap<Slot, SlotProgress>,
    /// Public-key operations performed (vanilla client verification).
    pk_verifies: u64,
}

impl MinbftReplica {
    /// Creates a replica. `peers` excludes `me`; the leader is replica 0.
    pub fn new(
        me: ReplicaId,
        peers: Vec<ReplicaId>,
        f: usize,
        usig: Usig,
        ring: KeyRing,
        auth: ClientAuth,
    ) -> Self {
        MinbftReplica {
            me,
            peers,
            f,
            usig,
            ring,
            auth,
            next_slot: Slot(0),
            slots: BTreeMap::new(),
            pk_verifies: 0,
        }
    }

    /// Whether this replica is the (static) leader.
    pub fn is_leader(&self) -> bool {
        self.me == ReplicaId(0)
    }

    /// Drains enclave-access and PK-op meters: `(enclave_accesses,
    /// pk_verifies)`.
    pub fn take_meters(&mut self) -> (u64, u64) {
        (self.usig.take_accesses(), std::mem::take(&mut self.pk_verifies))
    }

    fn verify_client(&mut self, req: &Request, sig: Option<&Signature>) -> bool {
        match self.auth {
            ClientAuth::Signatures => {
                self.pk_verifies += 1;
                match sig {
                    Some(s) => self.ring.verify(ProcessId::Client(req.id.client), &reqb(req), s),
                    None => false,
                }
            }
            // Enclave HMAC: one enclave crossing to check the client's MAC;
            // content verification is modelled by the shared-secret HMAC and
            // deliberately does not consume a USIG counter.
            ClientAuth::EnclaveHmac => {
                let _ = self.usig.mac(&reqb(req));
                true
            }
        }
    }

    /// A client request reached the leader.
    pub fn on_client_request(
        &mut self,
        req: Request,
        sig: Option<&Signature>,
    ) -> Vec<MinbftEffect> {
        if !self.is_leader() || !self.verify_client(&req, sig) {
            return Vec::new();
        }
        let slot = self.next_slot;
        self.next_slot = self.next_slot.next();
        let ui = self.usig.create_ui(&prepare_bytes(slot, &req));
        let entry = self.slots.entry(slot).or_default();
        entry.req = Some(req.clone());
        let mut fx: Vec<MinbftEffect> = self
            .peers
            .iter()
            .map(|&to| MinbftEffect::SendPrepare { to, slot, req: req.clone(), ui })
            .collect();
        // The leader commits too.
        fx.extend(self.broadcast_commit(slot));
        fx
    }

    /// A PREPARE arrived from the leader.
    pub fn on_prepare(
        &mut self,
        from: ReplicaId,
        slot: Slot,
        req: Request,
        ui: UsigCert,
        client_sig: Option<&Signature>,
    ) -> Vec<MinbftEffect> {
        if from != ReplicaId(0) {
            return Vec::new();
        }
        if !self.usig.verify_ui(from, &prepare_bytes(slot, &req), &ui) {
            return Vec::new();
        }
        if !self.verify_client(&req, client_sig) {
            return Vec::new();
        }
        let entry = self.slots.entry(slot).or_default();
        entry.req = Some(req);
        self.broadcast_commit(slot)
    }

    fn broadcast_commit(&mut self, slot: Slot) -> Vec<MinbftEffect> {
        let entry = self.slots.entry(slot).or_default();
        if entry.sent_commit {
            return Vec::new();
        }
        entry.sent_commit = true;
        let ui = self.usig.create_ui(&commit_bytes(slot, self.me));
        let mut fx: Vec<MinbftEffect> =
            self.peers.iter().map(|&to| MinbftEffect::SendCommit { to, slot, ui }).collect();
        // Our own commit counts.
        fx.extend(self.count_commit(slot));
        fx
    }

    /// A COMMIT arrived.
    pub fn on_commit(&mut self, from: ReplicaId, slot: Slot, ui: UsigCert) -> Vec<MinbftEffect> {
        if !self.usig.verify_ui(from, &commit_bytes(slot, from), &ui) {
            return Vec::new();
        }
        self.count_commit(slot)
    }

    fn count_commit(&mut self, slot: Slot) -> Vec<MinbftEffect> {
        let f = self.f;
        let entry = self.slots.entry(slot).or_default();
        entry.commits += 1;
        if entry.commits > f && !entry.executed {
            if let Some(req) = entry.req.clone() {
                entry.executed = true;
                return vec![MinbftEffect::Execute { slot, req }];
            }
        }
        Vec::new()
    }

    /// Builds a reply for an executed request.
    pub fn reply(&self, req: &Request, payload: Vec<u8>) -> Reply {
        Reply { id: req.id, replica: self.me, payload }
    }
}

fn reqb(req: &Request) -> Vec<u8> {
    use ubft_types::wire::Wire;
    req.to_bytes()
}

fn prepare_bytes(slot: Slot, req: &Request) -> Vec<u8> {
    let mut b = b"minbft-prepare\0".to_vec();
    b.extend_from_slice(&slot.0.to_le_bytes());
    b.extend_from_slice(&reqb(req));
    b
}

fn commit_bytes(slot: Slot, from: ReplicaId) -> Vec<u8> {
    let mut b = b"minbft-commit\0".to_vec();
    b.extend_from_slice(&slot.0.to_le_bytes());
    b.extend_from_slice(&from.0.to_le_bytes());
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubft_types::{ClientId, RequestId};

    fn cluster(auth: ClientAuth) -> Vec<MinbftReplica> {
        let secret = [9u8; 32];
        let ids: Vec<ReplicaId> = (0..3).map(ReplicaId).collect();
        let ring = KeyRing::generate(
            4,
            ids.iter().map(|r| ProcessId::Replica(*r)).chain([ProcessId::Client(ClientId(0))]),
        );
        ids.iter()
            .map(|&me| {
                let peers = ids.iter().copied().filter(|r| *r != me).collect();
                MinbftReplica::new(me, peers, 1, Usig::new(me, secret), ring.clone(), auth)
            })
            .collect()
    }

    fn req(seq: u64) -> Request {
        Request { id: RequestId::new(ClientId(0), seq), payload: vec![1, 2, 3] }
    }

    fn run_request(replicas: &mut [MinbftReplica], r: Request, sig: Option<Signature>) -> usize {
        // FIFO processing: USIG counters are sequential and the transport
        // delivers each sender's messages in order.
        let mut queue: std::collections::VecDeque<(usize, MinbftEffect)> =
            replicas[0].on_client_request(r, sig.as_ref()).into_iter().map(|e| (0, e)).collect();
        let mut executed = 0;
        while let Some((_who, fx)) = queue.pop_front() {
            match fx {
                MinbftEffect::SendPrepare { to, slot, req, ui } => {
                    let t = to.0 as usize;
                    let out = replicas[t].on_prepare(ReplicaId(0), slot, req, ui, sig.as_ref());
                    queue.extend(out.into_iter().map(|e| (t, e)));
                }
                MinbftEffect::SendCommit { to, slot, ui } => {
                    let t = to.0 as usize;
                    let from = ReplicaId(_who as u32);
                    let out = replicas[t].on_commit(from, slot, ui);
                    queue.extend(out.into_iter().map(|e| (t, e)));
                }
                MinbftEffect::Execute { .. } => executed += 1,
            }
        }
        executed
    }

    #[test]
    fn hmac_variant_executes_everywhere() {
        let mut rs = cluster(ClientAuth::EnclaveHmac);
        let executed = run_request(&mut rs, req(0), None);
        assert_eq!(executed, 3);
    }

    #[test]
    fn vanilla_requires_valid_client_signature() {
        let mut rs = cluster(ClientAuth::Signatures);
        // Unsigned request is refused outright.
        assert_eq!(run_request(&mut rs, req(0), None), 0);
        // Correctly signed request flows.
        let ring = KeyRing::generate(
            4,
            (0..3)
                .map(|i| ProcessId::Replica(ReplicaId(i)))
                .chain([ProcessId::Client(ClientId(0))]),
        );
        let signer = ring.signer(ProcessId::Client(ClientId(0))).unwrap();
        let r = req(0);
        let sig = signer.sign(&reqb(&r));
        assert_eq!(run_request(&mut rs, r, Some(sig)), 3);
    }

    #[test]
    fn forged_prepare_rejected() {
        let mut rs = cluster(ClientAuth::EnclaveHmac);
        let forged = UsigCert { counter: 1, tag: ubft_crypto::sha256(b"junk") };
        let out = rs[1].on_prepare(ReplicaId(0), Slot(0), req(0), forged, None);
        assert!(out.is_empty());
    }

    #[test]
    fn prepare_from_non_leader_rejected() {
        let mut rs = cluster(ClientAuth::EnclaveHmac);
        let ui = UsigCert { counter: 1, tag: ubft_crypto::sha256(b"x") };
        assert!(rs[2].on_prepare(ReplicaId(1), Slot(0), req(0), ui, None).is_empty());
    }

    #[test]
    fn meters_accumulate() {
        let mut rs = cluster(ClientAuth::EnclaveHmac);
        run_request(&mut rs, req(0), None);
        let (enclave, pk) = rs[0].take_meters();
        assert!(enclave > 0);
        assert_eq!(pk, 0);
        let mut rs = cluster(ClientAuth::Signatures);
        run_request(&mut rs, req(0), None);
        let (_, pk) = rs[0].take_meters();
        assert!(pk > 0);
    }

    #[test]
    fn sequential_requests_all_execute() {
        let mut rs = cluster(ClientAuth::EnclaveHmac);
        for i in 0..10 {
            assert_eq!(run_request(&mut rs, req(i), None), 3, "request {i}");
        }
    }
}
