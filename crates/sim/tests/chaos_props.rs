//! Property tests for the chaos-plan generator and shrinker: generation is
//! a pure function of the seed, every generated plan respects the validity
//! rules, and shrinking is monotone — the shrunk plan is a sub-multiset of
//! the original, still valid, and still failing.

use proptest::prelude::*;
use ubft_sim::chaos::{shrink, ChaosPlan, ChaosSpace};
use ubft_sim::failure::Fault;
use ubft_types::Duration;

fn space_for(groups: usize) -> ChaosSpace {
    ChaosSpace::paper_default().with_groups(groups)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// The same `(seed, space)` always yields the same plan — chaos runs
    /// reproduce from two numbers.
    #[test]
    fn generation_is_deterministic(seed in 0u64..100_000, groups in 1usize..4) {
        let space = space_for(groups);
        prop_assert_eq!(
            ChaosPlan::generate(seed, &space),
            ChaosPlan::generate(seed, &space)
        );
    }

    /// Every generated plan passes every validity rule: per-group
    /// concurrent-fault budget, deployment-global memory-node budget, one
    /// lifecycle per replica, replacement-last, partition exclusivity.
    #[test]
    fn generated_plans_are_valid(seed in 0u64..100_000, groups in 1usize..4) {
        let space = space_for(groups);
        let plan = ChaosPlan::generate(seed, &space);
        prop_assert!(plan.is_valid(&space), "seed {} invalid: {:?}", seed, plan);
        for g in 0..space.groups {
            prop_assert!(plan.group_plan(g).faulty_replica_count() <= space.f);
        }
        let mem_crashed: std::collections::BTreeSet<usize> = plan
            .faults
            .iter()
            .filter_map(|f| match f.fault {
                Fault::MemNodeCrash { index, .. } => Some(index),
                _ => None,
            })
            .collect();
        prop_assert!(mem_crashed.len() <= space.f_m);
    }

    /// Greedy shrinking is monotone: for any (deterministic) failure
    /// predicate, the shrunk plan is a sub-multiset of the original, still
    /// valid, still failing — and locally minimal for predicates that only
    /// look at single faults (no single removal preserves the failure).
    #[test]
    fn shrinking_is_monotone_subset_and_still_failing(
        seed in 0u64..100_000,
        pick in 0usize..8,
    ) {
        let space = space_for(1).with_max_faults(6).with_horizon(Duration::from_micros(4_000));
        let plan = ChaosPlan::generate(seed, &space);
        if plan.faults.is_empty() {
            return; // asynchrony-only plan: nothing to shrink against
        }
        // The "bug" triggers on one specific fault of the plan (what a
        // real violation caused by a single fault looks like).
        let culprit = plan.faults[pick % plan.faults.len()];
        let fails = |p: &ChaosPlan| p.faults.contains(&culprit);
        let shrunk = shrink(&plan, &space, fails);
        prop_assert!(shrunk.is_subset_of(&plan));
        prop_assert!(shrunk.is_valid(&space));
        prop_assert!(fails(&shrunk));
        prop_assert_eq!(shrunk.faults.len(), 1);
        prop_assert_eq!(shrunk.faults[0], culprit);
        prop_assert_eq!(shrunk.asynchrony, None);
    }

    /// Shrinking against a conjunction keeps exactly the conjuncts: the
    /// minimal still-failing core of "needs faults A and B" is `{A, B}`.
    #[test]
    fn shrinking_keeps_every_necessary_fault(seed in 0u64..100_000) {
        let space = space_for(1).with_max_faults(6).with_horizon(Duration::from_micros(4_000));
        let plan = ChaosPlan::generate(seed, &space);
        if plan.faults.len() < 2 {
            return; // nothing to strip between the two conjuncts
        }
        let (a, b) = (plan.faults[0], plan.faults[plan.faults.len() - 1]);
        let fails = |p: &ChaosPlan| p.faults.contains(&a) && p.faults.contains(&b);
        let shrunk = shrink(&plan, &space, fails);
        prop_assert!(shrunk.is_subset_of(&plan));
        prop_assert!(fails(&shrunk));
        prop_assert_eq!(shrunk.faults.len(), 2);
    }
}
