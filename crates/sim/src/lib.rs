//! Deterministic discrete-event simulation (DES) substrate.
//!
//! Everything in the reproduction runs on virtual time: the event queue is
//! ordered by [`ubft_types::Time`] with a deterministic FIFO tiebreak, all
//! randomness comes from a seeded [`rng::SimRng`], and latency is charged by
//! explicit [`net::LatencyModel`]s and [`cost::CostModel`]s. Running the same
//! experiment twice with the same seed produces bit-identical traces — which
//! is what lets the benchmark harness regenerate the paper's figures.
//!
//! This crate is policy-free: it knows nothing about BFT, RDMA, or the
//! protocols. Those layers consume it.
//!
//! # Example
//!
//! ```
//! use ubft_sim::event::EventQueue;
//! use ubft_types::{Duration, Time};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(Time::ZERO + Duration::from_micros(2), "b");
//! q.push(Time::ZERO + Duration::from_micros(1), "a");
//! assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
//! ```

pub mod chaos;
pub mod cost;
pub mod event;
pub mod failure;
pub mod net;
pub mod rng;
pub mod stats;
pub mod trace;

pub use event::EventQueue;
pub use net::{HostId, LatencyModel, NetworkModel};
pub use rng::SimRng;
pub use stats::LatencyStats;
pub use trace::{Span, Tracer};
