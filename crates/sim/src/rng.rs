//! Deterministic pseudo-randomness for the simulation.
//!
//! A SplitMix64 generator: tiny, fast, excellent statistical quality for
//! simulation purposes, and — crucially — trivially reproducible and
//! forkable, so each component can own an independent stream derived from
//! the experiment seed without perturbing the others.

use ubft_types::Duration;

/// A seeded SplitMix64 PRNG.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from `seed`.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire-style rejection-free mapping is unnecessary at simulation
        // scale; widening multiply keeps bias below 2^-64.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        lo + self.gen_range(hi - lo + 1)
    }

    /// Uniform duration in `[Duration::ZERO, max)`; `max == 0` yields zero.
    pub fn jitter(&mut self, max: Duration) -> Duration {
        if max.as_nanos() == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.gen_range(max.as_nanos()))
    }

    /// Bernoulli trial with probability `num / denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        assert!(denom > 0);
        self.gen_range(denom) < num
    }

    /// Derives an independent child stream labelled by `label`.
    ///
    /// Forking is deterministic: the same parent seed and label always yield
    /// the same child stream, regardless of how much the parent has been
    /// used before or after.
    #[must_use]
    pub fn fork(&self, label: u64) -> SimRng {
        // Mix the label into the *seed* (not the evolving state) via a fresh
        // SplitMix round so sibling forks are decorrelated.
        let mut child = SimRng::new(self.state ^ label.wrapping_mul(0xA24B_AED4_963E_E407));
        child.next_u64();
        SimRng { state: child.state }
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(r.gen_range(10) < 10);
            let v = r.gen_range_inclusive(5, 8);
            assert!((5..=8).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SimRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        SimRng::new(0).gen_range(0);
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::new(9);
        let max = Duration::from_nanos(200);
        for _ in 0..1_000 {
            assert!(r.jitter(max) < max);
        }
        assert_eq!(r.jitter(Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn fork_is_stable_and_decorrelated() {
        let parent = SimRng::new(1234);
        let mut c1 = parent.fork(1);
        let mut c1_again = parent.fork(1);
        let mut c2 = parent.fork(2);
        let a = c1.next_u64();
        assert_eq!(a, c1_again.next_u64());
        assert_ne!(a, c2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        for _ in 0..100 {
            assert!(!r.chance(0, 10));
            assert!(r.chance(10, 10));
        }
    }

    #[test]
    fn fill_bytes_varies() {
        let mut r = SimRng::new(11);
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        r.fill_bytes(&mut a);
        r.fill_bytes(&mut b);
        assert_ne!(a, b);
    }
}
