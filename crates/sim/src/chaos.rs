//! Seeded chaos-plan generation over the full fault vocabulary.
//!
//! Hand-picked scenario tests each exercise one fault shape at a time; the
//! bugs that survive them hide in *compositions* — a partition racing a
//! replacement, a Byzantine leader under pre-GST asynchrony, a memory-node
//! crash while a joiner scans its register banks. [`ChaosPlan::generate`]
//! draws such compositions from a seed, constrained by the validity rules
//! that keep a plan inside the deployment's fault budget (at most `f`
//! *concurrently* faulty replicas per group, at most `f_m` crashed memory
//! nodes, one lifecycle per replica), and [`shrink`] reduces a failing
//! plan to its smallest still-failing core so the repro a human reads is
//! minimal.
//!
//! Everything is deterministic: the same `(seed, space)` always yields the
//! same plan, and a printed plan ([`ChaosPlan::repro_string`]) rebuilds
//! byte-identically via the [`FailurePlan`] builders.

use crate::failure::{ByzantineMode, FailurePlan, Fault};
use crate::rng::SimRng;
use ubft_types::{Duration, Time};

/// Seed-space salt so chaos streams never collide with other consumers of
/// the experiment seed.
const CHAOS_SALT: u64 = 0xC4A0_5EED_0DDB_A115;

/// The fault space a chaos plan is drawn from: the deployment shape, the
/// time horizon faults land in, and the budgets the validity rules
/// enforce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosSpace {
    /// Number of consensus groups (shards).
    pub groups: usize,
    /// Replicas per group (`n = 2f + 1`).
    pub replicas: usize,
    /// Byzantine/crash budget per group.
    pub f: usize,
    /// Memory nodes shared by every group (`2 f_m + 1`).
    pub mem_nodes: usize,
    /// Memory-node crash budget.
    pub f_m: usize,
    /// All fault times land in `[0, horizon)`; partitions heal by then.
    pub horizon: Duration,
    /// Most faults one plan composes.
    pub max_faults: usize,
    /// How long after its rejoin a replaced replica still counts as
    /// faulty: the boot instant is not the recovered instant — the join
    /// handshake and state transfer need `f + 1` live peers — so plans
    /// that stack a second fault right after a rejoin are rejected.
    pub recovery_margin: Duration,
}

impl ChaosSpace {
    /// The paper-default single-group shape (`f = 1`, `f_m = 1`) with a
    /// 1.5 ms fault horizon.
    pub fn paper_default() -> Self {
        ChaosSpace {
            groups: 1,
            replicas: 3,
            f: 1,
            mem_nodes: 3,
            f_m: 1,
            horizon: Duration::from_micros(1_500),
            max_faults: 4,
            recovery_margin: Duration::from_micros(600),
        }
    }

    /// Spreads the same per-group budgets over `groups` shards.
    #[must_use]
    pub fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups.max(1);
        self
    }

    /// Overrides the fault horizon.
    #[must_use]
    pub fn with_horizon(mut self, horizon: Duration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Overrides the per-plan fault cap (clamped to at least one).
    #[must_use]
    pub fn with_max_faults(mut self, max_faults: usize) -> Self {
        self.max_faults = max_faults.max(1);
        self
    }
}

/// One scheduled fault, addressed to a consensus group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosFault {
    /// The group (shard) the fault lands in. Memory-node crashes are
    /// deployment-global regardless (the nodes are shared); the group only
    /// records which shard's plan scheduled it.
    pub group: usize,
    /// The fault itself, with group-local replica indices.
    pub fault: Fault,
}

/// A generated composition of faults plus an optional pre-GST asynchrony
/// phase. Convert to runnable [`FailurePlan`]s via [`ChaosPlan::group_plan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed this plan was drawn from (0 for hand-written plans).
    pub seed: u64,
    /// The scheduled faults, in generation order.
    pub faults: Vec<ChaosFault>,
    /// Deployment-global asynchronous prefix: `(gst, extra per-hop delay)`.
    pub asynchrony: Option<(Time, Duration)>,
}

fn at_us(us: u64) -> Time {
    Time::ZERO + Duration::from_micros(us)
}

fn micros(t: Time) -> u64 {
    t.since(Time::ZERO).as_nanos() / 1_000
}

impl ChaosPlan {
    /// A plan with no faults and no asynchrony (the fault-free reference).
    pub fn none() -> Self {
        ChaosPlan { seed: 0, faults: Vec::new(), asynchrony: None }
    }

    /// Draws a valid plan from `seed`. Deterministic: the same
    /// `(seed, space)` always yields the same plan. Candidate faults that
    /// would break a validity rule are discarded and redrawn (bounded
    /// attempts), so every generated plan satisfies
    /// [`ChaosPlan::is_valid`].
    pub fn generate(seed: u64, space: &ChaosSpace) -> ChaosPlan {
        let mut rng = SimRng::new(seed ^ CHAOS_SALT);
        let mut plan = ChaosPlan { seed, faults: Vec::new(), asynchrony: None };
        let horizon_us = (space.horizon.as_nanos() / 1_000).max(200);
        // One plan in three opens with an asynchronous prefix: timeouts
        // misfire, the slow path and spurious view changes kick in.
        if rng.chance(1, 3) {
            let gst = at_us(rng.gen_range_inclusive(100, horizon_us));
            let extra = Duration::from_micros(rng.gen_range_inclusive(20, 200));
            plan.asynchrony = Some((gst, extra));
        }
        let target = 1 + rng.gen_range(space.max_faults.max(1) as u64) as usize;
        let mut attempts = 0;
        while plan.faults.len() < target && attempts < 96 {
            attempts += 1;
            let cand = draw_fault(&mut rng, space, horizon_us);
            if plan.admits(space, &cand) {
                plan.faults.push(cand);
            }
        }
        plan
    }

    /// Whether adding `cand` keeps this plan inside the validity rules.
    pub fn admits(&self, space: &ChaosSpace, cand: &ChaosFault) -> bool {
        if cand.group >= space.groups {
            return false;
        }
        match cand.fault {
            Fault::ReplicaCrash { index, .. }
            | Fault::Byzantine { index, .. }
            | Fault::Replace { index, .. } => {
                if index >= space.replicas {
                    return false;
                }
                // One lifecycle (and one behaviour) per replica per plan:
                // compositions stay readable and a Byzantine mode never
                // outlives a replacement of the same identity.
                let taken = self.faults.iter().any(|f| {
                    f.group == cand.group
                        && matches!(
                            f.fault,
                            Fault::ReplicaCrash { index: i, .. }
                            | Fault::Byzantine { index: i, .. }
                            | Fault::Replace { index: i, .. } if i == index
                        )
                });
                if taken {
                    return false;
                }
                if let Fault::Replace { crash_at, rejoin_at, .. } = cand.fault {
                    if rejoin_at <= crash_at {
                        return false;
                    }
                }
                // A replacement must be the *last* replica-lifecycle fault
                // of its group: the implementation only fully re-arms a
                // replacement at the next stable checkpoint (its join
                // replays at most a handful of certified commits, and
                // fast-path decisions carry no transferable certificate at
                // all), and checkpoint formation time is unbounded under
                // concurrent faults — so a lifecycle fault scheduled after
                // a rejoin can exceed the effective f budget in the
                // pre-checkpoint window. The chaos explorer found exactly
                // that (two pre-checkpoint replacements let the two
                // amnesiac fresh nodes certify view-change noop fillers
                // for slots the surviving replica had decided); closing it
                // protocol-side is a ROADMAP item.
                let lifecycle_start = |f: &Fault| match f {
                    Fault::ReplicaCrash { at, .. } => Some(*at),
                    Fault::Byzantine { from, .. } => Some(*from),
                    Fault::Replace { crash_at, .. } => Some(*crash_at),
                    _ => None,
                };
                let group_faults: Vec<Fault> = self
                    .faults
                    .iter()
                    .filter(|f| f.group == cand.group)
                    .map(|f| f.fault)
                    .chain(std::iter::once(cand.fault))
                    .collect();
                for f in &group_faults {
                    if let Fault::Replace { crash_at, .. } = f {
                        let later = group_faults.iter().any(|other| {
                            other != f && lifecycle_start(other).is_some_and(|t| t >= *crash_at)
                        });
                        if later {
                            return false;
                        }
                    }
                }
                // The budget: at most f *concurrently* faulty replicas in
                // the group, counting a replacement's recovery margin.
                let mut plan = self.group_plan(cand.group);
                plan = plan.with_fault(cand.fault);
                plan.peak_concurrent_faulty(space.recovery_margin) <= space.f
            }
            Fault::MemNodeCrash { index, .. } => {
                if index >= space.mem_nodes {
                    return false;
                }
                // Memory nodes are shared by every group: the f_m budget
                // and the one-crash-per-node rule are deployment-global.
                let crashed: std::collections::BTreeSet<usize> = self
                    .faults
                    .iter()
                    .filter_map(|f| match f.fault {
                        Fault::MemNodeCrash { index, .. } => Some(index),
                        _ => None,
                    })
                    .collect();
                !crashed.contains(&index) && crashed.len() < space.f_m
            }
            Fault::Partition { a, b, from, until } => {
                if a >= space.replicas || b >= space.replicas || a == b || from >= until {
                    return false;
                }
                if until > Time::ZERO + space.horizon {
                    return false; // partitions must heal inside the horizon
                }
                // At most one severed pair at a time per group: a second
                // concurrent cut can fully isolate a replica, which spends
                // the f budget without being accounted as a replica fault.
                !self.faults.iter().any(|f| {
                    f.group == cand.group
                        && matches!(
                            f.fault,
                            Fault::Partition { from: f2, until: u2, .. }
                                if from < u2 && f2 < until
                        )
                })
            }
        }
    }

    /// Whether every fault of this plan is admitted by its predecessors —
    /// i.e. the plan could have been built fault-by-fault without breaking
    /// a validity rule. Generated and shrunk plans always are.
    pub fn is_valid(&self, space: &ChaosSpace) -> bool {
        let mut acc =
            ChaosPlan { seed: self.seed, faults: Vec::new(), asynchrony: self.asynchrony };
        for f in &self.faults {
            if !acc.admits(space, f) {
                return false;
            }
            acc.faults.push(*f);
        }
        true
    }

    /// The runnable [`FailurePlan`] of one group: its faults, plus (for
    /// group 0) the deployment-global asynchrony phase, mirroring how the
    /// runtime reads GST off the base plan.
    pub fn group_plan(&self, group: usize) -> FailurePlan {
        let mut plan = FailurePlan::none();
        for cf in self.faults.iter().filter(|c| c.group == group) {
            plan = plan.with_fault(cf.fault);
        }
        if group == 0 {
            if let Some((gst, extra)) = self.asynchrony {
                plan = plan.with_asynchrony(gst, extra);
            }
        }
        plan
    }

    /// Highest group index any fault addresses (0 for an empty plan).
    pub fn max_group(&self) -> usize {
        self.faults.iter().map(|f| f.group).max().unwrap_or(0)
    }

    /// Whether `self`'s faults are a sub-multiset of `other`'s and the
    /// asynchrony phase did not appear from nowhere — the monotonicity
    /// [`shrink`] guarantees.
    pub fn is_subset_of(&self, other: &ChaosPlan) -> bool {
        let mut pool: Vec<&ChaosFault> = other.faults.iter().collect();
        for f in &self.faults {
            match pool.iter().position(|p| **p == *f) {
                Some(i) => {
                    pool.swap_remove(i);
                }
                None => return false,
            }
        }
        self.asynchrony.is_none() || self.asynchrony == other.asynchrony
    }

    /// The plan as copy-pasteable Rust: one [`FailurePlan`] builder chain
    /// per group (exactly what `SimConfig::with_chaos` would construct),
    /// ready to drop into a regression test.
    pub fn repro_string(&self) -> String {
        let mut s = format!("// ChaosPlan seed {} ({} fault(s))\n", self.seed, self.faults.len());
        for g in 0..=self.max_group() {
            let faults: Vec<&ChaosFault> = self.faults.iter().filter(|f| f.group == g).collect();
            if faults.is_empty() && !(g == 0 && self.asynchrony.is_some()) {
                continue;
            }
            s.push_str(&format!("// group {g}:\nFailurePlan::none()\n"));
            for cf in faults {
                let line = match cf.fault {
                    Fault::ReplicaCrash { index, at } => {
                        format!("    .crash_replica({index}, us({}))\n", micros(at))
                    }
                    Fault::MemNodeCrash { index, at } => {
                        format!("    .crash_mem_node({index}, us({}))\n", micros(at))
                    }
                    Fault::Byzantine { index, mode, from } => format!(
                        "    .byzantine({index}, ByzantineMode::{mode:?}, us({}))\n",
                        micros(from)
                    ),
                    Fault::Replace { index, crash_at, rejoin_at } => format!(
                        "    .replace_replica({index}, us({}), us({}))\n",
                        micros(crash_at),
                        micros(rejoin_at)
                    ),
                    Fault::Partition { a, b, from, until } => format!(
                        "    .partition({a}, {b}, us({}), us({}))\n",
                        micros(from),
                        micros(until)
                    ),
                };
                s.push_str(&line);
            }
            if g == 0 {
                if let Some((gst, extra)) = self.asynchrony {
                    s.push_str(&format!(
                        "    .with_asynchrony(us({}), Duration::from_micros({}))\n",
                        micros(gst),
                        extra.as_nanos() / 1_000
                    ));
                }
            }
        }
        s
    }
}

/// Draws one candidate fault; validity is the caller's problem
/// ([`ChaosPlan::admits`] filters).
fn draw_fault(rng: &mut SimRng, space: &ChaosSpace, horizon_us: u64) -> ChaosFault {
    let group = rng.gen_range(space.groups as u64) as usize;
    let t = |rng: &mut SimRng| at_us(rng.gen_range_inclusive(50, horizon_us));
    let fault = match rng.gen_range(6) {
        0 => {
            Fault::ReplicaCrash { index: rng.gen_range(space.replicas as u64) as usize, at: t(rng) }
        }
        1 => {
            let mode = match rng.gen_range(5) {
                0 => ByzantineMode::EquivocateProposals,
                1 => ByzantineMode::Silent,
                2 => ByzantineMode::CensorRequests,
                3 => ByzantineMode::CorruptRegisters,
                _ => ByzantineMode::Laggard,
            };
            Fault::Byzantine {
                index: rng.gen_range(space.replicas as u64) as usize,
                mode,
                from: t(rng),
            }
        }
        2 => Fault::MemNodeCrash {
            index: rng.gen_range(space.mem_nodes.max(1) as u64) as usize,
            at: t(rng),
        },
        3 => {
            let crash_at = t(rng);
            let delay = Duration::from_micros(rng.gen_range_inclusive(100, 700));
            Fault::Replace {
                index: rng.gen_range(space.replicas as u64) as usize,
                crash_at,
                rejoin_at: crash_at + delay,
            }
        }
        _ => {
            let a = rng.gen_range(space.replicas as u64) as usize;
            let b = rng.gen_range(space.replicas as u64) as usize;
            let from_us = rng.gen_range_inclusive(50, horizon_us.saturating_sub(100).max(51));
            let until_us = rng.gen_range_inclusive(from_us + 50, horizon_us.max(from_us + 50));
            Fault::Partition { a, b, from: at_us(from_us), until: at_us(until_us) }
        }
    };
    ChaosFault { group, fault }
}

/// Greedily minimizes a failing plan: repeatedly drops single faults (and
/// the asynchrony phase) as long as `still_fails` keeps returning `true`,
/// until no single removal preserves the failure. The result is a
/// sub-multiset of the input ([`ChaosPlan::is_subset_of`]) and — because
/// every validity rule is monotone under fault removal — still valid.
pub fn shrink(
    plan: &ChaosPlan,
    space: &ChaosSpace,
    mut still_fails: impl FnMut(&ChaosPlan) -> bool,
) -> ChaosPlan {
    let mut cur = plan.clone();
    loop {
        let mut reduced = false;
        if cur.asynchrony.is_some() {
            let mut cand = cur.clone();
            cand.asynchrony = None;
            if still_fails(&cand) {
                cur = cand;
                reduced = true;
            }
        }
        let mut i = 0;
        while i < cur.faults.len() {
            let mut cand = cur.clone();
            cand.faults.remove(i);
            if still_fails(&cand) {
                cur = cand;
                reduced = true;
            } else {
                i += 1;
            }
        }
        if !reduced {
            break;
        }
    }
    debug_assert!(cur.is_valid(space), "shrinking must preserve validity");
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let space = ChaosSpace::paper_default();
        for seed in 0..40u64 {
            assert_eq!(ChaosPlan::generate(seed, &space), ChaosPlan::generate(seed, &space));
        }
        // Different seeds draw different plans (overwhelmingly).
        let distinct: std::collections::BTreeSet<String> =
            (0..40u64).map(|s| format!("{:?}", ChaosPlan::generate(s, &space))).collect();
        assert!(distinct.len() > 30, "only {} distinct plans in 40 seeds", distinct.len());
    }

    #[test]
    fn generated_plans_are_valid_and_nonempty() {
        let space = ChaosSpace::paper_default().with_groups(2);
        for seed in 0..200u64 {
            let plan = ChaosPlan::generate(seed, &space);
            assert!(plan.is_valid(&space), "seed {seed} generated an invalid plan: {plan:?}");
            assert!(
                !plan.faults.is_empty() || plan.asynchrony.is_some(),
                "seed {seed} generated an empty plan"
            );
            for g in 0..space.groups {
                assert!(plan.group_plan(g).faulty_replica_count() <= space.f);
            }
            assert!(plan.group_plan(0).faulty_mem_node_count() <= space.f_m);
        }
    }

    #[test]
    fn replacement_must_be_the_last_lifecycle_fault() {
        let space = ChaosSpace::paper_default().with_horizon(Duration::from_micros(5_000));
        let replace = ChaosFault {
            group: 0,
            fault: Fault::Replace { index: 0, crash_at: at_us(100), rejoin_at: at_us(300) },
        };
        let late_crash =
            ChaosFault { group: 0, fault: Fault::ReplicaCrash { index: 1, at: at_us(2_000) } };
        let partition = ChaosFault {
            group: 0,
            fault: Fault::Partition { a: 0, b: 1, from: at_us(400), until: at_us(900) },
        };
        let mut plan = ChaosPlan::none();
        assert!(plan.admits(&space, &replace));
        plan.faults.push(replace);
        // No replica-lifecycle fault may start after a replacement's crash:
        // the replacement is only fully re-armed at the next stable
        // checkpoint, whose formation time is unbounded under faults.
        assert!(!plan.admits(&space, &late_crash));
        // Network faults still compose freely (they exercise the join's
        // retransmission path).
        assert!(plan.admits(&space, &partition));
        // And the same crash is rejected the other way around too.
        let mut crash_first = ChaosPlan::none();
        crash_first.faults.push(late_crash);
        assert!(!crash_first.admits(&space, &replace));
    }

    #[test]
    fn mem_node_budget_is_deployment_global() {
        let space = ChaosSpace::paper_default().with_groups(2);
        let mut plan = ChaosPlan::none();
        let m0 = ChaosFault { group: 0, fault: Fault::MemNodeCrash { index: 0, at: at_us(100) } };
        let m1 = ChaosFault { group: 1, fault: Fault::MemNodeCrash { index: 1, at: at_us(100) } };
        assert!(plan.admits(&space, &m0));
        plan.faults.push(m0);
        // f_m = 1: a second node may not crash even from another shard's
        // plan (the nodes are shared).
        assert!(!plan.admits(&space, &m1));
    }

    #[test]
    fn shrink_is_greedy_minimal_and_monotone() {
        let space = ChaosSpace::paper_default().with_horizon(Duration::from_micros(8_000));
        let culprit =
            ChaosFault { group: 0, fault: Fault::ReplicaCrash { index: 2, at: at_us(700) } };
        let plan = ChaosPlan {
            seed: 7,
            faults: vec![
                ChaosFault {
                    group: 0,
                    fault: Fault::Partition { a: 0, b: 1, from: at_us(100), until: at_us(400) },
                },
                culprit,
                ChaosFault { group: 0, fault: Fault::MemNodeCrash { index: 1, at: at_us(900) } },
            ],
            asynchrony: Some((at_us(500), Duration::from_micros(80))),
        };
        assert!(plan.is_valid(&space));
        // "Fails" iff the culprit crash is present.
        let shrunk = shrink(&plan, &space, |p| p.faults.contains(&culprit));
        assert_eq!(shrunk.faults, vec![culprit]);
        assert_eq!(shrunk.asynchrony, None);
        assert!(shrunk.is_subset_of(&plan));
        assert!(shrunk.is_valid(&space));
    }

    #[test]
    fn repro_string_names_every_fault() {
        let plan = ChaosPlan {
            seed: 3,
            faults: vec![
                ChaosFault {
                    group: 0,
                    fault: Fault::Replace { index: 1, crash_at: at_us(200), rejoin_at: at_us(500) },
                },
                ChaosFault {
                    group: 1,
                    fault: Fault::Byzantine {
                        index: 0,
                        mode: ByzantineMode::CensorRequests,
                        from: at_us(50),
                    },
                },
            ],
            asynchrony: Some((at_us(300), Duration::from_micros(40))),
        };
        let s = plan.repro_string();
        assert!(s.contains(".replace_replica(1, us(200), us(500))"), "{s}");
        assert!(s.contains(".byzantine(0, ByzantineMode::CensorRequests, us(50))"), "{s}");
        assert!(s.contains(".with_asynchrony(us(300), Duration::from_micros(40))"), "{s}");
        assert!(s.contains("// group 1:"), "{s}");
    }
}
