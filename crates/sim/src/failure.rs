//! Failure injection plans for experiments and tests.
//!
//! A [`FailurePlan`] is a declarative schedule of faults — replica crashes,
//! memory-node crashes, Byzantine behaviour activations, and asynchrony
//! phases — that the runtime applies when building a cluster. Keeping plans
//! declarative means an experiment's fault schedule is part of its
//! reproducible configuration.

use ubft_types::{Duration, Time};

/// The kind of misbehaviour a Byzantine replica exhibits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByzantineMode {
    /// Sends different proposals to different receivers (the attack CTBcast
    /// exists to stop).
    EquivocateProposals,
    /// Stops participating entirely (indistinguishable from a crash).
    Silent,
    /// A leader that never proposes client requests (censorship — must
    /// trigger a view change).
    CensorRequests,
    /// Writes garbage checksums / violates the δ cooldown on its SWMR
    /// registers (the §6.1 attack the register read path must detect).
    CorruptRegisters,
    /// Delays every outgoing message by a fixed amount (slow but correct —
    /// a gray failure).
    Laggard,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Replica `index` crashes at `at`.
    ReplicaCrash {
        /// Replica index.
        index: usize,
        /// Crash time.
        at: Time,
    },
    /// Memory node `index` crashes at `at`.
    MemNodeCrash {
        /// Memory node index.
        index: usize,
        /// Crash time.
        at: Time,
    },
    /// Replica `index` behaves Byzantine in `mode` from time `from`.
    Byzantine {
        /// Replica index.
        index: usize,
        /// Behaviour exhibited.
        mode: ByzantineMode,
        /// Activation time.
        from: Time,
    },
    /// Replica `index` crashes at `crash_at` and a fresh replacement node
    /// (same replica id, new host) boots at `rejoin_at`, reconstructing its
    /// state from the memory nodes and a join handshake (uBFT extended
    /// version, §replacement — what lets `2f + 1` deployments survive
    /// churn).
    Replace {
        /// Replica index.
        index: usize,
        /// Crash time of the original node.
        crash_at: Time,
        /// Boot time of the replacement node (must be after `crash_at`).
        rejoin_at: Time,
    },
    /// Replicas `a` and `b` cannot exchange messages during `[from, until)`.
    Partition {
        /// One endpoint (replica index).
        a: usize,
        /// The other endpoint (replica index).
        b: usize,
        /// Partition start.
        from: Time,
        /// Partition end (healed from here on).
        until: Time,
    },
}

/// A declarative fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FailurePlan {
    faults: Vec<Fault>,
    /// Global stabilization time (network is asynchronous before this).
    pub gst: Time,
    /// Extra per-hop delay bound before GST.
    pub pre_gst_extra: Duration,
}

impl FailurePlan {
    /// A failure-free, synchronous-from-the-start plan.
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Adds a replica crash.
    #[must_use]
    pub fn crash_replica(mut self, index: usize, at: Time) -> Self {
        self.faults.push(Fault::ReplicaCrash { index, at });
        self
    }

    /// Adds a memory-node crash.
    #[must_use]
    pub fn crash_mem_node(mut self, index: usize, at: Time) -> Self {
        self.faults.push(Fault::MemNodeCrash { index, at });
        self
    }

    /// Makes a replica Byzantine.
    #[must_use]
    pub fn byzantine(mut self, index: usize, mode: ByzantineMode, from: Time) -> Self {
        self.faults.push(Fault::Byzantine { index, mode, from });
        self
    }

    /// Crashes replica `index` at `crash_at` and boots a fresh replacement
    /// node for the same replica id at `rejoin_at`.
    ///
    /// # Panics
    ///
    /// Panics if `rejoin_at <= crash_at` (the replacement must strictly
    /// follow the crash) or if the plan already schedules a crash or
    /// replacement for `index` (one lifecycle per replica per plan).
    #[must_use]
    pub fn replace_replica(mut self, index: usize, crash_at: Time, rejoin_at: Time) -> Self {
        assert!(rejoin_at > crash_at, "replacement must boot after the crash");
        assert!(
            self.replica_crash_time(index).is_none(),
            "replica {index} already has a scheduled crash or replacement"
        );
        self.faults.push(Fault::Replace { index, crash_at, rejoin_at });
        self
    }

    /// Sets an initial asynchronous period ending at `gst`.
    #[must_use]
    pub fn with_asynchrony(mut self, gst: Time, extra: Duration) -> Self {
        self.gst = gst;
        self.pre_gst_extra = extra;
        self
    }

    /// Severs replicas `a` and `b` during `[from, until)`.
    #[must_use]
    pub fn partition(mut self, a: usize, b: usize, from: Time, until: Time) -> Self {
        self.faults.push(Fault::Partition { a, b, from, until });
        self
    }

    /// Adds an already-constructed fault — the escape hatch that lets plans
    /// be merged (the sharded runtime folds per-shard plans into one
    /// group-local schedule this way).
    #[must_use]
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// All scheduled partitions as `(a, b, from, until)` tuples.
    pub fn partitions(&self) -> impl Iterator<Item = (usize, usize, Time, Time)> + '_ {
        self.faults.iter().filter_map(|f| match f {
            Fault::Partition { a, b, from, until } => Some((*a, *b, *from, *until)),
            _ => None,
        })
    }

    /// All scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The Byzantine mode of replica `index` active at time `t`, if any.
    pub fn byzantine_mode(&self, index: usize, t: Time) -> Option<ByzantineMode> {
        self.faults.iter().rev().find_map(|f| match f {
            Fault::Byzantine { index: i, mode, from } if *i == index && t >= *from => Some(*mode),
            _ => None,
        })
    }

    /// Crash time of replica `index`, if scheduled — a [`Fault::Replace`]
    /// schedules a crash exactly like [`Fault::ReplicaCrash`] does (the
    /// rejoin is a separate, later event).
    pub fn replica_crash_time(&self, index: usize) -> Option<Time> {
        self.faults.iter().find_map(|f| match f {
            Fault::ReplicaCrash { index: i, at } if *i == index => Some(*at),
            Fault::Replace { index: i, crash_at, .. } if *i == index => Some(*crash_at),
            _ => None,
        })
    }

    /// All scheduled replacements as `(index, crash_at, rejoin_at)` tuples,
    /// in schedule order.
    pub fn replacements(&self) -> impl Iterator<Item = (usize, Time, Time)> + '_ {
        self.faults.iter().filter_map(|f| match f {
            Fault::Replace { index, crash_at, rejoin_at } => Some((*index, *crash_at, *rejoin_at)),
            _ => None,
        })
    }

    /// Crash time of memory node `index`, if scheduled.
    pub fn mem_node_crash_time(&self, index: usize) -> Option<Time> {
        self.faults.iter().find_map(|f| match f {
            Fault::MemNodeCrash { index: i, at } if *i == index => Some(*at),
            _ => None,
        })
    }

    /// Number of replicas that are *concurrently* faulty at the worst
    /// instant of this plan, for sanity-checking against the cluster's `f`.
    ///
    /// A plain crash or a Byzantine activation makes its replica faulty
    /// from its scheduled time onward. A [`Fault::Replace`] makes its
    /// replica faulty only during `[crash_at, rejoin_at)` — once the
    /// replacement node boots, the replica id is healthy again, so a later
    /// fault on a *different* replica does not double-count against the
    /// `f` budget. (Historically every faulted index counted forever,
    /// which rejected replace-then-crash schedules that are in fact
    /// `f`-tolerable.)
    pub fn faulty_replica_count(&self) -> usize {
        self.peak_concurrent_faulty(Duration::ZERO)
    }

    /// Like [`FailurePlan::faulty_replica_count`], but a replaced replica
    /// keeps counting as faulty for `recovery_margin` past its rejoin —
    /// the boot instant is not the recovered instant (the join handshake
    /// and state transfer need `f + 1` *live* peers to complete), so
    /// liveness-minded plan generators budget the margin too.
    pub fn peak_concurrent_faulty(&self, recovery_margin: Duration) -> usize {
        // Per replica index: the time intervals during which it is faulty.
        // `None` ends mean "forever".
        let mut per_index: std::collections::BTreeMap<usize, Vec<(Time, Option<Time>)>> =
            std::collections::BTreeMap::new();
        for f in &self.faults {
            match f {
                Fault::ReplicaCrash { index, at } => {
                    per_index.entry(*index).or_default().push((*at, None));
                }
                Fault::Byzantine { index, from, .. } => {
                    per_index.entry(*index).or_default().push((*from, None));
                }
                Fault::Replace { index, crash_at, rejoin_at } => {
                    per_index
                        .entry(*index)
                        .or_default()
                        .push((*crash_at, Some(*rejoin_at + recovery_margin)));
                }
                // Partitioned replicas are correct — the network is at
                // fault, and eventual synchrony says it heals. Memory
                // nodes have their own budget (`f_m`).
                Fault::MemNodeCrash { .. } | Fault::Partition { .. } => {}
            }
        }
        // Merge each index's intervals so it is never counted twice, then
        // sweep all indices' disjoint intervals for the peak overlap.
        let mut events: Vec<(Time, bool)> = Vec::new(); // (time, is_start)
        for (_idx, mut ivs) in per_index {
            ivs.sort_by_key(|(s, _)| *s);
            let mut merged: Vec<(Time, Option<Time>)> = Vec::new();
            for (s, e) in ivs {
                match merged.last_mut() {
                    Some((_ms, me)) if me.is_none_or(|t| t >= s) => {
                        // Overlaps (or an open interval swallows the rest).
                        if me.is_some() {
                            *me = match (*me, e) {
                                (Some(a), Some(b)) => Some(a.max(b)),
                                _ => None,
                            };
                        }
                    }
                    _ => merged.push((s, e)),
                }
            }
            for (s, e) in merged {
                events.push((s, true));
                if let Some(e) = e {
                    events.push((e, false));
                }
            }
        }
        // Starts sort before ends at the same instant: the boundary moment
        // counts both parties, the conservative reading.
        events.sort_by_key(|(t, is_start)| (*t, !*is_start));
        let (mut cur, mut peak) = (0usize, 0usize);
        for (_t, is_start) in events {
            if is_start {
                cur += 1;
                peak = peak.max(cur);
            } else {
                cur -= 1;
            }
        }
        peak
    }

    /// Number of distinct memory nodes this plan crashes, for
    /// sanity-checking against the cluster's `f_m`.
    pub fn faulty_mem_node_count(&self) -> usize {
        let mut idx: Vec<usize> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::MemNodeCrash { index, .. } => Some(*index),
                _ => None,
            })
            .collect();
        idx.sort_unstable();
        idx.dedup();
        idx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time::ZERO + Duration::from_micros(us)
    }

    #[test]
    fn empty_plan() {
        let p = FailurePlan::none();
        assert!(p.faults().is_empty());
        assert_eq!(p.faulty_replica_count(), 0);
        assert_eq!(p.byzantine_mode(0, t(100)), None);
    }

    #[test]
    fn byzantine_activation_time() {
        let p = FailurePlan::none().byzantine(1, ByzantineMode::EquivocateProposals, t(50));
        assert_eq!(p.byzantine_mode(1, t(49)), None);
        assert_eq!(p.byzantine_mode(1, t(50)), Some(ByzantineMode::EquivocateProposals));
        assert_eq!(p.byzantine_mode(0, t(50)), None);
    }

    #[test]
    fn latest_byzantine_mode_wins() {
        let p = FailurePlan::none().byzantine(0, ByzantineMode::Silent, t(10)).byzantine(
            0,
            ByzantineMode::CensorRequests,
            t(20),
        );
        assert_eq!(p.byzantine_mode(0, t(15)), Some(ByzantineMode::Silent));
        assert_eq!(p.byzantine_mode(0, t(25)), Some(ByzantineMode::CensorRequests));
    }

    #[test]
    fn crash_lookup() {
        let p = FailurePlan::none().crash_replica(2, t(5)).crash_mem_node(0, t(7));
        assert_eq!(p.replica_crash_time(2), Some(t(5)));
        assert_eq!(p.replica_crash_time(0), None);
        assert_eq!(p.mem_node_crash_time(0), Some(t(7)));
        assert_eq!(p.faulty_replica_count(), 1);
    }

    #[test]
    fn faulty_count_dedups() {
        let p = FailurePlan::none()
            .crash_replica(1, t(5))
            .byzantine(1, ByzantineMode::Silent, t(1))
            .byzantine(2, ByzantineMode::Laggard, t(1));
        assert_eq!(p.faulty_replica_count(), 2);
    }

    #[test]
    fn partitions_are_not_replica_faults() {
        let p = FailurePlan::none().partition(0, 2, t(10), t(50));
        assert_eq!(p.faulty_replica_count(), 0);
        let parts: Vec<_> = p.partitions().collect();
        assert_eq!(parts, vec![(0, 2, t(10), t(50))]);
    }

    #[test]
    fn replacement_schedules_crash_and_rejoin() {
        let p = FailurePlan::none().replace_replica(1, t(100), t(400));
        assert_eq!(p.replica_crash_time(1), Some(t(100)));
        assert_eq!(p.replacements().collect::<Vec<_>>(), vec![(1, t(100), t(400))]);
        assert_eq!(p.faulty_replica_count(), 1);
    }

    #[test]
    #[should_panic(expected = "boot after the crash")]
    fn replacement_must_follow_crash() {
        let _ = FailurePlan::none().replace_replica(0, t(10), t(10));
    }

    #[test]
    #[should_panic(expected = "already has a scheduled crash")]
    fn one_lifecycle_per_replica() {
        let _ = FailurePlan::none().crash_replica(2, t(5)).replace_replica(2, t(10), t(20));
    }

    #[test]
    fn replaced_then_healthy_is_not_double_counted() {
        // Replica 1 is faulty only during [100, 400); replica 2 crashes at
        // 900, well after the replacement healed. At no instant are two
        // replicas faulty, so the plan fits an f = 1 budget.
        let p = FailurePlan::none().replace_replica(1, t(100), t(400)).crash_replica(2, t(900));
        assert_eq!(p.faulty_replica_count(), 1);
        // The same schedule with an overlapping crash does count 2.
        let q = FailurePlan::none().replace_replica(1, t(100), t(400)).crash_replica(2, t(250));
        assert_eq!(q.faulty_replica_count(), 2);
        // A crash landing exactly at the rejoin instant is counted as
        // concurrent (conservative boundary reading).
        let r = FailurePlan::none().replace_replica(1, t(100), t(400)).crash_replica(2, t(400));
        assert_eq!(r.faulty_replica_count(), 2);
    }

    #[test]
    fn recovery_margin_extends_the_faulty_interval() {
        let p = FailurePlan::none().replace_replica(1, t(100), t(400)).crash_replica(2, t(600));
        assert_eq!(p.peak_concurrent_faulty(Duration::ZERO), 1);
        // With a 300 µs recovery margin the replacement still counts as
        // faulty at 600, overlapping the crash.
        assert_eq!(p.peak_concurrent_faulty(Duration::from_micros(300)), 2);
    }

    #[test]
    fn byzantine_and_replace_on_one_index_count_once() {
        // Pathological overlap on one index must never count it twice.
        let p = FailurePlan::none().replace_replica(0, t(100), t(200)).byzantine(
            0,
            ByzantineMode::Silent,
            t(150),
        );
        assert_eq!(p.faulty_replica_count(), 1);
    }

    #[test]
    fn mem_node_budget_is_separate() {
        let p = FailurePlan::none().crash_mem_node(0, t(5)).crash_mem_node(2, t(9));
        assert_eq!(p.faulty_replica_count(), 0);
        assert_eq!(p.faulty_mem_node_count(), 2);
        // Crashing the same node twice is one faulty node.
        let q = FailurePlan::none().crash_mem_node(1, t(5)).crash_mem_node(1, t(9));
        assert_eq!(q.faulty_mem_node_count(), 1);
    }

    #[test]
    fn asynchrony_phase() {
        let p = FailurePlan::none().with_asynchrony(t(1000), Duration::from_micros(100));
        assert_eq!(p.gst, t(1000));
        assert_eq!(p.pre_gst_extra, Duration::from_micros(100));
    }
}
