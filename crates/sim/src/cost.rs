//! CPU and crypto cost model (virtual time charged per operation).
//!
//! Calibrated from the paper: ed25519-dalek-class signatures (§7.3 shows
//! public-key crypto dominating the slow path), BLAKE3-class HMACs ("creating
//! or verifying 256-bit HMACs takes ≈100 ns", §9), xxHash-class checksums,
//! and SGX enclave accesses of 7–12.5 µs (§7.4).

use ubft_types::Duration;

use crate::rng::SimRng;

/// Per-operation virtual-time costs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Generating one public-key signature.
    pub sign: Duration,
    /// Verifying one public-key signature.
    pub verify: Duration,
    /// Dispatch/synchronization overhead of handing an operation to the
    /// crypto thread pool and collecting the result (§7.3 footnote 5).
    pub crypto_dispatch: Duration,
    /// Computing or verifying one HMAC.
    pub hmac: Duration,
    /// Checksum cost per 8-byte word.
    pub checksum_per_word: Duration,
    /// Fixed cost of an event-loop dispatch (poll pickup, branch, copy).
    pub dispatch: Duration,
    /// Cost of copying one KiB between buffers.
    pub copy_per_kib: Duration,
    /// Lower and upper bounds of one SGX enclave access (MinBFT USIG).
    pub enclave_min: Duration,
    /// Upper bound of one SGX enclave access.
    pub enclave_max: Duration,
}

impl CostModel {
    /// The calibrated paper model (DESIGN.md §4).
    pub fn paper_testbed() -> Self {
        CostModel {
            sign: Duration::from_micros(17),
            verify: Duration::from_micros(45),
            crypto_dispatch: Duration::from_nanos(500),
            hmac: Duration::from_nanos(100),
            checksum_per_word: Duration::from_nanos(2),
            dispatch: Duration::from_nanos(80),
            copy_per_kib: Duration::from_nanos(40),
            enclave_min: Duration::from_micros(7),
            enclave_max: Duration::from_nanos(12_500),
        }
    }

    /// A zero-cost model for logic-only tests.
    pub fn free() -> Self {
        CostModel {
            sign: Duration::ZERO,
            verify: Duration::ZERO,
            crypto_dispatch: Duration::ZERO,
            hmac: Duration::ZERO,
            checksum_per_word: Duration::ZERO,
            dispatch: Duration::ZERO,
            copy_per_kib: Duration::ZERO,
            enclave_min: Duration::ZERO,
            enclave_max: Duration::ZERO,
        }
    }

    /// Checksum cost for a payload of `bytes`.
    pub fn checksum(&self, bytes: usize) -> Duration {
        Duration::from_nanos(self.checksum_per_word.as_nanos() * (bytes as u64).div_ceil(8))
    }

    /// Buffer copy cost for `bytes`.
    pub fn copy(&self, bytes: usize) -> Duration {
        Duration::from_nanos((self.copy_per_kib.as_nanos() * bytes as u64) / 1024)
    }

    /// Samples one SGX enclave access (uniform in `[enclave_min, enclave_max]`).
    pub fn enclave_access(&self, rng: &mut SimRng) -> Duration {
        if self.enclave_max <= self.enclave_min {
            return self.enclave_min;
        }
        let span = self.enclave_max.as_nanos() - self.enclave_min.as_nanos();
        self.enclave_min + Duration::from_nanos(rng.gen_range(span + 1))
    }

    /// Total cost of a pool-dispatched signature.
    pub fn sign_total(&self) -> Duration {
        self.sign + self.crypto_dispatch
    }

    /// Total cost of a pool-dispatched verification.
    pub fn verify_total(&self) -> Duration {
        self.verify + self.crypto_dispatch
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_has_expected_magnitudes() {
        let c = CostModel::paper_testbed();
        assert_eq!(c.sign, Duration::from_micros(17));
        assert_eq!(c.verify, Duration::from_micros(45));
        assert!(c.enclave_min < c.enclave_max);
        assert_eq!(c.enclave_max, Duration::from_nanos(12_500));
    }

    #[test]
    fn checksum_rounds_up_words() {
        let c = CostModel::paper_testbed();
        assert_eq!(c.checksum(1), c.checksum(8));
        assert!(c.checksum(9) > c.checksum(8));
        assert_eq!(c.checksum(0), Duration::ZERO);
    }

    #[test]
    fn enclave_access_in_bounds() {
        let c = CostModel::paper_testbed();
        let mut r = SimRng::new(4);
        for _ in 0..1000 {
            let d = c.enclave_access(&mut r);
            assert!(d >= c.enclave_min && d <= c.enclave_max);
        }
    }

    #[test]
    fn free_model_costs_nothing() {
        let c = CostModel::free();
        let mut r = SimRng::new(4);
        assert_eq!(c.checksum(1 << 20), Duration::ZERO);
        assert_eq!(c.copy(1 << 20), Duration::ZERO);
        assert_eq!(c.enclave_access(&mut r), Duration::ZERO);
        assert_eq!(c.sign_total(), Duration::ZERO);
        assert_eq!(c.verify_total(), Duration::ZERO);
    }

    #[test]
    fn copy_scales_linearly() {
        let c = CostModel::paper_testbed();
        assert_eq!(c.copy(2048).as_nanos(), 2 * c.copy(1024).as_nanos());
    }
}
