//! The simulation event queue.
//!
//! A binary heap keyed by `(Time, sequence)`: events at the same virtual time
//! pop in insertion order, which makes the whole simulation deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ubft_types::Time;

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    pushed: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, pushed: 0 }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (diagnostics / runaway detection).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubft_types::Duration;

    fn at(us: u64) -> Time {
        Time::ZERO + Duration::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(at(3), 'c');
        q.push(at(1), 'a');
        q.push(at(2), 'b');
        assert_eq!(q.pop(), Some((at(1), 'a')));
        assert_eq!(q.pop(), Some((at(2), 'b')));
        assert_eq!(q.pop(), Some((at(3), 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(at(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((at(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_fifo() {
        let mut q = EventQueue::new();
        q.push(at(1), "first");
        assert_eq!(q.pop().unwrap().1, "first");
        q.push(at(1), "second");
        q.push(at(1), "third");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(at(9), ());
        q.push(at(4), ());
        assert_eq!(q.peek_time(), Some(at(4)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
    }
}
