//! Latency statistics: percentile extraction for the figure harnesses.

use ubft_types::Duration;

/// A collection of latency samples with percentile queries.
///
/// # Example
///
/// ```
/// use ubft_sim::stats::LatencyStats;
/// use ubft_types::Duration;
///
/// let mut s = LatencyStats::new();
/// for us in 1..=100 {
///     s.record(Duration::from_micros(us));
/// }
/// assert_eq!(s.percentile(50.0), Duration::from_micros(50));
/// assert_eq!(s.percentile(90.0), Duration::from_micros(90));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    samples: Vec<Duration>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        LatencyStats { samples: Vec::new(), sorted: true }
    }

    /// Records one sample.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d);
        self.sorted = false;
    }

    /// Appends every sample of `other` (in its recording order), consuming
    /// it. Used to merge per-shard distributions into an aggregate.
    pub fn absorb(&mut self, other: LatencyStats) {
        if self.samples.is_empty() {
            *self = other;
            return;
        }
        self.samples.extend(other.samples);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (nearest-rank method).
    ///
    /// # Panics
    ///
    /// Panics if no samples were recorded or `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Duration {
        assert!(!self.samples.is_empty(), "no samples");
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        self.ensure_sorted();
        if p == 0.0 {
            return self.samples[0];
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1)]
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Duration {
        self.percentile(50.0)
    }

    /// Arithmetic mean.
    ///
    /// # Panics
    ///
    /// Panics if no samples were recorded.
    pub fn mean(&self) -> Duration {
        assert!(!self.samples.is_empty(), "no samples");
        let total: u128 = self.samples.iter().map(|d| d.as_nanos() as u128).sum();
        Duration::from_nanos((total / self.samples.len() as u128) as u64)
    }

    /// Minimum sample.
    pub fn min(&mut self) -> Duration {
        self.percentile(0.0)
    }

    /// Maximum sample.
    pub fn max(&mut self) -> Duration {
        self.percentile(100.0)
    }

    /// All samples, sorted ascending (for CDF plots like Figure 11).
    pub fn sorted_samples(&mut self) -> &[Duration] {
        self.ensure_sorted();
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Duration {
        Duration::from_micros(v)
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = LatencyStats::new();
        for v in [15, 20, 35, 40, 50] {
            s.record(us(v));
        }
        assert_eq!(s.percentile(30.0), us(20));
        assert_eq!(s.percentile(40.0), us(20));
        assert_eq!(s.percentile(50.0), us(35));
        assert_eq!(s.percentile(100.0), us(50));
        assert_eq!(s.min(), us(15));
        assert_eq!(s.max(), us(50));
    }

    #[test]
    fn unsorted_input_handled() {
        let mut s = LatencyStats::new();
        for v in [9, 1, 5, 3, 7] {
            s.record(us(v));
        }
        assert_eq!(s.median(), us(5));
        assert_eq!(s.sorted_samples().first().copied(), Some(us(1)));
    }

    #[test]
    fn mean_is_exact() {
        let mut s = LatencyStats::new();
        s.record(us(10));
        s.record(us(20));
        assert_eq!(s.mean(), us(15));
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_percentile_panics() {
        LatencyStats::new().percentile(50.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_percentile_panics() {
        let mut s = LatencyStats::new();
        s.record(us(1));
        s.percentile(101.0);
    }

    #[test]
    fn record_after_query_resorts() {
        let mut s = LatencyStats::new();
        s.record(us(10));
        assert_eq!(s.median(), us(10));
        s.record(us(2));
        assert_eq!(s.min(), us(2));
    }
}
