//! Latency attribution traces for the Figure 9 breakdown.
//!
//! Components record *spans* tagged with a primitive category (P2P, Crypto,
//! SWMR, Other) and a component (RPC, CTB, SMR). The figure harness sums the
//! spans belonging to one request to recursively decompose its end-to-end
//! latency, exactly like the paper's Figure 9.

use std::collections::BTreeMap;

use ubft_types::{Duration, Time};

/// Primitive latency source (the fine-grained legend of Figure 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Point-to-point messaging over the circular-buffer primitive.
    P2p,
    /// Signature generation/verification including pool synchronization.
    Crypto,
    /// Disaggregated-memory register access.
    Swmr,
    /// Glue logic, buffer copies, event-loop delays.
    Other,
}

impl Category {
    /// All categories in display order.
    pub const ALL: [Category; 4] =
        [Category::P2p, Category::Crypto, Category::Swmr, Category::Other];

    /// Short label used in the harness output.
    pub fn label(self) -> &'static str {
        match self {
            Category::P2p => "P2P",
            Category::Crypto => "Crypto",
            Category::Swmr => "SWMR",
            Category::Other => "Other",
        }
    }
}

/// Protocol component (the coarse columns of Figure 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// Client/replica remote procedure call layer.
    Rpc,
    /// Consistent Tail Broadcast.
    Ctb,
    /// The replication engine above CTBcast.
    Smr,
}

impl Component {
    /// All components in display order.
    pub const ALL: [Component; 3] = [Component::Rpc, Component::Ctb, Component::Smr];

    /// Short label used in the harness output.
    pub fn label(self) -> &'static str {
        match self {
            Component::Rpc => "RPC",
            Component::Ctb => "CTB",
            Component::Smr => "SMR",
        }
    }
}

/// One attributed interval of virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// The request this span contributes to (the harness's correlation key).
    pub request: u64,
    /// Which component incurred the time.
    pub component: Component,
    /// Which primitive the time was spent in.
    pub category: Category,
    /// Span start.
    pub start: Time,
    /// Span end.
    pub end: Time,
}

impl Span {
    /// Span length.
    pub fn duration(&self) -> Duration {
        self.end.since(self.start)
    }
}

/// A recorder of attributed spans. Disabled by default (recording is a no-op
/// until [`Tracer::enable`]) so the hot path costs nothing when figures do
/// not need it.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    enabled: bool,
    spans: Vec<Span>,
}

impl Tracer {
    /// Creates a disabled tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a span if enabled.
    pub fn record(
        &mut self,
        request: u64,
        component: Component,
        category: Category,
        start: Time,
        end: Time,
    ) {
        if self.enabled && end > start {
            self.spans.push(Span { request, component, category, start, end });
        }
    }

    /// All recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Sums span time per `(component, category)` for one request.
    pub fn breakdown(&self, request: u64) -> BTreeMap<(Component, Category), Duration> {
        let mut out = BTreeMap::new();
        for s in self.spans.iter().filter(|s| s.request == request) {
            let e = out.entry((s.component, s.category)).or_insert(Duration::ZERO);
            *e += s.duration();
        }
        out
    }

    /// Sums span time per `(component, category)` across all requests,
    /// averaged over `n_requests`.
    pub fn mean_breakdown(&self, n_requests: u64) -> BTreeMap<(Component, Category), Duration> {
        let mut out = BTreeMap::new();
        for s in &self.spans {
            let e = out.entry((s.component, s.category)).or_insert(Duration::ZERO);
            *e += s.duration();
        }
        if n_requests > 1 {
            for v in out.values_mut() {
                *v = *v / n_requests;
            }
        }
        out
    }

    /// Drops all recorded spans.
    pub fn clear(&mut self) {
        self.spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::new();
        tr.record(1, Component::Rpc, Category::P2p, t(0), t(10));
        assert!(tr.spans().is_empty());
    }

    #[test]
    fn enabled_tracer_accumulates() {
        let mut tr = Tracer::new();
        tr.enable();
        tr.record(1, Component::Ctb, Category::P2p, t(0), t(10));
        tr.record(1, Component::Ctb, Category::P2p, t(20), t(25));
        tr.record(1, Component::Ctb, Category::Crypto, t(10), t(20));
        tr.record(2, Component::Smr, Category::Other, t(0), t(1));
        let b = tr.breakdown(1);
        assert_eq!(b[&(Component::Ctb, Category::P2p)], Duration::from_nanos(15));
        assert_eq!(b[&(Component::Ctb, Category::Crypto)], Duration::from_nanos(10));
        assert!(!b.contains_key(&(Component::Smr, Category::Other)));
    }

    #[test]
    fn zero_length_spans_ignored() {
        let mut tr = Tracer::new();
        tr.enable();
        tr.record(1, Component::Rpc, Category::Other, t(5), t(5));
        assert!(tr.spans().is_empty());
    }

    #[test]
    fn mean_breakdown_divides() {
        let mut tr = Tracer::new();
        tr.enable();
        tr.record(1, Component::Rpc, Category::P2p, t(0), t(10));
        tr.record(2, Component::Rpc, Category::P2p, t(0), t(30));
        let b = tr.mean_breakdown(2);
        assert_eq!(b[&(Component::Rpc, Category::P2p)], Duration::from_nanos(20));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Category::P2p.label(), "P2P");
        assert_eq!(Component::Smr.label(), "SMR");
        assert_eq!(Category::ALL.len(), 4);
        assert_eq!(Component::ALL.len(), 3);
    }

    #[test]
    fn clear_resets() {
        let mut tr = Tracer::new();
        tr.enable();
        tr.record(1, Component::Rpc, Category::P2p, t(0), t(10));
        tr.clear();
        assert!(tr.spans().is_empty());
        assert!(tr.is_enabled());
    }
}
