//! Network latency modelling between simulated hosts.
//!
//! Calibrated to the paper's testbed (Table 1: ConnectX-6 NICs, one EDR
//! 100 Gbps switch): a one-way message or one-sided RDMA op costs
//! `base + size/bandwidth + jitter`. Eventual synchrony (§2.4) is modelled
//! with an *asynchronous phase*: before the Global Stabilization Time every
//! hop may suffer a large random extra delay; after GST all delays respect
//! the bound `δ`.

use ubft_types::{Duration, Time};

use crate::rng::SimRng;

/// Identifier of a physical host in the fabric (replica, client, or memory
/// node — the runtime assigns the mapping).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl core::fmt::Display for HostId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Per-hop latency model: `base + bytes * per_byte + U(0, jitter)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed per-hop cost (NIC + switch + propagation).
    pub base: Duration,
    /// Serialization cost in picoseconds per byte (100 Gbps = 80 ps/byte).
    pub picos_per_byte: u64,
    /// Upper bound of the uniform jitter term.
    pub jitter: Duration,
}

impl LatencyModel {
    /// The calibrated testbed model: 850 ns base + 100 Gbps wire + 200 ns
    /// jitter (DESIGN.md §4).
    pub fn paper_testbed() -> Self {
        LatencyModel {
            base: Duration::from_nanos(850),
            picos_per_byte: 80,
            jitter: Duration::from_nanos(200),
        }
    }

    /// A zero-latency model for logic-only unit tests.
    pub fn instant() -> Self {
        LatencyModel { base: Duration::ZERO, picos_per_byte: 0, jitter: Duration::ZERO }
    }

    /// Samples the one-way delay for a payload of `bytes`.
    pub fn sample(&self, rng: &mut SimRng, bytes: usize) -> Duration {
        let wire = Duration::from_nanos((bytes as u64 * self.picos_per_byte) / 1000);
        self.base + wire + rng.jitter(self.jitter)
    }

    /// The deterministic worst-case delay for `bytes` (used for `δ` checks).
    pub fn worst_case(&self, bytes: usize) -> Duration {
        let wire = Duration::from_nanos((bytes as u64 * self.picos_per_byte) / 1000);
        self.base + wire + self.jitter
    }
}

/// Cluster-wide network model: per-hop latency, GST, partitions, and host
/// crashes.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    latency: LatencyModel,
    /// Global stabilization time; before it, hops suffer `async_extra`.
    gst: Time,
    /// Maximum extra delay injected per hop before GST.
    async_extra: Duration,
    /// Severed host pairs: messages between them are dropped entirely while
    /// the partition interval is active.
    partitions: Vec<Partition>,
    /// Crash times per host (index = HostId.0). `Time::MAX` = never.
    crash_at: Vec<Time>,
}

#[derive(Clone, Debug)]
struct Partition {
    a: HostId,
    b: HostId,
    from: Time,
    until: Time,
}

/// The outcome of attempting a network hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopOutcome {
    /// Delivered after the contained one-way delay.
    Delivered(Duration),
    /// Dropped (partition or crashed endpoint).
    Dropped,
}

impl NetworkModel {
    /// A fully synchronous network (GST = 0) with the given latency model
    /// and `n_hosts` hosts, none of which ever crash.
    pub fn synchronous(latency: LatencyModel, n_hosts: usize) -> Self {
        NetworkModel {
            latency,
            gst: Time::ZERO,
            async_extra: Duration::ZERO,
            partitions: Vec::new(),
            crash_at: vec![Time::MAX; n_hosts],
        }
    }

    /// Sets the Global Stabilization Time and the pre-GST extra delay bound.
    #[must_use]
    pub fn with_gst(mut self, gst: Time, async_extra: Duration) -> Self {
        self.gst = gst;
        self.async_extra = async_extra;
        self
    }

    /// Schedules a bidirectional partition between `a` and `b` during
    /// `[from, until)`.
    pub fn add_partition(&mut self, a: HostId, b: HostId, from: Time, until: Time) {
        self.partitions.push(Partition { a, b, from, until });
    }

    /// Schedules a crash of `host` at `t`.
    pub fn crash_host(&mut self, host: HostId, t: Time) {
        self.crash_at[host.0 as usize] = t;
    }

    /// Whether `host` has crashed by time `t`.
    pub fn is_crashed(&self, host: HostId, t: Time) -> bool {
        self.crash_at.get(host.0 as usize).is_some_and(|&c| t >= c)
    }

    /// The latency model in force.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Samples the outcome of sending `bytes` from `src` to `dst` at `now`.
    pub fn hop(
        &self,
        rng: &mut SimRng,
        src: HostId,
        dst: HostId,
        bytes: usize,
        now: Time,
    ) -> HopOutcome {
        if self.is_crashed(src, now) || self.is_crashed(dst, now) {
            return HopOutcome::Dropped;
        }
        for p in &self.partitions {
            let cut = (p.a == src && p.b == dst) || (p.a == dst && p.b == src);
            if cut && now >= p.from && now < p.until {
                return HopOutcome::Dropped;
            }
        }
        let mut d = self.latency.sample(rng, bytes);
        if now < self.gst && self.async_extra > Duration::ZERO {
            d += rng.jitter(self.async_extra);
        }
        HopOutcome::Delivered(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(77)
    }

    #[test]
    fn latency_scales_with_size() {
        let m = LatencyModel::paper_testbed();
        let mut r = rng();
        let small = m.sample(&mut r, 32);
        let big = m.sample(&mut r, 64 * 1024);
        assert!(big > small);
        // 64 KiB at 80 ps/B ≈ 5.2 µs of wire time.
        assert!(big.as_nanos() > 5_000);
    }

    #[test]
    fn worst_case_dominates_samples() {
        let m = LatencyModel::paper_testbed();
        let mut r = rng();
        for _ in 0..1000 {
            assert!(m.sample(&mut r, 256) <= m.worst_case(256));
        }
    }

    #[test]
    fn instant_model_is_zero() {
        let m = LatencyModel::instant();
        assert_eq!(m.sample(&mut rng(), 1 << 20), Duration::ZERO);
    }

    #[test]
    fn partition_drops_both_directions() {
        let mut net = NetworkModel::synchronous(LatencyModel::instant(), 3);
        let t0 = Time::ZERO;
        let t5 = Time::from_nanos(5_000);
        net.add_partition(HostId(0), HostId(1), t0, t5);
        let mut r = rng();
        assert_eq!(net.hop(&mut r, HostId(0), HostId(1), 8, t0), HopOutcome::Dropped);
        assert_eq!(net.hop(&mut r, HostId(1), HostId(0), 8, t0), HopOutcome::Dropped);
        // Unrelated pair unaffected.
        assert!(matches!(net.hop(&mut r, HostId(0), HostId(2), 8, t0), HopOutcome::Delivered(_)));
        // Partition heals.
        assert!(matches!(net.hop(&mut r, HostId(0), HostId(1), 8, t5), HopOutcome::Delivered(_)));
    }

    #[test]
    fn crashed_hosts_drop_traffic() {
        let mut net = NetworkModel::synchronous(LatencyModel::instant(), 2);
        net.crash_host(HostId(1), Time::from_nanos(100));
        let mut r = rng();
        assert!(matches!(
            net.hop(&mut r, HostId(0), HostId(1), 8, Time::from_nanos(99)),
            HopOutcome::Delivered(_)
        ));
        assert_eq!(
            net.hop(&mut r, HostId(0), HostId(1), 8, Time::from_nanos(100)),
            HopOutcome::Dropped
        );
        assert!(net.is_crashed(HostId(1), Time::from_nanos(100)));
        assert!(!net.is_crashed(HostId(0), Time::from_nanos(100)));
    }

    #[test]
    fn pre_gst_adds_delay() {
        let lat = LatencyModel::instant();
        let net = NetworkModel::synchronous(lat, 2)
            .with_gst(Time::from_nanos(1_000_000), Duration::from_micros(500));
        let mut r = rng();
        let mut saw_extra = false;
        for _ in 0..100 {
            if let HopOutcome::Delivered(d) = net.hop(&mut r, HostId(0), HostId(1), 8, Time::ZERO) {
                if d > Duration::from_micros(1) {
                    saw_extra = true;
                }
            }
        }
        assert!(saw_extra, "pre-GST hops should sometimes be slow");
        // Post-GST: instant again.
        if let HopOutcome::Delivered(d) =
            net.hop(&mut r, HostId(0), HostId(1), 8, Time::from_nanos(1_000_000))
        {
            assert_eq!(d, Duration::ZERO);
        }
    }
}
