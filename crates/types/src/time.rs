//! Virtual time for the discrete-event simulation.
//!
//! The entire reproduction runs on a simulated clock with nanosecond
//! resolution, which is what lets the benchmark harness report the paper's
//! microsecond-scale latencies deterministically.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::wire::{Wire, WireReader};
use crate::CodecError;

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Duration(u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);
    /// A time later than any event the simulator will ever schedule.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; that always indicates a
    /// simulator bug, never a recoverable condition.
    #[must_use]
    pub fn since(self, earlier: Time) -> Duration {
        assert!(earlier.0 <= self.0, "time went backwards: {earlier} > {self}");
        Duration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier`; zero if `earlier` is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Length in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in microseconds, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, k: u64) -> Duration {
        Duration(self.0 / k)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, d: Duration) -> Time {
        Time(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, other: Time) -> Duration {
        self.since(other)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, d: Duration) -> Duration {
        Duration(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, d: Duration) -> Duration {
        Duration(self.0.saturating_sub(d.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Wire for Time {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Time(u64::decode(r)?))
    }
}

impl Wire for Duration {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Duration(u64::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time::ZERO + Duration::from_micros(3);
        assert_eq!(t.as_nanos(), 3_000);
        let t2 = t + Duration::from_nanos(500);
        assert_eq!((t2 - t).as_nanos(), 500);
        assert_eq!(t2.since(t).as_nanos(), 500);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_backwards() {
        let _ = Time::ZERO.since(Time::from_nanos(1));
    }

    #[test]
    fn saturating_since() {
        assert_eq!(Time::ZERO.saturating_since(Time::from_nanos(5)), Duration::ZERO);
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Duration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Duration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Duration::from_micros(10).mul(3).as_nanos(), 30_000);
        assert_eq!(Duration::from_micros(10).div(2).as_nanos(), 5_000);
    }

    #[test]
    fn display_micros() {
        assert_eq!(Duration::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(Time::from_nanos(2_000).to_string(), "2.000us");
    }

    #[test]
    fn duration_sub_saturates() {
        assert_eq!(Duration::from_nanos(5) - Duration::from_nanos(10), Duration::ZERO);
    }
}
