//! A small, deterministic, hand-rolled binary codec.
//!
//! The RDMA transport checksums raw bytes and the signature layer signs them,
//! so the encoding must be byte-stable across runs and platforms. We use
//! fixed-width little-endian integers and length-prefixed containers; there is
//! deliberately no self-description or versioning, matching the fixed-format
//! buffers a real RDMA prototype would use.

use crate::CodecError;

/// Types that can be encoded to and decoded from the deterministic wire
/// format.
///
/// # Example
///
/// ```
/// use ubft_types::wire::{Wire, WireReader};
///
/// let mut buf = Vec::new();
/// 42u64.encode(&mut buf);
/// let mut r = WireReader::new(&buf);
/// assert_eq!(u64::decode(&mut r).unwrap(), 42);
/// ```
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the reader.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the input is truncated or contains an
    /// invalid tag; Byzantine peers can send arbitrary bytes, so decoding is
    /// total and never panics.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError>;

    /// Convenience: encodes `self` into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Convenience: decodes a value from `bytes`, requiring full consumption.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::TrailingBytes`] if input remains after decoding,
    /// or any error from [`Wire::decode`].
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(CodecError::TrailingBytes { remaining: r.remaining() });
        }
        Ok(v)
    }
}

/// A bounds-checked cursor over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { needed: n, available: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
                let n = core::mem::size_of::<$t>();
                let bytes = r.take(n)?;
                let mut arr = [0u8; core::mem::size_of::<$t>()];
                arr.copy_from_slice(bytes);
                Ok(<$t>::from_le_bytes(arr))
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i64);

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u8).encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { ty: "bool", tag }),
        }
    }
}

impl Wire for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let len = u32::decode(r)? as usize;
        Ok(r.take(len)?.to_vec())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => 0u8.encode(buf),
            Some(v) => {
                1u8.encode(buf);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::BadTag { ty: "Option", tag }),
        }
    }
}

/// Maximum element count accepted when decoding a container, as a defence
/// against Byzantine length fields causing huge allocations.
pub const MAX_WIRE_ELEMS: usize = 1 << 20;

/// A length-prefixed sequence of wire values.
///
/// `Vec<u8>` already has a compact byte-string encoding, so generic sequences
/// are encoded via this helper instead of a blanket `Vec<T>` impl (Rust's
/// coherence rules forbid both).
pub fn encode_seq<T: Wire>(items: &[T], buf: &mut Vec<u8>) {
    (items.len() as u32).encode(buf);
    for it in items {
        it.encode(buf);
    }
}

/// Decodes a sequence written by [`encode_seq`].
///
/// # Errors
///
/// Returns a [`CodecError`] on truncation, bad tags, or an element count
/// exceeding [`MAX_WIRE_ELEMS`].
pub fn decode_seq<T: Wire>(r: &mut WireReader<'_>) -> Result<Vec<T>, CodecError> {
    let len = u32::decode(r)? as usize;
    if len > MAX_WIRE_ELEMS {
        return Err(CodecError::LengthOverflow { len });
    }
    let mut out = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

/// Test helper: asserts that a value encodes and decodes to itself.
///
/// # Panics
///
/// Panics if the roundtrip fails or is lossy.
pub fn roundtrip<T: Wire + PartialEq + core::fmt::Debug>(v: &T) {
    let bytes = v.to_bytes();
    let back = T::from_bytes(&bytes).expect("decode");
    assert_eq!(&back, v, "wire roundtrip lossy");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrips() {
        roundtrip(&0u8);
        roundtrip(&255u8);
        roundtrip(&0xABCDu16);
        roundtrip(&0xDEAD_BEEFu32);
        roundtrip(&u64::MAX);
        roundtrip(&(-42i64));
    }

    #[test]
    fn bool_roundtrip_and_bad_tag() {
        roundtrip(&true);
        roundtrip(&false);
        assert!(matches!(bool::from_bytes(&[7]), Err(CodecError::BadTag { ty: "bool", tag: 7 })));
    }

    #[test]
    fn bytes_roundtrip() {
        roundtrip(&Vec::<u8>::new());
        roundtrip(&vec![1u8, 2, 3, 4, 5]);
    }

    #[test]
    fn option_roundtrip() {
        roundtrip(&Some(9u64));
        roundtrip(&Option::<u64>::None);
    }

    #[test]
    fn seq_roundtrip() {
        let items = vec![1u64, 2, 3];
        let mut buf = Vec::new();
        encode_seq(&items, &mut buf);
        let mut r = WireReader::new(&buf);
        let back: Vec<u64> = decode_seq(&mut r).unwrap();
        assert_eq!(back, items);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_input_errors() {
        let mut r = WireReader::new(&[1, 2]);
        assert!(matches!(u64::decode(&mut r), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = 5u8.to_bytes();
        buf.push(0);
        assert!(matches!(u8::from_bytes(&buf), Err(CodecError::TrailingBytes { remaining: 1 })));
    }

    #[test]
    fn hostile_length_rejected() {
        // A length field of u32::MAX must not allocate.
        let buf = (u32::MAX).to_bytes();
        let mut r = WireReader::new(&buf);
        assert!(decode_seq::<u64>(&mut r).is_err());
    }
}
