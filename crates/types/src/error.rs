//! Error types shared across the workspace.

use core::fmt;

/// Errors produced while decoding wire-format bytes.
///
/// Byzantine peers may send arbitrary bytes, so every decoder is total and
/// surfaces malformed input through this type instead of panicking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a complete value could be read.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were actually available.
        available: usize,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The type being decoded.
        ty: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// Input remained after a full value was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A container length field exceeded the hostile-input bound.
    LengthOverflow {
        /// The claimed length.
        len: usize,
    },
    /// The bytes decoded structurally but the value violates a type
    /// invariant (e.g. an empty request batch).
    Invalid {
        /// The type being decoded.
        ty: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, had {available}")
            }
            CodecError::BadTag { ty, tag } => write!(f, "invalid tag {tag} for {ty}"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            CodecError::LengthOverflow { len } => {
                write!(f, "container length {len} exceeds hostile-input bound")
            }
            CodecError::Invalid { ty } => write!(f, "decoded value violates {ty} invariant"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Errors surfaced by protocol state machines to their host runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// A peer sent a message that fails the protocol's validity checks; the
    /// peer is considered Byzantine and the message is discarded.
    ByzantineMessage {
        /// Human-readable reason used in logs and tests.
        reason: String,
    },
    /// An operation referenced local state that has been garbage collected
    /// (e.g. a slot below the last checkpoint).
    OutOfWindow {
        /// Description of the stale reference.
        what: String,
    },
    /// Wire decoding failed.
    Codec(CodecError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::ByzantineMessage { reason } => {
                write!(f, "byzantine message: {reason}")
            }
            ProtocolError::OutOfWindow { what } => write!(f, "out of window: {what}"),
            ProtocolError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ProtocolError {
    fn from(e: CodecError) -> Self {
        ProtocolError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(CodecError::Truncated { needed: 8, available: 2 }),
            Box::new(CodecError::BadTag { ty: "bool", tag: 9 }),
            Box::new(CodecError::TrailingBytes { remaining: 3 }),
            Box::new(CodecError::LengthOverflow { len: 1 << 30 }),
            Box::new(ProtocolError::ByzantineMessage { reason: "equivocation".into() }),
            Box::new(ProtocolError::OutOfWindow { what: "slot 3".into() }),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            let first = s.chars().next().unwrap();
            assert!(!first.is_uppercase(), "error message should not start uppercase: {s}");
        }
    }

    #[test]
    fn codec_error_converts() {
        let p: ProtocolError = CodecError::TrailingBytes { remaining: 1 }.into();
        assert!(matches!(p, ProtocolError::Codec(_)));
        assert!(std::error::Error::source(&p).is_some());
    }
}
