//! Strongly-typed identifiers for processes, consensus slots, views, and
//! broadcast sequence numbers.
//!
//! All identifiers are newtypes ([C-NEWTYPE]) so that a [`Slot`] can never be
//! confused with a [`View`] or a CTBcast [`SeqId`] at compile time.

use core::fmt;

use crate::wire::{Wire, WireReader};
use crate::CodecError;

/// Identifier of a compute replica (one of the `2f + 1` consensus members).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub u32);

/// Identifier of an external client issuing requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

/// Identifier of a passive disaggregated-memory node (one of `2f_m + 1`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemNodeId(pub u32);

/// Any process that can send or receive messages: a replica or a client.
///
/// Memory nodes are deliberately *not* part of this enum: they are passive
/// RDMA targets and never originate protocol messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProcessId {
    /// A consensus replica.
    Replica(ReplicaId),
    /// An external client.
    Client(ClientId),
}

impl ProcessId {
    /// Returns the replica id if this process is a replica.
    pub fn as_replica(self) -> Option<ReplicaId> {
        match self {
            ProcessId::Replica(r) => Some(r),
            ProcessId::Client(_) => None,
        }
    }

    /// Returns the client id if this process is a client.
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            ProcessId::Client(c) => Some(c),
            ProcessId::Replica(_) => None,
        }
    }
}

impl From<ReplicaId> for ProcessId {
    fn from(r: ReplicaId) -> Self {
        ProcessId::Replica(r)
    }
}

impl From<ClientId> for ProcessId {
    fn from(c: ClientId) -> Self {
        ProcessId::Client(c)
    }
}

/// A consensus slot (log position). Slots are decided independently and
/// applied to the application in slot order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Slot(pub u64);

impl Slot {
    /// The next slot in the log.
    #[must_use]
    pub fn next(self) -> Slot {
        Slot(self.0 + 1)
    }
}

/// A view number. Each view has a designated leader chosen round-robin.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct View(pub u64);

impl View {
    /// The view that follows this one.
    #[must_use]
    pub fn next(self) -> View {
        View(self.0 + 1)
    }

    /// The round-robin leader of this view among `n` replicas.
    #[must_use]
    pub fn leader(self, n: usize) -> ReplicaId {
        ReplicaId((self.0 % n as u64) as u32)
    }
}

/// A CTBcast/TBcast sequence identifier `k`. A correct broadcaster increments
/// it sequentially starting at 1 (0 means "nothing broadcast yet").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqId(pub u64);

impl SeqId {
    /// The identifier of the next broadcast.
    #[must_use]
    pub fn next(self) -> SeqId {
        SeqId(self.0 + 1)
    }

    /// The index of this identifier in a tail ring of size `t` (`k % t`).
    #[must_use]
    pub fn ring_index(self, t: usize) -> usize {
        (self.0 % t as u64) as usize
    }
}

/// Globally unique request identifier: the issuing client plus the client's
/// own sequence number.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId {
    /// The issuing client.
    pub client: ClientId,
    /// The client-local sequence number of the request.
    pub seq: u64,
}

impl RequestId {
    /// Creates a request id for `client`'s `seq`-th request.
    pub fn new(client: ClientId, seq: u64) -> Self {
        RequestId { client, seq }
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for MemNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessId::Replica(r) => write!(f, "{r}"),
            ProcessId::Client(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for SeqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.client, self.seq)
    }
}

macro_rules! impl_wire_newtype_u32 {
    ($t:ty) => {
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                self.0.encode(buf);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
                Ok(Self(u32::decode(r)?))
            }
        }
    };
}

macro_rules! impl_wire_newtype_u64 {
    ($t:ty) => {
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                self.0.encode(buf);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
                Ok(Self(u64::decode(r)?))
            }
        }
    };
}

impl_wire_newtype_u32!(ReplicaId);
impl_wire_newtype_u32!(ClientId);
impl_wire_newtype_u32!(MemNodeId);
impl_wire_newtype_u64!(Slot);
impl_wire_newtype_u64!(View);
impl_wire_newtype_u64!(SeqId);

impl Wire for ProcessId {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ProcessId::Replica(r) => {
                0u8.encode(buf);
                r.encode(buf);
            }
            ProcessId::Client(c) => {
                1u8.encode(buf);
                c.encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(ProcessId::Replica(ReplicaId::decode(r)?)),
            1 => Ok(ProcessId::Client(ClientId::decode(r)?)),
            tag => Err(CodecError::BadTag { ty: "ProcessId", tag }),
        }
    }
}

impl Wire for RequestId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.client.encode(buf);
        self.seq.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(RequestId { client: ClientId::decode(r)?, seq: u64::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn view_leader_round_robin() {
        assert_eq!(View(0).leader(3), ReplicaId(0));
        assert_eq!(View(1).leader(3), ReplicaId(1));
        assert_eq!(View(2).leader(3), ReplicaId(2));
        assert_eq!(View(3).leader(3), ReplicaId(0));
        assert_eq!(View(7).leader(3), ReplicaId(1));
    }

    #[test]
    fn seq_ring_index_wraps() {
        assert_eq!(SeqId(0).ring_index(16), 0);
        assert_eq!(SeqId(15).ring_index(16), 15);
        assert_eq!(SeqId(16).ring_index(16), 0);
        assert_eq!(SeqId(129).ring_index(128), 1);
    }

    #[test]
    fn slot_and_view_next() {
        assert_eq!(Slot(4).next(), Slot(5));
        assert_eq!(View(4).next(), View(5));
        assert_eq!(SeqId(4).next(), SeqId(5));
    }

    #[test]
    fn process_id_conversions() {
        let p: ProcessId = ReplicaId(3).into();
        assert_eq!(p.as_replica(), Some(ReplicaId(3)));
        assert_eq!(p.as_client(), None);
        let q: ProcessId = ClientId(9).into();
        assert_eq!(q.as_client(), Some(ClientId(9)));
        assert_eq!(q.as_replica(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ReplicaId(1).to_string(), "r1");
        assert_eq!(ClientId(2).to_string(), "c2");
        assert_eq!(MemNodeId(0).to_string(), "m0");
        assert_eq!(Slot(5).to_string(), "s5");
        assert_eq!(View(6).to_string(), "v6");
        assert_eq!(SeqId(7).to_string(), "k7");
        assert_eq!(RequestId::new(ClientId(2), 10).to_string(), "c2#10");
    }

    #[test]
    fn wire_roundtrips() {
        roundtrip(&ReplicaId(7));
        roundtrip(&ClientId(1));
        roundtrip(&MemNodeId(2));
        roundtrip(&Slot(u64::MAX));
        roundtrip(&View(12));
        roundtrip(&SeqId(999));
        roundtrip(&ProcessId::Replica(ReplicaId(1)));
        roundtrip(&ProcessId::Client(ClientId(44)));
        roundtrip(&RequestId::new(ClientId(3), 77));
    }
}
