//! Common identifier, virtual-time, configuration, and wire-encoding types
//! shared by every subsystem of the uBFT reproduction.
//!
//! This crate is dependency-free and purely deterministic: every type here can
//! be encoded to bytes with [`wire::Wire`] and decoded back bit-for-bit, which
//! is what the checksummed RDMA transport and the signature layer rely on.
//!
//! # Example
//!
//! ```
//! use ubft_types::{ReplicaId, Time, Duration};
//!
//! let r = ReplicaId(2);
//! assert_eq!(r.to_string(), "r2");
//! let t = Time::ZERO + Duration::from_micros(10);
//! assert_eq!(t.as_nanos(), 10_000);
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod error;
pub mod ids;
pub mod time;
pub mod wire;

pub use config::ClusterParams;
pub use error::{CodecError, ProtocolError};
pub use ids::{ClientId, MemNodeId, ProcessId, ReplicaId, RequestId, SeqId, Slot, View};
pub use time::{Duration, Time};
pub use wire::{Wire, WireReader};
