//! Cluster-level parameters shared by every protocol layer.

use crate::ids::{MemNodeId, ReplicaId};
use crate::time::Duration;

/// Static configuration of a uBFT deployment (the paper's model, §2.4).
///
/// A deployment has `2f + 1` compute replicas of which up to `f` may be
/// Byzantine, and `2f_m + 1` passive memory nodes of which up to `f_m` may
/// crash. `tail` is CTBcast's `t` parameter and `window` is the consensus
/// sliding window (the paper uses `t = 128`, `window = 256`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterParams {
    /// Maximum number of Byzantine compute replicas tolerated.
    pub f: usize,
    /// Maximum number of crashed memory nodes tolerated.
    pub f_m: usize,
    /// CTBcast tail parameter `t`: only the last `t` broadcasts are
    /// guaranteed to be delivered.
    pub tail: usize,
    /// Consensus sliding-window size (open slots beyond the last checkpoint).
    pub window: usize,
    /// Known post-GST communication bound `δ`, used by the SWMR register
    /// write cooldown and read-retry logic.
    pub delta: Duration,
    /// Largest request payload the transport must accommodate, in bytes.
    /// Circular-buffer slots are sized from this.
    pub max_request_bytes: usize,
}

impl ClusterParams {
    /// The paper's default configuration: `f = 1` (3 replicas), `f_m = 1`
    /// (3 memory nodes), `t = 128`, window 256, `δ = 10 µs`, 2 KiB requests.
    pub fn paper_default() -> Self {
        ClusterParams {
            f: 1,
            f_m: 1,
            tail: 128,
            window: 256,
            delta: Duration::from_micros(10),
            max_request_bytes: 2048,
        }
    }

    /// Number of compute replicas (`2f + 1`).
    pub fn n(&self) -> usize {
        2 * self.f + 1
    }

    /// Number of memory nodes (`2f_m + 1`).
    pub fn n_mem(&self) -> usize {
        2 * self.f_m + 1
    }

    /// Size of a replica quorum (`f + 1`): enough to include one correct
    /// replica and to survive a view change.
    pub fn quorum(&self) -> usize {
        self.f + 1
    }

    /// Size of a memory-node quorum (`f_m + 1`, a majority).
    pub fn mem_quorum(&self) -> usize {
        self.f_m + 1
    }

    /// Iterator over all replica ids.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> {
        (0..self.n() as u32).map(ReplicaId)
    }

    /// Iterator over all memory-node ids.
    pub fn mem_nodes(&self) -> impl Iterator<Item = MemNodeId> {
        (0..self.n_mem() as u32).map(MemNodeId)
    }

    /// Returns a copy with a different CTBcast tail (builder-style helper for
    /// the Figure 11 / Table 2 sweeps).
    #[must_use]
    pub fn with_tail(mut self, tail: usize) -> Self {
        assert!(tail >= 2, "tail must be at least 2 (double buffering)");
        self.tail = tail;
        self
    }

    /// Returns a copy with a different consensus window (smaller windows
    /// checkpoint more often, which is what bounds how far a replacement
    /// node must catch up by replay).
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 1, "window must hold at least one open slot");
        self.window = window;
        self
    }

    /// Returns a copy with a different maximum request size.
    #[must_use]
    pub fn with_max_request_bytes(mut self, bytes: usize) -> Self {
        self.max_request_bytes = bytes;
        self
    }

    /// Returns a copy tolerating `f` Byzantine replicas.
    #[must_use]
    pub fn with_f(mut self, f: usize) -> Self {
        self.f = f;
        self
    }

    /// Returns a copy tolerating `f_m` crashed memory nodes (the register
    /// replication-factor ablation: `f_m = 0` means a single, unreplicated
    /// memory node).
    #[must_use]
    pub fn with_f_m(mut self, f_m: usize) -> Self {
        self.f_m = f_m;
        self
    }
}

impl Default for ClusterParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = ClusterParams::paper_default();
        assert_eq!(p.n(), 3);
        assert_eq!(p.n_mem(), 3);
        assert_eq!(p.quorum(), 2);
        assert_eq!(p.mem_quorum(), 2);
        assert_eq!(p.tail, 128);
        assert_eq!(p.window, 256);
    }

    #[test]
    fn replica_iteration() {
        let p = ClusterParams::paper_default().with_f(2);
        let rs: Vec<_> = p.replicas().collect();
        assert_eq!(rs.len(), 5);
        assert_eq!(rs[0], ReplicaId(0));
        assert_eq!(rs[4], ReplicaId(4));
        assert_eq!(p.mem_nodes().count(), 3);
    }

    #[test]
    fn builders() {
        let p = ClusterParams::paper_default().with_tail(16).with_max_request_bytes(64);
        assert_eq!(p.tail, 16);
        assert_eq!(p.max_request_bytes, 64);
    }

    #[test]
    #[should_panic(expected = "tail must be at least 2")]
    fn tiny_tail_rejected() {
        let _ = ClusterParams::paper_default().with_tail(1);
    }
}
