//! Property-based tests of the SWMR regular register: regularity must hold
//! under arbitrary write histories and read times.

use proptest::prelude::*;
use ubft_dmem::register::{ReadOutcome, RegisterBank, RegisterId};
use ubft_rdma::Fabric;
use ubft_sim::net::{LatencyModel, NetworkModel};
use ubft_sim::{HostId, SimRng};
use ubft_types::{Duration, Time};

fn setup(seed: u64) -> (Fabric, RegisterBank) {
    let net = NetworkModel::synchronous(LatencyModel::paper_testbed(), 6);
    let mut fabric = Fabric::new(net, SimRng::new(seed));
    let mems = [HostId(3), HostId(4), HostId(5)];
    let bank = RegisterBank::create(&mut fabric, &mems, 2, 16, Duration::from_micros(10));
    (fabric, bank)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After a sequence of honest writes, any read that starts after the
    /// last write completed returns the *latest* value — never an older one,
    /// never garbage (regularity in the quiescent case).
    #[test]
    fn quiescent_read_returns_latest(
        n_writes in 1u64..8,
        gap_us in 12u64..40,
        seed in any::<u64>(),
    ) {
        let (mut fabric, bank) = setup(seed);
        let mut w = bank.writer();
        let r = bank.reader();
        let mut now = Time::ZERO;
        let mut done = now;
        for ts in 1..=n_writes {
            done = w
                .write(&mut fabric, HostId(0), RegisterId(0), ts, &ts.to_le_bytes(), now)
                .expect("quorum write");
            now += Duration::from_micros(gap_us);
        }
        let read_at = done + Duration::from_micros(gap_us);
        match r.read(&mut fabric, HostId(1), RegisterId(0), read_at) {
            ReadOutcome::Value { ts, value, .. } => {
                prop_assert_eq!(ts, n_writes);
                prop_assert_eq!(&value[..8], &n_writes.to_le_bytes()[..]);
            }
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    /// A read concurrent with a write returns either the old or the new
    /// value (with a valid timestamp), or asks for a retry — never a third
    /// value (regularity in the concurrent case).
    #[test]
    fn concurrent_read_is_regular(read_offset_ns in 0u64..30_000, seed in any::<u64>()) {
        let (mut fabric, bank) = setup(seed);
        let mut w = bank.writer();
        let r = bank.reader();
        let d1 = w
            .write(&mut fabric, HostId(0), RegisterId(0), 1, b"old-value", Time::ZERO)
            .expect("write 1");
        // Second write starts after the cooldown; the read lands somewhere
        // around it.
        let start2 = d1 + Duration::from_micros(10);
        let _ = w.write(&mut fabric, HostId(0), RegisterId(0), 2, b"new-value", start2);
        let read_at = start2 + Duration::from_nanos(read_offset_ns);
        match r.read(&mut fabric, HostId(1), RegisterId(0), read_at) {
            ReadOutcome::Value { ts, value, .. } => {
                prop_assert!(ts == 1 || ts == 2, "timestamp {ts} out of history");
                let expect: &[u8] = if ts == 1 { b"old-value" } else { b"new-value" };
                prop_assert_eq!(&value[..9], expect);
            }
            ReadOutcome::Retry { .. } => {} // allowed while overlapping
            ReadOutcome::WriterByzantine { .. } => {
                prop_assert!(false, "honest writer branded byzantine");
            }
            ReadOutcome::NoQuorum => prop_assert!(false, "quorum lost without crashes"),
            ReadOutcome::IssuerCrashed => prop_assert!(false, "issuer alive but reported dead"),
        }
    }

    /// A replacement node's bank scan recovers the tail high-water mark:
    /// after honest writes settle, `scan_tail` reports the highest
    /// timestamp; an unwritten bank reports none.
    #[test]
    fn tail_scan_recovers_high_water_mark(
        n_writes in 1u64..6,
        gap_us in 12u64..40,
        seed in any::<u64>(),
    ) {
        let (mut fabric, bank) = setup(seed);
        let mut w = bank.writer();
        let r = bank.reader();
        let mut now = Time::ZERO;
        let mut done = now;
        // Alternate between the two registers so the maximum is not
        // always in the last-written one.
        for ts in 1..=n_writes {
            let reg = RegisterId((ts % 2) as usize);
            done = w
                .write(&mut fabric, HostId(0), reg, ts, &ts.to_le_bytes(), now)
                .expect("quorum write");
            now += Duration::from_micros(gap_us);
        }
        let scan = r.scan_tail(&mut fabric, HostId(1), done + Duration::from_micros(gap_us));
        prop_assert_eq!(scan.max_ts, Some(n_writes));
        prop_assert!(scan.completion > done);
        // A bank nobody ever wrote scans to nothing.
        let (mut fresh_fabric, fresh_bank) = setup(seed ^ 1);
        let scan = fresh_bank.reader().scan_tail(&mut fresh_fabric, HostId(1), Time::ZERO);
        prop_assert_eq!(scan.max_ts, None);
    }

    /// A joiner scanning while the (about-to-die) writer is mid-write — a
    /// half-written register — must never invent a timestamp: it sees the
    /// old value, the new value, or (after its one retry) skips the slot.
    #[test]
    fn tail_scan_tolerates_half_written_register(
        scan_offset_ns in 0u64..30_000,
        seed in any::<u64>(),
    ) {
        let (mut fabric, bank) = setup(seed);
        let mut w = bank.writer();
        let r = bank.reader();
        let d1 = w
            .write(&mut fabric, HostId(0), RegisterId(0), 1, b"settled", Time::ZERO)
            .expect("write 1");
        let start2 = d1 + Duration::from_micros(10);
        let _ = w.write(&mut fabric, HostId(0), RegisterId(0), 2, b"in-flight", start2);
        let scan = r.scan_tail(&mut fabric, HostId(1), start2 + Duration::from_nanos(scan_offset_ns));
        // ts = 1 has settled at a quorum, so the scan can only report the
        // settled value or the newer in-flight one — never 0, never > 2.
        // A `None` is legal too: both reads of the slot overlapped the
        // write window, and the join handshake covers the gap.
        if let Some(ts) = scan.max_ts {
            prop_assert!(ts == 1 || ts == 2, "timestamp {} out of history", ts);
        }
    }

    /// Re-keying the bank to a replacement writer preserves regularity:
    /// once the replacement's first (fresher-timestamped) write settles,
    /// readers never again return the dead writer's values.
    #[test]
    fn rekeyed_writer_supersedes_predecessor(
        predecessor_writes in 1u64..5,
        seed in any::<u64>(),
    ) {
        let (mut fabric, bank) = setup(seed);
        let mut old_w = bank.writer();
        let mut now = Time::ZERO;
        let mut done = now;
        for ts in 1..=predecessor_writes {
            done = old_w
                .write(&mut fabric, HostId(0), RegisterId(0), ts, b"old-incarnation", now)
                .expect("quorum write");
            now += Duration::from_micros(12);
        }
        drop(old_w); // the node is dead; its cursor positions are gone
        let mut new_w = bank.rekey_writer();
        let new_ts = predecessor_writes + 10;
        let done2 = new_w
            .write(&mut fabric, HostId(1), RegisterId(0), new_ts, b"new-incarnation", done + Duration::from_micros(12))
            .expect("quorum write");
        let r = bank.reader();
        match r.read(&mut fabric, HostId(2), RegisterId(0), done2 + Duration::from_micros(12)) {
            ReadOutcome::Value { ts, value, .. } => {
                prop_assert_eq!(ts, new_ts);
                prop_assert_eq!(&value[..15], b"new-incarnation");
            }
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    /// Crashing any single memory node never affects safety or liveness.
    #[test]
    fn any_single_memnode_crash_tolerated(victim in 0usize..3, seed in any::<u64>()) {
        let (mut fabric, bank) = setup(seed);
        fabric.net_mut().crash_host(HostId(3 + victim as u32), Time::ZERO);
        let mut w = bank.writer();
        let r = bank.reader();
        let done = w
            .write(&mut fabric, HostId(0), RegisterId(1), 7, b"survives", Time::ZERO)
            .expect("majority still up");
        match r.read(&mut fabric, HostId(2), RegisterId(1), done) {
            ReadOutcome::Value { ts, .. } => prop_assert_eq!(ts, 7),
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }
}
