//! Property-based tests of the SWMR regular register: regularity must hold
//! under arbitrary write histories and read times.

use proptest::prelude::*;
use ubft_dmem::register::{ReadOutcome, RegisterBank, RegisterId};
use ubft_rdma::Fabric;
use ubft_sim::net::{LatencyModel, NetworkModel};
use ubft_sim::{HostId, SimRng};
use ubft_types::{Duration, Time};

fn setup(seed: u64) -> (Fabric, RegisterBank) {
    let net = NetworkModel::synchronous(LatencyModel::paper_testbed(), 6);
    let mut fabric = Fabric::new(net, SimRng::new(seed));
    let mems = [HostId(3), HostId(4), HostId(5)];
    let bank = RegisterBank::create(&mut fabric, &mems, 2, 16, Duration::from_micros(10));
    (fabric, bank)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After a sequence of honest writes, any read that starts after the
    /// last write completed returns the *latest* value — never an older one,
    /// never garbage (regularity in the quiescent case).
    #[test]
    fn quiescent_read_returns_latest(
        n_writes in 1u64..8,
        gap_us in 12u64..40,
        seed in any::<u64>(),
    ) {
        let (mut fabric, bank) = setup(seed);
        let mut w = bank.writer();
        let r = bank.reader();
        let mut now = Time::ZERO;
        let mut done = now;
        for ts in 1..=n_writes {
            done = w
                .write(&mut fabric, HostId(0), RegisterId(0), ts, &ts.to_le_bytes(), now)
                .expect("quorum write");
            now += Duration::from_micros(gap_us);
        }
        let read_at = done + Duration::from_micros(gap_us);
        match r.read(&mut fabric, HostId(1), RegisterId(0), read_at) {
            ReadOutcome::Value { ts, value, .. } => {
                prop_assert_eq!(ts, n_writes);
                prop_assert_eq!(&value[..8], &n_writes.to_le_bytes()[..]);
            }
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    /// A read concurrent with a write returns either the old or the new
    /// value (with a valid timestamp), or asks for a retry — never a third
    /// value (regularity in the concurrent case).
    #[test]
    fn concurrent_read_is_regular(read_offset_ns in 0u64..30_000, seed in any::<u64>()) {
        let (mut fabric, bank) = setup(seed);
        let mut w = bank.writer();
        let r = bank.reader();
        let d1 = w
            .write(&mut fabric, HostId(0), RegisterId(0), 1, b"old-value", Time::ZERO)
            .expect("write 1");
        // Second write starts after the cooldown; the read lands somewhere
        // around it.
        let start2 = d1 + Duration::from_micros(10);
        let _ = w.write(&mut fabric, HostId(0), RegisterId(0), 2, b"new-value", start2);
        let read_at = start2 + Duration::from_nanos(read_offset_ns);
        match r.read(&mut fabric, HostId(1), RegisterId(0), read_at) {
            ReadOutcome::Value { ts, value, .. } => {
                prop_assert!(ts == 1 || ts == 2, "timestamp {ts} out of history");
                let expect: &[u8] = if ts == 1 { b"old-value" } else { b"new-value" };
                prop_assert_eq!(&value[..9], expect);
            }
            ReadOutcome::Retry { .. } => {} // allowed while overlapping
            ReadOutcome::WriterByzantine { .. } => {
                prop_assert!(false, "honest writer branded byzantine");
            }
            ReadOutcome::NoQuorum => prop_assert!(false, "quorum lost without crashes"),
        }
    }

    /// Crashing any single memory node never affects safety or liveness.
    #[test]
    fn any_single_memnode_crash_tolerated(victim in 0usize..3, seed in any::<u64>()) {
        let (mut fabric, bank) = setup(seed);
        fabric.net_mut().crash_host(HostId(3 + victim as u32), Time::ZERO);
        let mut w = bank.writer();
        let r = bank.reader();
        let done = w
            .write(&mut fabric, HostId(0), RegisterId(1), 7, b"survives", Time::ZERO)
            .expect("majority still up");
        match r.read(&mut fabric, HostId(2), RegisterId(1), done) {
            ReadOutcome::Value { ts, .. } => prop_assert_eq!(ts, 7),
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }
}
