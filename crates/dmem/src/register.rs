//! Replicated SWMR regular registers (§6.1, Figure 5).
//!
//! Layout of one sub-register: `[checksum: 8 B][timestamp: 8 B][value]`.
//! A register is two sub-registers (double buffering); a *replicated*
//! register is one such pair on each of the `2f_m + 1` memory nodes.

use ubft_crypto::checksum64;
use ubft_rdma::{AccessToken, Fabric, RdmaError, RegionId};
use ubft_sim::HostId;
use ubft_types::{Duration, Time};

/// Seed for sub-register checksums (domain separation from transport
/// checksums).
const CHECKSUM_SEED: u64 = 0x5157_4D52_5245_4721; // "SWMRREG!"

const HEADER: usize = 16; // checksum + timestamp

/// Index of a register within a [`RegisterBank`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegisterId(pub usize);

/// One replica's view of a register replicated across memory nodes: the
/// region ids of its copies, in memory-node order.
#[derive(Clone, Debug)]
struct Replicas {
    regions: Vec<RegionId>,
    value_size: usize,
}

impl Replicas {
    fn sub_size(&self) -> usize {
        HEADER + self.value_size
    }
    fn reg_size(&self) -> usize {
        2 * self.sub_size()
    }
}

/// A bank of `count` registers owned by one writer, replicated across the
/// memory nodes. Produces the writer handle and any number of reader handles.
#[derive(Clone, Debug)]
pub struct RegisterBank {
    replicas: Vec<Replicas>,
    tokens: Vec<Vec<AccessToken>>,
    delta: Duration,
}

impl RegisterBank {
    /// Registers `count` registers of `value_size` bytes on each of the
    /// `mem_hosts`, writable by the bank's owner.
    ///
    /// The paper stores only a message id and a 32-byte fingerprint per
    /// register (§7.6), so `value_size` is typically ~40 bytes.
    pub fn create(
        fabric: &mut Fabric,
        mem_hosts: &[HostId],
        count: usize,
        value_size: usize,
        delta: Duration,
    ) -> Self {
        let mut replicas = Vec::with_capacity(count);
        let mut tokens = Vec::with_capacity(count);
        for _ in 0..count {
            let mut regions = Vec::with_capacity(mem_hosts.len());
            let mut toks = Vec::with_capacity(mem_hosts.len());
            let reg_size = 2 * (HEADER + value_size);
            for &host in mem_hosts {
                let (region, tok) = fabric.create_region(host, reg_size);
                regions.push(region);
                toks.push(tok);
            }
            replicas.push(Replicas { regions, value_size });
            tokens.push(toks);
        }
        RegisterBank { replicas, tokens, delta }
    }

    /// The writer handle (held only by the owning replica).
    pub fn writer(&self) -> RegisterWriter {
        RegisterWriter {
            replicas: self.replicas.clone(),
            tokens: self.tokens.clone(),
            delta: self.delta,
            next_sub: vec![0; self.replicas.len()],
            ready_at: vec![Time::ZERO; self.replicas.len()],
        }
    }

    /// A reader handle (any replica may hold one).
    pub fn reader(&self) -> RegisterReader {
        RegisterReader { replicas: self.replicas.clone(), delta: self.delta }
    }

    /// Re-keys the bank to a *replacement* writer: a fresh node taking
    /// over the crashed owner's identity gets a writer whose double-buffer
    /// cursors and δ cooldowns restart from scratch (the old node's cursor
    /// positions died with it). This is safe with concurrent readers: the
    /// replacement writes strictly fresher timestamps, sub-registers are
    /// still alternated per register from the restart point, and readers
    /// take the highest valid timestamp — a restarted cursor can at worst
    /// overwrite the *older* of the two sub-registers' values, which
    /// regular-register semantics already permit.
    pub fn rekey_writer(&self) -> RegisterWriter {
        self.writer()
    }

    /// Total bytes this bank occupies on **one** memory node (Table 2
    /// accounting).
    pub fn bytes_per_node(&self) -> usize {
        self.replicas.iter().map(|r| r.reg_size()).sum()
    }
}

/// The single writer of a bank of registers.
#[derive(Clone, Debug)]
pub struct RegisterWriter {
    replicas: Vec<Replicas>,
    tokens: Vec<Vec<AccessToken>>,
    delta: Duration,
    next_sub: Vec<usize>,
    ready_at: Vec<Time>,
}

impl RegisterWriter {
    /// Writes `(ts, value)` to register `reg`, alternating sub-registers and
    /// honouring the `δ` cooldown: if called before the register is ready the
    /// write *starts* at the ready time (the writer blocks, as in the paper).
    ///
    /// Returns [`WriteOutcome::Done`] with the virtual time at which a
    /// majority (`f_m + 1`) of memory nodes completed the write,
    /// [`WriteOutcome::NoQuorum`] when no majority is reachable (more
    /// than `f_m` memory nodes crashed — outside the fault model), or
    /// [`WriteOutcome::IssuerCrashed`] when the issuer itself was dead at
    /// the write's (possibly δ-deferred) start.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds the register's value size.
    pub fn write(
        &mut self,
        fabric: &mut Fabric,
        issuer: HostId,
        reg: RegisterId,
        ts: u64,
        value: &[u8],
        now: Time,
    ) -> WriteOutcome {
        self.write_internal(fabric, issuer, reg, ts, value, now, true, true)
    }

    /// Byzantine variant: writes a bogus checksum (a writer "writing bogus
    /// data", §6.1). Readers must detect this.
    pub fn write_corrupt(
        &mut self,
        fabric: &mut Fabric,
        issuer: HostId,
        reg: RegisterId,
        ts: u64,
        value: &[u8],
        now: Time,
    ) -> WriteOutcome {
        self.write_internal(fabric, issuer, reg, ts, value, now, false, true)
    }

    /// Byzantine variant: ignores the `δ` cooldown, racing both
    /// sub-registers. Readers observing two concurrent writes must either
    /// find a valid value or brand the writer Byzantine — never hang.
    pub fn write_ignoring_cooldown(
        &mut self,
        fabric: &mut Fabric,
        issuer: HostId,
        reg: RegisterId,
        ts: u64,
        value: &[u8],
        now: Time,
    ) -> WriteOutcome {
        self.write_internal(fabric, issuer, reg, ts, value, now, true, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn write_internal(
        &mut self,
        fabric: &mut Fabric,
        issuer: HostId,
        reg: RegisterId,
        ts: u64,
        value: &[u8],
        now: Time,
        honest_checksum: bool,
        honor_cooldown: bool,
    ) -> WriteOutcome {
        let r = &self.replicas[reg.0];
        assert!(value.len() <= r.value_size, "value exceeds register size");

        let start =
            if honor_cooldown && now < self.ready_at[reg.0] { self.ready_at[reg.0] } else { now };

        // A δ-cooldown-deferred write can *start* after the issuer's own
        // scheduled crash. That used to surface as per-region
        // `IssuerUnavailable` errors silently skipped below, leaving the
        // outcome indistinguishable from a crashed memory-node majority.
        // The issuer's liveness at the start time is a deterministic fact
        // of the fault schedule — check it once, up front.
        if fabric.net().is_crashed(issuer, start) {
            return WriteOutcome::IssuerCrashed;
        }

        // Frame: checksum(ts || value) | ts | value (zero-padded).
        let mut frame = vec![0u8; r.sub_size()];
        frame[8..16].copy_from_slice(&ts.to_le_bytes());
        frame[16..16 + value.len()].copy_from_slice(value);
        let csum = if honest_checksum {
            checksum64(CHECKSUM_SEED, &frame[8..])
        } else {
            0xDEAD_DEAD_DEAD_DEADu64
        };
        frame[..8].copy_from_slice(&csum.to_le_bytes());

        let sub = self.next_sub[reg.0];
        self.next_sub[reg.0] = (sub + 1) % 2;
        let offset = sub * r.sub_size();

        let mut completions: Vec<Time> = Vec::new();
        for (region, tok) in r.regions.iter().zip(&self.tokens[reg.0]) {
            match fabric.write(issuer, *tok, *region, offset, &frame, start) {
                Ok(ticket) => completions.push(ticket.completion),
                Err(RdmaError::TargetUnavailable) => {} // crashed node: no completion
                // Issuer liveness at `start` was established above, and
                // the fabric checks the same instant for every region.
                Err(RdmaError::IssuerUnavailable) => {
                    unreachable!("issuer liveness pre-checked at start time")
                }
                Err(e) => panic!("register write failed: {e}"),
            }
        }
        let quorum = r.regions.len() / 2 + 1;
        if completions.len() < quorum {
            return WriteOutcome::NoQuorum;
        }
        completions.sort_unstable();
        let done = completions[quorum - 1];
        self.ready_at[reg.0] = start + self.delta;
        WriteOutcome::Done(done)
    }

    /// The earliest time the next write to `reg` may start.
    pub fn ready_at(&self, reg: RegisterId) -> Time {
        self.ready_at[reg.0]
    }
}

/// The outcome of a quorum register write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// A majority (`f_m + 1`) of memory nodes completed the write; the
    /// time is when the quorum was reached at the issuer.
    Done(Time),
    /// Fewer than `f_m + 1` memory nodes were reachable: outside the
    /// fault model (only possible when tests crash a majority).
    NoQuorum,
    /// The *issuer itself* was crashed at the write's (possibly
    /// δ-deferred) start time. Nothing was attempted; the caller's
    /// continuation is moot and must not be scheduled. Distinct from
    /// [`WriteOutcome::NoQuorum`] so a crash-boundary race is never
    /// mistaken for a memory-node availability failure.
    IssuerCrashed,
}

impl WriteOutcome {
    /// The quorum completion time, when the write succeeded.
    pub fn done(self) -> Option<Time> {
        match self {
            WriteOutcome::Done(t) => Some(t),
            _ => None,
        }
    }

    /// Unwraps [`WriteOutcome::Done`].
    ///
    /// # Panics
    ///
    /// Panics on `NoQuorum` or `IssuerCrashed`.
    #[track_caller]
    pub fn unwrap(self) -> Time {
        match self {
            WriteOutcome::Done(t) => t,
            other => panic!("register write did not complete: {other:?}"),
        }
    }

    /// Unwraps [`WriteOutcome::Done`] with a caller-supplied message.
    ///
    /// # Panics
    ///
    /// Panics on `NoQuorum` or `IssuerCrashed`.
    #[track_caller]
    pub fn expect(self, msg: &str) -> Time {
        match self {
            WriteOutcome::Done(t) => t,
            other => panic!("{msg}: {other:?}"),
        }
    }
}

/// The outcome of a quorum register read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// A valid value was found.
    Value {
        /// The value's logical timestamp.
        ts: u64,
        /// The value bytes (padded to the register's value size).
        value: Vec<u8>,
        /// When the read completed at the issuer.
        completion: Time,
    },
    /// No valid sub-register was found and the read was fast (`< δ`): the
    /// writer is Byzantine, so the protocol-defined default applies.
    WriterByzantine {
        /// When the verdict was reached.
        completion: Time,
    },
    /// No valid sub-register was found but the read was slow (`≥ δ`), so a
    /// concurrent write may explain it: the caller must retry at
    /// `completion`.
    Retry {
        /// When the retry may be issued.
        completion: Time,
    },
    /// Fewer than `f_m + 1` memory nodes answered: outside the fault model
    /// (only possible when tests crash a majority).
    NoQuorum,
    /// The *issuer itself* was crashed when the read was issued (a retry
    /// re-issued at a future completion time can land past the issuer's
    /// own scheduled crash). Distinct from [`ReadOutcome::NoQuorum`] so a
    /// crash-boundary race is never mistaken for a memory-node
    /// availability failure.
    IssuerCrashed,
}

/// The result of scanning a whole bank for its highest written timestamp
/// ([`RegisterReader::scan_tail`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TailScan {
    /// Highest valid timestamp found anywhere in the bank (`None` when the
    /// bank has never been written — or every slot read back torn twice).
    pub max_ts: Option<u64>,
    /// When the slowest contributing quorum read completed.
    pub completion: Time,
}

/// A reader of a bank of registers.
#[derive(Clone, Debug)]
pub struct RegisterReader {
    replicas: Vec<Replicas>,
    delta: Duration,
}

impl RegisterReader {
    /// Number of registers in the bank.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Reads register `reg`: both sub-registers from every memory node,
    /// waiting for a majority, returning the highest-timestamped valid value
    /// (the regular-register semantics of §6.1).
    pub fn read(
        &self,
        fabric: &mut Fabric,
        issuer: HostId,
        reg: RegisterId,
        now: Time,
    ) -> ReadOutcome {
        let r = &self.replicas[reg.0];
        // A retry after an overlapping write re-issues at its future
        // completion time, which can land past the issuer's own scheduled
        // crash. That used to surface as per-node errors silently skipped
        // below, collapsing into `NoQuorum` — indistinguishable from a
        // crashed memory-node majority. The issuer's liveness at `now` is
        // a deterministic fact of the fault schedule: report it as its
        // own outcome.
        if fabric.net().is_crashed(issuer, now) {
            return ReadOutcome::IssuerCrashed;
        }
        let mut node_reads: Vec<(Time, Vec<u8>)> = Vec::new();
        for region in &r.regions {
            match fabric.read(issuer, *region, 0, r.reg_size(), now) {
                Ok(ticket) => node_reads.push((ticket.completion, ticket.data)),
                Err(RdmaError::TargetUnavailable) => {}
                // Issuer liveness at `now` was established above, and the
                // fabric checks the same instant for every node.
                Err(RdmaError::IssuerUnavailable) => {
                    unreachable!("issuer liveness pre-checked at issue time")
                }
                Err(e) => panic!("register read failed: {e}"),
            }
        }
        let quorum = r.regions.len() / 2 + 1;
        if node_reads.len() < quorum {
            return ReadOutcome::NoQuorum;
        }
        // Wait for the fastest majority.
        node_reads.sort_by_key(|(t, _)| *t);
        node_reads.truncate(quorum);
        let completion = node_reads.last().expect("quorum >= 1").0;
        let elapsed = completion.since(now);

        let mut best: Option<(u64, Vec<u8>)> = None;
        let mut byzantine_evidence = false;
        for (_, data) in &node_reads {
            let (a, b) = data.split_at(r.sub_size());
            let va = Self::validate(a);
            let vb = Self::validate(b);
            if let (Some((ta, _)), Some((tb, _))) = (&va, &vb) {
                if ta == tb && *ta != 0 {
                    // Both sub-registers with the same timestamp: the writer
                    // violated round-robin discipline (§6.1).
                    byzantine_evidence = true;
                }
            }
            for v in [va, vb].into_iter().flatten() {
                if best.as_ref().is_none_or(|(bt, _)| v.0 > *bt) {
                    best = Some(v);
                }
            }
        }

        if byzantine_evidence {
            return ReadOutcome::WriterByzantine { completion };
        }
        match best {
            Some((ts, value)) if ts != 0 => ReadOutcome::Value { ts, value, completion },
            _ => {
                // Nothing valid anywhere. Fast read => Byzantine writer;
                // slow read => possibly overlapped a write, retry.
                if elapsed < self.delta {
                    ReadOutcome::WriterByzantine { completion }
                } else {
                    ReadOutcome::Retry { completion }
                }
            }
        }
    }

    /// Reads every register of the bank and returns the highest valid
    /// timestamp found — the bank's *tail high-water mark*. A replacement
    /// node runs this over its predecessor's bank to recover how far the
    /// crashed writer's slow path had progressed, directly from the
    /// memory nodes, before asking any replica (uBFT extended version,
    /// §replacement). A read that overlaps a half-written frame retries
    /// once (the §6.1 torn-write rule); a slot that stays torn is skipped
    /// — the join handshake's `f + 1` acks cover whatever the scan missed.
    pub fn scan_tail(&self, fabric: &mut Fabric, issuer: HostId, now: Time) -> TailScan {
        let mut max_ts = None;
        let mut completion = now;
        for reg in 0..self.replicas.len() {
            let mut at = now;
            for _attempt in 0..2 {
                match self.read(fabric, issuer, RegisterId(reg), at) {
                    ReadOutcome::Value { ts, completion: c, .. } => {
                        completion = completion.max(c);
                        if max_ts.is_none_or(|m| ts > m) {
                            max_ts = Some(ts);
                        }
                        break;
                    }
                    ReadOutcome::WriterByzantine { completion: c } => {
                        completion = completion.max(c);
                        break;
                    }
                    ReadOutcome::Retry { completion: c } => {
                        completion = completion.max(c);
                        at = c;
                    }
                    ReadOutcome::NoQuorum => break,
                    // The scanning joiner itself died: every further read
                    // would fail identically, so stop scanning outright.
                    ReadOutcome::IssuerCrashed => return TailScan { max_ts, completion },
                }
            }
        }
        TailScan { max_ts, completion }
    }

    /// Validates one sub-register frame; returns `(ts, value)` when the
    /// checksum matches. Timestamp 0 (never written) is treated as invalid.
    fn validate(frame: &[u8]) -> Option<(u64, Vec<u8>)> {
        let mut c = [0u8; 8];
        c.copy_from_slice(&frame[..8]);
        let stored = u64::from_le_bytes(c);
        if checksum64(CHECKSUM_SEED, &frame[8..]) != stored {
            return None;
        }
        let mut t = [0u8; 8];
        t.copy_from_slice(&frame[8..16]);
        let ts = u64::from_le_bytes(t);
        if ts == 0 {
            return None;
        }
        Some((ts, frame[16..].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubft_sim::net::{LatencyModel, NetworkModel};
    use ubft_sim::SimRng;

    fn delta() -> Duration {
        Duration::from_micros(10)
    }

    fn setup() -> (Fabric, RegisterBank) {
        let net = NetworkModel::synchronous(LatencyModel::paper_testbed(), 6);
        let mut fabric = Fabric::new(net, SimRng::new(7));
        // Hosts 0..2 are replicas, 3..5 memory nodes.
        let mems = [HostId(3), HostId(4), HostId(5)];
        let bank = RegisterBank::create(&mut fabric, &mems, 4, 40, delta());
        (fabric, bank)
    }

    fn t(us: u64) -> Time {
        Time::ZERO + Duration::from_micros(us)
    }

    #[test]
    fn write_then_read_returns_value() {
        let (mut f, bank) = setup();
        let mut w = bank.writer();
        let r = bank.reader();
        let done = w.write(&mut f, HostId(0), RegisterId(0), 5, b"hello", t(0)).unwrap();
        match r.read(&mut f, HostId(1), RegisterId(0), done) {
            ReadOutcome::Value { ts, value, .. } => {
                assert_eq!(ts, 5);
                assert_eq!(&value[..5], b"hello");
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn highest_timestamp_wins() {
        let (mut f, bank) = setup();
        let mut w = bank.writer();
        let r = bank.reader();
        let d1 = w.write(&mut f, HostId(0), RegisterId(0), 1, b"old", t(0)).unwrap();
        let d2 = w.write(&mut f, HostId(0), RegisterId(0), 2, b"new", d1 + delta()).unwrap();
        match r.read(&mut f, HostId(1), RegisterId(0), d2 + delta()) {
            ReadOutcome::Value { ts, value, .. } => {
                assert_eq!(ts, 2);
                assert_eq!(&value[..3], b"new");
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn unwritten_register_is_byzantine_or_retry_not_value() {
        let (mut f, bank) = setup();
        let r = bank.reader();
        // Reading a never-written register quickly: "default value" case.
        match r.read(&mut f, HostId(0), RegisterId(1), t(0)) {
            ReadOutcome::WriterByzantine { .. } => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn corrupt_checksum_detected() {
        let (mut f, bank) = setup();
        let mut w = bank.writer();
        let r = bank.reader();
        let d1 = w.write_corrupt(&mut f, HostId(0), RegisterId(0), 1, b"junk", t(0)).unwrap();
        let d2 =
            w.write_corrupt(&mut f, HostId(0), RegisterId(0), 2, b"junk", d1 + delta()).unwrap();
        match r.read(&mut f, HostId(1), RegisterId(0), d2 + delta()) {
            ReadOutcome::WriterByzantine { .. } => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn survives_one_memory_node_crash() {
        let (mut f, bank) = setup();
        f.net_mut().crash_host(HostId(5), Time::ZERO);
        let mut w = bank.writer();
        let r = bank.reader();
        let done = w.write(&mut f, HostId(0), RegisterId(0), 9, b"alive", t(1)).unwrap();
        match r.read(&mut f, HostId(1), RegisterId(0), done) {
            ReadOutcome::Value { ts, .. } => assert_eq!(ts, 9),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn majority_crash_is_no_quorum() {
        let (mut f, bank) = setup();
        f.net_mut().crash_host(HostId(4), Time::ZERO);
        f.net_mut().crash_host(HostId(5), Time::ZERO);
        let mut w = bank.writer();
        assert_eq!(
            w.write(&mut f, HostId(0), RegisterId(0), 1, b"x", t(0)),
            WriteOutcome::NoQuorum
        );
        let r = bank.reader();
        assert_eq!(r.read(&mut f, HostId(1), RegisterId(0), t(0)), ReadOutcome::NoQuorum);
    }

    /// The crash-boundary regression (PR 5 left this conflated): an issuer
    /// that is dead at the operation's start must be reported as
    /// `IssuerCrashed` — deterministically distinct from `NoQuorum`, which
    /// means the *memory nodes* are outside the fault model.
    #[test]
    fn dead_issuer_is_distinct_from_no_quorum() {
        let (mut f, bank) = setup();
        f.net_mut().crash_host(HostId(0), t(5));
        let mut w = bank.writer();
        let r = bank.reader();
        // Before its crash the issuer operates normally.
        let done = w.write(&mut f, HostId(0), RegisterId(0), 1, b"pre", t(0)).unwrap();
        assert!(done < t(5));
        // At and past the crash boundary: IssuerCrashed, never NoQuorum.
        assert_eq!(
            w.write(&mut f, HostId(0), RegisterId(0), 2, b"post", t(5)),
            WriteOutcome::IssuerCrashed
        );
        assert_eq!(r.read(&mut f, HostId(0), RegisterId(0), t(6)), ReadOutcome::IssuerCrashed);
        // Every memory node is alive, so a *live* issuer still has quorum:
        // the verdict above was about the issuer, not the bank.
        match r.read(&mut f, HostId(1), RegisterId(0), t(6)) {
            ReadOutcome::Value { ts, .. } => assert_eq!(ts, 1),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    /// The δ-cooldown race: a write *issued* while the issuer is alive
    /// but *deferred* past its crash starts dead. It must report
    /// `IssuerCrashed`, not silently lose completions into `NoQuorum`.
    #[test]
    fn cooldown_deferred_write_past_own_crash_is_issuer_crashed() {
        let (mut f, bank) = setup();
        let mut w = bank.writer();
        let d1 = w.write(&mut f, HostId(0), RegisterId(0), 1, b"a", t(0)).unwrap();
        assert!(d1 < t(0) + delta());
        // Crash inside the cooldown window: the next write is issued
        // before the crash but can only start after it.
        f.net_mut().crash_host(HostId(0), t(3));
        assert_eq!(
            w.write(&mut f, HostId(0), RegisterId(0), 2, b"b", t(1)),
            WriteOutcome::IssuerCrashed
        );
    }

    /// A tail scan whose issuer dies mid-scan stops deterministically
    /// with whatever it had, instead of mis-reading the remaining
    /// registers as quorum failures.
    #[test]
    fn scan_tail_by_dead_issuer_finds_nothing() {
        let (mut f, bank) = setup();
        let mut w = bank.writer();
        let _ = w.write(&mut f, HostId(0), RegisterId(0), 7, b"tail", t(0)).unwrap();
        f.net_mut().crash_host(HostId(1), t(50));
        let scan = bank.reader().scan_tail(&mut f, HostId(1), t(60));
        assert_eq!(scan.max_ts, None);
        assert_eq!(scan.completion, t(60));
    }

    #[test]
    fn cooldown_enforced_between_writes() {
        let (mut f, bank) = setup();
        let mut w = bank.writer();
        let _ = w.write(&mut f, HostId(0), RegisterId(0), 1, b"a", t(0)).unwrap();
        assert_eq!(w.ready_at(RegisterId(0)), t(0) + delta());
        // A second write issued immediately starts only at the cooldown.
        let d2 = w.write(&mut f, HostId(0), RegisterId(0), 2, b"b", t(1)).unwrap();
        assert!(d2 >= t(0) + delta());
        assert_eq!(w.ready_at(RegisterId(0)), t(0) + delta() + delta());
    }

    #[test]
    fn registers_are_independent() {
        let (mut f, bank) = setup();
        let mut w = bank.writer();
        let r = bank.reader();
        let d0 = w.write(&mut f, HostId(0), RegisterId(0), 1, b"zero", t(0)).unwrap();
        let d1 = w.write(&mut f, HostId(0), RegisterId(1), 2, b"one", t(0)).unwrap();
        let later = d0.max(d1) + delta();
        match r.read(&mut f, HostId(1), RegisterId(0), later) {
            ReadOutcome::Value { ts, value, .. } => {
                assert_eq!(ts, 1);
                assert_eq!(&value[..4], b"zero");
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        match r.read(&mut f, HostId(1), RegisterId(1), later) {
            ReadOutcome::Value { ts, value, .. } => {
                assert_eq!(ts, 2);
                assert_eq!(&value[..3], b"one");
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn bytes_per_node_accounting() {
        let (_, bank) = setup();
        // 4 registers × 2 sub-registers × (16 header + 40 value) = 448 B.
        assert_eq!(bank.bytes_per_node(), 4 * 2 * 56);
    }

    #[test]
    #[should_panic(expected = "value exceeds register size")]
    fn oversized_value_panics() {
        let (mut f, bank) = setup();
        let mut w = bank.writer();
        let _ = w.write(&mut f, HostId(0), RegisterId(0), 1, &[0u8; 64], t(0));
    }
}
