//! Reliable single-writer multi-reader (SWMR) *regular* registers on top of
//! raw RDMA-exposed memory — the paper's §6.1.
//!
//! Raw RDMA memory is not enough for uBFT's slow path: it does not tolerate
//! memory-node failures and is only 8-byte atomic, so concurrent reads can
//! observe torn values. This crate layers three fixes, exactly as the paper
//! does:
//!
//! * **SWMR** — fabric write tokens give exactly one replica write access.
//! * **Regular** — each register is two checksummed, timestamped
//!   sub-registers written round-robin with a `δ` cooldown between writes;
//!   readers validate checksums and take the highest-timestamped valid
//!   sub-register, detecting Byzantine writers that corrupt checksums or
//!   violate the cooldown.
//! * **Reliable** — every register is replicated across `2f_m + 1` memory
//!   nodes with majority-quorum reads and writes, so `f_m` crashed memory
//!   nodes cannot block progress, and quorum intersection preserves
//!   regularity.

pub mod register;

pub use register::{
    ReadOutcome, RegisterBank, RegisterId, RegisterReader, RegisterWriter, WriteOutcome,
};
