//! The applications the paper replicates with uBFT (§7.1):
//!
//! * [`flip::FlipApp`] — the toy app that reverses its input;
//! * [`kv::KvApp`] — an in-memory key-value store with Memcached-like and
//!   Redis-like frontends;
//! * [`orderbook::OrderBookApp`] — a Liquibook-style price-time-priority
//!   financial order matching engine.
//!
//! [`router::ShardRouter`] maps requests onto sharded consensus groups:
//! keyed operations go to `FNV-1a(key) mod groups`, keyless payloads
//! round-robin.
//!
//! All three are genuine deterministic implementations of the
//! [`ubft_core::App`] trait. Each carries a calibrated per-request CPU cost
//! so the *unreplicated* end-to-end latencies land near the paper's Figure 7
//! measurements (the production binaries have heavier stacks than these
//! in-process engines); the replication *overhead* — the paper's claim — is
//! then measured, never assumed.

pub mod flip;
pub mod kv;
pub mod orderbook;
pub mod router;
pub mod workload;

pub use flip::FlipApp;
pub use kv::{KvApp, KvFrontend, KvOp};
pub use orderbook::{OrderBookApp, OrderOp};
pub use router::ShardRouter;
