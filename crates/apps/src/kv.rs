//! An in-memory key-value store with two protocol frontends.
//!
//! One storage engine backs both of the paper's KV applications; the
//! frontend only changes the calibration constant (Memcached and Redis have
//! different measured unreplicated latencies in Figure 7: 17.0 µs vs
//! 17.6 µs at p90) and the reported name. Workloads use 16 B keys and 32 B
//! values, 30% GETs of which 80% hit (§7.1).

use std::collections::BTreeMap;

use ubft_core::App;
use ubft_crypto::{checksum64, sha256, Digest};
use ubft_types::wire::{Wire, WireReader};
use ubft_types::{CodecError, Duration};

/// Which production system the frontend emulates (calibration only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvFrontend {
    /// Memcached-like (binary protocol, slab allocator class).
    Memcached,
    /// Redis-like (RESP protocol, event loop class).
    Redis,
}

/// A key-value operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Look up `key`.
    Get {
        /// The key.
        key: Vec<u8>,
    },
    /// Bind `key` to `value`.
    Set {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Remove `key`.
    Del {
        /// The key.
        key: Vec<u8>,
    },
}

impl Wire for KvOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            KvOp::Get { key } => {
                0u8.encode(buf);
                key.encode(buf);
            }
            KvOp::Set { key, value } => {
                1u8.encode(buf);
                key.encode(buf);
                value.encode(buf);
            }
            KvOp::Del { key } => {
                2u8.encode(buf);
                key.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(KvOp::Get { key: Vec::<u8>::decode(r)? }),
            1 => Ok(KvOp::Set { key: Vec::<u8>::decode(r)?, value: Vec::<u8>::decode(r)? }),
            2 => Ok(KvOp::Del { key: Vec::<u8>::decode(r)? }),
            tag => Err(CodecError::BadTag { ty: "KvOp", tag }),
        }
    }
}

/// Seed for the incremental state fingerprint.
const KV_HASH_SEED: u64 = 0x4B56_5354_4F52_4521; // "KVSTORE!"

/// Responses are a status byte followed by an optional value.
const STATUS_OK: u8 = 0;
const STATUS_NOT_FOUND: u8 = 1;
const STATUS_BAD_REQUEST: u8 = 2;

/// The replicated key-value store.
#[derive(Clone, Debug)]
pub struct KvApp {
    frontend: KvFrontend,
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Incrementally-maintained state fingerprint: XOR of per-entry hashes
    /// (order-independent, so insert/remove maintain it in O(1)).
    entry_xor: u64,
    executed: u64,
}

impl KvApp {
    /// Creates an empty store with the given frontend calibration.
    pub fn new(frontend: KvFrontend) -> Self {
        KvApp { frontend, map: BTreeMap::new(), entry_xor: 0, executed: 0 }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Direct read access (tests and examples).
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_slice())
    }

    fn entry_hash(key: &[u8], value: &[u8]) -> u64 {
        let mut buf = Vec::with_capacity(key.len() + value.len() + 8);
        (key.len() as u32).encode(&mut buf);
        buf.extend_from_slice(key);
        buf.extend_from_slice(value);
        checksum64(KV_HASH_SEED, &buf)
    }
}

impl App for KvApp {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        self.executed += 1;
        let Ok(op) = KvOp::from_bytes(request) else {
            return vec![STATUS_BAD_REQUEST];
        };
        match op {
            KvOp::Get { key } => match self.map.get(&key) {
                Some(v) => {
                    let mut out = vec![STATUS_OK];
                    out.extend_from_slice(v);
                    out
                }
                None => vec![STATUS_NOT_FOUND],
            },
            KvOp::Set { key, value } => {
                if let Some(old) = self.map.get(&key) {
                    self.entry_xor ^= Self::entry_hash(&key, old);
                }
                self.entry_xor ^= Self::entry_hash(&key, &value);
                self.map.insert(key, value);
                vec![STATUS_OK]
            }
            KvOp::Del { key } => match self.map.remove(&key) {
                Some(old) => {
                    self.entry_xor ^= Self::entry_hash(&key, &old);
                    vec![STATUS_OK]
                }
                None => vec![STATUS_NOT_FOUND],
            },
        }
    }

    fn snapshot_digest(&self) -> Digest {
        let mut buf = Vec::with_capacity(24);
        buf.extend_from_slice(&self.entry_xor.to_le_bytes());
        buf.extend_from_slice(&(self.map.len() as u64).to_le_bytes());
        sha256(&buf)
    }

    fn snapshot_bytes(&self) -> Vec<u8> {
        // Entries in key order (BTreeMap iteration), so equal stores
        // serialize identically; `entry_xor` is recomputed on restore.
        let mut buf = Vec::new();
        self.executed.encode(&mut buf);
        (self.map.len() as u64).encode(&mut buf);
        for (k, v) in &self.map {
            k.encode(&mut buf);
            v.encode(&mut buf);
        }
        buf
    }

    fn restore_bytes(&mut self, bytes: &[u8]) {
        let mut r = WireReader::new(bytes);
        self.executed = u64::decode(&mut r).expect("kv snapshot: executed");
        let len = u64::decode(&mut r).expect("kv snapshot: len");
        self.map.clear();
        self.entry_xor = 0;
        for _ in 0..len {
            let k = Vec::<u8>::decode(&mut r).expect("kv snapshot: key");
            let v = Vec::<u8>::decode(&mut r).expect("kv snapshot: value");
            self.entry_xor ^= Self::entry_hash(&k, &v);
            self.map.insert(k, v);
        }
    }

    fn execute_cost(&self, _request: &[u8]) -> Duration {
        // Calibration constants: unreplicated p90 of 17.0 µs / 17.6 µs
        // (Figure 7) minus the ~2.4 µs RPC round trip.
        match self.frontend {
            KvFrontend::Memcached => Duration::from_nanos(14_600),
            KvFrontend::Redis => Duration::from_nanos(15_200),
        }
    }

    fn sequential_model(&self) -> Option<Box<dyn App>> {
        Some(Box::new(KvApp::new(self.frontend)))
    }

    fn name(&self) -> &'static str {
        match self.frontend {
            KvFrontend::Memcached => "memcached",
            KvFrontend::Redis => "redis",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(k: &[u8], v: &[u8]) -> Vec<u8> {
        KvOp::Set { key: k.to_vec(), value: v.to_vec() }.to_bytes()
    }
    fn get(k: &[u8]) -> Vec<u8> {
        KvOp::Get { key: k.to_vec() }.to_bytes()
    }
    fn del(k: &[u8]) -> Vec<u8> {
        KvOp::Del { key: k.to_vec() }.to_bytes()
    }

    #[test]
    fn set_get_del_roundtrip() {
        let mut kv = KvApp::new(KvFrontend::Memcached);
        assert_eq!(kv.execute(&set(b"k", b"v")), vec![STATUS_OK]);
        assert_eq!(kv.execute(&get(b"k")), [&[STATUS_OK][..], b"v"].concat());
        assert_eq!(kv.execute(&del(b"k")), vec![STATUS_OK]);
        assert_eq!(kv.execute(&get(b"k")), vec![STATUS_NOT_FOUND]);
        assert_eq!(kv.execute(&del(b"k")), vec![STATUS_NOT_FOUND]);
    }

    #[test]
    fn overwrite_replaces_value() {
        let mut kv = KvApp::new(KvFrontend::Redis);
        kv.execute(&set(b"k", b"v1"));
        kv.execute(&set(b"k", b"v2"));
        assert_eq!(kv.get(b"k"), Some(&b"v2"[..]));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn malformed_request_is_rejected_deterministically() {
        let mut kv = KvApp::new(KvFrontend::Memcached);
        assert_eq!(kv.execute(&[0xFF, 0x01]), vec![STATUS_BAD_REQUEST]);
    }

    #[test]
    fn snapshot_is_order_independent_but_content_sensitive() {
        let mut a = KvApp::new(KvFrontend::Memcached);
        let mut b = KvApp::new(KvFrontend::Memcached);
        a.execute(&set(b"x", b"1"));
        a.execute(&set(b"y", b"2"));
        b.execute(&set(b"y", b"2"));
        b.execute(&set(b"x", b"1"));
        assert_eq!(a.snapshot_digest(), b.snapshot_digest());
        b.execute(&set(b"x", b"DIFFERENT"));
        assert_ne!(a.snapshot_digest(), b.snapshot_digest());
    }

    #[test]
    fn delete_restores_prior_snapshot() {
        let mut kv = KvApp::new(KvFrontend::Memcached);
        kv.execute(&set(b"base", b"v"));
        let before = kv.snapshot_digest();
        kv.execute(&set(b"tmp", b"t"));
        kv.execute(&del(b"tmp"));
        assert_eq!(kv.snapshot_digest(), before);
    }

    #[test]
    fn snapshot_transfer_roundtrip() {
        let mut a = KvApp::new(KvFrontend::Redis);
        for i in 0..20u8 {
            a.execute(&set(&[i], &[i, i]));
        }
        a.execute(&del(&[3]));
        let mut b = KvApp::new(KvFrontend::Redis);
        b.restore_bytes(&a.snapshot_bytes());
        assert_eq!(b.snapshot_digest(), a.snapshot_digest());
        assert_eq!(b.len(), a.len());
        assert_eq!(b.get(&[5]), Some(&[5u8, 5][..]));
        // The restored instance evolves identically (entry_xor rebuilt).
        a.execute(&set(b"post", b"restore"));
        b.execute(&set(b"post", b"restore"));
        assert_eq!(a.snapshot_digest(), b.snapshot_digest());
    }

    #[test]
    fn frontends_differ_only_in_calibration() {
        let m = KvApp::new(KvFrontend::Memcached);
        let r = KvApp::new(KvFrontend::Redis);
        assert_eq!(m.name(), "memcached");
        assert_eq!(r.name(), "redis");
        assert!(m.execute_cost(b"") < r.execute_cost(b""));
    }
}
