//! A Liquibook-style limit order matching engine (§7.1).
//!
//! Price-time priority: incoming BUY orders match the lowest-priced resting
//! SELLs (and vice versa), oldest first at each price level. Requests are
//! 32 B orders; responses list fills (32–288 B in the paper, depending on
//! how many resting orders matched).

use std::collections::{BTreeMap, VecDeque};

use ubft_core::App;
use ubft_crypto::{checksum64, sha256, Digest};
use ubft_types::wire::{Wire, WireReader};
use ubft_types::{CodecError, Duration};

/// An order submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderOp {
    /// Buy `qty` at up to `price`.
    Buy {
        /// Limit price.
        price: u32,
        /// Quantity.
        qty: u32,
    },
    /// Sell `qty` at no less than `price`.
    Sell {
        /// Limit price.
        price: u32,
        /// Quantity.
        qty: u32,
    },
}

impl Wire for OrderOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            OrderOp::Buy { price, qty } => {
                0u8.encode(buf);
                price.encode(buf);
                qty.encode(buf);
            }
            OrderOp::Sell { price, qty } => {
                1u8.encode(buf);
                price.encode(buf);
                qty.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(OrderOp::Buy { price: u32::decode(r)?, qty: u32::decode(r)? }),
            1 => Ok(OrderOp::Sell { price: u32::decode(r)?, qty: u32::decode(r)? }),
            tag => Err(CodecError::BadTag { ty: "OrderOp", tag }),
        }
    }
}

/// One execution resulting from a match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fill {
    /// The resting order's id.
    pub maker_id: u64,
    /// Execution price (the resting order's limit).
    pub price: u32,
    /// Quantity exchanged.
    pub qty: u32,
}

impl Wire for Fill {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.maker_id.encode(buf);
        self.price.encode(buf);
        self.qty.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Fill { maker_id: u64::decode(r)?, price: u32::decode(r)?, qty: u32::decode(r)? })
    }
}

#[derive(Clone, Debug)]
struct Resting {
    id: u64,
    qty: u32,
}

/// The replicated order matching engine.
#[derive(Clone, Debug, Default)]
pub struct OrderBookApp {
    /// Resting buys: price → FIFO of orders (matched highest price first).
    bids: BTreeMap<u32, VecDeque<Resting>>,
    /// Resting sells: price → FIFO of orders (matched lowest price first).
    asks: BTreeMap<u32, VecDeque<Resting>>,
    next_id: u64,
    state_xor: u64,
    executed: u64,
}

impl OrderBookApp {
    /// Creates an empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Best (highest) bid price.
    pub fn best_bid(&self) -> Option<u32> {
        self.bids.keys().next_back().copied()
    }

    /// Best (lowest) ask price.
    pub fn best_ask(&self) -> Option<u32> {
        self.asks.keys().next().copied()
    }

    /// Total resting orders.
    pub fn depth(&self) -> usize {
        self.bids.values().map(|q| q.len()).sum::<usize>()
            + self.asks.values().map(|q| q.len()).sum::<usize>()
    }

    fn note(&mut self, id: u64, price: u32, qty: u32, add: bool) {
        let mut buf = Vec::with_capacity(17);
        id.encode(&mut buf);
        price.encode(&mut buf);
        qty.encode(&mut buf);
        (add as u8).encode(&mut buf);
        self.state_xor ^= checksum64(0x4F_52_44_45, &buf);
    }

    fn match_buy(&mut self, price: u32, mut qty: u32) -> Vec<Fill> {
        let mut fills = Vec::new();
        while qty > 0 {
            let Some((&level, _)) = self.asks.iter().next() else { break };
            if level > price {
                break;
            }
            let queue = self.asks.get_mut(&level).expect("level exists");
            while qty > 0 {
                let Some(maker) = queue.front_mut() else { break };
                let take = qty.min(maker.qty);
                fills.push(Fill { maker_id: maker.id, price: level, qty: take });
                qty -= take;
                maker.qty -= take;
                if maker.qty == 0 {
                    queue.pop_front();
                }
            }
            if queue.is_empty() {
                self.asks.remove(&level);
            }
        }
        if qty > 0 {
            let id = self.next_id;
            self.next_id += 1;
            self.bids.entry(price).or_default().push_back(Resting { id, qty });
            self.note(id, price, qty, true);
        }
        fills
    }

    fn match_sell(&mut self, price: u32, mut qty: u32) -> Vec<Fill> {
        let mut fills = Vec::new();
        while qty > 0 {
            let Some((&level, _)) = self.bids.iter().next_back() else { break };
            if level < price {
                break;
            }
            let queue = self.bids.get_mut(&level).expect("level exists");
            while qty > 0 {
                let Some(maker) = queue.front_mut() else { break };
                let take = qty.min(maker.qty);
                fills.push(Fill { maker_id: maker.id, price: level, qty: take });
                qty -= take;
                maker.qty -= take;
                if maker.qty == 0 {
                    queue.pop_front();
                }
            }
            if queue.is_empty() {
                self.bids.remove(&level);
            }
        }
        if qty > 0 {
            let id = self.next_id;
            self.next_id += 1;
            self.asks.entry(price).or_default().push_back(Resting { id, qty });
            self.note(id, price, qty, true);
        }
        fills
    }
}

impl App for OrderBookApp {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        self.executed += 1;
        let Ok(op) = OrderOp::from_bytes(request) else {
            return vec![0xFF];
        };
        let fills = match op {
            OrderOp::Buy { price, qty } => self.match_buy(price, qty),
            OrderOp::Sell { price, qty } => self.match_sell(price, qty),
        };
        for f in &fills {
            self.note(f.maker_id, f.price, f.qty, false);
        }
        let mut out = vec![0u8];
        ubft_types::wire::encode_seq(&fills, &mut out);
        out
    }

    fn snapshot_digest(&self) -> Digest {
        let mut buf = Vec::with_capacity(24);
        buf.extend_from_slice(&self.state_xor.to_le_bytes());
        buf.extend_from_slice(&self.next_id.to_le_bytes());
        buf.extend_from_slice(&(self.depth() as u64).to_le_bytes());
        sha256(&buf)
    }

    fn snapshot_bytes(&self) -> Vec<u8> {
        fn encode_side(side: &BTreeMap<u32, VecDeque<Resting>>, buf: &mut Vec<u8>) {
            (side.len() as u64).encode(buf);
            for (price, queue) in side {
                price.encode(buf);
                (queue.len() as u64).encode(buf);
                for o in queue {
                    o.id.encode(buf);
                    o.qty.encode(buf);
                }
            }
        }
        let mut buf = Vec::new();
        self.next_id.encode(&mut buf);
        self.state_xor.encode(&mut buf);
        self.executed.encode(&mut buf);
        encode_side(&self.bids, &mut buf);
        encode_side(&self.asks, &mut buf);
        buf
    }

    fn restore_bytes(&mut self, bytes: &[u8]) {
        fn decode_side(r: &mut WireReader<'_>) -> BTreeMap<u32, VecDeque<Resting>> {
            let levels = u64::decode(r).expect("book snapshot: levels");
            let mut side = BTreeMap::new();
            for _ in 0..levels {
                let price = u32::decode(r).expect("book snapshot: price");
                let depth = u64::decode(r).expect("book snapshot: depth");
                let mut queue = VecDeque::with_capacity(depth as usize);
                for _ in 0..depth {
                    let id = u64::decode(r).expect("book snapshot: id");
                    let qty = u32::decode(r).expect("book snapshot: qty");
                    queue.push_back(Resting { id, qty });
                }
                side.insert(price, queue);
            }
            side
        }
        let mut r = WireReader::new(bytes);
        self.next_id = u64::decode(&mut r).expect("book snapshot: next_id");
        self.state_xor = u64::decode(&mut r).expect("book snapshot: state_xor");
        self.executed = u64::decode(&mut r).expect("book snapshot: executed");
        self.bids = decode_side(&mut r);
        self.asks = decode_side(&mut r);
    }

    fn execute_cost(&self, _request: &[u8]) -> Duration {
        // Calibrated so unreplicated Liquibook lands near 5.6 µs p90.
        Duration::from_nanos(3_200)
    }

    fn sequential_model(&self) -> Option<Box<dyn App>> {
        Some(Box::new(OrderBookApp::new()))
    }

    fn name(&self) -> &'static str {
        "liquibook"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buy(price: u32, qty: u32) -> Vec<u8> {
        OrderOp::Buy { price, qty }.to_bytes()
    }
    fn sell(price: u32, qty: u32) -> Vec<u8> {
        OrderOp::Sell { price, qty }.to_bytes()
    }

    fn fills(resp: &[u8]) -> Vec<Fill> {
        assert_eq!(resp[0], 0);
        let mut r = WireReader::new(&resp[1..]);
        ubft_types::wire::decode_seq(&mut r).unwrap()
    }

    #[test]
    fn resting_order_then_match() {
        let mut book = OrderBookApp::new();
        assert!(fills(&book.execute(&sell(100, 10))).is_empty());
        let f = fills(&book.execute(&buy(105, 4)));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].price, 100, "execution at the resting order's price");
        assert_eq!(f[0].qty, 4);
        assert_eq!(book.depth(), 1, "partial fill leaves the remainder resting");
    }

    #[test]
    fn no_cross_no_fill() {
        let mut book = OrderBookApp::new();
        book.execute(&sell(100, 10));
        assert!(fills(&book.execute(&buy(99, 5))).is_empty());
        assert_eq!(book.best_bid(), Some(99));
        assert_eq!(book.best_ask(), Some(100));
    }

    #[test]
    fn price_priority() {
        let mut book = OrderBookApp::new();
        book.execute(&sell(102, 5));
        book.execute(&sell(100, 5));
        let f = fills(&book.execute(&buy(105, 7)));
        // Cheapest ask consumed first.
        assert_eq!(f[0].price, 100);
        assert_eq!(f[0].qty, 5);
        assert_eq!(f[1].price, 102);
        assert_eq!(f[1].qty, 2);
    }

    #[test]
    fn time_priority_within_level() {
        let mut book = OrderBookApp::new();
        book.execute(&sell(100, 3)); // maker id 0
        book.execute(&sell(100, 3)); // maker id 1
        let f = fills(&book.execute(&buy(100, 4)));
        assert_eq!(f[0].maker_id, 0);
        assert_eq!(f[0].qty, 3);
        assert_eq!(f[1].maker_id, 1);
        assert_eq!(f[1].qty, 1);
    }

    #[test]
    fn sweep_clears_levels() {
        let mut book = OrderBookApp::new();
        for p in [100, 101, 102] {
            book.execute(&sell(p, 1));
        }
        let f = fills(&book.execute(&buy(200, 3)));
        assert_eq!(f.len(), 3);
        assert_eq!(book.best_ask(), None);
        assert_eq!(book.depth(), 0);
    }

    #[test]
    fn sell_matches_highest_bid_first() {
        let mut book = OrderBookApp::new();
        book.execute(&buy(100, 2));
        book.execute(&buy(103, 2));
        let f = fills(&book.execute(&sell(99, 3)));
        assert_eq!(f[0].price, 103);
        assert_eq!(f[1].price, 100);
        assert_eq!(f[1].qty, 1);
    }

    #[test]
    fn conservation_of_quantity() {
        // Total filled + resting quantity equals total submitted.
        let mut book = OrderBookApp::new();
        let mut submitted = 0u64;
        let mut filled = 0u64;
        let mut rng: u64 = 0x1234_5678;
        for i in 0..500 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let price = 95 + (rng >> 33) as u32 % 10;
            let qty = 1 + (rng >> 22) as u32 % 9;
            submitted += qty as u64;
            let resp = if i % 2 == 0 {
                book.execute(&buy(price, qty))
            } else {
                book.execute(&sell(price, qty))
            };
            // Each fill counts twice: once of the taker's qty and once of
            // the maker's resting qty, so subtract it twice from "open".
            filled += 2 * fills(&resp).iter().map(|f| f.qty as u64).sum::<u64>();
        }
        let resting: u64 = book
            .bids
            .values()
            .chain(book.asks.values())
            .flat_map(|q| q.iter().map(|o| o.qty as u64))
            .sum();
        assert_eq!(submitted, resting + filled);
    }

    #[test]
    fn book_never_crossed() {
        let mut book = OrderBookApp::new();
        let mut rng: u64 = 42;
        for i in 0..1000 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let price = 90 + (rng >> 33) as u32 % 20;
            let qty = 1 + (rng >> 22) as u32 % 5;
            if i % 2 == 0 {
                book.execute(&buy(price, qty));
            } else {
                book.execute(&sell(price, qty));
            }
            if let (Some(bid), Some(ask)) = (book.best_bid(), book.best_ask()) {
                assert!(bid < ask, "book crossed: bid {bid} >= ask {ask}");
            }
        }
    }

    #[test]
    fn deterministic_replay() {
        let ops: Vec<Vec<u8>> =
            (0..50).map(|i| if i % 3 == 0 { sell(100 + i, 2) } else { buy(98 + i, 3) }).collect();
        let mut a = OrderBookApp::new();
        let mut b = OrderBookApp::new();
        for op in &ops {
            let ra = a.execute(op);
            let rb = b.execute(op);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.snapshot_digest(), b.snapshot_digest());
    }

    #[test]
    fn snapshot_transfer_roundtrip() {
        let mut a = OrderBookApp::new();
        let mut rng: u64 = 7;
        for i in 0..60 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let price = 95 + (rng >> 33) as u32 % 10;
            let qty = 1 + (rng >> 22) as u32 % 5;
            if i % 2 == 0 {
                a.execute(&buy(price, qty));
            } else {
                a.execute(&sell(price, qty));
            }
        }
        let mut b = OrderBookApp::new();
        b.restore_bytes(&a.snapshot_bytes());
        assert_eq!(b.snapshot_digest(), a.snapshot_digest());
        assert_eq!(b.depth(), a.depth());
        assert_eq!(b.best_bid(), a.best_bid());
        assert_eq!(b.best_ask(), a.best_ask());
        // Identical evolution after restore: same fills, same digests.
        assert_eq!(a.execute(&buy(200, 3)), b.execute(&buy(200, 3)));
        assert_eq!(a.snapshot_digest(), b.snapshot_digest());
    }

    #[test]
    fn malformed_order_rejected() {
        let mut book = OrderBookApp::new();
        assert_eq!(book.execute(&[9, 9]), vec![0xFF]);
    }
}
