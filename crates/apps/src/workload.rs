//! Deterministic workload generators matching §7.1.

use ubft_types::wire::Wire;

use crate::kv::KvOp;
use crate::orderbook::OrderOp;

/// A simple deterministic generator (SplitMix64) decoupled from the
/// simulator's RNG so workloads are identical across systems under test.
#[derive(Clone, Debug)]
pub struct WorkloadRng(u64);

impl WorkloadRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        WorkloadRng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, bound: u64) -> u64 {
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }
}

/// Fixed-size payloads for Flip / no-op sweeps.
pub fn flip_request(rng: &mut WorkloadRng, size: usize) -> Vec<u8> {
    let mut buf = vec![0u8; size];
    for b in buf.iter_mut() {
        *b = rng.next() as u8;
    }
    buf
}

/// The paper's KV mix: 16 B keys, 32 B values, 30% GET of which 80% hit.
/// Keys are drawn from a pool sized so the hit rate holds.
pub fn kv_request(rng: &mut WorkloadRng, populated: &mut u64) -> Vec<u8> {
    let is_get = rng.range(100) < 30;
    if is_get && *populated > 0 {
        // 80% of GETs target an existing key.
        let hit = rng.range(100) < 80;
        let key_id = if hit { rng.range(*populated) } else { *populated + rng.range(1000) };
        KvOp::Get { key: key_bytes(key_id) }.to_bytes()
    } else {
        let key_id = *populated;
        *populated += 1;
        let mut value = vec![0u8; 32];
        for b in value.iter_mut() {
            *b = rng.next() as u8;
        }
        KvOp::Set { key: key_bytes(key_id), value }.to_bytes()
    }
}

fn key_bytes(id: u64) -> Vec<u8> {
    let mut key = vec![0u8; 16];
    key[..8].copy_from_slice(&id.to_le_bytes());
    key
}

/// The paper's Liquibook mix: 50% BUY / 50% SELL, prices in a narrow band.
pub fn order_request(rng: &mut WorkloadRng) -> Vec<u8> {
    let price = 995 + rng.range(10) as u32;
    let qty = 1 + rng.range(10) as u32;
    if rng.range(2) == 0 {
        OrderOp::Buy { price, qty }.to_bytes()
    } else {
        OrderOp::Sell { price, qty }.to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = WorkloadRng::new(9);
        let mut b = WorkloadRng::new(9);
        let mut pa = 0;
        let mut pb = 0;
        for _ in 0..100 {
            assert_eq!(kv_request(&mut a, &mut pa), kv_request(&mut b, &mut pb));
        }
    }

    #[test]
    fn kv_mix_ratio_roughly_holds() {
        let mut rng = WorkloadRng::new(3);
        let mut populated = 0;
        let mut gets = 0;
        let n = 10_000;
        for _ in 0..n {
            let req = kv_request(&mut rng, &mut populated);
            if let Ok(KvOp::Get { .. }) = KvOp::from_bytes(&req) {
                gets += 1;
            }
        }
        let ratio = gets as f64 / n as f64;
        assert!((0.25..0.35).contains(&ratio), "GET ratio {ratio}");
    }

    #[test]
    fn flip_request_sizes() {
        let mut rng = WorkloadRng::new(1);
        assert_eq!(flip_request(&mut rng, 32).len(), 32);
        assert_eq!(flip_request(&mut rng, 2048).len(), 2048);
    }

    #[test]
    fn orders_parse() {
        let mut rng = WorkloadRng::new(7);
        for _ in 0..100 {
            let req = order_request(&mut rng);
            assert!(OrderOp::from_bytes(&req).is_ok());
        }
    }
}
