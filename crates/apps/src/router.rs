//! Key-hash request routing across sharded consensus groups.
//!
//! uBFT keeps each replica group small (`2f + 1` replicas, bounded memory)
//! precisely so that *many* groups can share one pool of disaggregated
//! memory. [`ShardRouter`] is the client-side half of that deployment
//! story: it maps each request to the consensus group that owns its slice
//! of the key space. Keyed requests (anything that parses as a
//! [`KvOp`]) route by an FNV-1a hash of the key, so the
//! same key always lands on the same group; keyless requests (Flip
//! payloads, order-book operations, no-ops) round-robin across groups.
//!
//! Classification is a wire-format sniff: a payload is "keyed" iff it
//! decodes as a `KvOp`, so a raw-byte workload can occasionally produce a
//! payload that happens to frame as one and hash-routes instead of
//! round-robining. Routing stays deterministic per payload either way;
//! workloads that need strict round-robin should avoid the `KvOp` wire
//! form (e.g. lead with a byte above `0x02`, as no valid tag exceeds it).

use ubft_types::wire::Wire;

use crate::kv::KvOp;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over `bytes`: cheap, deterministic, and well-mixed for the short
/// keys the paper's KV workloads use (16 B).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Routes requests to one of `groups` consensus groups.
///
/// Routing of keyed requests is a pure function of the key (two routers
/// with the same group count always agree); only the round-robin fallback
/// for keyless requests carries state.
#[derive(Clone, Debug)]
pub struct ShardRouter {
    groups: usize,
    next_rr: u64,
}

impl ShardRouter {
    /// A router over `groups` groups (clamped to at least one).
    pub fn new(groups: usize) -> Self {
        ShardRouter { groups: groups.max(1), next_rr: 0 }
    }

    /// Number of groups this router spreads over.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The group owning `key` — deterministic, instance-independent.
    pub fn route_key(&self, key: &[u8]) -> usize {
        (fnv1a(key) % self.groups as u64) as usize
    }

    /// The key a request payload addresses, if it parses as a keyed
    /// operation.
    pub fn extract_key(payload: &[u8]) -> Option<Vec<u8>> {
        match KvOp::from_bytes(payload) {
            Ok(KvOp::Get { key }) | Ok(KvOp::Set { key, .. }) | Ok(KvOp::Del { key }) => Some(key),
            Err(_) => None,
        }
    }

    /// Routes one request payload: keyed requests go to the key's group,
    /// keyless ones round-robin.
    pub fn route(&mut self, payload: &[u8]) -> usize {
        match Self::extract_key(payload) {
            Some(key) => self.route_key(&key),
            None => {
                let g = (self.next_rr % self.groups as u64) as usize;
                self.next_rr += 1;
                g
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(key: &[u8]) -> Vec<u8> {
        KvOp::Set { key: key.to_vec(), value: vec![7; 32] }.to_bytes()
    }

    #[test]
    fn keyed_routing_is_deterministic_and_op_independent() {
        let mut a = ShardRouter::new(4);
        let mut b = ShardRouter::new(4);
        for i in 0..200u64 {
            let key = i.to_le_bytes();
            let get = KvOp::Get { key: key.to_vec() }.to_bytes();
            let del = KvOp::Del { key: key.to_vec() }.to_bytes();
            let g = a.route(&set(&key));
            assert!(g < 4);
            assert_eq!(g, b.route(&get), "GET and SET of one key must colocate");
            assert_eq!(g, a.route(&del));
            assert_eq!(g, a.route_key(&key));
        }
    }

    #[test]
    fn keyless_requests_round_robin() {
        let mut r = ShardRouter::new(3);
        let hits: Vec<usize> = (0..6).map(|_| r.route(&[0xFF, 0x00, 0x01])).collect();
        assert_eq!(hits, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn single_group_routes_everything_to_zero() {
        let mut r = ShardRouter::new(1);
        assert_eq!(r.route(&set(b"any-key")), 0);
        assert_eq!(r.route(&[1, 2, 3]), 0);
        assert_eq!(ShardRouter::new(0).groups(), 1);
    }

    #[test]
    fn keys_spread_over_groups() {
        let r = ShardRouter::new(8);
        let mut seen = [0usize; 8];
        for i in 0..1024u64 {
            seen[r.route_key(&i.to_le_bytes())] += 1;
        }
        // FNV over distinct keys must not collapse onto few groups.
        assert!(seen.iter().all(|&c| c > 1024 / 16), "skewed spread: {seen:?}");
    }
}
