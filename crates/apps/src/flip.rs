//! Flip: the paper's toy application that reverses its input (§7.1).

use ubft_core::App;
use ubft_crypto::{sha256, Digest};
use ubft_types::Duration;

/// Reverses each request's bytes. 32 B requests/responses in Figure 7.
#[derive(Clone, Debug, Default)]
pub struct FlipApp {
    executed: u64,
    history: u64,
}

impl FlipApp {
    /// Creates a fresh instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }
}

impl App for FlipApp {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        self.executed += 1;
        // Fold the request into the state digest so snapshots reflect
        // history content, not just length.
        self.history = self
            .history
            .wrapping_mul(0x100000001B3)
            .wrapping_add(ubft_crypto::checksum64(0, request));
        request.iter().rev().copied().collect()
    }

    fn snapshot_digest(&self) -> Digest {
        let mut buf = self.executed.to_le_bytes().to_vec();
        buf.extend_from_slice(&self.history.to_le_bytes());
        sha256(&buf)
    }

    fn snapshot_bytes(&self) -> Vec<u8> {
        let mut buf = self.executed.to_le_bytes().to_vec();
        buf.extend_from_slice(&self.history.to_le_bytes());
        buf
    }

    fn restore_bytes(&mut self, bytes: &[u8]) {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[..8]);
        self.executed = u64::from_le_bytes(b);
        b.copy_from_slice(&bytes[8..16]);
        self.history = u64::from_le_bytes(b);
    }

    fn execute_cost(&self, _request: &[u8]) -> Duration {
        // Calibrated so unreplicated Flip lands near the paper's 2.4 µs p90.
        Duration::from_nanos(150)
    }

    fn sequential_model(&self) -> Option<Box<dyn App>> {
        Some(Box::new(FlipApp::new()))
    }

    fn name(&self) -> &'static str {
        "flip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverses_input() {
        let mut app = FlipApp::new();
        assert_eq!(app.execute(b"abc"), b"cba");
        assert_eq!(app.execute(b""), b"");
        assert_eq!(app.executed(), 2);
    }

    #[test]
    fn deterministic_snapshots() {
        let mut a = FlipApp::new();
        let mut b = FlipApp::new();
        for req in [b"one".as_slice(), b"two", b"three"] {
            a.execute(req);
            b.execute(req);
        }
        assert_eq!(a.snapshot_digest(), b.snapshot_digest());
    }

    #[test]
    fn snapshot_transfer_roundtrip() {
        let mut a = FlipApp::new();
        a.execute(b"abc");
        a.execute(b"def");
        let mut b = FlipApp::new();
        b.restore_bytes(&a.snapshot_bytes());
        assert_eq!(b.snapshot_digest(), a.snapshot_digest());
        // The restored instance evolves identically.
        assert_eq!(a.execute(b"xyz"), b.execute(b"xyz"));
        assert_eq!(a.snapshot_digest(), b.snapshot_digest());
    }

    #[test]
    fn snapshot_reflects_content_not_just_count() {
        let mut a = FlipApp::new();
        let mut b = FlipApp::new();
        a.execute(b"x");
        b.execute(b"y");
        assert_ne!(a.snapshot_digest(), b.snapshot_digest());
    }
}
