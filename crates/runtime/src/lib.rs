//! The simulation runtime: wires the sans-IO protocol state machines onto
//! the simulated RDMA fabric, charges calibrated virtual-time costs, and
//! drives closed-loop clients to produce the paper's latency distributions.
//!
//! * [`cluster::Cluster`] — a full single-group uBFT deployment: `2f + 1`
//!   replica engines with per-stream CTBcast instances, TBcast lanes over
//!   circular-buffer channels, SWMR register banks on `2f_m + 1` memory
//!   nodes, a crypto-pool model, timers, and closed-loop clients. A thin
//!   facade over the private `node` (per-replica state) and `group` (event
//!   loop and lanes) modules.
//! * [`sharded::ShardedCluster`] — `G` such groups sharing one fabric,
//!   one event queue, and one set of memory nodes, with requests routed
//!   per key by [`ubft_apps::ShardRouter`].
//! * [`baselines`] — the comparison systems measured the same way:
//!   unreplicated execution, Mu, and MinBFT (vanilla + HMAC).
//! * [`calibration`] — every latency/cost constant in one place (simulated
//!   Table 1), plus the shard/batch knobs.
//! * [`memory`] — replica-local and disaggregated memory accounting
//!   (Table 2), with per-shard breakdowns.

pub mod audit;
pub mod baselines;
pub mod calibration;
pub mod cluster;
pub mod memory;
pub mod sharded;
pub mod threads;

mod group;
mod node;

pub use audit::{AuditMutation, AuditReport, AuditViolation, Auditor, ViolationKind};
pub use calibration::{Backend, SimConfig};
pub use cluster::{Cluster, OpCounters, RunReport};
pub use sharded::{ShardReport, ShardedCluster};
pub use threads::{
    run_backend, run_wallclock, ThreadWorkload, WallGroupReport, WallOptions, WallReplicaReport,
    WallReport,
};
