//! The omniscient safety auditor: online invariant checking for every run.
//!
//! The simulator owns both sides of every wire, so — unlike a deployed
//! system — a test run can be audited *omnisciently*: the auditor observes
//! every decision, execution, and checkpoint of every replica in every
//! group and cross-checks them against uBFT's headline guarantees, every
//! event, not just at hand-picked assertion points. Enabled per run via
//! [`SimConfig::with_audit`](crate::SimConfig::with_audit); the resulting
//! [`AuditReport`] rides on [`RunReport`](crate::RunReport) (and each
//! shard's report), and violations are *test failures*, never panics — a
//! chaos explorer wants to shrink a violating plan, not die on it.
//!
//! Invariants checked (uBFT extended version, §2/§5):
//!
//! 1. **Per-slot agreement** — no two correct replicas decide or execute
//!    different batches at the same sequence number, and their per-request
//!    responses match byte for byte.
//! 2. **Certified-commit coverage** — every decision is backed by
//!    sufficient evidence: all `n` WILL_COMMITs on the fast path, or an
//!    `f + 1` certificate/COMMIT quorum otherwise
//!    ([`DecisionEvidence`]).
//! 3. **Linearizability** — the canonical executed sequence replayed
//!    through a fresh *sequential model* of the application
//!    ([`App::sequential_model`]) reproduces every correct replica's
//!    state digest at its execution frontier, every certified checkpoint
//!    digest, and every response.
//! 4. **Bounded memory** — decided slots stay within the paper's
//!    two-window bound of the decider's stable checkpoint, retained
//!    state-transfer snapshots never exceed their cap, and the
//!    disaggregated register footprint never grows past its build-time
//!    size (what [`MemoryReport`](crate::memory::MemoryReport) accounts).
//! 5. **Cross-shard containment** — every keyed request executes in the
//!    group its key routes to ([`ShardRouter`]), so no request leaks
//!    across shard boundaries.
//!
//! The auditor is an observer: it charges no virtual time, emits no
//! events, and consumes no randomness, so an audited run is bit-for-bit
//! identical to an unaudited one.

use std::collections::BTreeMap;

use ubft_apps::ShardRouter;
use ubft_core::app::App;
use ubft_core::engine::{DecisionEvidence, DecisionRecord};
use ubft_crypto::{sha256, Digest};
use ubft_sim::failure::Fault;
use ubft_types::{RequestId, Slot};

use crate::group::GroupRuntime;
use crate::node::SNAPSHOT_RETAIN;

/// A deliberately injected bug for auditor self-tests: an auditor that
/// cannot fail is untested, so these mutations break one safety mechanism
/// behind a test hook and the mutation tests assert the [`Auditor`]
/// catches the damage. Set via
/// [`SimConfig::with_audit_mutation`](crate::SimConfig::with_audit_mutation);
/// never in production configurations. In a sharded deployment the
/// mutation applies to the named replica of *every* group (self-tests run
/// single-group).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditMutation {
    /// The replica decides on the first WILL_COMMIT / COMMIT instead of
    /// the full quorum — skipping the certificate check. Caught by the
    /// certified-commit-coverage invariant.
    DecideEarly {
        /// The sabotaged replica.
        replica: usize,
    },
    /// The replica applies every decided request to its application twice.
    /// Caught by the linearizability invariant (state digest diverges from
    /// the sequential model) and by checkpoint-digest agreement.
    DoubleExecute {
        /// The sabotaged replica.
        replica: usize,
    },
    /// The replica flips a byte of each request payload before executing
    /// it. Caught by per-slot execution agreement (payload and response
    /// mismatch against the canonical record).
    CorruptExecution {
        /// The sabotaged replica.
        replica: usize,
    },
}

/// Which invariant a violation breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two correct replicas decided or executed different content at one
    /// slot (or their responses differ).
    SlotAgreement,
    /// A decision lacked its quorum/certificate evidence.
    CommitCoverage,
    /// A replica's state or response diverges from the sequential model.
    Linearizability,
    /// A bounded-memory bound was exceeded.
    BoundedMemory,
    /// A request executed in a group its key does not route to.
    ShardContainment,
}

/// One invariant violation, locatable enough to debug from the report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditViolation {
    /// The group (shard) the violation was observed in.
    pub group: usize,
    /// The replica involved, if attributable.
    pub replica: Option<usize>,
    /// The slot involved, if attributable.
    pub slot: Option<Slot>,
    /// The invariant broken.
    pub kind: ViolationKind,
    /// Human-readable evidence.
    pub detail: String,
}

/// The auditor's verdict for one run. Attached to
/// [`RunReport`](crate::RunReport) when auditing is enabled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Every invariant violation observed (empty for a clean run).
    pub violations: Vec<AuditViolation>,
    /// Decisions checked against their evidence thresholds.
    pub decisions_checked: u64,
    /// Request executions checked for agreement/containment.
    pub executions_checked: u64,
    /// Slots replayed through the sequential models.
    pub model_slots_replayed: u64,
    /// Replica state digests compared against the models.
    pub replicas_compared: usize,
    /// Replicas excluded from state comparison (Byzantine by plan, or a
    /// recorded state-transfer miss left their state unaccounted).
    pub replicas_skipped: usize,
}

impl AuditReport {
    /// Whether the run satisfied every audited invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// This report restricted to one group's violations (the global check
    /// counters are kept as-is; they describe the whole run).
    pub fn for_group(&self, group: usize) -> AuditReport {
        let mut r = self.clone();
        r.violations.retain(|v| v.group == group);
        r
    }
}

/// Canonical record of one executed slot: what the first correct executor
/// did, which every later executor must reproduce byte for byte.
#[derive(Default)]
struct CanonSlot {
    /// Executed request payloads, in intra-slot order, exactly as applied.
    payloads: Vec<Vec<u8>>,
    /// The request ids those payloads carried.
    ids: Vec<RequestId>,
    /// Digest of each response.
    responses: Vec<Digest>,
}

/// Per-replica audit bookkeeping.
#[derive(Default)]
struct ReplicaAudit {
    /// How many requests of each slot this replica has executed.
    exec_pos: BTreeMap<Slot, usize>,
    /// Decision evidence per slot (latest incarnation wins — a replacement
    /// node re-decides replayed slots).
    decided: BTreeMap<Slot, Digest>,
    /// Highest checkpoint base this replica adopted (monotonicity check).
    adopted_base: Slot,
    /// The plan says this replica misbehaves; exclude it from agreement
    /// and model checks (its divergence is legal).
    byzantine: bool,
    /// A state transfer found no donor snapshot (or failed verification):
    /// the runtime's documented fast-forward fallback applies and this
    /// replica's state is unaccounted — skip its model comparison.
    transfer_miss: bool,
}

/// One group's audit state.
struct GroupAudit {
    n: usize,
    quorum: usize,
    window: usize,
    /// Sequential model (a fresh instance of the group's application) and
    /// the digests after each replayed slot: `model_digests[s]` is the
    /// state digest with every slot `< s` applied (`[0]` = genesis).
    model: Option<Box<dyn App>>,
    model_digests: Vec<Digest>,
    canon: BTreeMap<Slot, CanonSlot>,
    canon_decisions: BTreeMap<Slot, Digest>,
    /// First certified checkpoint digest seen per base (canonical).
    checkpoint_digests: BTreeMap<Slot, Digest>,
    replicas: Vec<ReplicaAudit>,
    /// Register-bank bytes per memory node at build time; they may never
    /// grow (bounded disaggregated memory).
    disagg_bytes_at_build: usize,
}

/// The omniscient auditor: one per deployment, observing every group.
pub struct Auditor {
    groups: Vec<GroupAudit>,
    router: ShardRouter,
    violations: Vec<AuditViolation>,
    decisions_checked: u64,
    executions_checked: u64,
}

impl Auditor {
    /// Builds the auditor for a freshly constructed deployment, reading
    /// each group's shape, fault plan (for Byzantine classification — the
    /// auditor is omniscient, it *knows* who the adversary controls), and
    /// sequential model.
    pub(crate) fn new(groups: &[GroupRuntime]) -> Auditor {
        let audits = groups
            .iter()
            .map(|g| {
                let n = g.cfg.params.n();
                let genesis: Vec<Digest> = vec![g.nodes[0].app.snapshot_digest()];
                let mut replicas: Vec<ReplicaAudit> =
                    (0..n).map(|_| ReplicaAudit::default()).collect();
                for f in g.cfg.failures.faults() {
                    if let Fault::Byzantine { index, .. } = f {
                        if *index < n {
                            replicas[*index].byzantine = true;
                        }
                    }
                }
                GroupAudit {
                    n,
                    quorum: g.cfg.params.quorum(),
                    window: g.cfg.params.window,
                    model: g.nodes[0].app.sequential_model(),
                    model_digests: genesis,
                    canon: BTreeMap::new(),
                    canon_decisions: BTreeMap::new(),
                    checkpoint_digests: BTreeMap::new(),
                    replicas,
                    disagg_bytes_at_build: g.disagg_bytes_per_node(),
                }
            })
            .collect();
        Auditor {
            router: ShardRouter::new(groups.len()),
            groups: audits,
            violations: Vec::new(),
            decisions_checked: 0,
            executions_checked: 0,
        }
    }

    fn violate(
        &mut self,
        group: usize,
        replica: Option<usize>,
        slot: Option<Slot>,
        kind: ViolationKind,
        detail: String,
    ) {
        // Cap the list: a systematically broken run would otherwise
        // accumulate one violation per request.
        if self.violations.len() < 256 {
            self.violations.push(AuditViolation { group, replica, slot, kind, detail });
        }
    }

    /// A replica decided a slot ([`DecisionRecord`] drained from its
    /// engine). Checks evidence thresholds, cross-replica decision
    /// agreement, and the two-window bound.
    pub(crate) fn on_decision(&mut self, group: usize, replica: usize, rec: DecisionRecord) {
        self.decisions_checked += 1;
        let ga = &mut self.groups[group];
        if ga.replicas[replica].byzantine {
            return;
        }
        let (n, quorum, window) = (ga.n, ga.quorum, ga.window);
        // Certified-commit coverage: the evidence must meet its threshold.
        let (enough, describe) = match rec.evidence {
            DecisionEvidence::FastQuorum { votes } => {
                (votes >= n, format!("{votes} WILL_COMMIT votes (fast path needs all {n})"))
            }
            DecisionEvidence::CommitQuorum { commits } => {
                (commits >= quorum, format!("{commits} COMMITs (needs f+1 = {quorum})"))
            }
            DecisionEvidence::JoinReplay { shares } => {
                (shares >= quorum, format!("{shares} certificate shares (needs f+1 = {quorum})"))
            }
        };
        if !enough {
            self.violate(
                group,
                Some(replica),
                Some(rec.slot),
                ViolationKind::CommitCoverage,
                format!("decided slot {} on insufficient evidence: {describe}", rec.slot.0),
            );
        }
        // Bounded memory: a decision outside two windows of the decider's
        // stable base means per-slot state is no longer bounded.
        let hi = rec.base.0 + 2 * window as u64;
        if rec.slot < rec.base || rec.slot.0 >= hi {
            self.violate(
                group,
                Some(replica),
                Some(rec.slot),
                ViolationKind::BoundedMemory,
                format!(
                    "decided slot {} outside the two-window bound [{}, {}) of its checkpoint",
                    rec.slot.0, rec.base.0, hi
                ),
            );
        }
        // Agreement at decision level: every correct replica's decision for
        // a slot must carry one batch digest.
        let ga = &mut self.groups[group];
        ga.replicas[replica].decided.insert(rec.slot, rec.batch_digest);
        match ga.canon_decisions.get(&rec.slot) {
            None => {
                ga.canon_decisions.insert(rec.slot, rec.batch_digest);
            }
            Some(canon) if *canon != rec.batch_digest => {
                let canon = *canon;
                self.violate(
                    group,
                    Some(replica),
                    Some(rec.slot),
                    ViolationKind::SlotAgreement,
                    format!(
                        "decided batch {} at slot {} but another correct replica decided {}",
                        rec.batch_digest, rec.slot.0, canon
                    ),
                );
            }
            Some(_) => {}
        }
    }

    /// A replica executed one request of a slot (in intra-slot order).
    /// `payload` is the bytes actually applied to the application and
    /// `response` the bytes it returned.
    pub(crate) fn on_execute(
        &mut self,
        group: usize,
        replica: usize,
        slot: Slot,
        id: RequestId,
        payload: &[u8],
        response: &[u8],
    ) {
        self.executions_checked += 1;
        {
            let ra = &self.groups[group].replicas[replica];
            // Byzantine replicas may legally diverge; a transfer-missed
            // replica runs on unaccounted state (documented fallback), so
            // neither may seed or be judged against the canonical record.
            if ra.byzantine || ra.transfer_miss {
                return;
            }
        }
        // Cross-shard containment: a keyed request may only execute in the
        // group its key hashes to.
        if self.groups.len() > 1 {
            if let Some(key) = ShardRouter::extract_key(payload) {
                let owner = self.router.route_key(&key);
                if owner != group {
                    self.violate(
                        group,
                        Some(replica),
                        Some(slot),
                        ViolationKind::ShardContainment,
                        format!("executed a request whose key routes to shard {owner}"),
                    );
                }
            }
        }
        // Certified-commit coverage: an execution without a recorded
        // decision is a slot that was never decided on this replica.
        let ga = &mut self.groups[group];
        if !ga.replicas[replica].decided.contains_key(&slot) {
            self.violate(
                group,
                Some(replica),
                Some(slot),
                ViolationKind::CommitCoverage,
                format!("executed slot {} without a recorded decision", slot.0),
            );
        }
        // Per-slot execution agreement: every correct replica must apply
        // the same payloads in the same order and see the same responses.
        let ga = &mut self.groups[group];
        let pos = {
            let e = ga.replicas[replica].exec_pos.entry(slot).or_insert(0);
            let pos = *e;
            *e += 1;
            pos
        };
        let canon = ga.canon.entry(slot).or_default();
        let resp_digest = sha256(response);
        if pos < canon.payloads.len() {
            if canon.payloads[pos] != payload || canon.ids[pos] != id {
                self.violate(
                    group,
                    Some(replica),
                    Some(slot),
                    ViolationKind::SlotAgreement,
                    format!(
                        "request #{pos} of slot {} differs from the canonical execution",
                        slot.0
                    ),
                );
            } else if canon.responses[pos] != resp_digest {
                self.violate(
                    group,
                    Some(replica),
                    Some(slot),
                    ViolationKind::SlotAgreement,
                    format!(
                        "response to request #{pos} of slot {} differs from the canonical one",
                        slot.0
                    ),
                );
            }
        } else {
            canon.payloads.push(payload.to_vec());
            canon.ids.push(id);
            canon.responses.push(resp_digest);
        }
    }

    /// A replica computed its checkpoint digest at `base` (every slot
    /// `< base` applied). All correct replicas must agree; the model is
    /// compared at finalize time.
    pub(crate) fn on_checkpoint_digest(
        &mut self,
        group: usize,
        replica: usize,
        base: Slot,
        digest: Digest,
    ) {
        let ga = &mut self.groups[group];
        if ga.replicas[replica].byzantine || ga.replicas[replica].transfer_miss {
            return;
        }
        match ga.checkpoint_digests.get(&base) {
            None => {
                ga.checkpoint_digests.insert(base, digest);
            }
            Some(prev) if *prev != digest => {
                self.violate(
                    group,
                    Some(replica),
                    Some(base),
                    ViolationKind::SlotAgreement,
                    format!("checkpoint digest at base {} differs across correct replicas", base.0),
                );
            }
            Some(_) => {}
        }
    }

    /// A replica adopted a certified checkpoint at `base`; bases must be
    /// non-decreasing per replica (a regressing base would re-open
    /// forgotten slots).
    pub(crate) fn on_checkpoint_adopted(&mut self, group: usize, replica: usize, base: Slot) {
        let ga = &mut self.groups[group];
        let ra = &mut ga.replicas[replica];
        if base < ra.adopted_base {
            let prev = ra.adopted_base;
            self.violate(
                group,
                Some(replica),
                Some(base),
                ViolationKind::BoundedMemory,
                format!("checkpoint base regressed from {} to {}", prev.0, base.0),
            );
        } else {
            ra.adopted_base = base;
        }
    }

    /// A replacement node reset: its engine starts over, so its recorded
    /// decisions no longer describe the new incarnation — and the fresh
    /// node boots from genesis (canonical state), so a predecessor's
    /// transfer miss must not keep *it* unaccounted.
    pub(crate) fn on_replace(&mut self, group: usize, replica: usize) {
        let ra = &mut self.groups[group].replicas[replica];
        ra.decided.clear();
        ra.exec_pos.clear();
        ra.adopted_base = Slot(0);
        ra.transfer_miss = false;
    }

    /// A state transfer found no (verifiable) donor snapshot: the replica
    /// fast-forwarded and its application state is unaccounted. From here
    /// on the auditor stops vouching for (or recording canon from) this
    /// replica's state — the divergence is the runtime's *documented*
    /// fallback, surfaced in diagnostics, not a safety violation.
    pub(crate) fn on_transfer_miss(&mut self, group: usize, replica: usize) {
        self.groups[group].replicas[replica].transfer_miss = true;
    }

    /// A later state transfer restored the replica to certified state: it
    /// is accounted for again.
    pub(crate) fn on_transfer_restored(&mut self, group: usize, replica: usize) {
        self.groups[group].replicas[replica].transfer_miss = false;
    }

    /// Produces the report: replays the canonical execution through each
    /// group's sequential model (incrementally — repeated calls replay only
    /// new slots), compares every correct replica's digest at its
    /// execution frontier, re-checks checkpoint digests against the model,
    /// and audits the memory bounds. Idempotent.
    pub(crate) fn report(&mut self, groups: &[GroupRuntime]) -> AuditReport {
        // Replay first: response-mismatch violations found during replay
        // land in the persistent list (incrementally, so repeated reports
        // never duplicate them) and must be part of this report.
        for g in 0..self.groups.len() {
            self.replay_model(g);
        }
        let mut report = AuditReport {
            violations: self.violations.clone(),
            decisions_checked: self.decisions_checked,
            executions_checked: self.executions_checked,
            ..AuditReport::default()
        };
        for (g, gr) in groups.iter().enumerate() {
            let ga = &self.groups[g];
            report.model_slots_replayed += (ga.model_digests.len() - 1) as u64;
            // Replica state vs the sequential model at its frontier.
            for r in 0..ga.n {
                let ra = &ga.replicas[r];
                if ra.byzantine || ra.transfer_miss || ga.model.is_none() {
                    report.replicas_skipped += 1;
                    continue;
                }
                // The replica's state must be *some* canonical prefix at or
                // below its engine frontier: a crashed (or not-yet-settled)
                // replica can hold decided-but-unapplied slots in a
                // deferred crypto batch, so its application legally sits a
                // few slots behind `exec_next` — but never off the
                // canonical sequence.
                let frontier = gr.exec_next(r).0 as usize;
                let got = gr.app_digest(r);
                let replayed = ga.model_digests.len() - 1;
                let upto = frontier.min(replayed);
                let on_prefix = ga.model_digests[..=upto].iter().rev().any(|d| *d == got);
                if on_prefix {
                    report.replicas_compared += 1;
                } else if frontier > replayed {
                    // The model could not be replayed to this replica's
                    // frontier (canonical gap — every executor of the gap
                    // was excluded above). Nothing sound to compare.
                    report.replicas_skipped += 1;
                } else {
                    report.replicas_compared += 1;
                    report.violations.push(AuditViolation {
                        group: g,
                        replica: Some(r),
                        slot: Some(Slot(frontier as u64)),
                        kind: ViolationKind::Linearizability,
                        detail: format!(
                            "state digest matches no canonical prefix up to its execution \
                             frontier {frontier}"
                        ),
                    });
                }
            }
            // Checkpoint digests vs the model.
            let ga = &self.groups[g];
            for (base, digest) in &ga.checkpoint_digests {
                let b = base.0 as usize;
                if b < ga.model_digests.len() && ga.model_digests[b] != *digest {
                    report.violations.push(AuditViolation {
                        group: g,
                        replica: None,
                        slot: Some(*base),
                        kind: ViolationKind::Linearizability,
                        detail: format!(
                            "certified checkpoint digest at base {b} diverges from the sequential \
                             model"
                        ),
                    });
                }
            }
            // Bounded memory: the disaggregated footprint is fixed at build
            // time, and snapshot retention is capped.
            if gr.disagg_bytes_per_node() != ga.disagg_bytes_at_build {
                report.violations.push(AuditViolation {
                    group: g,
                    replica: None,
                    slot: None,
                    kind: ViolationKind::BoundedMemory,
                    detail: format!(
                        "disaggregated bytes per node changed from {} to {} during the run",
                        ga.disagg_bytes_at_build,
                        gr.disagg_bytes_per_node()
                    ),
                });
            }
            for r in 0..ga.n {
                let kept = gr.snapshot_count(r);
                if kept > SNAPSHOT_RETAIN {
                    report.violations.push(AuditViolation {
                        group: g,
                        replica: Some(r),
                        slot: None,
                        kind: ViolationKind::BoundedMemory,
                        detail: format!(
                            "retains {kept} checkpoint snapshots (cap {SNAPSHOT_RETAIN})"
                        ),
                    });
                }
            }
        }
        report
    }

    /// Replays not-yet-replayed canonical slots through group `g`'s model,
    /// extending the per-slot digest cache. Stops at the first gap.
    fn replay_model(&mut self, g: usize) {
        let mut found: Vec<AuditViolation> = Vec::new();
        let ga = &mut self.groups[g];
        if let Some(model) = ga.model.as_mut() {
            loop {
                let next = Slot((ga.model_digests.len() - 1) as u64);
                let Some(canon) = ga.canon.get(&next) else { break };
                for (i, payload) in canon.payloads.iter().enumerate() {
                    let response = model.execute(payload);
                    if sha256(&response) != canon.responses[i] {
                        found.push(AuditViolation {
                            group: g,
                            replica: None,
                            slot: Some(next),
                            kind: ViolationKind::Linearizability,
                            detail: format!(
                                "canonical response to request #{i} of slot {} differs from the \
                                 sequential model's",
                                next.0
                            ),
                        });
                    }
                }
                ga.model_digests.push(model.snapshot_digest());
            }
        }
        self.violations.extend(found);
    }
}
