//! The wall-clock deployment backend ([`Backend::Threads`]): every replica,
//! client driver, and memory node of a deployment runs on its own OS
//! thread, connected by the lock-free in-process channel transport
//! ([`InProcEndpoint`]), with CTBcast signature/digest work offloaded to a
//! sized crypto worker pool.
//!
//! The protocol stack is untouched: the same sans-IO state machines the
//! discrete-event simulator drives — [`Engine`], [`Ctb`],
//! [`TailBroadcaster`]/[`TailReceiver`] — emit the same effect enums here;
//! only the interpreter differs. Where the simulator turns effects into
//! virtual-time events on a shared queue, this backend turns them into
//! real sends on the in-process mesh, real `Instant`-based timers, jobs on
//! the crypto pool, and quorum RPCs to memory-node threads. That is the
//! whole point of the effect-based design: one protocol implementation,
//! two execution substrates.
//!
//! What this backend deliberately does **not** model:
//!
//! * **Failures.** No crashes, Byzantine modes, partitions, replacements,
//!   or auditing — [`run_wallclock`] rejects configs that schedule any.
//!   The wall-clock backend exists to measure real throughput and latency
//!   of the failure-free path; every fault-tolerance property is exercised
//!   deterministically by the simulator backend, which remains bit-for-bit
//!   pinned (`tests/pinned_sim.rs`).
//! * **Calibrated costs.** Real time is the cost model. The engine's
//!   metered [`CryptoOps`](ubft_core::engine::CryptoOps) accounting is
//!   discarded; CTBcast slow-path signatures and verifications run on the
//!   worker pool for real.
//! * **Torn register reads.** The SWMR register banks become memory-node
//!   threads holding a `(group, stream, owner, slot) → (ts, bytes)` store
//!   behind typed control-frame RPCs, with real `f_m + 1` write/read
//!   quorums and max-timestamp merge. Message atomicity makes the regular
//!   register's checksummed sub-register dance unnecessary; quorum
//!   intersection still provides regularity.
//!
//! **Timers and `time_scale`.** Protocol timeouts are calibrated in
//! microseconds of virtual time; a preempted OS thread can easily be late
//! by more than a whole progress timeout, which would trigger spurious
//! view changes. [`SimConfig::time_scale`] stretches every armed timer
//! (not message latency) by a constant factor so scheduling jitter
//! disappears into the slack.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use ubft_core::app::App;
use ubft_core::client::{Client, ClientEffect};
use ubft_core::engine::{Effect, Engine, TimerKind};
use ubft_core::msg::{CtbMsg, DirectMsg, Reply, Request, TbMsg};
use ubft_crypto::{Digest, KeyRing, Signature};
use ubft_ctb::ctbcast::{Ctb, CtbConfig, CtbEffect, RegEntry, SlowMode, VerifyTag};
use ubft_ctb::tbcast::{TailBroadcaster, TailReceiver, TbEffect};
use ubft_ctb::wire::{signed_bytes, CtbWire, TbAck, TbFrame};
use ubft_sim::stats::LatencyStats;
use ubft_transport::inproc::{inproc_mesh, InMsg, InProcEndpoint, InProcRouter};
use ubft_transport::net::{
    LaneId, Transport, LANE_CLIENT_REQ, LANE_CLIENT_RESP, LANE_CONS_TB, LANE_DIRECT,
};
use ubft_types::wire::Wire;
use ubft_types::{ClientId, ProcessId, ReplicaId, SeqId, Time};

use crate::calibration::{Backend, SimConfig};
use crate::group::{engine_config, group_seed};

/// A threaded-deployment workload source for one group: `None` means "no
/// request available right now" (the driver re-asks with backoff). Must be
/// [`Send`] because it moves onto the group's client-driver thread.
pub type ThreadWorkload = Box<dyn FnMut(u64) -> Option<Vec<u8>> + Send>;

/// Knobs of one wall-clock run.
#[derive(Clone, Copy, Debug)]
pub struct WallOptions {
    /// Measured completions to drive (the closed loop stops issuing once
    /// `requests + warmup` total completions land).
    pub requests: u64,
    /// Leading completions excluded from the latency distribution.
    pub warmup: u64,
    /// Hard wall-clock ceiling: the run shuts down (without panicking)
    /// when it is exceeded, reporting whatever completed.
    pub deadline: std::time::Duration,
    /// Extra wall time after the last target completion before shutdown,
    /// letting lagging replicas (a completion needs only `f + 1` replies)
    /// drain their queues so post-run digests compare converged state.
    pub settle: std::time::Duration,
}

impl Default for WallOptions {
    fn default() -> Self {
        WallOptions {
            requests: 200,
            warmup: 0,
            deadline: std::time::Duration::from_secs(120),
            settle: std::time::Duration::from_millis(300),
        }
    }
}

/// One replica's end-of-run state.
#[derive(Clone, Debug)]
pub struct WallReplicaReport {
    /// Individual requests decided (batch contents counted).
    pub decided: u64,
    /// Application state digest at shutdown.
    pub app_digest: Digest,
    /// Every non-noop request executed, in execution order — compared
    /// against the simulator's log by the backend-equivalence suite.
    pub executed: Vec<(ClientId, u64)>,
    /// The view the replica ended in (0 = no view change ever fired).
    pub final_view: u64,
    /// Certified state transfers the engine requested that this backend
    /// could not serve (it keeps no snapshots); nonzero means the run was
    /// overloaded enough for a replica to fall a whole window behind.
    pub transfer_misses: u64,
}

/// One consensus group's end-of-run state.
#[derive(Clone, Debug)]
pub struct WallGroupReport {
    /// Completions this group's clients contributed.
    pub completed: u64,
    /// Per-replica state, in replica order.
    pub replicas: Vec<WallReplicaReport>,
}

/// The result of a wall-clock (or, via [`run_backend`], simulated) run.
#[derive(Clone, Debug)]
pub struct WallReport {
    /// Total completions across all groups.
    pub completed: u64,
    /// Wall time from launch to the target completion (threaded backend),
    /// or the virtual end time (simulator backend via [`run_backend`]).
    pub elapsed: std::time::Duration,
    /// Request latency distribution (wall time for the threaded backend,
    /// virtual time for the simulator), warmup excluded.
    pub latency: LatencyStats,
    /// Per-group state.
    pub groups: Vec<WallGroupReport>,
    /// Which backend produced this report.
    pub backend: Backend,
}

impl WallReport {
    /// Throughput in thousands of requests per second over `elapsed`.
    pub fn kreq_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs / 1_000.0
    }
}

// ----------------------------------------------------------------------
// Mesh layout and control frames
// ----------------------------------------------------------------------

/// Mesh node index of replica `r` of group `g` (`n` replicas per group).
fn replica_node(g: usize, n: usize, r: usize) -> u32 {
    (g * n + r) as u32
}

/// Mesh node index of group `g`'s client-driver thread.
fn driver_node(shards: usize, n: usize, g: usize) -> u32 {
    (shards * n + g) as u32
}

/// Mesh node index of memory node `m`.
fn mem_node(shards: usize, n: usize, m: usize) -> u32 {
    (shards * n + shards + m) as u32
}

/// Typed control frames riding each node's inbox next to protocol bytes.
enum CtlMsg {
    /// Crypto pool: a requested signature is ready.
    SignDone { k: SeqId, sig: Signature },
    /// Crypto pool: a requested verification finished.
    VerifyDone { stream: usize, tag: VerifyTag, ok: bool },
    /// Replica → memory node: store `bytes` under
    /// `(group, stream, owner, slot)` with register timestamp `ts`.
    WriteSlot {
        group: u32,
        stream: u32,
        owner: u32,
        slot: u32,
        ts: u64,
        bytes: Vec<u8>,
        token: u64,
        reply_to: u32,
    },
    /// Memory node → replica: one write replica acknowledged.
    WriteAck { token: u64 },
    /// Replica → memory node: return all `owners` entries of
    /// `(group, stream, ·, slot)`.
    ReadSlot { group: u32, stream: u32, slot: u32, owners: u32, token: u64, reply_to: u32 },
    /// Memory node → replica: one node's view of a slot, per owner.
    ReadResp { token: u64, entries: Vec<Option<(u64, Vec<u8>)>> },
    /// Exit the thread's loop and report.
    Shutdown,
}

// ----------------------------------------------------------------------
// Crypto worker pool
// ----------------------------------------------------------------------

enum CryptoJob {
    Sign {
        node: u32,
        group: usize,
        stream: u32,
        k: SeqId,
        fp: Digest,
    },
    Verify {
        node: u32,
        group: usize,
        stream: u32,
        tag: VerifyTag,
        k: SeqId,
        fp: Digest,
        sig: Signature,
    },
    Stop,
}

/// A plain condvar-signalled job queue shared by the sized worker pool.
struct CryptoPool {
    q: Mutex<VecDeque<CryptoJob>>,
    cv: Condvar,
}

impl CryptoPool {
    fn new() -> Self {
        CryptoPool { q: Mutex::new(VecDeque::new()), cv: Condvar::new() }
    }

    fn push(&self, job: CryptoJob) {
        self.q.lock().expect("crypto queue").push_back(job);
        self.cv.notify_one();
    }

    fn pop(&self) -> CryptoJob {
        let mut q = self.q.lock().expect("crypto queue");
        loop {
            if let Some(j) = q.pop_front() {
                return j;
            }
            q = self.cv.wait(q).expect("crypto queue");
        }
    }
}

fn spawn_crypto_workers(
    workers: usize,
    pool: &Arc<CryptoPool>,
    rings: &Arc<Vec<KeyRing>>,
    router: &InProcRouter<CtlMsg>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..workers)
        .map(|_| {
            let pool = Arc::clone(pool);
            let rings = Arc::clone(rings);
            let router = router.clone();
            std::thread::spawn(move || loop {
                match pool.pop() {
                    CryptoJob::Stop => break,
                    CryptoJob::Sign { node, group, stream, k, fp } => {
                        let id = ProcessId::Replica(ReplicaId(stream));
                        let signer = rings[group].signer(id).expect("replica key");
                        let sig = signer.sign(&signed_bytes(ReplicaId(stream), k, &fp));
                        let _ = router.send_ctl(node, CtlMsg::SignDone { k, sig });
                    }
                    CryptoJob::Verify { node, group, stream, tag, k, fp, sig } => {
                        let id = ProcessId::Replica(ReplicaId(stream));
                        let msg = signed_bytes(ReplicaId(stream), k, &fp);
                        let ok = rings[group].verify(id, &msg, &sig);
                        let _ = router.send_ctl(
                            node,
                            CtlMsg::VerifyDone { stream: stream as usize, tag, ok },
                        );
                    }
                }
            })
        })
        .collect()
}

// ----------------------------------------------------------------------
// Timers
// ----------------------------------------------------------------------

/// A due-time-ordered timer entry; `seq` breaks ties deterministically so
/// the heap never compares payloads.
struct TimerEntry<E> {
    at: Instant,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for TimerEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for TimerEntry<E> {}
impl<E> PartialOrd for TimerEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for TimerEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct TimerWheel<E> {
    heap: BinaryHeap<TimerEntry<E>>,
    seq: u64,
}

impl<E> TimerWheel<E> {
    fn new() -> Self {
        TimerWheel { heap: BinaryHeap::new(), seq: 0 }
    }

    fn arm(&mut self, after: std::time::Duration, ev: E) {
        self.seq += 1;
        self.heap.push(TimerEntry { at: Instant::now() + after, seq: self.seq, ev });
    }

    fn pop_due(&mut self, now: Instant) -> Option<E> {
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            return self.heap.pop().map(|e| e.ev);
        }
        None
    }

    fn next_wait(&self, now: Instant, cap: std::time::Duration) -> std::time::Duration {
        self.heap.peek().map(|e| e.at.saturating_duration_since(now)).unwrap_or(cap).min(cap)
    }
}

/// Converts a virtual-time duration to wall time, stretched by
/// [`SimConfig::time_scale`].
fn wall(d: ubft_types::Duration, scale: u64) -> std::time::Duration {
    std::time::Duration::from_nanos(d.as_nanos().saturating_mul(scale))
}

/// Longest a thread blocks on its inbox with no timer pending.
const MAX_IDLE_WAIT: std::time::Duration = std::time::Duration::from_millis(5);

// ----------------------------------------------------------------------
// Replica threads
// ----------------------------------------------------------------------

enum ReplicaTimer {
    Engine(TimerKind),
    CtbSlow(SeqId),
    Retransmit,
}

struct PendingWrite {
    stream: usize,
    k: SeqId,
    acks: usize,
    needed: usize,
}

struct PendingRead {
    stream: usize,
    k: SeqId,
    responses: usize,
    needed: usize,
    /// Per-owner best (max-timestamp) raw entry seen so far.
    best: Vec<Option<(u64, Vec<u8>)>>,
}

/// See `GroupRuntime::SUMMARY_STALL_TICKS` — same watchdog, same value.
const SUMMARY_STALL_TICKS: u32 = 4;

struct ReplicaThread {
    g: usize,
    r: usize,
    n: usize,
    n_mem: usize,
    mem_quorum: usize,
    node_idx: u32,
    driver_idx: u32,
    mem_base: u32,
    n_clients: usize,
    scale: u64,
    retransmit_period: ubft_types::Duration,
    slow_trigger: ubft_types::Duration,
    echo_fallback: ubft_types::Duration,
    progress_timeout: ubft_types::Duration,
    ep: InProcEndpoint<CtlMsg>,
    engine: Engine,
    app: Box<dyn App + Send>,
    ctbs: Vec<Ctb>,
    ctb_tx: Vec<TailBroadcaster>,
    ctb_rx: Vec<Vec<TailReceiver>>,
    cons_tx: TailBroadcaster,
    cons_rx: Vec<TailReceiver>,
    reply_cache: ubft_core::lru::LruMap<ClientId, Reply>,
    crypto: Arc<CryptoPool>,
    timers: TimerWheel<ReplicaTimer>,
    pending_writes: HashMap<u64, PendingWrite>,
    pending_reads: HashMap<u64, PendingRead>,
    next_token: u64,
    exec_log: Vec<(ClientId, u64)>,
    transfer_misses: u64,
    summary_stall_ticks: u32,
}

impl ReplicaThread {
    fn run(mut self) -> WallReplicaReport {
        let fx = self.engine.start();
        let _ = self.engine.take_crypto_ops();
        self.apply_engine_fx(fx);
        self.timers.arm(wall(self.retransmit_period, self.scale), ReplicaTimer::Retransmit);

        'main: loop {
            let now = Instant::now();
            while let Some(ev) = self.timers.pop_due(now) {
                self.on_timer(ev);
            }
            let wait = self.timers.next_wait(Instant::now(), MAX_IDLE_WAIT);
            let first = self.ep.recv_timeout(wait);
            let Some(first) = first else { continue };
            let mut batch = vec![first];
            // Drain without blocking: amortize the wakeup over everything
            // already queued.
            while let Some(m) = self.ep.try_recv() {
                batch.push(m);
            }
            for m in batch {
                match m {
                    InMsg::Net(inb) => self.on_net(inb),
                    InMsg::Ctl(CtlMsg::Shutdown) => break 'main,
                    InMsg::Ctl(c) => self.on_ctl(c),
                }
            }
        }

        WallReplicaReport {
            decided: self.engine.decided_count(),
            app_digest: self.app.snapshot_digest(),
            executed: self.exec_log,
            final_view: self.engine.view().0,
            transfer_misses: self.transfer_misses,
        }
    }

    fn send(&mut self, lane: LaneId, to: u32, bytes: Vec<u8>) {
        let me = self.node_idx;
        let _ = self.ep.send(&mut (), lane, me, to, &bytes, Time::ZERO);
    }

    fn peer_node(&self, to: ReplicaId) -> u32 {
        replica_node(self.g, self.n, to.0 as usize)
    }

    // ---- timers ------------------------------------------------------

    fn on_timer(&mut self, ev: ReplicaTimer) {
        match ev {
            ReplicaTimer::Engine(kind) => self.engine_call(|e| e.on_timer(kind)),
            ReplicaTimer::CtbSlow(k) => {
                let r = self.r;
                self.ctb_call(r, |c| c.on_slow_timeout(k));
            }
            ReplicaTimer::Retransmit => self.on_retransmit_tick(),
        }
    }

    /// Mirror of the simulator's retransmission tick, including the
    /// summary-stall watchdog that force-converts a stuck unsummarized
    /// CTBcast tail to the signed slow path.
    fn on_retransmit_tick(&mut self) {
        for s in 0..self.n {
            let fx = self.ctb_tx[s].retransmit_stale();
            self.handle_tb_effects(Lane::CtbTb { stream: s }, fx);
        }
        let fx = self.cons_tx.retransmit_stale();
        self.handle_tb_effects(Lane::ConsTb, fx);

        let sent = self.engine.ctb_sent_count();
        let done = self.engine.ctb_summarized_upto();
        let half = self.engine.summary_half();
        if sent >= done + half {
            self.summary_stall_ticks += 1;
            if self.summary_stall_ticks >= SUMMARY_STALL_TICKS {
                self.summary_stall_ticks = 0;
                let mut fx = Vec::new();
                for k in done + 1..=sent {
                    fx.extend(self.ctbs[self.r].force_slow(SeqId(k)));
                }
                let r = self.r;
                for e in fx {
                    self.ctb_effect(r, e);
                }
            }
        } else {
            self.summary_stall_ticks = 0;
        }
        self.timers.arm(wall(self.retransmit_period, self.scale), ReplicaTimer::Retransmit);
    }

    // ---- inbound -----------------------------------------------------

    fn on_net(&mut self, inb: ubft_transport::net::Inbound) {
        let from_r = inb.from as usize % self.n; // group-local sender index
        match inb.lane {
            LANE_CONS_TB => match TbFrame::from_bytes(&inb.payload) {
                Ok(TbFrame::Data(wire)) => {
                    let fx = self.cons_rx[from_r].on_wire(wire);
                    self.handle_tb_effects(Lane::ConsTb, fx);
                }
                Ok(TbFrame::Ack(ack)) => {
                    self.cons_tx.on_ack(ReplicaId(from_r as u32), ack.upto);
                }
                Err(_) => {}
            },
            LANE_DIRECT => {
                if let Ok(msg) = DirectMsg::from_bytes(&inb.payload) {
                    let f = ReplicaId(from_r as u32);
                    self.engine_call(|e| e.on_direct(f, msg));
                }
            }
            LANE_CLIENT_REQ => {
                if let Ok(req) = Request::from_bytes(&inb.payload) {
                    let cached = self
                        .reply_cache
                        .get(&req.id.client)
                        .filter(|reply| reply.id == req.id)
                        .cloned();
                    if let Some(reply) = cached {
                        let driver = self.driver_idx;
                        self.send(LANE_CLIENT_RESP, driver, reply.to_bytes());
                        return;
                    }
                    self.engine_call(|e| e.on_client_request(req));
                }
            }
            stream_lane => {
                // Every remaining lane is a CTBcast stream (stream ids sit
                // far below the reserved high lane ids).
                let stream = stream_lane as usize;
                if stream >= self.n {
                    return;
                }
                match TbFrame::from_bytes(&inb.payload) {
                    Ok(TbFrame::Data(wire)) => {
                        let fx = self.ctb_rx[stream][from_r].on_wire(wire);
                        self.handle_tb_effects(Lane::CtbTb { stream }, fx);
                    }
                    Ok(TbFrame::Ack(ack)) => {
                        self.ctb_tx[stream].on_ack(ReplicaId(from_r as u32), ack.upto);
                    }
                    Err(_) => {}
                }
            }
        }
    }

    fn on_ctl(&mut self, c: CtlMsg) {
        match c {
            CtlMsg::SignDone { k, sig } => {
                let r = self.r;
                self.ctb_call(r, |c| c.on_sign_done(k, sig));
            }
            CtlMsg::VerifyDone { stream, tag, ok } => {
                self.ctb_call(stream, |c| c.on_verify_done(tag, ok));
            }
            CtlMsg::WriteAck { token } => {
                let finished = match self.pending_writes.get_mut(&token) {
                    Some(w) => {
                        w.acks += 1;
                        w.acks >= w.needed
                    }
                    None => false, // surplus ack past the quorum
                };
                if finished {
                    let w = self.pending_writes.remove(&token).expect("pending write");
                    self.ctb_call(w.stream, |c| c.on_register_written(w.k));
                }
            }
            CtlMsg::ReadResp { token, entries } => {
                let finished = match self.pending_reads.get_mut(&token) {
                    Some(rd) => {
                        rd.responses += 1;
                        for (best, got) in rd.best.iter_mut().zip(entries) {
                            if let Some((ts, bytes)) = got {
                                if best.as_ref().is_none_or(|(b_ts, _)| ts > *b_ts) {
                                    *best = Some((ts, bytes));
                                }
                            }
                        }
                        rd.responses >= rd.needed
                    }
                    None => false,
                };
                if finished {
                    let rd = self.pending_reads.remove(&token).expect("pending read");
                    let parsed: Vec<Option<RegEntry>> = rd
                        .best
                        .into_iter()
                        .map(|e| e.and_then(|(_, bytes)| RegEntry::from_bytes(&bytes).ok()))
                        .collect();
                    self.ctb_call(rd.stream, |c| c.on_registers_read(rd.k, parsed));
                }
            }
            // Register RPCs target memory nodes; shutdown is handled by
            // the main loop before this dispatch.
            CtlMsg::WriteSlot { .. } | CtlMsg::ReadSlot { .. } | CtlMsg::Shutdown => {}
        }
    }

    // ---- engine plumbing ---------------------------------------------

    fn engine_call(&mut self, f: impl FnOnce(&mut Engine) -> Vec<Effect>) {
        let fx = f(&mut self.engine);
        // Metered crypto accounting is the simulator's cost model; here
        // real time is the cost.
        let _ = self.engine.take_crypto_ops();
        self.apply_engine_fx(fx);
    }

    fn apply_engine_fx(&mut self, fx: Vec<Effect>) {
        for e in fx {
            self.engine_effect(e);
        }
    }

    fn engine_effect(&mut self, e: Effect) {
        match e {
            Effect::CtbBroadcast(msg) => {
                let bytes = msg.to_bytes();
                let r = self.r;
                let (_k, cfx) = self.ctbs[r].broadcast(bytes);
                for ce in cfx {
                    self.ctb_effect(r, ce);
                }
            }
            Effect::TbBroadcast(msg) => {
                let bytes = msg.to_bytes();
                let (_k, tfx) = self.cons_tx.broadcast(bytes);
                self.handle_tb_effects(Lane::ConsTb, tfx);
            }
            Effect::SendReplica { to, msg } => {
                let node = self.peer_node(to);
                self.send(LANE_DIRECT, node, msg.to_bytes());
            }
            Effect::Execute { slot: _, req } => {
                let payload = self.app.execute(&req.payload);
                if !req.is_noop() {
                    self.exec_log.push((req.id.client, req.id.seq));
                }
                if !req.is_noop() && (req.id.client.0 as usize) < self.n_clients {
                    let reply = Reply { id: req.id, replica: ReplicaId(self.r as u32), payload };
                    let _ = self.reply_cache.insert(req.id.client, reply.clone(), |_| false);
                    let driver = self.driver_idx;
                    self.send(LANE_CLIENT_RESP, driver, reply.to_bytes());
                }
            }
            Effect::RequestSnapshot { base } => {
                let digest = self.app.snapshot_digest();
                let table = self.engine.exec_table();
                let exec_digest = ubft_core::msg::exec_table_digest(&table);
                self.engine_call(|e| e.on_snapshot(base, digest, exec_digest));
            }
            Effect::StateTransfer { .. } => {
                // Failure-free backend: no snapshots are retained, so a
                // replica that lagged a whole window cannot be healed.
                // Count it — a nonzero count in the report flags the run
                // as overloaded — and let it keep participating.
                self.transfer_misses += 1;
            }
            Effect::AdoptStreams { tails } => {
                for (stream, next) in tails {
                    self.ctbs[stream.0 as usize].adopt_tail(next);
                }
            }
            Effect::ArmTimer { kind } => {
                let after = match kind {
                    TimerKind::Progress => {
                        self.progress_timeout * u64::from(self.engine.progress_backoff())
                    }
                    TimerKind::SlotSlowTrigger(_) => self.slow_trigger,
                    TimerKind::EchoFallback(_) => self.echo_fallback,
                };
                self.timers.arm(wall(after, self.scale), ReplicaTimer::Engine(kind));
            }
            Effect::CheckpointAdopted { .. } => {}
            Effect::ViewChanged { .. } => {}
            Effect::ByzantineDetected { .. } => {}
        }
    }

    // ---- CTBcast plumbing --------------------------------------------

    fn ctb_call(&mut self, stream: usize, f: impl FnOnce(&mut Ctb) -> Vec<CtbEffect>) {
        let fx = f(&mut self.ctbs[stream]);
        for e in fx {
            self.ctb_effect(stream, e);
        }
    }

    fn ctb_effect(&mut self, stream: usize, e: CtbEffect) {
        match e {
            CtbEffect::Broadcast(wire) => {
                let bytes = wire.to_bytes();
                let (_k, tfx) = self.ctb_tx[stream].broadcast(bytes);
                self.handle_tb_effects(Lane::CtbTb { stream }, tfx);
            }
            CtbEffect::Sign { k, fp } => {
                self.crypto.push(CryptoJob::Sign {
                    node: self.node_idx,
                    group: self.g,
                    stream: stream as u32,
                    k,
                    fp,
                });
            }
            CtbEffect::Verify { tag, k, fp, sig } => {
                self.crypto.push(CryptoJob::Verify {
                    node: self.node_idx,
                    group: self.g,
                    stream: stream as u32,
                    tag,
                    k,
                    fp,
                    sig,
                });
            }
            CtbEffect::WriteRegister { slot, k, entry } => {
                self.next_token += 1;
                let token = self.next_token;
                self.pending_writes
                    .insert(token, PendingWrite { stream, k, acks: 0, needed: self.mem_quorum });
                let bytes = entry.to_bytes();
                for m in 0..self.n_mem {
                    let to = self.mem_base + m as u32;
                    let msg = CtlMsg::WriteSlot {
                        group: self.g as u32,
                        stream: stream as u32,
                        owner: self.r as u32,
                        slot: slot as u32,
                        ts: k.0,
                        bytes: bytes.clone(),
                        token,
                        reply_to: self.node_idx,
                    };
                    let _ = self.ep.router().send_ctl(to, msg);
                }
            }
            CtbEffect::ReadSlot { slot, k } => {
                self.next_token += 1;
                let token = self.next_token;
                self.pending_reads.insert(
                    token,
                    PendingRead {
                        stream,
                        k,
                        responses: 0,
                        needed: self.mem_quorum,
                        best: vec![None; self.n],
                    },
                );
                for m in 0..self.n_mem {
                    let to = self.mem_base + m as u32;
                    let msg = CtlMsg::ReadSlot {
                        group: self.g as u32,
                        stream: stream as u32,
                        slot: slot as u32,
                        owners: self.n as u32,
                        token,
                        reply_to: self.node_idx,
                    };
                    let _ = self.ep.router().send_ctl(to, msg);
                }
            }
            CtbEffect::Deliver { k, payload } => match CtbMsg::from_bytes(&payload) {
                Ok(msg) => {
                    let s = ReplicaId(stream as u32);
                    self.engine_call(|e| e.on_ctb_deliver(s, k, msg));
                }
                Err(_) => {
                    let s = ReplicaId(stream as u32);
                    self.engine_call(|e| e.on_ctb_equivocation(s, k));
                }
            },
            CtbEffect::Equivocation { k } => {
                let s = ReplicaId(stream as u32);
                self.engine_call(|e| e.on_ctb_equivocation(s, k));
            }
            CtbEffect::ArmSlowTimer { k } => {
                self.timers.arm(wall(self.slow_trigger, self.scale), ReplicaTimer::CtbSlow(k));
            }
        }
    }

    // ---- TBcast plumbing ---------------------------------------------

    fn handle_tb_effects(&mut self, lane: Lane, fx: Vec<TbEffect>) {
        for e in fx {
            match e {
                TbEffect::SendTo { to, wire } => {
                    let node = self.peer_node(to);
                    self.send(lane.id(), node, TbFrame::Data(wire).to_bytes());
                }
                TbEffect::SendAck { to, upto } => {
                    let node = self.peer_node(to);
                    self.send(lane.id(), node, TbFrame::Ack(TbAck { upto }).to_bytes());
                }
                TbEffect::Deliver { from, k: _, payload } => match lane {
                    Lane::CtbTb { stream } => {
                        if let Ok(wire) = CtbWire::from_bytes(&payload) {
                            self.ctb_call(stream, |c| c.on_tb_deliver(from, wire));
                        }
                    }
                    Lane::ConsTb => {
                        if let Ok(msg) = TbMsg::from_bytes(&payload) {
                            self.engine_call(|e| e.on_tb_deliver(from, msg));
                        }
                    }
                },
            }
        }
    }
}

/// The two TBcast lane families a replica thread routes (clients and
/// direct messages address lanes directly).
#[derive(Clone, Copy)]
enum Lane {
    CtbTb { stream: usize },
    ConsTb,
}

impl Lane {
    fn id(self) -> LaneId {
        match self {
            Lane::CtbTb { stream } => stream as LaneId,
            Lane::ConsTb => LANE_CONS_TB,
        }
    }
}

// ----------------------------------------------------------------------
// Client driver threads
// ----------------------------------------------------------------------

enum DriverTimer {
    /// Retransmission check for request `id` of client `c`.
    Retry { c: usize, id: ubft_types::RequestId },
    /// Re-ask an empty workload source for client `c`.
    Issue { c: usize },
}

struct DriverThread {
    g: usize,
    n: usize,
    node_idx: u32,
    scale: u64,
    ep: InProcEndpoint<CtlMsg>,
    clients: Vec<Client>,
    workload: ThreadWorkload,
    completed: Arc<AtomicU64>,
    target: u64,
    warmup: u64,
    issue_at: Vec<Instant>,
    idle_backoff: Vec<u32>,
    timers: TimerWheel<DriverTimer>,
    latency: LatencyStats,
    group_completed: u64,
}

impl DriverThread {
    /// Mirror of the simulator's client retransmission timeout.
    fn retry_period(&self) -> std::time::Duration {
        wall(ubft_types::Duration::from_micros(1_500), self.scale)
    }

    fn run(mut self) -> (u64, LatencyStats) {
        for c in 0..self.clients.len() {
            self.try_issue(c);
        }
        'main: loop {
            let now = Instant::now();
            while let Some(ev) = self.timers.pop_due(now) {
                match ev {
                    DriverTimer::Retry { c, id } => self.on_retry(c, id),
                    DriverTimer::Issue { c } => self.try_issue(c),
                }
            }
            let wait = self.timers.next_wait(Instant::now(), MAX_IDLE_WAIT);
            let Some(first) = self.ep.recv_timeout(wait) else { continue };
            let mut batch = vec![first];
            while let Some(m) = self.ep.try_recv() {
                batch.push(m);
            }
            for m in batch {
                match m {
                    InMsg::Net(inb) => self.on_net(inb),
                    InMsg::Ctl(CtlMsg::Shutdown) => break 'main,
                    InMsg::Ctl(_) => {}
                }
            }
        }
        (self.group_completed, self.latency)
    }

    fn send_request(&mut self, fx: Vec<ClientEffect>) {
        for e in fx {
            if let ClientEffect::SendRequest { to, req } = e {
                let node = replica_node(self.g, self.n, to.0 as usize);
                let me = self.node_idx;
                let bytes = req.to_bytes();
                let _ = self.ep.send(&mut (), LANE_CLIENT_REQ, me, node, &bytes, Time::ZERO);
            }
        }
    }

    fn try_issue(&mut self, c: usize) {
        if !self.clients[c].is_idle() {
            return;
        }
        if self.completed.load(Ordering::Relaxed) >= self.target {
            return;
        }
        let seq = self.completed.load(Ordering::Relaxed);
        let Some(payload) = (self.workload)(seq) else {
            // Empty source: exponential backoff, like the simulator's
            // starved-shard path.
            let shift = self.idle_backoff[c].min(8);
            self.idle_backoff[c] = self.idle_backoff[c].saturating_add(1);
            let base = wall(ubft_types::Duration::from_micros(5), self.scale);
            self.timers.arm(base * (1u32 << shift), DriverTimer::Issue { c });
            return;
        };
        self.idle_backoff[c] = 0;
        let (id, fx) = self.clients[c].issue(payload);
        self.issue_at[c] = Instant::now();
        self.send_request(fx);
        self.timers.arm(self.retry_period(), DriverTimer::Retry { c, id });
    }

    fn on_retry(&mut self, c: usize, id: ubft_types::RequestId) {
        if self.clients[c].in_flight() != Some(id) {
            return;
        }
        let fx = self.clients[c].retransmit();
        self.send_request(fx);
        self.timers.arm(self.retry_period(), DriverTimer::Retry { c, id });
    }

    fn on_net(&mut self, inb: ubft_transport::net::Inbound) {
        if inb.lane != LANE_CLIENT_RESP {
            return;
        }
        let Ok(reply) = Reply::from_bytes(&inb.payload) else { return };
        let c = reply.id.client.0 as usize;
        if c >= self.clients.len() {
            return;
        }
        let fx = self.clients[c].on_reply(reply);
        for e in fx {
            if let ClientEffect::Complete { .. } = e {
                let done = self.completed.fetch_add(1, Ordering::SeqCst) + 1;
                self.group_completed += 1;
                if done > self.warmup {
                    let ns = self.issue_at[c].elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    self.latency.record(ubft_types::Duration::from_nanos(ns));
                }
                if done < self.target {
                    self.try_issue(c);
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Memory-node threads
// ----------------------------------------------------------------------

/// One passive memory node: a `(group, stream, owner, slot) → (ts, bytes)`
/// store answering write/read RPCs. Replicas take `f_m + 1` of `2f_m + 1`
/// such nodes as a quorum, exactly like the simulated register banks;
/// message atomicity stands in for the regular register's checksummed
/// sub-registers.
/// Store key: `(group, stream, owner, slot)`.
type SlotKey = (u32, u32, u32, u32);

struct MemThread {
    ep: InProcEndpoint<CtlMsg>,
    store: HashMap<SlotKey, (u64, Vec<u8>)>,
}

impl MemThread {
    fn run(mut self) {
        loop {
            let Some(msg) = self.ep.recv_timeout(std::time::Duration::from_millis(50)) else {
                continue;
            };
            match msg {
                InMsg::Ctl(CtlMsg::Shutdown) => break,
                InMsg::Ctl(CtlMsg::WriteSlot {
                    group,
                    stream,
                    owner,
                    slot,
                    ts,
                    bytes,
                    token,
                    reply_to,
                }) => {
                    let key = (group, stream, owner, slot);
                    let newer = self.store.get(&key).is_none_or(|(old, _)| ts >= *old);
                    if newer {
                        self.store.insert(key, (ts, bytes));
                    }
                    let _ = self.ep.router().send_ctl(reply_to, CtlMsg::WriteAck { token });
                }
                InMsg::Ctl(CtlMsg::ReadSlot { group, stream, slot, owners, token, reply_to }) => {
                    let entries: Vec<Option<(u64, Vec<u8>)>> = (0..owners)
                        .map(|owner| self.store.get(&(group, stream, owner, slot)).cloned())
                        .collect();
                    let _ =
                        self.ep.router().send_ctl(reply_to, CtlMsg::ReadResp { token, entries });
                }
                _ => {}
            }
        }
    }
}

// ----------------------------------------------------------------------
// Deployment entry points
// ----------------------------------------------------------------------

/// Runs a wall-clock threaded deployment: `shards` groups of `n` replica
/// threads each, one client-driver thread per group, `2f_m + 1` memory
/// node threads, and a crypto worker pool of [`SimConfig::crypto_workers`]
/// threads. `make_apps(g)` yields group `g`'s `n` application instances;
/// `make_workload(g)` its request source.
///
/// # Panics
///
/// Panics if `cfg` schedules faults, asynchrony, or auditing — the
/// wall-clock backend measures the failure-free path only (see the module
/// docs for why).
pub fn run_wallclock(
    cfg: &SimConfig,
    mut make_apps: impl FnMut(usize) -> Vec<Box<dyn App + Send>>,
    mut make_workload: impl FnMut(usize) -> ThreadWorkload,
    opts: &WallOptions,
) -> WallReport {
    assert!(
        cfg.failures.faults().is_empty() && cfg.failures.gst == Time::ZERO,
        "the threaded backend is failure-free; use Backend::Sim for fault schedules"
    );
    assert!(cfg.shard_failures.is_empty(), "the threaded backend is failure-free");
    assert!(!cfg.audit && cfg.audit_mutation.is_none(), "auditing requires Backend::Sim");

    let shards = cfg.shards.max(1);
    let n = cfg.params.n();
    let n_mem = cfg.params.n_mem();
    let n_clients = cfg.n_clients.max(1);
    let scale = cfg.time_scale.max(1) as u64;
    let workers = cfg.crypto_workers.max(1);
    let total_nodes = shards * n + shards + n_mem;
    let mem_base = mem_node(shards, n, 0);

    let (router, eps) = inproc_mesh::<CtlMsg>(total_nodes);
    let mut eps: Vec<Option<InProcEndpoint<CtlMsg>>> = eps.into_iter().map(Some).collect();
    let mut take_ep = |idx: u32| eps[idx as usize].take().expect("endpoint taken once");

    // Per-group key rings, derived exactly as the simulator derives them.
    let rings: Vec<KeyRing> = (0..shards)
        .map(|g| {
            KeyRing::generate(
                group_seed(cfg.seed, g) ^ 0x5EED,
                (0..n as u32)
                    .map(|i| ProcessId::Replica(ReplicaId(i)))
                    .chain((0..n_clients as u32).map(|i| ProcessId::Client(ClientId(i)))),
            )
        })
        .collect();
    let rings = Arc::new(rings);

    let pool = Arc::new(CryptoPool::new());
    let crypto_handles = spawn_crypto_workers(workers, &pool, &rings, &router);

    let mem_handles: Vec<_> = (0..n_mem)
        .map(|m| {
            let t = MemThread { ep: take_ep(mem_node(shards, n, m)), store: HashMap::new() };
            std::thread::spawn(move || t.run())
        })
        .collect();

    let mut replica_handles = Vec::with_capacity(shards * n);
    for g in 0..shards {
        let gcfg = {
            let mut c = cfg.clone();
            c.seed = group_seed(cfg.seed, g);
            c
        };
        let mut apps = make_apps(g);
        assert_eq!(apps.len(), n, "one app instance per replica");
        let replica_ids: Vec<ReplicaId> = cfg.params.replicas().collect();
        for r in 0..n {
            let engine =
                Engine::new(ReplicaId(r as u32), engine_config(&gcfg, r), rings[g].clone());
            let ctb_cfg = match cfg.path {
                ubft_core::engine::PathMode::FastOnly => CtbConfig {
                    n,
                    tail: cfg.params.tail,
                    fast_enabled: true,
                    slow: SlowMode::Never,
                },
                ubft_core::engine::PathMode::SlowOnly => CtbConfig {
                    n,
                    tail: cfg.params.tail,
                    fast_enabled: false,
                    slow: SlowMode::Always,
                },
                ubft_core::engine::PathMode::FastWithFallback => {
                    CtbConfig::deployed(n, cfg.params.tail)
                }
            };
            let ctbs: Vec<Ctb> = (0..n)
                .map(|s| {
                    Ctb::new(ReplicaId(r as u32), ReplicaId(s as u32), replica_ids.clone(), ctb_cfg)
                })
                .collect();
            let cap = 2 * cfg.params.tail;
            let peers: Vec<ReplicaId> =
                (0..n as u32).map(ReplicaId).filter(|x| x.0 as usize != r).collect();
            let ctb_tx: Vec<TailBroadcaster> = (0..n)
                .map(|_s| TailBroadcaster::new(ReplicaId(r as u32), peers.clone(), cap))
                .collect();
            let ctb_rx: Vec<Vec<TailReceiver>> = (0..n)
                .map(|_s| {
                    (0..n).map(|sender| TailReceiver::new(ReplicaId(sender as u32), cap)).collect()
                })
                .collect();
            let cons_tx = TailBroadcaster::new(ReplicaId(r as u32), peers.clone(), cap);
            let cons_rx: Vec<TailReceiver> =
                (0..n).map(|s| TailReceiver::new(ReplicaId(s as u32), cap)).collect();

            let t = ReplicaThread {
                g,
                r,
                n,
                n_mem,
                mem_quorum: cfg.params.mem_quorum(),
                node_idx: replica_node(g, n, r),
                driver_idx: driver_node(shards, n, g),
                mem_base,
                n_clients,
                scale,
                retransmit_period: cfg.retransmit_period,
                slow_trigger: cfg.slow_trigger,
                echo_fallback: cfg.echo_fallback,
                progress_timeout: cfg.progress_timeout,
                ep: take_ep(replica_node(g, n, r)),
                engine,
                app: apps.remove(0),
                ctbs,
                ctb_tx,
                ctb_rx,
                cons_tx,
                cons_rx,
                reply_cache: ubft_core::lru::LruMap::new(
                    cfg.client_cache_cap
                        .map(|c| c.max(2 * cfg.params.window * cfg.max_batch.max(1))),
                ),
                crypto: Arc::clone(&pool),
                timers: TimerWheel::new(),
                pending_writes: HashMap::new(),
                pending_reads: HashMap::new(),
                next_token: 0,
                exec_log: Vec::new(),
                transfer_misses: 0,
                summary_stall_ticks: 0,
            };
            replica_handles.push(std::thread::spawn(move || t.run()));
        }
    }

    let completed = Arc::new(AtomicU64::new(0));
    let target = opts.requests + opts.warmup;
    let driver_handles: Vec<_> = (0..shards)
        .map(|g| {
            let replica_ids: Vec<ReplicaId> = cfg.params.replicas().collect();
            let clients: Vec<Client> = (0..n_clients as u32)
                .map(|i| Client::new(ClientId(i), replica_ids.clone(), cfg.params.quorum()))
                .collect();
            let t = DriverThread {
                g,
                n,
                node_idx: driver_node(shards, n, g),
                scale,
                ep: take_ep(driver_node(shards, n, g)),
                clients,
                workload: make_workload(g),
                completed: Arc::clone(&completed),
                target,
                warmup: opts.warmup,
                issue_at: vec![Instant::now(); n_clients],
                idle_backoff: vec![0; n_clients],
                timers: TimerWheel::new(),
                latency: LatencyStats::new(),
                group_completed: 0,
            };
            std::thread::spawn(move || t.run())
        })
        .collect();

    // Wait for the closed loop to hit its target (or the wall deadline).
    let start = Instant::now();
    loop {
        if completed.load(Ordering::SeqCst) >= target || start.elapsed() >= opts.deadline {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let elapsed = start.elapsed();
    // Let lagging replicas drain (a completion only proves f + 1 executed).
    std::thread::sleep(opts.settle);

    for node in 0..total_nodes as u32 {
        let _ = router.send_ctl(node, CtlMsg::Shutdown);
    }
    for _ in 0..workers {
        pool.push(CryptoJob::Stop);
    }

    let mut latency = LatencyStats::new();
    let mut group_completed = vec![0u64; shards];
    for (g, h) in driver_handles.into_iter().enumerate() {
        let (done, stats) = h.join().expect("driver thread");
        group_completed[g] = done;
        latency.absorb(stats);
    }
    let mut replica_reports: Vec<WallReplicaReport> =
        replica_handles.into_iter().map(|h| h.join().expect("replica thread")).collect();
    for h in mem_handles {
        h.join().expect("memory thread");
    }
    for h in crypto_handles {
        h.join().expect("crypto worker");
    }

    let groups = (0..shards)
        .map(|g| WallGroupReport {
            completed: group_completed[g],
            replicas: replica_reports.drain(..n).collect(),
        })
        .collect();

    WallReport {
        completed: completed.load(Ordering::SeqCst),
        elapsed,
        latency,
        groups,
        backend: Backend::Threads,
    }
}

/// Runs a deployment on whichever backend [`SimConfig::backend`] selects
/// and reports both through the same [`WallReport`] shape, which is what
/// lets the backend-equivalence suite compare them field by field.
///
/// The simulator path drives the exact same `Deployment` the
/// [`Cluster`](crate::cluster::Cluster)/[`ShardedCluster`](crate::sharded::ShardedCluster)
/// facades drive (then settles briefly so every replica converges);
/// `elapsed` and `latency` are virtual time there, wall time on the
/// threaded path.
pub fn run_backend(
    cfg: &SimConfig,
    mut make_apps: impl FnMut(usize) -> Vec<Box<dyn App + Send>>,
    mut make_workload: impl FnMut(usize) -> ThreadWorkload,
    opts: &WallOptions,
) -> WallReport {
    match cfg.backend {
        Backend::Threads => run_wallclock(cfg, make_apps, make_workload, opts),
        Backend::Sim => {
            let mut cfg = cfg.clone();
            cfg.shards = cfg.shards.max(1);
            let total = opts.requests + opts.warmup;
            let deadline = cfg.stall_deadline(total);
            let mut dep = crate::group::Deployment::build(
                &cfg,
                |g| make_apps(g).into_iter().map(|a| a as Box<dyn App>).collect(),
                |g| {
                    let wl: ThreadWorkload = make_workload(g);
                    let boxed: crate::group::GroupWorkload = Box::new(wl);
                    boxed
                },
            );
            dep.run_loop(opts.requests, opts.warmup, deadline);
            // Converge every replica before reading digests; mirrors the
            // threaded path's settle.
            dep.settle(ubft_types::Duration::from_millis(5));
            let end = dep.now;
            let report = dep.aggregate_report(None);
            let n = cfg.params.n();
            let groups = dep
                .groups
                .iter()
                .map(|gr| WallGroupReport {
                    completed: gr.completed,
                    replicas: (0..n)
                        .map(|r| WallReplicaReport {
                            decided: gr.decided_of(r),
                            app_digest: gr.app_digest(r),
                            executed: gr.exec_log(r).to_vec(),
                            final_view: gr.view_of(r).0,
                            transfer_misses: 0,
                        })
                        .collect(),
                })
                .collect();
            WallReport {
                completed: report.completed,
                elapsed: std::time::Duration::from_nanos(end.since(Time::ZERO).as_nanos()),
                latency: report.latency,
                groups,
                backend: Backend::Sim,
            }
        }
    }
}
