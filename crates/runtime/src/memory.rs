//! Memory accounting for Table 2.

use crate::cluster::Cluster;

/// A Table 2 row: memory consumption for one configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryReport {
    /// Replica-local resident bytes (channel buffers, mirrors, staging, TB
    /// retransmission buffers, CTBcast bookkeeping).
    pub replica_local_bytes: usize,
    /// Disaggregated bytes on one memory node (register banks).
    pub disagg_bytes_per_node: usize,
}

impl MemoryReport {
    /// Measures the given cluster (leader replica 0).
    pub fn measure(cluster: &Cluster) -> Self {
        MemoryReport {
            replica_local_bytes: cluster.replica_local_bytes(0),
            disagg_bytes_per_node: cluster.disagg_bytes_per_node(),
        }
    }
}
