//! Memory accounting for Table 2, now shard-aware.

use crate::cluster::Cluster;
use crate::sharded::ShardedCluster;

/// A Table 2 row: memory consumption for one configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoryReport {
    /// Replica-local resident bytes (channel buffers, mirrors, staging, TB
    /// retransmission buffers, CTBcast bookkeeping) of the measured leader.
    pub replica_local_bytes: usize,
    /// Total disaggregated bytes on one memory node — for a sharded
    /// deployment, the sum over every shard's register banks (the memory
    /// nodes are shared; each shard owns a partition of their space).
    pub disagg_bytes_per_node: usize,
    /// The per-shard breakdown of [`MemoryReport::disagg_bytes_per_node`].
    /// A single-group cluster reports one entry.
    pub disagg_bytes_per_shard: Vec<usize>,
    /// Bytes the measured replica retains in checkpoint snapshots for
    /// serving certified state transfers (replacement nodes, and replicas
    /// that lagged a whole window behind a partition or asynchrony). Zero
    /// unless the fault plan schedules faults — supporting recovery is
    /// free until it could be exercised, and even then the history is
    /// bounded (a handful of checkpoints), keeping the paper's
    /// bounded-memory story intact.
    pub replica_snapshot_bytes: usize,
}

impl MemoryReport {
    /// Measures the given cluster (leader replica 0).
    pub fn measure(cluster: &Cluster) -> Self {
        MemoryReport {
            replica_local_bytes: cluster.replica_local_bytes(0),
            disagg_bytes_per_node: cluster.disagg_bytes_per_node(),
            disagg_bytes_per_shard: vec![cluster.disagg_bytes_per_node()],
            replica_snapshot_bytes: cluster.replica_snapshot_bytes(0),
        }
    }

    /// Measures a sharded deployment (leader replica 0 of shard 0 for the
    /// replica-local figure; every shard is symmetric by construction).
    pub fn measure_sharded(cluster: &ShardedCluster) -> Self {
        MemoryReport {
            replica_local_bytes: cluster.replica_local_bytes(0, 0),
            disagg_bytes_per_node: cluster.disagg_bytes_per_node(),
            disagg_bytes_per_shard: (0..cluster.shards())
                .map(|g| cluster.shard_disagg_bytes_per_node(g))
                .collect(),
            replica_snapshot_bytes: cluster.replica_snapshot_bytes(0, 0),
        }
    }
}
