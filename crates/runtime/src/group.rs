//! One consensus group's runtime, and the deployment driver shared by the
//! single-group [`Cluster`](crate::cluster::Cluster) facade and the
//! multi-group [`ShardedCluster`](crate::sharded::ShardedCluster).
//!
//! A [`GroupRuntime`] owns everything one `2f + 1` group needs — its
//! [`ReplicaNode`]s, the channel lanes between them, its partition of the
//! SWMR register banks, and its closed-loop clients — but *not* the fabric
//! or the event queue: those are shared deployment-wide so that many
//! groups can ride one RDMA network and one set of passive memory nodes
//! (the paper's scale-out story). Every event in the shared queue is
//! tagged with the owning group's id; all indices inside a group are
//! group-local and mapped into the global `HostId` space via each group's
//! host-block base.

use ubft_core::app::App;
use ubft_core::client::{Client, ClientEffect};
use ubft_core::engine::{CryptoOps, Effect, Engine, EngineConfig, PathMode, TimerKind};
use ubft_core::msg::{CtbMsg, DirectMsg, Reply, Request, TbMsg};
use ubft_crypto::{KeyRing, Signature};
use ubft_ctb::ctbcast::{Ctb, CtbConfig, CtbEffect, RegEntry, SlowMode, VerifyTag};
use ubft_ctb::tbcast::{TailBroadcaster, TailReceiver, TbEffect};
use ubft_ctb::wire::{signed_bytes, CtbWire, TbAck, TbFrame, TbWire};
use ubft_dmem::register::{
    ReadOutcome, RegisterBank, RegisterId, RegisterReader, RegisterWriter, WriteOutcome,
};
use ubft_rdma::Fabric;
use ubft_sim::failure::ByzantineMode;
use ubft_sim::net::NetworkModel;
use ubft_sim::stats::LatencyStats;
use ubft_sim::{EventQueue, HostId, SimRng};
use ubft_transport::channel::ChannelSpec;
use ubft_transport::net::{
    LaneId, Transport, LANE_CLIENT_REQ, LANE_CLIENT_RESP, LANE_CONS_TB, LANE_DIRECT,
};
use ubft_transport::sim_link::SimLinkTransport;
use ubft_types::wire::Wire;
use ubft_types::{ClientId, Duration, ProcessId, ReplicaId, SeqId, Slot, Time, View};

use crate::audit::{AuditMutation, AuditReport, Auditor};
use crate::calibration::SimConfig;
use crate::cluster::{OpCounters, RunReport};
use crate::node::{ReplicaNode, SNAPSHOT_RETAIN};

/// Message lanes between nodes of one group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Lane {
    /// TBcast traffic of CTBcast stream `stream`.
    CtbTb { stream: usize },
    /// Consensus-level TBcast traffic.
    ConsTb,
    /// Point-to-point protocol messages.
    Direct,
    /// Client requests.
    ClientReq,
    /// Replica replies.
    ClientResp,
}

impl Lane {
    /// The lane's id in the transport's flat [`LaneId`] namespace:
    /// CTBcast stream `s` maps to lane `s`, everything else to the
    /// reserved high ids (stream counts are far below them).
    pub(crate) fn id(self) -> LaneId {
        match self {
            Lane::CtbTb { stream } => stream as LaneId,
            Lane::ConsTb => LANE_CONS_TB,
            Lane::Direct => LANE_DIRECT,
            Lane::ClientReq => LANE_CLIENT_REQ,
            Lane::ClientResp => LANE_CLIENT_RESP,
        }
    }
}

/// Simulation events. All indices are group-local; the queue tags each
/// event with its group id.
pub(crate) enum Ev {
    Poll {
        lane: Lane,
        from: usize,
        to: usize,
    },
    Flush {
        lane: Lane,
        from: usize,
        to: usize,
    },
    Timer {
        r: usize,
        kind: TimerKind,
    },
    CtbSlow {
        r: usize,
        k: SeqId,
    },
    CtbSignDone {
        r: usize,
        k: SeqId,
        sig: Signature,
    },
    CtbVerifyDone {
        r: usize,
        stream: usize,
        tag: VerifyTag,
        ok: bool,
    },
    CtbWritten {
        r: usize,
        stream: usize,
        k: SeqId,
    },
    CtbReadDone {
        r: usize,
        stream: usize,
        k: SeqId,
        entries: Vec<Option<RegEntry>>,
    },
    ClientIssue {
        c: usize,
    },
    /// Client retransmission check: if request `id` is still in flight at
    /// client `c`, re-send it to every replica and re-arm. A request or
    /// reply lost to a partition/crash must not stall the closed loop —
    /// replicas deduplicate, and executed requests are re-answered from
    /// the per-replica last-reply cache.
    ClientRetry {
        c: usize,
        id: ubft_types::RequestId,
    },
    /// Periodic TBcast retransmission tick for replica `r` (§4.2: the
    /// broadcaster retransmits its buffered tail until acknowledged).
    Retransmit {
        r: usize,
    },
    /// Boot the replacement node for crashed replica `r` on `host` (the
    /// fresh host id pre-allocated by the deployment).
    Replace {
        r: usize,
        host: HostId,
    },
    /// Apply an engine-effect batch whose crypto work finishes at this
    /// event's time. Effects stamped in the future must flow through the
    /// queue — applying them early would hand the fabric out-of-order
    /// timestamps, and its per-host-pair FIFO would then pin every later
    /// (normally timed) message behind the future one.
    EngineFx {
        r: usize,
        /// The node incarnation that scheduled the batch; a replacement
        /// bumps it, so a dead incarnation's pending crypto never applies
        /// to its successor.
        epoch: u32,
        fx: Vec<Effect>,
    },
}

/// A group-tagged event in the shared deployment queue.
pub(crate) type GroupEv = (u32, Ev);

/// A group workload source: `None` means "no request available for this
/// group right now" (a sharded source whose pending generation all routed
/// elsewhere); the client retries shortly instead of stalling forever.
pub(crate) type GroupWorkload = Box<dyn FnMut(u64) -> Option<Vec<u8>>>;

/// How long an idle client waits before re-asking an empty workload
/// source. Never fires for single-group deployments (their sources are
/// total functions).
fn workload_retry() -> Duration {
    Duration::from_micros(5)
}

/// Client retransmission timeout: far above every healthy completion (fast
/// path ~11 µs, forced slow path hundreds of µs), so failure-free runs
/// never retransmit; short enough that a lost message costs milliseconds,
/// not the run.
fn client_retry_period() -> Duration {
    Duration::from_micros(1_500)
}

/// Deployment-global run control: the closed loop stops on the *total*
/// completed count, and warmup discarding is likewise global, so a
/// single-group run behaves exactly like the pre-sharding `Cluster`.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct RunCtl {
    pub completed: u64,
    pub target: u64,
    pub warmup: u64,
}

/// The deployment-wide mutable context a group borrows while handling one
/// event: the shared fabric, the shared (group-tagged) event queue, the
/// global run control, and (when enabled) the omniscient safety auditor.
pub(crate) struct Shared<'a> {
    pub fabric: &'a mut Fabric,
    pub events: &'a mut EventQueue<GroupEv>,
    pub ctl: &'a mut RunCtl,
    /// `None` when auditing is off — the hooks below are then no-ops, so
    /// unaudited runs stay bit-for-bit identical to historical behaviour.
    pub audit: &'a mut Option<Auditor>,
}

/// One consensus group: `2f + 1` [`ReplicaNode`]s, their lanes, their
/// partition of the register banks, and their closed-loop clients.
pub(crate) struct GroupRuntime {
    gid: u32,
    pub(crate) cfg: SimConfig,
    /// First global host id of this group's `n + n_clients` host block.
    host_base: u32,
    /// Current host of each replica: `host_base + r` until a replacement
    /// moves that replica to a freshly allocated host. Clients never move.
    hosts: Vec<HostId>,
    pub(crate) nodes: Vec<ReplicaNode>,
    /// The group's message plane: simulated circular-buffer links behind
    /// the [`Transport`] trait (the fabric is the call-site context).
    transport: SimLinkTransport,
    /// `reg_banks[stream][owner]`: the SWMR banks themselves, retained so
    /// a replacement node can be re-keyed as a bank's writer.
    reg_banks: Vec<Vec<RegisterBank>>,
    /// `reg_readers[stream][owner]`: shared read endpoints (readers are
    /// host-agnostic; writers live with their owning node).
    reg_readers: Vec<Vec<RegisterReader>>,
    reg_banks_bytes_per_node: usize,
    /// Serialized genesis application state, for resetting a replacement
    /// node's app before its state transfer. Captured only when the fault
    /// plan schedules replacements.
    genesis_snapshot: Vec<u8>,
    /// Whether nodes retain checkpoint snapshots (only when replacements
    /// are planned; failure-free runs pay nothing).
    keep_snapshots: bool,
    /// State transfers that found no live donor snapshot (the pre-PR
    /// fast-forward behaviour applies; surfaced in diagnostics because it
    /// means a replica's application state may have silently diverged).
    transfer_misses: u64,
    clients: Vec<Client>,
    issue_times: Vec<Time>,
    /// Consecutive empty workload pulls per client, driving exponential
    /// retry backoff so starved shards cannot flood the event queue.
    idle_backoff: Vec<u32>,
    workload: GroupWorkload,
    ring: KeyRing,
    /// Not-yet-applied scheduled crash times, one slot per replica
    /// (precomputed from the fault plan so the hot event loop never
    /// rescans it; an entry is cleared once the crash takes effect).
    crash_times: Vec<Option<Time>>,
    /// How many entries of `crash_times` are still pending.
    pending_crashes: usize,
    /// Byzantine detections reported by engines: (detector, culprit, why).
    byz_reports: Vec<(usize, u32, String)>,
    pub(crate) counters: OpCounters,
    pub(crate) latency: LatencyStats,
    pub(crate) completed: u64,
}

impl GroupRuntime {
    /// Builds one group inside an existing deployment: creates engines,
    /// CTBcast stacks, channels, and register banks on the shared fabric,
    /// and pushes the group's start-up events (engine watchdogs, TBcast
    /// retransmission ticks) onto the shared queue.
    pub(crate) fn new(
        gid: u32,
        cfg: SimConfig,
        host_base: u32,
        mem_hosts: &[HostId],
        apps: Vec<Box<dyn App>>,
        workload: GroupWorkload,
        sh: &mut Shared<'_>,
    ) -> Self {
        let n = cfg.params.n();
        assert_eq!(apps.len(), n, "one app instance per replica");
        let n_clients = cfg.n_clients.max(1);

        let ring = KeyRing::generate(
            cfg.seed ^ 0x5EED,
            (0..n as u32)
                .map(|i| ProcessId::Replica(ReplicaId(i)))
                .chain((0..n_clients as u32).map(|i| ProcessId::Client(ClientId(i)))),
        );

        // Engines.
        let engines: Vec<Engine> = (0..n as u32)
            .map(|i| Engine::new(ReplicaId(i), engine_config(&cfg, i as usize), ring.clone()))
            .collect();

        // CTBcast instances per replica: one per stream.
        let replica_ids: Vec<ReplicaId> = cfg.params.replicas().collect();
        let ctb_cfg_for = |_s: usize| match cfg.path {
            PathMode::FastOnly => {
                CtbConfig { n, tail: cfg.params.tail, fast_enabled: true, slow: SlowMode::Never }
            }
            PathMode::SlowOnly => {
                CtbConfig { n, tail: cfg.params.tail, fast_enabled: false, slow: SlowMode::Always }
            }
            PathMode::FastWithFallback => CtbConfig::deployed(n, cfg.params.tail),
        };
        let mut ctbs: Vec<Vec<Ctb>> = (0..n)
            .map(|r| {
                (0..n)
                    .map(|s| {
                        Ctb::new(
                            ReplicaId(r as u32),
                            ReplicaId(s as u32),
                            replica_ids.clone(),
                            ctb_cfg_for(s),
                        )
                    })
                    .collect()
            })
            .collect();

        // TBcast endpoints. Buffers hold 2t messages (Algorithm 1).
        let cap = 2 * cfg.params.tail;
        let peers_of = |r: usize| -> Vec<ReplicaId> {
            (0..n as u32).map(ReplicaId).filter(|x| x.0 as usize != r).collect()
        };
        let mut ctb_tx: Vec<Vec<TailBroadcaster>> = (0..n)
            .map(|r| {
                (0..n)
                    .map(|_s| TailBroadcaster::new(ReplicaId(r as u32), peers_of(r), cap))
                    .collect()
            })
            .collect();
        let mut ctb_rx: Vec<Vec<Vec<TailReceiver>>> = (0..n)
            .map(|_r| {
                (0..n)
                    .map(|_s| {
                        (0..n)
                            .map(|sender| TailReceiver::new(ReplicaId(sender as u32), cap))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut cons_tx: Vec<TailBroadcaster> =
            (0..n).map(|r| TailBroadcaster::new(ReplicaId(r as u32), peers_of(r), cap)).collect();
        let mut cons_rx: Vec<Vec<TailReceiver>> = (0..n)
            .map(|_r| (0..n).map(|s| TailReceiver::new(ReplicaId(s as u32), cap)).collect())
            .collect();

        // Links, in the shared fabric, addressed by global host ids.
        let host = |local: usize| HostId(host_base + local as u32);
        let spec = ChannelSpec { slots: cap, slot_payload: cfg.slot_payload() };
        let wide_spec = ChannelSpec { slots: cap, slot_payload: cfg.wide_slot_payload() };
        let client_spec = ChannelSpec { slots: 64, slot_payload: cfg.slot_payload() };
        let mut transport = SimLinkTransport::new();
        let mut open = |fabric: &mut Fabric, lane: Lane, from: usize, to: usize, spec| {
            transport.open_link(
                fabric,
                lane.id(),
                from as u32,
                to as u32,
                host(from),
                host(to),
                spec,
            );
        };
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                for s in 0..n {
                    open(sh.fabric, Lane::CtbTb { stream: s }, from, to, spec);
                }
                for lane in [Lane::ConsTb, Lane::Direct] {
                    open(sh.fabric, lane, from, to, wide_spec);
                }
            }
        }
        for c in 0..n_clients {
            let c_node = n + c;
            for r in 0..n {
                open(sh.fabric, Lane::ClientReq, c_node, r, client_spec);
                open(sh.fabric, Lane::ClientResp, r, c_node, client_spec);
            }
        }

        // SWMR register banks: banks[stream][owner], replicated on the
        // shared memory nodes; only `owner` holds the writer. Each group
        // creates its own banks, so the memory nodes' space is partitioned
        // per group. The banks themselves are retained (not just their
        // endpoints): a replacement node is re-keyed as its predecessor's
        // banks' writer.
        let mut reg_banks: Vec<Vec<RegisterBank>> = Vec::with_capacity(n);
        let mut reg_readers: Vec<Vec<RegisterReader>> = Vec::with_capacity(n);
        let mut bank_bytes = 0usize;
        for _s in 0..n {
            let mut banks = Vec::with_capacity(n);
            let mut rs = Vec::with_capacity(n);
            for _owner in 0..n {
                let bank = RegisterBank::create(
                    sh.fabric,
                    mem_hosts,
                    cfg.params.tail,
                    RegEntry::encoded_size(),
                    cfg.params.delta,
                );
                bank_bytes += bank.bytes_per_node();
                rs.push(bank.reader());
                banks.push(bank);
            }
            reg_readers.push(rs);
            reg_banks.push(banks);
        }
        let mut reg_writers: Vec<Vec<RegisterWriter>> =
            (0..n).map(|owner| (0..n).map(|s| reg_banks[s][owner].writer()).collect()).collect();

        let clients: Vec<Client> = (0..n_clients as u32)
            .map(|i| Client::new(ClientId(i), replica_ids.clone(), cfg.params.quorum()))
            .collect();

        // Checkpoint snapshots are retained whenever the plan schedules
        // *any* fault or an asynchronous prefix — not just replacements: a
        // replica that misses a whole window behind a partition or pre-GST
        // delays heals through the same certified state transfer, and
        // without a retained donor snapshot it would silently fast-forward
        // with diverged state (the chaos auditor caught exactly that).
        // Failure-free runs still pay nothing.
        let keep_snapshots = !cfg.failures.faults().is_empty() || cfg.failures.gst > Time::ZERO;
        let genesis_snapshot = if keep_snapshots { apps[0].snapshot_bytes() } else { Vec::new() };

        let nodes: Vec<ReplicaNode> = engines
            .into_iter()
            .zip(apps)
            .map(|(engine, app)| ReplicaNode {
                engine,
                app,
                ctbs: ctbs.remove(0),
                ctb_tx: ctb_tx.remove(0),
                ctb_rx: ctb_rx.remove(0),
                cons_tx: cons_tx.remove(0),
                cons_rx: cons_rx.remove(0),
                reg_writers: reg_writers.remove(0),
                busy: Time::ZERO,
                crypto_busy: Time::ZERO,
                crashed: false,
                snapshots: Vec::new(),
                deferred_fx: 0,
                deferred_until: Time::ZERO,
                epoch: 0,
                summary_stall_ticks: 0,
                // Mirrors the engine's in-flight floor: an entry evicted
                // before its client could possibly need a re-reply would
                // stall that client forever.
                reply_cache: ubft_core::lru::LruMap::new(
                    cfg.client_cache_cap
                        .map(|c| c.max(2 * cfg.params.window * cfg.max_batch.max(1))),
                ),
                exec_log: Vec::new(),
            })
            .collect();

        let crash_times: Vec<Option<Time>> =
            (0..n).map(|r| cfg.failures.replica_crash_time(r)).collect();
        let pending_crashes = crash_times.iter().filter(|t| t.is_some()).count();
        let mut group = GroupRuntime {
            gid,
            host_base,
            hosts: (0..n as u32).map(|r| HostId(host_base + r)).collect(),
            nodes,
            transport,
            reg_banks,
            reg_readers,
            reg_banks_bytes_per_node: bank_bytes,
            genesis_snapshot,
            keep_snapshots,
            transfer_misses: 0,
            clients,
            issue_times: vec![Time::ZERO; n_clients],
            idle_backoff: vec![0; n_clients],
            workload,
            ring,
            crash_times,
            pending_crashes,
            byz_reports: Vec::new(),
            counters: OpCounters::default(),
            latency: LatencyStats::new(),
            completed: 0,
            cfg,
        };
        // Engine start-up (progress watchdogs).
        for r in 0..n {
            let fx = group.nodes[r].engine.start();
            let ops = group.nodes[r].engine.take_crypto_ops();
            group.apply_engine_effects(sh, r, Time::ZERO, fx, ops);
        }
        // TBcast retransmission ticks, staggered so replicas do not burst
        // in lockstep.
        for r in 0..n {
            let offset = Duration::from_nanos(1_000 * (r as u64 + 1));
            sh.events.push(
                Time::ZERO + group.cfg.retransmit_period + offset,
                (gid, Ev::Retransmit { r }),
            );
        }
        group
    }

    fn n(&self) -> usize {
        self.cfg.params.n()
    }

    pub(crate) fn n_clients(&self) -> usize {
        self.clients.len()
    }

    fn client_node(&self, c: usize) -> usize {
        self.n() + c
    }

    /// Current host of group-local index `idx` (replica or client).
    /// Replicas may have moved to a replacement host; clients never move.
    fn host_of(&self, idx: usize) -> HostId {
        if idx < self.nodes.len() {
            self.hosts[idx]
        } else {
            HostId(self.host_base + idx as u32)
        }
    }

    fn push(&self, sh: &mut Shared<'_>, at: Time, ev: Ev) {
        sh.events.push(at, (self.gid, ev));
    }

    /// The Byzantine behaviour of host `r` active at `at`, if `r` is a
    /// replica with a scheduled fault.
    fn byz_mode(&self, r: usize, at: Time) -> Option<ByzantineMode> {
        if r < self.n() {
            self.cfg.failures.byzantine_mode(r, at)
        } else {
            None
        }
    }

    /// Applies scheduled replica crashes up to virtual time `t`. O(1) when
    /// nothing is pending, which is every event of a failure-free run.
    pub(crate) fn apply_scheduled_crashes(&mut self, t: Time) {
        if self.pending_crashes == 0 {
            return;
        }
        for r in 0..self.nodes.len() {
            if let Some(ct) = self.crash_times[r] {
                if t >= ct {
                    self.nodes[r].crashed = true;
                    self.crash_times[r] = None;
                    self.pending_crashes -= 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Replacement & state transfer (uBFT extended version, §replacement)
    // ------------------------------------------------------------------

    /// Restores replica `r`'s application to the certified state at
    /// `base`, served from any live peer's retained checkpoint snapshot
    /// and verified against the certified `app_digest` — the donor is not
    /// trusted. Models the transfer as a bulk fabric fetch: the receiving
    /// core is busy for the bytes' worst-case wire time.
    fn state_transfer(
        &mut self,
        sh: &mut Shared<'_>,
        r: usize,
        base: Slot,
        app_digest: ubft_crypto::Digest,
        exec_digest: ubft_crypto::Digest,
        at: Time,
    ) {
        if base == Slot(0) {
            return; // genesis: the replacement already boots with it
        }
        let matches = |s: &crate::node::Snapshot| {
            s.base == base
                && s.app_digest == app_digest
                && ubft_core::msg::exec_table_digest(&s.exec_table) == exec_digest
        };
        let donor = (0..self.nodes.len()).find(|q| {
            *q != r && !self.nodes[*q].crashed && self.nodes[*q].snapshots.iter().any(matches)
        });
        let Some(q) = donor else {
            // No donor (possible only when snapshots are not retained, or
            // after extreme lag): fall back to the historical fast-forward
            // and surface the divergence risk in diagnostics.
            self.note_transfer_miss(sh, r);
            return;
        };
        let (bytes, table) = self.nodes[q]
            .snapshots
            .iter()
            .find(|s| matches(s))
            .map(|s| (s.app_bytes.clone(), s.exec_table.clone()))
            .expect("donor just matched");
        let cost = self.cfg.latency.worst_case(bytes.len());
        self.nodes[r].app.restore_bytes(&bytes);
        // The donor is untrusted: the restored state must hash to the
        // *certified* digest, or the transfer is treated as missed (the
        // next checkpoint retries from another donor).
        if self.nodes[r].app.snapshot_digest() != app_digest {
            self.note_transfer_miss(sh, r);
            return;
        }
        // A successful transfer puts the replica back on certified state:
        // the auditor can vouch for it again even if an earlier transfer
        // missed.
        if let Some(aud) = sh.audit.as_mut() {
            aud.on_transfer_restored(self.gid as usize, r);
        }
        let _ = self.charge(r, at, cost);
        // Hand the certified dedup table to the engine (it re-verifies
        // against the checkpoint's exec_digest and prunes bookkeeping the
        // table proves executed).
        self.engine_call(sh, r, at, |e| e.on_exec_table(base, table));
    }

    /// Records a state transfer that found no (verifiable) donor snapshot:
    /// diagnostics surface the divergence risk, and the auditor stops
    /// vouching for that replica's application state.
    fn note_transfer_miss(&mut self, sh: &mut Shared<'_>, r: usize) {
        self.transfer_misses += 1;
        if let Some(aud) = sh.audit.as_mut() {
            aud.on_transfer_miss(self.gid as usize, r);
        }
    }

    /// Boots the replacement node for crashed replica `r` on the freshly
    /// allocated `new_host`: rebuilds every transport endpoint touching
    /// `r`, re-keys `r`'s SWMR bank writers, scans its own stream's bank
    /// tails on the memory nodes for the slow-path high-water mark, and
    /// starts a fresh engine in the join state. Peers' endpoints toward
    /// `r` are re-created here too — in a real deployment that retargeting
    /// is what their `Join` receipt triggers; the simulator, owning both
    /// ends, performs it at boot so the handshake finds working lanes.
    pub(crate) fn replace_replica(
        &mut self,
        sh: &mut Shared<'_>,
        r: usize,
        new_host: HostId,
        at: Time,
    ) {
        assert!(self.nodes[r].crashed, "replacement of a live replica {r}");
        let n = self.n();
        let n_clients = self.n_clients();
        self.hosts[r] = new_host;
        if let Some(aud) = sh.audit.as_mut() {
            aud.on_replace(self.gid as usize, r);
        }

        // Fresh links for every lane touching r, in both directions (the
        // old node's sender cursors and in-flight slots died with it).
        // Re-opening a link drops the old endpoints.
        let cap = 2 * self.cfg.params.tail;
        let spec = ChannelSpec { slots: cap, slot_payload: self.cfg.slot_payload() };
        let wide_spec = ChannelSpec { slots: cap, slot_payload: self.cfg.wide_slot_payload() };
        let client_spec = ChannelSpec { slots: 64, slot_payload: self.cfg.slot_payload() };
        for peer in 0..n {
            if peer == r {
                continue;
            }
            for (from, to) in [(r, peer), (peer, r)] {
                for s in 0..n {
                    self.transport.open_link(
                        sh.fabric,
                        Lane::CtbTb { stream: s }.id(),
                        from as u32,
                        to as u32,
                        self.host_of(from),
                        self.host_of(to),
                        spec,
                    );
                }
                for lane in [Lane::ConsTb, Lane::Direct] {
                    self.transport.open_link(
                        sh.fabric,
                        lane.id(),
                        from as u32,
                        to as u32,
                        self.host_of(from),
                        self.host_of(to),
                        wide_spec,
                    );
                }
            }
        }
        for c in 0..n_clients {
            let c_node = self.client_node(c);
            self.transport.open_link(
                sh.fabric,
                Lane::ClientReq.id(),
                c_node as u32,
                r as u32,
                self.host_of(c_node),
                new_host,
                client_spec,
            );
            self.transport.open_link(
                sh.fabric,
                Lane::ClientResp.id(),
                r as u32,
                c_node as u32,
                new_host,
                self.host_of(c_node),
                client_spec,
            );
        }

        // Peers' TB receivers for r's lanes start over: the replacement's
        // broadcasters number their frames from 1 again (transport seq
        // and CTBcast ids are independent; the CTBcast ids are adopted).
        for peer in 0..n {
            if peer == r {
                continue;
            }
            for s in 0..n {
                self.nodes[peer].ctb_rx[s][r] = TailReceiver::new(ReplicaId(r as u32), cap);
            }
            self.nodes[peer].cons_rx[r] = TailReceiver::new(ReplicaId(r as u32), cap);
        }

        // The fresh node itself: new engine, new CTBcast stack, new TB
        // endpoints, re-keyed bank writers, genesis application state.
        let replica_ids: Vec<ReplicaId> = self.cfg.params.replicas().collect();
        let peers_of = |r: usize| -> Vec<ReplicaId> {
            (0..n as u32).map(ReplicaId).filter(|x| x.0 as usize != r).collect()
        };
        let ctb_cfg_for = |_s: usize| match self.cfg.path {
            PathMode::FastOnly => CtbConfig {
                n,
                tail: self.cfg.params.tail,
                fast_enabled: true,
                slow: SlowMode::Never,
            },
            PathMode::SlowOnly => CtbConfig {
                n,
                tail: self.cfg.params.tail,
                fast_enabled: false,
                slow: SlowMode::Always,
            },
            PathMode::FastWithFallback => CtbConfig::deployed(n, self.cfg.params.tail),
        };
        let node = &mut self.nodes[r];
        node.engine =
            Engine::new(ReplicaId(r as u32), engine_config(&self.cfg, r), self.ring.clone());
        node.ctbs = (0..n)
            .map(|s| {
                Ctb::new(
                    ReplicaId(r as u32),
                    ReplicaId(s as u32),
                    replica_ids.clone(),
                    ctb_cfg_for(s),
                )
            })
            .collect();
        node.ctb_tx =
            (0..n).map(|_s| TailBroadcaster::new(ReplicaId(r as u32), peers_of(r), cap)).collect();
        node.ctb_rx = (0..n)
            .map(|_s| {
                (0..n).map(|sender| TailReceiver::new(ReplicaId(sender as u32), cap)).collect()
            })
            .collect();
        node.cons_tx = TailBroadcaster::new(ReplicaId(r as u32), peers_of(r), cap);
        node.cons_rx = (0..n).map(|s| TailReceiver::new(ReplicaId(s as u32), cap)).collect();
        node.reg_writers = (0..n).map(|s| self.reg_banks[s][r].rekey_writer()).collect();
        node.app.restore_bytes(&self.genesis_snapshot);
        node.snapshots.clear();
        node.busy = at;
        node.crypto_busy = at;
        node.crashed = false;
        node.epoch += 1;
        node.deferred_fx = 0;
        node.deferred_until = Time::ZERO;
        node.summary_stall_ticks = 0;
        node.reply_cache.clear();

        // Step 1 of the join: recover the own-stream tail high-water mark
        // directly from the memory nodes (no replica trusted) — every
        // owner's bank of stream r can witness ids the crashed node
        // slow-pathed.
        let mut reg_floor = SeqId(0);
        let mut done = at;
        for owner in 0..n {
            let reader = &self.reg_readers[r][owner];
            self.counters.reg_reads += reader.len() as u64;
            let scan = reader.scan_tail(sh.fabric, new_host, at);
            if let Some(ts) = scan.max_ts {
                reg_floor = reg_floor.max(SeqId(ts));
            }
            done = done.max(scan.completion);
        }
        self.nodes[r].busy = done;

        // Step 2: the Join/JoinAck handshake (engine-driven from here).
        let fx = self.nodes[r].engine.begin_join(reg_floor);
        let ops = self.nodes[r].engine.take_crypto_ops();
        self.apply_engine_effects(sh, r, done, fx, ops);
    }

    // ------------------------------------------------------------------
    // Observers
    // ------------------------------------------------------------------

    /// The application state digest of replica `r`.
    pub(crate) fn app_digest(&self, r: usize) -> ubft_crypto::Digest {
        self.nodes[r].app.snapshot_digest()
    }

    /// First slot replica `r` has not executed.
    pub(crate) fn exec_next(&self, r: usize) -> ubft_types::Slot {
        self.nodes[r].engine.exec_next()
    }

    /// The view replica `r` is in.
    pub(crate) fn view_of(&self, r: usize) -> View {
        self.nodes[r].engine.view()
    }

    /// Individual requests replica `r` has decided.
    pub(crate) fn decided_of(&self, r: usize) -> u64 {
        self.nodes[r].engine.decided_count()
    }

    /// Resident entries in replica `r`'s request-dedup table (bounded by
    /// [`SimConfig::client_cache_cap`]; tests assert eviction kicked in).
    pub(crate) fn dedup_entries(&self, r: usize) -> usize {
        self.nodes[r].engine.exec_table().len()
    }

    /// Every non-noop request replica `r` executed, in execution order
    /// (the backend-equivalence suite compares this against the threaded
    /// runtime's per-replica log).
    pub(crate) fn exec_log(&self, r: usize) -> &[(ClientId, u64)] {
        &self.nodes[r].exec_log
    }

    /// Final views of every replica, in replica order.
    pub(crate) fn views(&self) -> Vec<View> {
        self.nodes.iter().map(|nd| nd.engine.view()).collect()
    }

    /// Disaggregated bytes this group's register banks occupy on one
    /// memory node.
    pub(crate) fn disagg_bytes_per_node(&self) -> usize {
        self.reg_banks_bytes_per_node
    }

    /// Bytes replica `r` retains in checkpoint snapshots for serving
    /// replacement-node state transfers (zero unless replacements are
    /// planned).
    pub(crate) fn replica_snapshot_bytes(&self, r: usize) -> usize {
        self.nodes[r].snapshot_bytes()
    }

    /// Checkpoint snapshots replica `r` currently retains (the auditor
    /// checks the count against its cap).
    pub(crate) fn snapshot_count(&self, r: usize) -> usize {
        self.nodes[r].snapshots.len()
    }

    /// Approximate replica-local resident bytes of replica `r`: channel
    /// buffers it hosts, sender mirrors/staging, TB retransmission
    /// buffers, and CTBcast bookkeeping (Table 2).
    pub(crate) fn replica_local_bytes(&self, r: usize) -> usize {
        self.transport.resident_bytes_touching(r as u32) + self.nodes[r].protocol_resident_bytes()
    }

    /// Per-replica protocol diagnostics, one line each.
    pub(crate) fn diag_lines(&self) -> String {
        let mut s: String = self
            .nodes
            .iter()
            .map(|nd| {
                let ctb: Vec<String> = (0..self.n())
                    .map(|st| {
                        format!(
                            "s{}:dlv{}/fifo{}",
                            st,
                            nd.ctbs[st].max_delivered().0,
                            nd.engine.fifo_position(ReplicaId(st as u32)).0,
                        )
                    })
                    .collect();
                format!("  {} crashed={} [{}]\n", nd.engine.diag(), nd.crashed, ctb.join(" "))
            })
            .collect();
        for (detector, culprit, why) in &self.byz_reports {
            s.push_str(&format!("  r{detector} branded r{culprit} byzantine: {why}\n"));
        }
        if self.transfer_misses > 0 {
            s.push_str(&format!(
                "  {} state transfer(s) found no donor snapshot (state may have diverged)\n",
                self.transfer_misses
            ));
        }
        s
    }

    // ------------------------------------------------------------------
    // Cost charging
    // ------------------------------------------------------------------

    fn charge(&mut self, r: usize, at: Time, extra: Duration) -> Time {
        let dispatch = self.cfg.cost.dispatch;
        let node = &mut self.nodes[r];
        let start = if at > node.busy { at } else { node.busy };
        let done = start + dispatch + extra;
        node.busy = done;
        done
    }

    fn crypto_cost(&self, ops: CryptoOps) -> Duration {
        Duration::from_nanos(
            self.cfg.cost.sign_total().as_nanos() * ops.signs as u64
                + self.cfg.cost.verify_total().as_nanos() * ops.verifies as u64,
        )
    }

    // ------------------------------------------------------------------
    // Engine plumbing
    // ------------------------------------------------------------------

    fn engine_call(
        &mut self,
        sh: &mut Shared<'_>,
        r: usize,
        at: Time,
        f: impl FnOnce(&mut Engine) -> Vec<Effect>,
    ) {
        if self.nodes[r].crashed {
            return;
        }
        let fx = f(&mut self.nodes[r].engine);
        let ops = self.nodes[r].engine.take_crypto_ops();
        self.apply_engine_effects(sh, r, at, fx, ops);
    }

    fn apply_engine_effects(
        &mut self,
        sh: &mut Shared<'_>,
        r: usize,
        at: Time,
        fx: Vec<Effect>,
        ops: CryptoOps,
    ) {
        // Hand freshly recorded decisions to the auditor *before* their
        // Execute effects run, so coverage lookups find the evidence. The
        // engine records nothing unless auditing is on.
        if let Some(aud) = sh.audit.as_mut() {
            for rec in self.nodes[r].engine.take_decisions() {
                aud.on_decision(self.gid as usize, r, rec);
            }
        }
        self.counters.engine_signs += ops.signs as u64;
        self.counters.engine_verifies += ops.verifies as u64;
        // The event-loop dispatch runs on the replica's main core; crypto is
        // handed to the replica's crypto worker (§5.4 keeps bookkeeping
        // signatures off the critical path), so it delays this call's
        // *effects* without blocking subsequent message processing.
        let done = self.charge(r, at, Duration::ZERO);
        if ops.is_zero() && self.nodes[r].deferred_fx == 0 {
            // The common (crypto-free) path applies effects inline — the
            // historical behaviour, bit-for-bit.
            for e in fx {
                self.engine_effect(sh, r, done, e);
            }
            return;
        }
        // Crypto pushes this batch's effects into the future; route them
        // through the event queue so the fabric only ever sees monotone
        // timestamps per host pair (applying early would stall every later
        // message behind the future arrival in the FIFO network). While any
        // batch is pending, later batches — crypto-free or not — queue
        // strictly behind it: the engine's emission order is a protocol
        // invariant (e.g. a checkpoint must precede proposals into the
        // window it opens).
        let effect_at = if ops.is_zero() {
            done
        } else {
            let cost = self.crypto_cost(ops);
            let node = &mut self.nodes[r];
            let start = if done > node.crypto_busy { done } else { node.crypto_busy };
            let fin = start + cost;
            node.crypto_busy = fin;
            fin
        };
        let node = &mut self.nodes[r];
        let at_eff = if effect_at > node.deferred_until {
            effect_at
        } else {
            node.deferred_until + Duration::from_nanos(1)
        };
        node.deferred_until = at_eff;
        node.deferred_fx += 1;
        let epoch = node.epoch;
        sh.events.push(at_eff, (self.gid, Ev::EngineFx { r, epoch, fx }));
    }

    /// A deferred engine-effect batch's crypto completed: apply it now.
    fn on_engine_fx(
        &mut self,
        sh: &mut Shared<'_>,
        r: usize,
        epoch: u32,
        fx: Vec<Effect>,
        at: Time,
    ) {
        let node = &mut self.nodes[r];
        if epoch != node.epoch {
            return; // scheduled by a dead incarnation
        }
        node.deferred_fx = node.deferred_fx.saturating_sub(1);
        if node.crashed {
            return; // the node died with its crypto queue
        }
        for e in fx {
            self.engine_effect(sh, r, at, e);
        }
    }

    fn engine_effect(&mut self, sh: &mut Shared<'_>, r: usize, at: Time, e: Effect) {
        match e {
            Effect::CtbBroadcast(msg) => {
                let bytes = msg.to_bytes();
                let (_k, cfx) = self.nodes[r].ctbs[r].broadcast(bytes);
                for ce in cfx {
                    self.ctb_effect(sh, r, r, at, ce);
                }
            }
            Effect::TbBroadcast(msg) => {
                let bytes = msg.to_bytes();
                let (_k, tfx) = self.nodes[r].cons_tx.broadcast(bytes);
                self.handle_tb_effects(sh, r, Lane::ConsTb, at, tfx);
            }
            Effect::SendReplica { to, msg } => {
                self.counters.direct_msgs += 1;
                self.channel_send(sh, Lane::Direct, r, to.0 as usize, msg.to_bytes(), at);
            }
            Effect::Execute { slot, req } => {
                // Auditor self-test mutations: deliberately corrupt this
                // replica's execution so the auditor can be shown to catch
                // it. Never active outside mutation tests.
                let corrupted = match self.cfg.audit_mutation {
                    Some(AuditMutation::CorruptExecution { replica })
                        if replica == r && !req.payload.is_empty() =>
                    {
                        let mut p = req.payload.clone();
                        p[0] ^= 0xFF;
                        Some(p)
                    }
                    _ => None,
                };
                let applied: &[u8] = corrupted.as_deref().unwrap_or(&req.payload);
                let cost = self.nodes[r].app.execute_cost(applied);
                let payload = self.nodes[r].app.execute(applied);
                if let Some(AuditMutation::DoubleExecute { replica }) = self.cfg.audit_mutation {
                    if replica == r {
                        let _ = self.nodes[r].app.execute(applied);
                    }
                }
                if let Some(aud) = sh.audit.as_mut() {
                    aud.on_execute(self.gid as usize, r, slot, req.id, applied, &payload);
                }
                let done = self.charge(r, at, cost);
                if !req.is_noop() {
                    self.nodes[r].exec_log.push((req.id.client, req.id.seq));
                }
                if !req.is_noop() && (req.id.client.0 as usize) < self.clients.len() {
                    let reply = Reply { id: req.id, replica: ReplicaId(r as u32), payload };
                    // Last-reply table (one entry per client, LRU-bounded
                    // when capped), so a retransmitted already-executed
                    // request can be re-answered.
                    let _ =
                        self.nodes[r].reply_cache.insert(req.id.client, reply.clone(), |_| false);
                    let c_node = self.client_node(req.id.client.0 as usize);
                    self.counters.rpc_msgs += 1;
                    self.channel_send(sh, Lane::ClientResp, r, c_node, reply.to_bytes(), done);
                }
            }
            Effect::RequestSnapshot { base } => {
                let digest = self.nodes[r].app.snapshot_digest();
                if let Some(aud) = sh.audit.as_mut() {
                    aud.on_checkpoint_digest(self.gid as usize, r, base, digest);
                }
                // The dedup table is captured at the same instant as the
                // application digest, so the certified checkpoint covers
                // the *whole* decision-relevant state.
                let table = self.nodes[r].engine.exec_table();
                let exec_digest = ubft_core::msg::exec_table_digest(&table);
                if self.keep_snapshots {
                    // Retain the serialized state for serving lagging
                    // replicas' transfers (bounded history).
                    let app_bytes = self.nodes[r].app.snapshot_bytes();
                    let node = &mut self.nodes[r];
                    node.snapshots.push(crate::node::Snapshot {
                        base,
                        app_digest: digest,
                        app_bytes,
                        exec_table: table,
                    });
                    if node.snapshots.len() > SNAPSHOT_RETAIN {
                        node.snapshots.remove(0);
                    }
                }
                self.engine_call(sh, r, at, |e| e.on_snapshot(base, digest, exec_digest));
            }
            Effect::StateTransfer { base, app_digest, exec_digest } => {
                self.state_transfer(sh, r, base, app_digest, exec_digest, at);
            }
            Effect::AdoptStreams { tails } => {
                for (stream, next) in tails {
                    self.nodes[r].ctbs[stream.0 as usize].adopt_tail(next);
                }
            }
            Effect::ArmTimer { kind } => {
                let after = match kind {
                    TimerKind::Progress => {
                        // PBFT-style backoff: fruitless view changes double
                        // the watchdog period so slow view changes complete.
                        self.cfg.progress_timeout
                            * u64::from(self.nodes[r].engine.progress_backoff())
                    }
                    TimerKind::SlotSlowTrigger(_) => self.cfg.slow_trigger,
                    TimerKind::EchoFallback(_) => self.cfg.echo_fallback,
                };
                self.push(sh, at + after, Ev::Timer { r, kind });
            }
            Effect::ByzantineDetected { replica, reason } => {
                self.byz_reports.push((r, replica.0, reason));
            }
            Effect::CheckpointAdopted { base } => {
                if let Some(aud) = sh.audit.as_mut() {
                    aud.on_checkpoint_adopted(self.gid as usize, r, base);
                }
            }
            Effect::ViewChanged { .. } => {}
        }
    }

    // ------------------------------------------------------------------
    // CTBcast plumbing
    // ------------------------------------------------------------------

    fn ctb_call(
        &mut self,
        sh: &mut Shared<'_>,
        r: usize,
        stream: usize,
        at: Time,
        f: impl FnOnce(&mut Ctb) -> Vec<CtbEffect>,
    ) {
        if self.nodes[r].crashed {
            return;
        }
        let fx = f(&mut self.nodes[r].ctbs[stream]);
        let done = self.charge(r, at, Duration::ZERO);
        for e in fx {
            self.ctb_effect(sh, r, stream, done, e);
        }
    }

    fn ctb_effect(&mut self, sh: &mut Shared<'_>, r: usize, stream: usize, at: Time, e: CtbEffect) {
        match e {
            CtbEffect::Broadcast(wire) => {
                if stream == r
                    && self.byz_mode(r, at) == Some(ByzantineMode::EquivocateProposals)
                    && self.equivocate_broadcast(sh, r, at, &wire)
                {
                    return;
                }
                let bytes = wire.to_bytes();
                let (_k, tfx) = self.nodes[r].ctb_tx[stream].broadcast(bytes);
                self.handle_tb_effects(sh, r, Lane::CtbTb { stream }, at, tfx);
            }
            CtbEffect::Sign { k, fp } => {
                self.counters.ctb_signs += 1;
                let signer = self
                    .ring
                    .signer(ProcessId::Replica(ReplicaId(stream as u32)))
                    .expect("replica key");
                let sig = signer.sign(&signed_bytes(ReplicaId(stream as u32), k, &fp));
                self.push(sh, at + self.cfg.cost.sign_total(), Ev::CtbSignDone { r, k, sig });
            }
            CtbEffect::Verify { tag, k, fp, sig } => {
                self.counters.ctb_verifies += 1;
                let ok = self.ring.verify(
                    ProcessId::Replica(ReplicaId(stream as u32)),
                    &signed_bytes(ReplicaId(stream as u32), k, &fp),
                    &sig,
                );
                self.push(
                    sh,
                    at + self.cfg.cost.verify_total(),
                    Ev::CtbVerifyDone { r, stream, tag, ok },
                );
            }
            CtbEffect::WriteRegister { slot, k, entry } => {
                self.counters.reg_writes += 1;
                let host = self.host_of(r);
                let mut entry = entry;
                // A register-corrupting replica stores a garbled fingerprint
                // in its own SWMR slot. Readers must treat the entry as a
                // suspect, fail its signature check, and deliver anyway
                // (§6.1: forged entries cannot block delivery).
                if self.byz_mode(r, at) == Some(ByzantineMode::CorruptRegisters) {
                    let mut fp = *entry.fp.as_bytes();
                    fp[0] ^= 0xFF;
                    fp[31] ^= 0xFF;
                    entry.fp = ubft_crypto::Digest::from_bytes(fp);
                }
                let bytes = entry.to_bytes();
                let outcome = self.nodes[r].reg_writers[stream].write(
                    sh.fabric,
                    host,
                    RegisterId(slot),
                    k.0,
                    &bytes,
                    at,
                );
                match outcome {
                    WriteOutcome::Done(done) => {
                        self.push(sh, done, Ev::CtbWritten { r, stream, k });
                    }
                    // The writer died at a crash boundary (possibly via the
                    // δ-cooldown deferring the start past its own crash):
                    // its continuation events are dropped by the crash
                    // checks, so there is nothing to schedule.
                    WriteOutcome::IssuerCrashed => {}
                    // Outside the fault model (> f_m memory nodes down);
                    // the slow path simply cannot complete.
                    WriteOutcome::NoQuorum => {}
                }
            }
            CtbEffect::ReadSlot { slot, k } => {
                self.counters.reg_reads += 1;
                let (entries, completion) = self.read_register_slot(sh, r, stream, slot, at);
                self.push(sh, completion, Ev::CtbReadDone { r, stream, k, entries });
            }
            CtbEffect::Deliver { k, payload } => match CtbMsg::from_bytes(&payload) {
                Ok(msg) => {
                    let s = ReplicaId(stream as u32);
                    self.engine_call(sh, r, at, |e| e.on_ctb_deliver(s, k, msg));
                }
                Err(_) => {
                    let s = ReplicaId(stream as u32);
                    self.engine_call(sh, r, at, |e| e.on_ctb_equivocation(s, k));
                }
            },
            CtbEffect::Equivocation { k } => {
                let s = ReplicaId(stream as u32);
                self.engine_call(sh, r, at, |e| e.on_ctb_equivocation(s, k));
            }
            CtbEffect::ArmSlowTimer { k } => {
                self.push(sh, at + self.cfg.slow_trigger, Ev::CtbSlow { r, k });
            }
        }
    }

    /// Byzantine equivocation: the broadcaster of stream `r` sends
    /// *different* proposals to different receivers under the same CTBcast
    /// id — the exact attack CTBcast exists to stop. Returns `true` when the
    /// frame was handled (it carried a fast-path `LOCK` of a `PREPARE`);
    /// other frames fall through to the honest path so the Byzantine replica
    /// still participates in the rest of the protocol.
    fn equivocate_broadcast(
        &mut self,
        sh: &mut Shared<'_>,
        r: usize,
        at: Time,
        wire: &CtbWire,
    ) -> bool {
        let CtbWire::Lock { m, .. } = wire else {
            return false;
        };
        let Ok(CtbMsg::Prepare(prep)) = CtbMsg::from_bytes(m) else {
            return false;
        };
        // Register the broadcast with the honest TailBroadcaster (sequence
        // numbers, retransmission buffer, self-delivery) but discard its
        // uniform sends; hand-craft a poisoned variant for odd receivers.
        let (k, tfx) = self.nodes[r].ctb_tx[r].broadcast(wire.to_bytes());
        let mut alt = prep.clone();
        let mut reqs = alt.batch.requests().to_vec();
        if reqs[0].payload.is_empty() {
            reqs[0].payload.push(0xFF);
        } else {
            reqs[0].payload[0] ^= 0xFF;
        }
        alt.batch = ubft_core::msg::Batch::new(reqs);
        let alt_wire = CtbWire::Lock { k, m: CtbMsg::Prepare(alt).to_bytes() };
        for e in tfx {
            match e {
                TbEffect::SendTo { to, wire: tb } => {
                    self.counters.ctb_msgs += 1;
                    let poisoned = to.0 % 2 == 1;
                    let frame = if poisoned {
                        TbFrame::Data(TbWire { k: tb.k, payload: alt_wire.to_bytes() })
                    } else {
                        TbFrame::Data(tb)
                    };
                    self.channel_send(
                        sh,
                        Lane::CtbTb { stream: r },
                        r,
                        to.0 as usize,
                        frame.to_bytes(),
                        at,
                    );
                }
                other => {
                    self.handle_tb_effects(sh, r, Lane::CtbTb { stream: r }, at, vec![other]);
                }
            }
        }
        true
    }

    /// Reads every receiver's register for `slot` of `stream`, retrying once
    /// per owner when a read overlaps a write (§6.1). Returns parsed entries
    /// in replica order and the quorum completion time.
    fn read_register_slot(
        &mut self,
        sh: &mut Shared<'_>,
        r: usize,
        stream: usize,
        slot: usize,
        at: Time,
    ) -> (Vec<Option<RegEntry>>, Time) {
        let host = self.host_of(r);
        let mut entries = Vec::with_capacity(self.n());
        let mut completion = at;
        for owner in 0..self.n() {
            let reader = &self.reg_readers[stream][owner];
            let mut attempt_at = at;
            let mut parsed = None;
            for _attempt in 0..2 {
                match reader.read(sh.fabric, host, RegisterId(slot), attempt_at) {
                    ReadOutcome::Value { value, completion: c, .. } => {
                        completion = completion.max(c);
                        parsed = RegEntry::from_bytes(&value).ok();
                        break;
                    }
                    ReadOutcome::WriterByzantine { completion: c } => {
                        completion = completion.max(c);
                        break;
                    }
                    ReadOutcome::Retry { completion: c } => {
                        completion = completion.max(c);
                        attempt_at = c;
                    }
                    ReadOutcome::NoQuorum => break,
                    // The reading replica itself hit its crash boundary
                    // (a retry can re-issue past its own scheduled
                    // crash); the continuation is dropped by the crash
                    // checks, so what it "read" is irrelevant.
                    ReadOutcome::IssuerCrashed => break,
                }
            }
            entries.push(parsed);
        }
        (entries, completion)
    }

    // ------------------------------------------------------------------
    // TBcast + channel plumbing
    // ------------------------------------------------------------------

    fn handle_tb_effects(
        &mut self,
        sh: &mut Shared<'_>,
        r: usize,
        lane: Lane,
        at: Time,
        fx: Vec<TbEffect>,
    ) {
        for e in fx {
            match e {
                TbEffect::SendTo { to, wire } => {
                    match lane {
                        Lane::CtbTb { .. } => self.counters.ctb_msgs += 1,
                        Lane::ConsTb => self.counters.cons_msgs += 1,
                        _ => {}
                    }
                    self.channel_send(
                        sh,
                        lane,
                        r,
                        to.0 as usize,
                        TbFrame::Data(wire).to_bytes(),
                        at,
                    );
                }
                TbEffect::SendAck { to, upto } => {
                    // Cumulative acks silence the broadcaster's
                    // retransmission of the buffered tail (§4.2).
                    self.channel_send(
                        sh,
                        lane,
                        r,
                        to.0 as usize,
                        TbFrame::Ack(TbAck { upto }).to_bytes(),
                        at,
                    );
                }
                TbEffect::Deliver { from, k: _, payload } => {
                    self.deliver_tb_payload(sh, r, lane, from, payload, at);
                }
            }
        }
    }

    fn deliver_tb_payload(
        &mut self,
        sh: &mut Shared<'_>,
        r: usize,
        lane: Lane,
        from: ReplicaId,
        payload: Vec<u8>,
        at: Time,
    ) {
        match lane {
            Lane::CtbTb { stream } => {
                if let Ok(wire) = CtbWire::from_bytes(&payload) {
                    self.ctb_call(sh, r, stream, at, |c| c.on_tb_deliver(from, wire));
                }
            }
            Lane::ConsTb => {
                if let Ok(msg) = TbMsg::from_bytes(&payload) {
                    self.engine_call(sh, r, at, |e| e.on_tb_deliver(from, msg));
                }
            }
            _ => {}
        }
    }

    fn channel_send(
        &mut self,
        sh: &mut Shared<'_>,
        lane: Lane,
        from: usize,
        to: usize,
        bytes: Vec<u8>,
        at: Time,
    ) {
        let mut at = at;
        match self.byz_mode(from, at) {
            // A silent replica stops transmitting entirely; it keeps
            // receiving, which is what distinguishes it from a crash in the
            // logs but not in effect.
            Some(ByzantineMode::Silent) => return,
            // A laggard is correct but slow: every outgoing message is
            // delayed (a gray failure; the fast path must absorb or
            // time out past it).
            Some(ByzantineMode::Laggard) => at += Duration::from_micros(50),
            _ => {}
        }
        let rep = self.transport.send(sh.fabric, lane.id(), from as u32, to as u32, &bytes, at);
        self.schedule_send_report(sh, lane, from, to, at, rep);
    }

    /// Turns a [`SendReport`](ubft_transport::net::SendReport) into
    /// virtual-time events: a receiver poll per issued arrival, and a
    /// flush when data stayed staged.
    fn schedule_send_report(
        &mut self,
        sh: &mut Shared<'_>,
        lane: Lane,
        from: usize,
        to: usize,
        at: Time,
        rep: ubft_transport::net::SendReport,
    ) {
        for arrival in rep.arrivals {
            sh.events.push(arrival + self.cfg.poll_pickup, (self.gid, Ev::Poll { lane, from, to }));
        }
        if let Some(t) = rep.flush_at {
            let t = if t > at { t } else { at + Duration::from_nanos(1) };
            sh.events.push(t, (self.gid, Ev::Flush { lane, from, to }));
        }
    }

    fn on_flush(&mut self, sh: &mut Shared<'_>, lane: Lane, from: usize, to: usize, at: Time) {
        let rep = self.transport.flush(sh.fabric, lane.id(), from as u32, to as u32, at);
        self.schedule_send_report(sh, lane, from, to, at, rep);
    }

    fn on_poll(&mut self, sh: &mut Shared<'_>, lane: Lane, from: usize, to: usize, at: Time) {
        let out =
            self.transport.recv_poll(sh.fabric, to as u32, Some((lane.id(), from as u32)), at);
        if out.repoll {
            sh.events.push(at + Duration::from_nanos(200), (self.gid, Ev::Poll { lane, from, to }));
        }
        for inb in out.delivered {
            self.dispatch_message(sh, lane, from, to, inb.payload, at);
        }
    }

    fn dispatch_message(
        &mut self,
        sh: &mut Shared<'_>,
        lane: Lane,
        from: usize,
        to: usize,
        payload: Vec<u8>,
        at: Time,
    ) {
        match lane {
            Lane::CtbTb { stream } => match TbFrame::from_bytes(&payload) {
                Ok(TbFrame::Data(wire)) => {
                    let fx = self.nodes[to].ctb_rx[stream][from].on_wire(wire);
                    self.handle_tb_effects(sh, to, lane, at, fx);
                }
                Ok(TbFrame::Ack(ack)) => {
                    self.nodes[to].ctb_tx[stream].on_ack(ReplicaId(from as u32), ack.upto);
                }
                Err(_) => {}
            },
            Lane::ConsTb => match TbFrame::from_bytes(&payload) {
                Ok(TbFrame::Data(wire)) => {
                    let fx = self.nodes[to].cons_rx[from].on_wire(wire);
                    self.handle_tb_effects(sh, to, lane, at, fx);
                }
                Ok(TbFrame::Ack(ack)) => {
                    self.nodes[to].cons_tx.on_ack(ReplicaId(from as u32), ack.upto);
                }
                Err(_) => {}
            },
            Lane::Direct => {
                if let Ok(msg) = DirectMsg::from_bytes(&payload) {
                    // A censoring leader pretends it never saw the request:
                    // it drops follower echoes (and client requests below)
                    // but participates in everything else.
                    if matches!(msg, DirectMsg::Echo { .. })
                        && self.byz_mode(to, at) == Some(ByzantineMode::CensorRequests)
                    {
                        return;
                    }
                    let f = ReplicaId(from as u32);
                    self.engine_call(sh, to, at, |e| e.on_direct(f, msg));
                }
            }
            Lane::ClientReq => {
                if let Ok(req) = Request::from_bytes(&payload) {
                    self.counters.rpc_msgs += 1;
                    if self.byz_mode(to, at) == Some(ByzantineMode::CensorRequests) {
                        return;
                    }
                    // A retransmission of an already-executed request is
                    // answered from the last-reply table — the engine's
                    // dedup cannot re-execute it (PBFT's classic re-reply).
                    let cached = self.nodes[to]
                        .reply_cache
                        .get(&req.id.client)
                        .filter(|reply| reply.id == req.id)
                        .cloned();
                    if let Some(reply) = cached {
                        let c_node = self.client_node(req.id.client.0 as usize);
                        self.counters.rpc_msgs += 1;
                        self.channel_send(sh, Lane::ClientResp, to, c_node, reply.to_bytes(), at);
                        return;
                    }
                    self.engine_call(sh, to, at, |e| e.on_client_request(req));
                }
            }
            Lane::ClientResp => {
                if let Ok(reply) = Reply::from_bytes(&payload) {
                    let c = to - self.n();
                    let fx = self.clients[c].on_reply(reply);
                    for e in fx {
                        if let ClientEffect::Complete { .. } = e {
                            self.on_client_complete(sh, c, at);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Clients
    // ------------------------------------------------------------------

    /// Consecutive stalled retransmission ticks before the broadcaster
    /// force-converts its unsummarized CTBcast tail to the signed slow
    /// path (≈ 600 µs at the default 150 µs period — far above a healthy
    /// summary round trip, so failure-free runs never pay a signature).
    const SUMMARY_STALL_TICKS: u32 = 4;

    /// One TBcast retransmission tick: every broadcaster this replica owns
    /// resends its stale unacknowledged tail (§4.2), then the tick re-arms.
    /// Also the summary-stall watchdog: a crossed-but-uncertified summary
    /// boundary that survives several ticks means some receiver cannot
    /// reach it in FIFO order (its fast-path unanimity died with a peer) —
    /// the only repair is to give the stuck suffix signed slow-path
    /// evidence, because the summary itself needs that receiver's share.
    fn on_retransmit_tick(&mut self, sh: &mut Shared<'_>, r: usize, at: Time) {
        if !self.nodes[r].crashed {
            for s in 0..self.n() {
                let fx = self.nodes[r].ctb_tx[s].retransmit_stale();
                self.handle_tb_effects(sh, r, Lane::CtbTb { stream: s }, at, fx);
            }
            let fx = self.nodes[r].cons_tx.retransmit_stale();
            self.handle_tb_effects(sh, r, Lane::ConsTb, at, fx);

            let sent = self.nodes[r].engine.ctb_sent_count();
            let done = self.nodes[r].engine.ctb_summarized_upto();
            let half = self.nodes[r].engine.summary_half();
            if sent >= done + half {
                let node = &mut self.nodes[r];
                node.summary_stall_ticks += 1;
                if node.summary_stall_ticks >= Self::SUMMARY_STALL_TICKS {
                    node.summary_stall_ticks = 0;
                    let mut fx = Vec::new();
                    for k in done + 1..=sent {
                        fx.extend(self.nodes[r].ctbs[r].force_slow(SeqId(k)));
                    }
                    for e in fx {
                        self.ctb_effect(sh, r, r, at, e);
                    }
                }
            } else {
                self.nodes[r].summary_stall_ticks = 0;
            }
        }
        self.push(sh, at + self.cfg.retransmit_period, Ev::Retransmit { r });
    }

    fn on_client_issue(&mut self, sh: &mut Shared<'_>, c: usize, at: Time) {
        if !self.clients[c].is_idle() {
            return;
        }
        let seq = sh.ctl.completed;
        let Some(payload) = (self.workload)(seq) else {
            // Nothing routed to this group yet; poll the source again with
            // exponential backoff (5 µs doubling to a ~1.3 ms ceiling) so
            // a starved shard's idle clients cannot flood the event queue
            // over a long run.
            let shift = self.idle_backoff[c].min(8);
            self.idle_backoff[c] = self.idle_backoff[c].saturating_add(1);
            self.push(sh, at + workload_retry() * (1u64 << shift), Ev::ClientIssue { c });
            return;
        };
        self.idle_backoff[c] = 0;
        let (id, fx) = self.clients[c].issue(payload);
        self.issue_times[c] = at;
        for e in fx {
            if let ClientEffect::SendRequest { to, req } = e {
                self.counters.rpc_msgs += 1;
                self.channel_send(
                    sh,
                    Lane::ClientReq,
                    self.client_node(c),
                    to.0 as usize,
                    req.to_bytes(),
                    at,
                );
            }
        }
        self.push(sh, at + client_retry_period(), Ev::ClientRetry { c, id });
    }

    /// The retransmission check for request `id` of client `c` fired.
    fn on_client_retry(
        &mut self,
        sh: &mut Shared<'_>,
        c: usize,
        id: ubft_types::RequestId,
        at: Time,
    ) {
        if self.clients[c].in_flight() != Some(id) {
            return; // completed (or superseded) — nothing to do
        }
        for e in self.clients[c].retransmit() {
            if let ClientEffect::SendRequest { to, req } = e {
                self.counters.rpc_msgs += 1;
                self.channel_send(
                    sh,
                    Lane::ClientReq,
                    self.client_node(c),
                    to.0 as usize,
                    req.to_bytes(),
                    at,
                );
            }
        }
        self.push(sh, at + client_retry_period(), Ev::ClientRetry { c, id });
    }

    fn on_client_complete(&mut self, sh: &mut Shared<'_>, c: usize, at: Time) {
        sh.ctl.completed += 1;
        self.completed += 1;
        if sh.ctl.completed > sh.ctl.warmup {
            self.latency.record(at.since(self.issue_times[c]));
        }
        if sh.ctl.completed < sh.ctl.target {
            self.push(sh, at, Ev::ClientIssue { c });
        }
    }

    /// Dispatches one event popped from the shared queue.
    pub(crate) fn handle(&mut self, sh: &mut Shared<'_>, ev: Ev, t: Time) {
        match ev {
            Ev::Poll { lane, from, to } => self.on_poll(sh, lane, from, to, t),
            Ev::Flush { lane, from, to } => self.on_flush(sh, lane, from, to, t),
            Ev::Timer { r, kind } => {
                self.engine_call(sh, r, t, |e| e.on_timer(kind));
            }
            Ev::CtbSlow { r, k } => {
                self.ctb_call(sh, r, r, t, |c| c.on_slow_timeout(k));
            }
            Ev::CtbSignDone { r, k, sig } => {
                self.ctb_call(sh, r, r, t, |c| c.on_sign_done(k, sig));
            }
            Ev::CtbVerifyDone { r, stream, tag, ok } => {
                self.ctb_call(sh, r, stream, t, |c| c.on_verify_done(tag, ok));
            }
            Ev::CtbWritten { r, stream, k } => {
                self.ctb_call(sh, r, stream, t, |c| c.on_register_written(k));
            }
            Ev::CtbReadDone { r, stream, k, entries } => {
                self.ctb_call(sh, r, stream, t, |c| c.on_registers_read(k, entries));
            }
            Ev::ClientIssue { c } => self.on_client_issue(sh, c, t),
            Ev::ClientRetry { c, id } => self.on_client_retry(sh, c, id, t),
            Ev::Retransmit { r } => self.on_retransmit_tick(sh, r, t),
            Ev::Replace { r, host } => self.replace_replica(sh, r, host, t),
            Ev::EngineFx { r, epoch, fx } => self.on_engine_fx(sh, r, epoch, fx, t),
        }
    }
}

// ----------------------------------------------------------------------
// The shared deployment driver
// ----------------------------------------------------------------------

/// A whole deployment: one shared fabric, one shared (group-tagged) event
/// queue, one global run control, and `G ≥ 1` consensus groups.
///
/// Host-ID layout: group `g` occupies the contiguous block
/// `[g·(n + n_clients), (g+1)·(n + n_clients))` — replicas first, then
/// clients — and the `2f_m + 1` shared memory nodes occupy the final
/// `n_mem` ids. With `G = 1` this is exactly the pre-sharding `Cluster`
/// layout, which is what makes the single-group facade bit-for-bit
/// compatible.
pub(crate) struct Deployment {
    pub now: Time,
    pub fabric: Fabric,
    pub events: EventQueue<GroupEv>,
    pub ctl: RunCtl,
    pub groups: Vec<GroupRuntime>,
    /// The omniscient safety auditor ([`SimConfig::with_audit`]); `None`
    /// keeps the run observation-free and bit-for-bit historical.
    pub audit: Option<Auditor>,
}

impl Deployment {
    /// Builds `shards` groups over one fabric. `make_apps(g)` yields group
    /// `g`'s `n` application instances; `make_workload(g)` yields its
    /// request source.
    pub(crate) fn build(
        base: &SimConfig,
        mut make_apps: impl FnMut(usize) -> Vec<Box<dyn App>>,
        mut make_workload: impl FnMut(usize) -> GroupWorkload,
    ) -> Self {
        let shards = base.shards.max(1);
        let n = base.params.n();
        let n_clients = base.n_clients.max(1);
        let n_mem = base.params.n_mem();
        let block = n + n_clients;

        // Per-group configurations: group-local seed and fault plan.
        let cfgs: Vec<SimConfig> = (0..shards)
            .map(|g| {
                let mut cfg = base.clone();
                cfg.seed = group_seed(base.seed, g);
                // The group's own plan; `shards` keeps the deployment-wide
                // count (the facades read it for stall deadlines), while
                // the per-shard extras are folded into `failures`.
                cfg.failures = base.shard_plan(g);
                // The asynchrony phase is deployment-global (the network
                // delays *every* group's traffic pre-GST), so every
                // group's plan must carry it — snapshot retention reads
                // it, and a shard that lags a window behind pre-GST
                // delays needs donor snapshots to heal.
                cfg.failures.gst = base.failures.gst;
                cfg.failures.pre_gst_extra = base.failures.pre_gst_extra;
                cfg.shard_failures = Vec::new();
                cfg
            })
            .collect();

        // Replacement nodes get brand-new host ids past the memory nodes,
        // pre-allocated so the host count (and thus the deterministic
        // event schedule) is fixed at build time.
        let mut n_hosts = shards * block + n_mem;
        let mut replacements: Vec<(Time, u32, usize, HostId)> = Vec::new();
        for (g, cfg) in cfgs.iter().enumerate() {
            for (r, _crash_at, rejoin_at) in cfg.failures.replacements() {
                assert!(r < n, "shard {g}: replacement victim {r} out of range");
                let host = HostId(n_hosts as u32);
                n_hosts += 1;
                replacements.push((rejoin_at, g as u32, r, host));
            }
        }

        let rng = SimRng::new(base.seed);
        let mut net = NetworkModel::synchronous(base.latency.clone(), n_hosts)
            .with_gst(base.failures.gst, base.failures.pre_gst_extra);
        // Apply crash schedules, mapped into the global host space.
        for (g, cfg) in cfgs.iter().enumerate() {
            let host_base = (g * block) as u32;
            for i in 0..n {
                if let Some(t) = cfg.failures.replica_crash_time(i) {
                    net.crash_host(HostId(host_base + i as u32), t);
                }
            }
        }
        // Memory nodes are shared; a crash scheduled by any group's plan
        // takes the earliest scheduled time.
        for i in 0..n_mem {
            if let Some(t) = cfgs.iter().filter_map(|c| c.failures.mem_node_crash_time(i)).min() {
                net.crash_host(HostId((shards * block + i) as u32), t);
            }
        }
        for (g, cfg) in cfgs.iter().enumerate() {
            let host_base = (g * block) as u32;
            for (a, b, from, until) in cfg.failures.partitions() {
                // Partition endpoints are replica indices by contract
                // (`FailurePlan::partition`). In a multi-shard deployment
                // an index beyond the group's host block would silently
                // land inside the *next* group's block, so reject it
                // loudly; single-group deployments keep the historical
                // raw-host-id behavior.
                assert!(
                    shards == 1 || (a < block && b < block),
                    "shard {g}: partition endpoints ({a}, {b}) must be group-local (< {block})"
                );
                net.add_partition(
                    HostId(host_base + a as u32),
                    HostId(host_base + b as u32),
                    from,
                    until,
                );
            }
        }
        let mut fabric = Fabric::new(net, rng.fork(1));
        let mut events = EventQueue::new();
        let mut ctl = RunCtl::default();
        let mem_hosts: Vec<HostId> =
            (0..n_mem).map(|i| HostId((shards * block + i) as u32)).collect();

        let mut groups = Vec::with_capacity(shards);
        // Groups are built unaudited (nothing decision-relevant happens at
        // construction — engine start-up arms watchdogs only); the auditor
        // reads their shape and sequential models once they exist.
        let mut audit: Option<Auditor> = None;
        for (g, cfg) in cfgs.into_iter().enumerate() {
            let mut sh = Shared {
                fabric: &mut fabric,
                events: &mut events,
                ctl: &mut ctl,
                audit: &mut audit,
            };
            groups.push(GroupRuntime::new(
                g as u32,
                cfg,
                (g * block) as u32,
                &mem_hosts,
                make_apps(g),
                make_workload(g),
                &mut sh,
            ));
        }
        if base.audit {
            audit = Some(Auditor::new(&groups));
        }
        for (rejoin_at, g, r, host) in replacements {
            events.push(rejoin_at, (g, Ev::Replace { r, host }));
        }

        Deployment { now: Time::ZERO, fabric, events, ctl, groups, audit }
    }

    /// Drives the closed loop until `requests + warmup` total completions
    /// or virtual time passes `deadline`.
    pub(crate) fn run_loop(&mut self, requests: u64, warmup: u64, deadline: Time) {
        self.ctl.target = requests + warmup;
        self.ctl.warmup = warmup;
        for g in 0..self.groups.len() {
            for c in 0..self.groups[g].n_clients() {
                self.events.push(
                    Time::ZERO + Duration::from_micros(1 + c as u64),
                    (g as u32, Ev::ClientIssue { c }),
                );
            }
        }
        let max_events = 200_000_000u64;
        while let Some((t, (gid, ev))) = self.events.pop() {
            self.now = t;
            if self.ctl.completed >= self.ctl.target || t > deadline {
                break;
            }
            assert!(self.events.total_pushed() < max_events, "simulation diverged (event flood)");
            let Deployment { fabric, events, ctl, groups, audit, .. } = self;
            // Apply the handling group's scheduled crashes; other groups'
            // crash flags are only read while handling their own events,
            // so they catch up then.
            let group = &mut groups[gid as usize];
            group.apply_scheduled_crashes(t);
            let mut sh = Shared { fabric, events, ctl, audit };
            group.handle(&mut sh, ev, t);
        }
    }

    /// Keeps processing events for `extra` more virtual time *without* a
    /// completion target: in-flight deliveries drain, stragglers (and
    /// replacement nodes) finish catching up. The closed loop stops
    /// issuing once the target is met, so this converges instead of
    /// generating new work.
    pub(crate) fn settle(&mut self, extra: Duration) {
        let deadline = self.now + extra;
        while let Some(t) = self.events.peek_time() {
            if t > deadline {
                break;
            }
            let Some((t, (gid, ev))) = self.events.pop() else { break };
            self.now = t;
            let Deployment { fabric, events, ctl, groups, audit, .. } = self;
            let group = &mut groups[gid as usize];
            group.apply_scheduled_crashes(t);
            let mut sh = Shared { fabric, events, ctl, audit };
            group.handle(&mut sh, ev, t);
        }
    }

    /// One group's report: its own latency distribution (cloned), its
    /// counters, completions, and views, stamped with the global end time.
    /// The audit verdict is deployment-wide; callers wanting per-shard
    /// slices attach them ([`AuditReport::for_group`]).
    pub(crate) fn shard_report(&self, g: usize) -> RunReport {
        let gr = &self.groups[g];
        RunReport {
            latency: gr.latency.clone(),
            counters: gr.counters,
            completed: gr.completed,
            end: self.now,
            views: gr.views(),
            audit: None,
        }
    }

    /// The auditor's verdict over everything observed so far (`None` when
    /// auditing is off). Idempotent — the model replays incrementally, so
    /// asking again after [`Deployment::settle`] audits the drained tail.
    pub(crate) fn audit_report(&mut self) -> Option<AuditReport> {
        let Deployment { audit, groups, .. } = self;
        audit.as_mut().map(|a| a.report(groups))
    }

    /// The merged whole-deployment report; takes each group's latency
    /// samples (call [`Deployment::shard_report`] first if per-shard
    /// distributions are wanted). `audit` is the verdict to attach —
    /// callers that already produced one pass it in instead of paying the
    /// model-comparison work twice.
    pub(crate) fn aggregate_report(&mut self, audit: Option<AuditReport>) -> RunReport {
        let mut latency = LatencyStats::new();
        let mut counters = OpCounters::default();
        let mut views = Vec::new();
        for gr in &mut self.groups {
            latency.absorb(std::mem::take(&mut gr.latency));
            counters.merge(&gr.counters);
            views.extend(gr.views());
        }
        RunReport { latency, counters, completed: self.ctl.completed, end: self.now, views, audit }
    }

    /// Per-replica diagnostics for every group.
    pub(crate) fn diag_lines(&self) -> String {
        if self.groups.len() == 1 {
            return self.groups[0].diag_lines();
        }
        self.groups
            .iter()
            .enumerate()
            .map(|(g, gr)| format!(" shard {g}:\n{}", gr.diag_lines()))
            .collect()
    }
}

/// Per-group seed derivation: group 0 keeps the base seed (the facade's
/// bit-for-bit guarantee), later groups fold in a golden-ratio multiple.
pub(crate) fn group_seed(base: u64, g: usize) -> u64 {
    base ^ (g as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The engine configuration a [`SimConfig`] prescribes for one replica —
/// shared by initial construction, replacement-node construction, and the
/// wall-clock threaded backend, so the three can never drift.
pub(crate) fn engine_config(cfg: &SimConfig, replica: usize) -> EngineConfig {
    let mut ecfg = EngineConfig::new(cfg.params.clone(), cfg.path);
    ecfg.echo_round = cfg.echo_round;
    if let Some(every) = cfg.summary_every {
        ecfg.summary_half = every;
    }
    ecfg.max_batch = cfg.max_batch.max(1);
    if let Some(depth) = cfg.pipeline_depth {
        ecfg.pipeline_depth = depth.max(1);
    }
    ecfg.record_decisions = cfg.audit;
    ecfg.client_cache_cap = cfg.client_cache_cap;
    if let Some(AuditMutation::DecideEarly { replica: target }) = cfg.audit_mutation {
        ecfg.test_decide_early = target == replica;
    }
    ecfg
}
