//! A complete simulated uBFT deployment with a single consensus group.
//!
//! Topology: hosts `0..n` are replicas, `n..n+c` are clients, and the last
//! `2f_m + 1` hosts are passive memory nodes. Every protocol byte flows
//! through the circular-buffer channels of `ubft-transport` (which live in
//! fabric memory), every slow-path register access goes through
//! `ubft-dmem`, and all CPU/crypto time is charged against per-replica
//! busy-until cursors using the calibrated [`CostModel`](ubft_sim::cost::CostModel).
//!
//! [`Cluster`] is a thin facade: the per-replica protocol state lives in
//! the private `node::ReplicaNode`, and the event loop, lanes, and
//! clients live in the private `group::GroupRuntime` — the same machinery
//! that [`ShardedCluster`](crate::sharded::ShardedCluster) instantiates
//! `G` times over one shared fabric.

use ubft_core::app::App;
use ubft_sim::stats::LatencyStats;
use ubft_types::{Time, View};

use crate::calibration::SimConfig;
use crate::group::Deployment;

/// Counts of primitive operations during a run (drives the Figure 9
/// breakdown and sanity assertions like "the fast path signs nothing").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Messages on client request/response lanes.
    pub rpc_msgs: u64,
    /// Messages on CTBcast TB lanes.
    pub ctb_msgs: u64,
    /// Messages on the consensus TB lane.
    pub cons_msgs: u64,
    /// Messages on direct lanes.
    pub direct_msgs: u64,
    /// Signatures issued by CTBcast.
    pub ctb_signs: u64,
    /// Verifications issued by CTBcast.
    pub ctb_verifies: u64,
    /// Signatures issued by the consensus engine.
    pub engine_signs: u64,
    /// Verifications issued by the consensus engine.
    pub engine_verifies: u64,
    /// SWMR register writes.
    pub reg_writes: u64,
    /// SWMR register quorum reads.
    pub reg_reads: u64,
}

impl OpCounters {
    /// Adds every counter of `other` into `self` (aggregating shards).
    pub fn merge(&mut self, other: &OpCounters) {
        self.rpc_msgs += other.rpc_msgs;
        self.ctb_msgs += other.ctb_msgs;
        self.cons_msgs += other.cons_msgs;
        self.direct_msgs += other.direct_msgs;
        self.ctb_signs += other.ctb_signs;
        self.ctb_verifies += other.ctb_verifies;
        self.engine_signs += other.engine_signs;
        self.engine_verifies += other.engine_verifies;
        self.reg_writes += other.reg_writes;
        self.reg_reads += other.reg_reads;
    }
}

/// The outcome of a run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-request end-to-end latency samples (post-warmup).
    pub latency: LatencyStats,
    /// Primitive operation counts.
    pub counters: OpCounters,
    /// Requests completed (including warmup).
    pub completed: u64,
    /// Virtual time at the end of the run.
    pub end: Time,
    /// Final view of each replica.
    pub views: Vec<View>,
    /// The safety auditor's verdict, when the run was configured with
    /// [`SimConfig::with_audit`]; `None` otherwise. Violations are data,
    /// not panics — tests assert `is_clean()`, the chaos explorer shrinks.
    pub audit: Option<crate::audit::AuditReport>,
}

/// A full single-group uBFT cluster simulation.
pub struct Cluster {
    dep: Deployment,
}

impl Cluster {
    /// Builds a cluster with one application instance per replica and one
    /// closed-loop client driving `workload`.
    pub fn new(
        cfg: SimConfig,
        apps: Vec<Box<dyn App>>,
        workload: Box<dyn FnMut(u64) -> Vec<u8>>,
    ) -> Self {
        let mut cfg = cfg;
        cfg.shards = 1;
        let mut apps = Some(apps);
        let mut workload = Some(workload);
        let dep = Deployment::build(
            &cfg,
            |_| apps.take().expect("single group"),
            |_| {
                let mut wl = workload.take().expect("single group");
                Box::new(move |seq| Some(wl(seq)))
            },
        );
        Cluster { dep }
    }

    /// The application state digest of replica `r` (safety assertions in
    /// tests: correct replicas that executed the same prefix must agree).
    pub fn app_digest(&self, r: usize) -> ubft_crypto::Digest {
        self.dep.groups[0].app_digest(r)
    }

    /// First slot replica `r` has not executed.
    pub fn exec_next(&self, r: usize) -> ubft_types::Slot {
        self.dep.groups[0].exec_next(r)
    }

    /// The view replica `r` is in.
    pub fn view_of(&self, r: usize) -> View {
        self.dep.groups[0].view_of(r)
    }

    /// Individual requests replica `r` has decided (batches count their
    /// contents, so this is comparable across batch sizes).
    pub fn decided_of(&self, r: usize) -> u64 {
        self.dep.groups[0].decided_of(r)
    }

    /// Resident entries in replica `r`'s request-dedup table. Unbounded
    /// runs grow one entry per client; runs with
    /// [`SimConfig::with_client_cache_cap`] stay at the (floored) cap —
    /// tests use this to prove eviction actually occurred.
    pub fn dedup_entries(&self, r: usize) -> usize {
        self.dep.groups[0].dedup_entries(r)
    }

    /// Total disaggregated-memory bytes occupied on one memory node by the
    /// register banks (Table 2). Every memory node holds a full copy of
    /// every register, so this is independent of the replication factor.
    pub fn disagg_bytes_per_node(&self) -> usize {
        self.dep.groups[0].disagg_bytes_per_node()
    }

    /// Approximate replica-local resident bytes: channel buffers this
    /// replica hosts, sender mirrors/staging, TB retransmission buffers, and
    /// CTBcast bookkeeping (Table 2).
    pub fn replica_local_bytes(&self, r: usize) -> usize {
        self.dep.groups[0].replica_local_bytes(r)
    }

    /// Runs `warmup + requests` closed-loop requests and reports post-warmup
    /// latency statistics. The stall deadline is derived from the request
    /// count and batch size via [`SimConfig::stall_deadline`], so large runs
    /// cannot false-positive as stalls.
    ///
    /// # Panics
    ///
    /// Panics if the simulation stops making progress before completing the
    /// requested number of operations (the panic message carries per-replica
    /// protocol diagnostics).
    pub fn run(&mut self, requests: u64, warmup: u64) -> RunReport {
        let deadline = self.dep.groups[0].cfg.stall_deadline(requests + warmup);
        let report = self.run_until(requests, warmup, deadline);
        assert!(
            report.completed >= requests + warmup,
            "run stalled at {}/{} completed requests (t = {})\n{}",
            report.completed,
            requests + warmup,
            self.dep.now,
            self.diag_lines(),
        );
        report
    }

    /// Per-replica protocol diagnostics, one line each.
    pub fn diag_lines(&self) -> String {
        self.dep.diag_lines()
    }

    /// Like [`Cluster::run`] but gives up (without panicking) when virtual
    /// time exceeds `deadline`, so stalls are observable instead of fatal.
    pub fn run_until(&mut self, requests: u64, warmup: u64, deadline: Time) -> RunReport {
        self.dep.run_loop(requests, warmup, deadline);
        let audit = self.dep.audit_report();
        self.dep.aggregate_report(audit)
    }

    /// Drains in-flight work for `extra` more virtual time after a run:
    /// [`Cluster::run`] returns the instant the last client completion
    /// lands, at which point lagging replicas (most notably a freshly
    /// replaced one) may still hold undelivered messages. Settling lets
    /// them catch up so post-run state assertions (digests, `exec_next`)
    /// compare fully converged replicas. No new requests are issued.
    pub fn settle(&mut self, extra: ubft_types::Duration) {
        self.dep.settle(extra);
    }

    /// Bytes replica `r` retains in checkpoint snapshots for serving
    /// replacement-node state transfers (Table 2 accounting; zero unless
    /// the fault plan schedules replacements).
    pub fn replica_snapshot_bytes(&self, r: usize) -> usize {
        self.dep.groups[0].replica_snapshot_bytes(r)
    }

    /// The safety auditor's verdict over everything observed so far
    /// (`None` unless the run was configured with
    /// [`SimConfig::with_audit`]). Idempotent; call again after
    /// [`Cluster::settle`] to audit the drained tail too.
    pub fn audit_report(&mut self) -> Option<crate::audit::AuditReport> {
        self.dep.audit_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubft_apps::FlipApp;
    use ubft_types::Duration;

    fn flip_apps(n: usize) -> Vec<Box<dyn App>> {
        (0..n).map(|_| Box::new(FlipApp::new()) as Box<dyn App>).collect()
    }

    fn payload32() -> Box<dyn FnMut(u64) -> Vec<u8>> {
        Box::new(|i| {
            let mut p = vec![0u8; 32];
            p[..8].copy_from_slice(&i.to_le_bytes());
            p
        })
    }

    #[test]
    fn fast_path_end_to_end() {
        let cfg = SimConfig::paper_default(42).fast_only();
        let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
        let report = cluster.run(100, 10);
        assert_eq!(report.completed, 110);
        let mut lat = report.latency;
        let p50 = lat.median();
        // Microsecond scale: the paper's fast path is ~11 µs end to end.
        assert!(
            p50 > Duration::from_micros(4) && p50 < Duration::from_micros(40),
            "fast-path median {p50} out of expected envelope"
        );
        // Signature-less fast path: CTBcast never signs. The engine's only
        // signatures are the *background* bookkeeping ones (§5.4: CTBcast
        // summaries and checkpoints), far fewer than one per request.
        assert_eq!(report.counters.ctb_signs, 0);
        assert!(
            report.counters.engine_signs < report.completed / 4,
            "too many engine signs for a fast path: {}",
            report.counters.engine_signs
        );
    }

    #[test]
    fn slow_path_end_to_end() {
        let cfg = SimConfig::paper_default(43).slow_only();
        let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
        let report = cluster.run(50, 5);
        assert_eq!(report.completed, 55);
        let mut lat = report.latency;
        let p50 = lat.median();
        // Crypto-dominated: hundreds of microseconds.
        assert!(
            p50 > Duration::from_micros(100) && p50 < Duration::from_micros(1000),
            "slow-path median {p50} out of expected envelope"
        );
        assert!(report.counters.ctb_signs > 0);
        assert!(report.counters.reg_writes > 0);
        assert!(report.counters.reg_reads > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg = SimConfig::paper_default(seed).fast_only();
            let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
            let report = cluster.run(50, 5);
            (report.latency.mean(), report.end, report.counters)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn fast_path_faster_than_slow_path() {
        let fast = {
            let cfg = SimConfig::paper_default(1).fast_only();
            Cluster::new(cfg, flip_apps(3), payload32()).run(50, 5)
        };
        let slow = {
            let cfg = SimConfig::paper_default(1).slow_only();
            Cluster::new(cfg, flip_apps(3), payload32()).run(50, 5)
        };
        let (mut f, mut s) = (fast.latency, slow.latency);
        assert!(
            s.median() > f.median() * 5,
            "slow {} should be >5x fast {}",
            s.median(),
            f.median()
        );
    }

    #[test]
    fn two_clients_interleave_and_raise_throughput() {
        let one = {
            let cfg = SimConfig::paper_default(3).fast_only();
            Cluster::new(cfg, flip_apps(3), payload32()).run(200, 20)
        };
        let two = {
            let cfg = SimConfig::paper_default(3).fast_only().with_clients(2);
            Cluster::new(cfg, flip_apps(3), payload32()).run(200, 20)
        };
        assert_eq!(two.completed, 220);
        let tput = |r: &RunReport| r.completed as f64 / r.end.since(Time::ZERO).as_nanos() as f64;
        // Two in-flight slots must yield clearly more than one slot's
        // throughput (the paper reports ~2x, §9).
        assert!(
            tput(&two) > 1.5 * tput(&one),
            "interleaving gained only {:.2}x",
            tput(&two) / tput(&one)
        );
    }

    #[test]
    fn batching_raises_throughput_with_many_clients() {
        // 32 closed-loop clients keep a deep backlog; a narrow pipeline with
        // wide batches must beat one-request-per-slot on requests/sec while
        // every replica still executes the same totals.
        let run = |batch: usize| {
            let cfg = SimConfig::paper_default(11)
                .fast_only()
                .with_clients(32)
                .with_pipeline_depth(2)
                .with_batch(batch);
            let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
            let report = cluster.run(400, 40);
            let digests: Vec<_> = (0..3).map(|r| cluster.app_digest(r)).collect();
            (report, digests)
        };
        let (unbatched, d1) = run(1);
        let (batched, d16) = run(16);
        assert_eq!(unbatched.completed, 440);
        assert_eq!(batched.completed, 440);
        // Safety first: correct replicas agree among themselves in each run.
        assert!(d1.windows(2).all(|w| w[0] == w[1]));
        assert!(d16.windows(2).all(|w| w[0] == w[1]));
        let tput = |r: &RunReport| r.completed as f64 / r.end.since(Time::ZERO).as_nanos() as f64;
        assert!(
            tput(&batched) > 1.3 * tput(&unbatched),
            "batching gained only {:.2}x",
            tput(&batched) / tput(&unbatched)
        );
    }

    #[test]
    fn default_config_batches_are_singletons() {
        // The defaults (max_batch = 1, window-wide pipeline) must behave
        // exactly like the unbatched engine: same per-request counters as a
        // config that spells the degenerate values out explicitly.
        let run = |cfg: SimConfig| {
            let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
            let report = cluster.run(100, 10);
            let digest = cluster.app_digest(0);
            (report.counters, report.completed, digest)
        };
        let implicit = run(SimConfig::paper_default(9).fast_only());
        let explicit = run(SimConfig::paper_default(9).fast_only().with_batch(1));
        assert_eq!(implicit, explicit);
    }

    #[test]
    fn unit_batch_unit_pipeline_reproduces_unbatched_run_bit_for_bit() {
        // A single closed-loop client keeps at most one slot in flight, so
        // `max_batch = 1, pipeline_depth = 1` must be indistinguishable from
        // the default engine down to every counter, latency sample, and the
        // application digest.
        let run = |cfg: SimConfig| {
            let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
            let report = cluster.run(150, 15);
            let digests: Vec<_> = (0..3).map(|r| cluster.app_digest(r)).collect();
            (report.counters, report.completed, report.end, report.latency.mean(), digests)
        };
        let seed_like = run(SimConfig::paper_default(21).fast_only());
        let degenerate =
            run(SimConfig::paper_default(21).fast_only().with_batch(1).with_pipeline_depth(1));
        assert_eq!(seed_like, degenerate);
    }

    #[test]
    fn audited_run_is_clean_and_bit_identical_to_unaudited() {
        let run = |audit: bool| {
            let mut cfg = SimConfig::paper_default(42).fast_only();
            if audit {
                cfg = cfg.with_audit();
            }
            let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
            let report = cluster.run(100, 10);
            let digests: Vec<_> = (0..3).map(|r| cluster.app_digest(r)).collect();
            (report.counters, report.completed, report.end, digests, report.audit)
        };
        let (c0, n0, e0, d0, a0) = run(false);
        let (c1, n1, e1, d1, a1) = run(true);
        // The auditor observes; it must never perturb the run.
        assert_eq!((c0, n0, e0, d0), (c1, n1, e1, d1));
        assert!(a0.is_none());
        let audit = a1.expect("audited run carries a report");
        assert!(audit.is_clean(), "violations: {:#?}", audit.violations);
        // Every replica decided every slot; every decision was checked.
        assert!(audit.decisions_checked >= 3 * 110, "{}", audit.decisions_checked);
        assert!(audit.executions_checked >= 3 * 110, "{}", audit.executions_checked);
        assert_eq!(audit.replicas_compared, 3);
        assert!(audit.model_slots_replayed >= 110);
    }

    #[test]
    fn audited_slow_path_checks_certificate_evidence() {
        let cfg = SimConfig::paper_default(43).slow_only().with_audit();
        let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
        let report = cluster.run(50, 5);
        let audit = report.audit.expect("audited");
        assert!(audit.is_clean(), "violations: {:#?}", audit.violations);
        assert!(audit.decisions_checked >= 3 * 55);
    }

    #[test]
    fn memory_accounting_scales_with_tail() {
        let small = Cluster::new(
            SimConfig::paper_default(1).fast_only().with_tail(16),
            flip_apps(3),
            payload32(),
        );
        let large = Cluster::new(
            SimConfig::paper_default(1).fast_only().with_tail(128),
            flip_apps(3),
            payload32(),
        );
        assert!(large.disagg_bytes_per_node() > small.disagg_bytes_per_node());
        assert!(large.replica_local_bytes(0) > small.replica_local_bytes(0));
        // Disaggregated memory is small: well under 1 MiB per node.
        assert!(large.disagg_bytes_per_node() < 1 << 20);
    }

    #[test]
    fn derived_stall_deadline_scales_with_size() {
        let base = SimConfig::paper_default(1);
        let small = base.stall_deadline(100);
        let large = base.stall_deadline(1_000_000);
        assert!(large > small);
        // Batches amortize slots and shrink the budget; the shard count
        // must NOT shrink it — a fully key-skewed stream may legally send
        // everything to one group, and that schedule must fit.
        let batched = base.clone().with_batch(64).stall_deadline(1_000_000);
        let sharded = base.clone().with_shards(8).stall_deadline(1_000_000);
        assert!(batched < large);
        assert!(sharded >= large);
        assert!(batched > Time::ZERO + Duration::from_secs(5));
        // An asynchronous prefix defers the whole budget: a run owed no
        // progress before GST cannot be declared stalled by it.
        let gst = Time::ZERO + Duration::from_secs(30);
        let mut late_gst = base.clone();
        late_gst.failures =
            ubft_sim::failure::FailurePlan::none().with_asynchrony(gst, Duration::from_micros(50));
        assert!(late_gst.stall_deadline(100) > gst + Duration::from_secs(5));
    }
}
