//! A complete simulated uBFT deployment.
//!
//! Topology: hosts `0..n` are replicas, `n..n+c` are clients, and the last
//! `2f_m + 1` hosts are passive memory nodes. Every protocol byte flows
//! through the circular-buffer channels of `ubft-transport` (which live in
//! fabric memory), every slow-path register access goes through
//! `ubft-dmem`, and all CPU/crypto time is charged against per-replica
//! busy-until cursors using the calibrated [`CostModel`](ubft_sim::cost::CostModel).
//!
//! Lanes between each ordered pair of replicas:
//! * one TBcast channel per CTBcast stream (`LOCK`/`LOCKED`/`SIGNED`),
//! * one consensus TBcast channel (`WILL_*`, `CERTIFY*`, `SUMMARY`),
//! * one direct channel (`Echo`, `CRTFY_VC`, `CERTIFY_SUMMARY`),
//!
//! plus request/response channels between each client and each replica.

use std::collections::HashMap;

use ubft_core::app::App;
use ubft_core::client::{Client, ClientEffect};
use ubft_core::engine::{CryptoOps, Effect, Engine, EngineConfig, PathMode, TimerKind};
use ubft_core::msg::{CtbMsg, DirectMsg, Reply, Request, TbMsg};
use ubft_crypto::{KeyRing, Signature};
use ubft_ctb::ctbcast::{Ctb, CtbConfig, CtbEffect, RegEntry, SlowMode, VerifyTag};
use ubft_ctb::tbcast::{TailBroadcaster, TailReceiver, TbEffect};
use ubft_ctb::wire::{signed_bytes, CtbWire, TbAck, TbFrame, TbWire};
use ubft_dmem::register::{ReadOutcome, RegisterBank, RegisterId, RegisterReader, RegisterWriter};
use ubft_rdma::Fabric;
use ubft_sim::failure::ByzantineMode;
use ubft_sim::net::NetworkModel;
use ubft_sim::stats::LatencyStats;
use ubft_sim::{EventQueue, HostId, SimRng};
use ubft_transport::channel::{create_channel, ChannelReceiver, ChannelSender, ChannelSpec};
use ubft_types::wire::Wire;
use ubft_types::{ClientId, Duration, ProcessId, ReplicaId, SeqId, Time, View};

use crate::calibration::SimConfig;

/// Encoded [`RegEntry`] size: id (8) + fingerprint (32) + signature (32).
const REG_VALUE_SIZE: usize = 72;

/// Message lanes between nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Lane {
    /// TBcast traffic of CTBcast stream `stream`.
    CtbTb { stream: usize },
    /// Consensus-level TBcast traffic.
    ConsTb,
    /// Point-to-point protocol messages.
    Direct,
    /// Client requests.
    ClientReq,
    /// Replica replies.
    ClientResp,
}

/// Simulation events.
enum Ev {
    Poll {
        lane: Lane,
        from: usize,
        to: usize,
    },
    Flush {
        lane: Lane,
        from: usize,
        to: usize,
    },
    Timer {
        r: usize,
        kind: TimerKind,
    },
    CtbSlow {
        r: usize,
        k: SeqId,
    },
    CtbSignDone {
        r: usize,
        k: SeqId,
        sig: Signature,
    },
    CtbVerifyDone {
        r: usize,
        stream: usize,
        tag: VerifyTag,
        ok: bool,
    },
    CtbWritten {
        r: usize,
        stream: usize,
        k: SeqId,
    },
    CtbReadDone {
        r: usize,
        stream: usize,
        k: SeqId,
        entries: Vec<Option<RegEntry>>,
    },
    ClientIssue {
        c: usize,
    },
    /// Periodic TBcast retransmission tick for replica `r` (§4.2: the
    /// broadcaster retransmits its buffered tail until acknowledged).
    Retransmit {
        r: usize,
    },
}

/// Counts of primitive operations during a run (drives the Figure 9
/// breakdown and sanity assertions like "the fast path signs nothing").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Messages on client request/response lanes.
    pub rpc_msgs: u64,
    /// Messages on CTBcast TB lanes.
    pub ctb_msgs: u64,
    /// Messages on the consensus TB lane.
    pub cons_msgs: u64,
    /// Messages on direct lanes.
    pub direct_msgs: u64,
    /// Signatures issued by CTBcast.
    pub ctb_signs: u64,
    /// Verifications issued by CTBcast.
    pub ctb_verifies: u64,
    /// Signatures issued by the consensus engine.
    pub engine_signs: u64,
    /// Verifications issued by the consensus engine.
    pub engine_verifies: u64,
    /// SWMR register writes.
    pub reg_writes: u64,
    /// SWMR register quorum reads.
    pub reg_reads: u64,
}

/// The outcome of a run.
#[derive(Debug)]
pub struct RunReport {
    /// Per-request end-to-end latency samples (post-warmup).
    pub latency: LatencyStats,
    /// Primitive operation counts.
    pub counters: OpCounters,
    /// Requests completed (including warmup).
    pub completed: u64,
    /// Virtual time at the end of the run.
    pub end: Time,
    /// Final view of each replica.
    pub views: Vec<View>,
}

struct Chan {
    tx: ChannelSender,
    rx: ChannelReceiver,
}

/// A full uBFT cluster simulation.
pub struct Cluster {
    cfg: SimConfig,
    now: Time,
    events: EventQueue<Ev>,
    fabric: Fabric,
    busy: Vec<Time>,
    /// Per-replica crypto-worker cursor: engine signatures/verifications
    /// serialize here instead of on the main event-loop cursor (the paper's
    /// background crypto pool, §5.4).
    crypto_busy: Vec<Time>,
    engines: Vec<Engine>,
    apps: Vec<Box<dyn App>>,
    ctbs: Vec<Vec<Ctb>>,
    ctb_tx: Vec<Vec<TailBroadcaster>>,
    ctb_rx: Vec<Vec<Vec<TailReceiver>>>,
    cons_tx: Vec<TailBroadcaster>,
    cons_rx: Vec<Vec<TailReceiver>>,
    channels: HashMap<(Lane, usize, usize), Chan>,
    /// `reg_writers[stream][owner]` (held by `owner`), `reg_readers[stream][owner]`.
    reg_writers: Vec<Vec<RegisterWriter>>,
    reg_readers: Vec<Vec<RegisterReader>>,
    reg_banks_bytes_per_node: usize,
    clients: Vec<Client>,
    issue_times: Vec<Time>,
    workload: Box<dyn FnMut(u64) -> Vec<u8>>,
    ring: KeyRing,
    crashed: Vec<bool>,
    /// Byzantine detections reported by engines: (detector, culprit, why).
    byz_reports: Vec<(usize, u32, String)>,
    pub(crate) counters: OpCounters,
    latency: LatencyStats,
    completed: u64,
    target: u64,
    warmup: u64,
}

impl Cluster {
    /// Builds a cluster with one application instance per replica and one
    /// closed-loop client driving `workload`.
    pub fn new(
        cfg: SimConfig,
        apps: Vec<Box<dyn App>>,
        workload: Box<dyn FnMut(u64) -> Vec<u8>>,
    ) -> Self {
        let n = cfg.params.n();
        assert_eq!(apps.len(), n, "one app instance per replica");
        let n_clients = cfg.n_clients.max(1);
        let n_mem = cfg.params.n_mem();
        let n_hosts = n + n_clients + n_mem;

        let rng = SimRng::new(cfg.seed);
        let mut net = NetworkModel::synchronous(cfg.latency.clone(), n_hosts)
            .with_gst(cfg.failures.gst, cfg.failures.pre_gst_extra);
        // Apply crash schedules.
        for i in 0..n {
            if let Some(t) = cfg.failures.replica_crash_time(i) {
                net.crash_host(HostId(i as u32), t);
            }
        }
        for i in 0..n_mem {
            if let Some(t) = cfg.failures.mem_node_crash_time(i) {
                net.crash_host(HostId((n + n_clients + i) as u32), t);
            }
        }
        for (a, b, from, until) in cfg.failures.partitions() {
            net.add_partition(HostId(a as u32), HostId(b as u32), from, until);
        }
        let mut fabric = Fabric::new(net, rng.fork(1));

        let ring = KeyRing::generate(
            cfg.seed ^ 0x5EED,
            (0..n as u32)
                .map(|i| ProcessId::Replica(ReplicaId(i)))
                .chain((0..n_clients as u32).map(|i| ProcessId::Client(ClientId(i)))),
        );

        // Engines.
        let engines: Vec<Engine> = (0..n as u32)
            .map(|i| {
                let mut ecfg = EngineConfig::new(cfg.params.clone(), cfg.path);
                ecfg.echo_round = cfg.echo_round;
                if let Some(every) = cfg.summary_every {
                    ecfg.summary_half = every;
                }
                ecfg.max_batch = cfg.max_batch.max(1);
                if let Some(depth) = cfg.pipeline_depth {
                    ecfg.pipeline_depth = depth.max(1);
                }
                Engine::new(ReplicaId(i), ecfg, ring.clone())
            })
            .collect();

        // CTBcast instances: ctbs[replica][stream].
        let replica_ids: Vec<ReplicaId> = cfg.params.replicas().collect();
        let ctb_cfg_for = |_s: usize| match cfg.path {
            PathMode::FastOnly => {
                CtbConfig { n, tail: cfg.params.tail, fast_enabled: true, slow: SlowMode::Never }
            }
            PathMode::SlowOnly => {
                CtbConfig { n, tail: cfg.params.tail, fast_enabled: false, slow: SlowMode::Always }
            }
            PathMode::FastWithFallback => CtbConfig::deployed(n, cfg.params.tail),
        };
        let ctbs: Vec<Vec<Ctb>> = (0..n)
            .map(|r| {
                (0..n)
                    .map(|s| {
                        Ctb::new(
                            ReplicaId(r as u32),
                            ReplicaId(s as u32),
                            replica_ids.clone(),
                            ctb_cfg_for(s),
                        )
                    })
                    .collect()
            })
            .collect();

        // TBcast endpoints. Buffers hold 2t messages (Algorithm 1).
        let cap = 2 * cfg.params.tail;
        let peers_of = |r: usize| -> Vec<ReplicaId> {
            (0..n as u32).map(ReplicaId).filter(|x| x.0 as usize != r).collect()
        };
        let ctb_tx: Vec<Vec<TailBroadcaster>> = (0..n)
            .map(|r| {
                (0..n)
                    .map(|_s| TailBroadcaster::new(ReplicaId(r as u32), peers_of(r), cap))
                    .collect()
            })
            .collect();
        let ctb_rx: Vec<Vec<Vec<TailReceiver>>> = (0..n)
            .map(|_r| {
                (0..n)
                    .map(|_s| {
                        (0..n)
                            .map(|sender| TailReceiver::new(ReplicaId(sender as u32), cap))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let cons_tx: Vec<TailBroadcaster> =
            (0..n).map(|r| TailBroadcaster::new(ReplicaId(r as u32), peers_of(r), cap)).collect();
        let cons_rx: Vec<Vec<TailReceiver>> = (0..n)
            .map(|_r| (0..n).map(|s| TailReceiver::new(ReplicaId(s as u32), cap)).collect())
            .collect();

        // Channels.
        let spec = ChannelSpec { slots: cap, slot_payload: cfg.slot_payload() };
        let wide_spec = ChannelSpec { slots: cap, slot_payload: cfg.wide_slot_payload() };
        let client_spec = ChannelSpec { slots: 64, slot_payload: cfg.slot_payload() };
        let mut channels = HashMap::new();
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                for s in 0..n {
                    let (mut tx, rx) = create_channel(&mut fabric, HostId(to as u32), spec);
                    tx.bind_issuer(HostId(from as u32));
                    channels.insert((Lane::CtbTb { stream: s }, from, to), Chan { tx, rx });
                }
                for lane in [Lane::ConsTb, Lane::Direct] {
                    let (mut tx, rx) = create_channel(&mut fabric, HostId(to as u32), wide_spec);
                    tx.bind_issuer(HostId(from as u32));
                    channels.insert((lane, from, to), Chan { tx, rx });
                }
            }
        }
        for c in 0..n_clients {
            let c_node = n + c;
            for r in 0..n {
                let (mut tx, rx) = create_channel(&mut fabric, HostId(r as u32), client_spec);
                tx.bind_issuer(HostId(c_node as u32));
                channels.insert((Lane::ClientReq, c_node, r), Chan { tx, rx });
                let (mut tx, rx) = create_channel(&mut fabric, HostId(c_node as u32), client_spec);
                tx.bind_issuer(HostId(r as u32));
                channels.insert((Lane::ClientResp, r, c_node), Chan { tx, rx });
            }
        }

        // SWMR register banks: banks[stream][owner], replicated on memory
        // nodes; only `owner` holds the writer.
        let mem_hosts: Vec<HostId> =
            (0..n_mem).map(|i| HostId((n + n_clients + i) as u32)).collect();
        let mut reg_writers: Vec<Vec<RegisterWriter>> = Vec::with_capacity(n);
        let mut reg_readers: Vec<Vec<RegisterReader>> = Vec::with_capacity(n);
        let mut bank_bytes = 0usize;
        for _s in 0..n {
            let mut ws = Vec::with_capacity(n);
            let mut rs = Vec::with_capacity(n);
            for _owner in 0..n {
                let bank = RegisterBank::create(
                    &mut fabric,
                    &mem_hosts,
                    cfg.params.tail,
                    REG_VALUE_SIZE,
                    cfg.params.delta,
                );
                bank_bytes += bank.bytes_per_node();
                ws.push(bank.writer());
                rs.push(bank.reader());
            }
            reg_writers.push(ws);
            reg_readers.push(rs);
        }

        let clients: Vec<Client> = (0..n_clients as u32)
            .map(|i| Client::new(ClientId(i), replica_ids.clone(), cfg.params.quorum()))
            .collect();

        let mut cluster = Cluster {
            now: Time::ZERO,
            events: EventQueue::new(),
            fabric,
            busy: vec![Time::ZERO; n],
            crypto_busy: vec![Time::ZERO; n],
            engines,
            apps,
            ctbs,
            ctb_tx,
            ctb_rx,
            cons_tx,
            cons_rx,
            channels,
            reg_writers,
            reg_readers,
            reg_banks_bytes_per_node: bank_bytes,
            clients,
            issue_times: vec![Time::ZERO; n_clients],
            workload,
            ring,
            crashed: vec![false; n],
            byz_reports: Vec::new(),
            counters: OpCounters::default(),
            latency: LatencyStats::new(),
            completed: 0,
            target: 0,
            warmup: 0,
            cfg,
        };
        // Engine start-up (progress watchdogs).
        for r in 0..n {
            let fx = cluster.engines[r].start();
            let ops = cluster.engines[r].take_crypto_ops();
            cluster.apply_engine_effects(r, Time::ZERO, fx, ops);
        }
        // TBcast retransmission ticks, staggered so replicas do not burst in
        // lockstep.
        for r in 0..n {
            let offset = Duration::from_nanos(1_000 * (r as u64 + 1));
            cluster
                .events
                .push(Time::ZERO + cluster.cfg.retransmit_period + offset, Ev::Retransmit { r });
        }
        cluster
    }

    fn n(&self) -> usize {
        self.cfg.params.n()
    }

    fn client_node(&self, c: usize) -> usize {
        self.n() + c
    }

    /// The Byzantine behaviour of host `r` active at `at`, if `r` is a
    /// replica with a scheduled fault.
    fn byz_mode(&self, r: usize, at: Time) -> Option<ByzantineMode> {
        if r < self.n() {
            self.cfg.failures.byzantine_mode(r, at)
        } else {
            None
        }
    }

    /// The application state digest of replica `r` (safety assertions in
    /// tests: correct replicas that executed the same prefix must agree).
    pub fn app_digest(&self, r: usize) -> ubft_crypto::Digest {
        self.apps[r].snapshot_digest()
    }

    /// First slot replica `r` has not executed.
    pub fn exec_next(&self, r: usize) -> ubft_types::Slot {
        self.engines[r].exec_next()
    }

    /// The view replica `r` is in.
    pub fn view_of(&self, r: usize) -> View {
        self.engines[r].view()
    }

    /// Individual requests replica `r` has decided (batches count their
    /// contents, so this is comparable across batch sizes).
    pub fn decided_of(&self, r: usize) -> u64 {
        self.engines[r].decided_count()
    }

    /// Total disaggregated-memory bytes occupied on one memory node by the
    /// register banks (Table 2). Every memory node holds a full copy of
    /// every register, so this is independent of the replication factor.
    pub fn disagg_bytes_per_node(&self) -> usize {
        self.reg_banks_bytes_per_node
    }

    /// Approximate replica-local resident bytes: channel buffers this
    /// replica hosts, sender mirrors/staging, TB retransmission buffers, and
    /// CTBcast bookkeeping (Table 2).
    pub fn replica_local_bytes(&self, r: usize) -> usize {
        let mut total = 0usize;
        for ((_lane, from, to), ch) in &self.channels {
            if *to == r {
                total += ch.tx.buffer_bytes(); // receiver-side buffer
            }
            if *from == r {
                total += ch.tx.buffer_bytes(); // sender mirror + staging
            }
        }
        for s in 0..self.n() {
            total += self.ctbs[r][s].resident_bytes();
            total += self.ctb_tx[r][s].buffered_bytes();
        }
        total += self.cons_tx[r].buffered_bytes();
        total
    }

    // ------------------------------------------------------------------
    // Cost charging
    // ------------------------------------------------------------------

    fn charge(&mut self, r: usize, at: Time, extra: Duration) -> Time {
        let start = if at > self.busy[r] { at } else { self.busy[r] };
        let done = start + self.cfg.cost.dispatch + extra;
        self.busy[r] = done;
        done
    }

    fn crypto_cost(&self, ops: CryptoOps) -> Duration {
        Duration::from_nanos(
            self.cfg.cost.sign_total().as_nanos() * ops.signs as u64
                + self.cfg.cost.verify_total().as_nanos() * ops.verifies as u64,
        )
    }

    // ------------------------------------------------------------------
    // Engine plumbing
    // ------------------------------------------------------------------

    fn engine_call(&mut self, r: usize, at: Time, f: impl FnOnce(&mut Engine) -> Vec<Effect>) {
        if self.crashed[r] {
            return;
        }
        let fx = f(&mut self.engines[r]);
        let ops = self.engines[r].take_crypto_ops();
        self.apply_engine_effects(r, at, fx, ops);
    }

    fn apply_engine_effects(&mut self, r: usize, at: Time, fx: Vec<Effect>, ops: CryptoOps) {
        self.counters.engine_signs += ops.signs as u64;
        self.counters.engine_verifies += ops.verifies as u64;
        // The event-loop dispatch runs on the replica's main core; crypto is
        // handed to the replica's crypto worker (§5.4 keeps bookkeeping
        // signatures off the critical path), so it delays this call's
        // *effects* without blocking subsequent message processing.
        let done = self.charge(r, at, Duration::ZERO);
        let effect_at = if ops.is_zero() {
            done
        } else {
            let start = if done > self.crypto_busy[r] { done } else { self.crypto_busy[r] };
            let fin = start + self.crypto_cost(ops);
            self.crypto_busy[r] = fin;
            fin
        };
        for e in fx {
            self.engine_effect(r, effect_at, e);
        }
    }

    fn engine_effect(&mut self, r: usize, at: Time, e: Effect) {
        match e {
            Effect::CtbBroadcast(msg) => {
                let bytes = msg.to_bytes();
                let (_k, cfx) = self.ctbs[r][r].broadcast(bytes);
                for ce in cfx {
                    self.ctb_effect(r, r, at, ce);
                }
            }
            Effect::TbBroadcast(msg) => {
                let bytes = msg.to_bytes();
                let (_k, tfx) = self.cons_tx[r].broadcast(bytes);
                self.handle_tb_effects(r, Lane::ConsTb, at, tfx);
            }
            Effect::SendReplica { to, msg } => {
                self.counters.direct_msgs += 1;
                self.channel_send(Lane::Direct, r, to.0 as usize, msg.to_bytes(), at);
            }
            Effect::Execute { slot: _, req } => {
                let cost = self.apps[r].execute_cost(&req.payload);
                let payload = self.apps[r].execute(&req.payload);
                let done = self.charge(r, at, cost);
                if !req.is_noop() && (req.id.client.0 as usize) < self.clients.len() {
                    let reply = Reply { id: req.id, replica: ReplicaId(r as u32), payload };
                    let c_node = self.client_node(req.id.client.0 as usize);
                    self.counters.rpc_msgs += 1;
                    self.channel_send(Lane::ClientResp, r, c_node, reply.to_bytes(), done);
                }
            }
            Effect::RequestSnapshot { base } => {
                let digest = self.apps[r].snapshot_digest();
                self.engine_call(r, at, |e| e.on_snapshot(base, digest));
            }
            Effect::ArmTimer { kind } => {
                let after = match kind {
                    TimerKind::Progress => {
                        // PBFT-style backoff: fruitless view changes double
                        // the watchdog period so slow view changes complete.
                        self.cfg.progress_timeout * u64::from(self.engines[r].progress_backoff())
                    }
                    TimerKind::SlotSlowTrigger(_) => self.cfg.slow_trigger,
                    TimerKind::EchoFallback(_) => self.cfg.echo_fallback,
                };
                self.events.push(at + after, Ev::Timer { r, kind });
            }
            Effect::ByzantineDetected { replica, reason } => {
                self.byz_reports.push((r, replica.0, reason));
            }
            Effect::CheckpointAdopted { .. } | Effect::ViewChanged { .. } => {}
        }
    }

    // ------------------------------------------------------------------
    // CTBcast plumbing
    // ------------------------------------------------------------------

    fn ctb_call(
        &mut self,
        r: usize,
        stream: usize,
        at: Time,
        f: impl FnOnce(&mut Ctb) -> Vec<CtbEffect>,
    ) {
        if self.crashed[r] {
            return;
        }
        let fx = f(&mut self.ctbs[r][stream]);
        let done = self.charge(r, at, Duration::ZERO);
        for e in fx {
            self.ctb_effect(r, stream, done, e);
        }
    }

    fn ctb_effect(&mut self, r: usize, stream: usize, at: Time, e: CtbEffect) {
        match e {
            CtbEffect::Broadcast(wire) => {
                if stream == r
                    && self.byz_mode(r, at) == Some(ByzantineMode::EquivocateProposals)
                    && self.equivocate_broadcast(r, at, &wire)
                {
                    return;
                }
                let bytes = wire.to_bytes();
                let (_k, tfx) = self.ctb_tx[r][stream].broadcast(bytes);
                self.handle_tb_effects(r, Lane::CtbTb { stream }, at, tfx);
            }
            CtbEffect::Sign { k, fp } => {
                self.counters.ctb_signs += 1;
                let signer = self
                    .ring
                    .signer(ProcessId::Replica(ReplicaId(stream as u32)))
                    .expect("replica key");
                let sig = signer.sign(&signed_bytes(ReplicaId(stream as u32), k, &fp));
                self.events.push(at + self.cfg.cost.sign_total(), Ev::CtbSignDone { r, k, sig });
            }
            CtbEffect::Verify { tag, k, fp, sig } => {
                self.counters.ctb_verifies += 1;
                let ok = self.ring.verify(
                    ProcessId::Replica(ReplicaId(stream as u32)),
                    &signed_bytes(ReplicaId(stream as u32), k, &fp),
                    &sig,
                );
                self.events.push(
                    at + self.cfg.cost.verify_total(),
                    Ev::CtbVerifyDone { r, stream, tag, ok },
                );
            }
            CtbEffect::WriteRegister { slot, k, entry } => {
                self.counters.reg_writes += 1;
                let host = HostId(r as u32);
                let mut entry = entry;
                // A register-corrupting replica stores a garbled fingerprint
                // in its own SWMR slot. Readers must treat the entry as a
                // suspect, fail its signature check, and deliver anyway
                // (§6.1: forged entries cannot block delivery).
                if self.byz_mode(r, at) == Some(ByzantineMode::CorruptRegisters) {
                    let mut fp = *entry.fp.as_bytes();
                    fp[0] ^= 0xFF;
                    fp[31] ^= 0xFF;
                    entry.fp = ubft_crypto::Digest::from_bytes(fp);
                }
                let bytes = entry.to_bytes();
                let done = self.reg_writers[stream][r].write(
                    &mut self.fabric,
                    host,
                    RegisterId(slot),
                    k.0,
                    &bytes,
                    at,
                );
                if let Some(done) = done {
                    self.events.push(done, Ev::CtbWritten { r, stream, k });
                }
            }
            CtbEffect::ReadSlot { slot, k } => {
                self.counters.reg_reads += 1;
                let (entries, completion) = self.read_register_slot(r, stream, slot, at);
                self.events.push(completion, Ev::CtbReadDone { r, stream, k, entries });
            }
            CtbEffect::Deliver { k, payload } => match CtbMsg::from_bytes(&payload) {
                Ok(msg) => {
                    let s = ReplicaId(stream as u32);
                    self.engine_call(r, at, |e| e.on_ctb_deliver(s, k, msg));
                }
                Err(_) => {
                    let s = ReplicaId(stream as u32);
                    self.engine_call(r, at, |e| e.on_ctb_equivocation(s, k));
                }
            },
            CtbEffect::Equivocation { k } => {
                let s = ReplicaId(stream as u32);
                self.engine_call(r, at, |e| e.on_ctb_equivocation(s, k));
            }
            CtbEffect::ArmSlowTimer { k } => {
                self.events.push(at + self.cfg.slow_trigger, Ev::CtbSlow { r, k });
            }
        }
    }

    /// Byzantine equivocation: the broadcaster of stream `r` sends
    /// *different* proposals to different receivers under the same CTBcast
    /// id — the exact attack CTBcast exists to stop. Returns `true` when the
    /// frame was handled (it carried a fast-path `LOCK` of a `PREPARE`);
    /// other frames fall through to the honest path so the Byzantine replica
    /// still participates in the rest of the protocol.
    fn equivocate_broadcast(&mut self, r: usize, at: Time, wire: &CtbWire) -> bool {
        let CtbWire::Lock { m, .. } = wire else {
            return false;
        };
        let Ok(CtbMsg::Prepare(prep)) = CtbMsg::from_bytes(m) else {
            return false;
        };
        // Register the broadcast with the honest TailBroadcaster (sequence
        // numbers, retransmission buffer, self-delivery) but discard its
        // uniform sends; hand-craft a poisoned variant for odd receivers.
        let (k, tfx) = self.ctb_tx[r][r].broadcast(wire.to_bytes());
        let mut alt = prep.clone();
        let mut reqs = alt.batch.requests().to_vec();
        if reqs[0].payload.is_empty() {
            reqs[0].payload.push(0xFF);
        } else {
            reqs[0].payload[0] ^= 0xFF;
        }
        alt.batch = ubft_core::msg::Batch::new(reqs);
        let alt_wire = CtbWire::Lock { k, m: CtbMsg::Prepare(alt).to_bytes() };
        for e in tfx {
            match e {
                TbEffect::SendTo { to, wire: tb } => {
                    self.counters.ctb_msgs += 1;
                    let poisoned = to.0 % 2 == 1;
                    let frame = if poisoned {
                        TbFrame::Data(TbWire { k: tb.k, payload: alt_wire.to_bytes() })
                    } else {
                        TbFrame::Data(tb)
                    };
                    self.channel_send(
                        Lane::CtbTb { stream: r },
                        r,
                        to.0 as usize,
                        frame.to_bytes(),
                        at,
                    );
                }
                other => {
                    self.handle_tb_effects(r, Lane::CtbTb { stream: r }, at, vec![other]);
                }
            }
        }
        true
    }

    /// Reads every receiver's register for `slot` of `stream`, retrying once
    /// per owner when a read overlaps a write (§6.1). Returns parsed entries
    /// in replica order and the quorum completion time.
    fn read_register_slot(
        &mut self,
        r: usize,
        stream: usize,
        slot: usize,
        at: Time,
    ) -> (Vec<Option<RegEntry>>, Time) {
        let host = HostId(r as u32);
        let mut entries = Vec::with_capacity(self.n());
        let mut completion = at;
        for owner in 0..self.n() {
            let reader = &self.reg_readers[stream][owner];
            let mut attempt_at = at;
            let mut parsed = None;
            for _attempt in 0..2 {
                match reader.read(&mut self.fabric, host, RegisterId(slot), attempt_at) {
                    ReadOutcome::Value { value, completion: c, .. } => {
                        completion = completion.max(c);
                        parsed = RegEntry::from_bytes(&value).ok();
                        break;
                    }
                    ReadOutcome::WriterByzantine { completion: c } => {
                        completion = completion.max(c);
                        break;
                    }
                    ReadOutcome::Retry { completion: c } => {
                        completion = completion.max(c);
                        attempt_at = c;
                    }
                    ReadOutcome::NoQuorum => break,
                }
            }
            entries.push(parsed);
        }
        (entries, completion)
    }

    // ------------------------------------------------------------------
    // TBcast + channel plumbing
    // ------------------------------------------------------------------

    fn handle_tb_effects(&mut self, r: usize, lane: Lane, at: Time, fx: Vec<TbEffect>) {
        for e in fx {
            match e {
                TbEffect::SendTo { to, wire } => {
                    match lane {
                        Lane::CtbTb { .. } => self.counters.ctb_msgs += 1,
                        Lane::ConsTb => self.counters.cons_msgs += 1,
                        _ => {}
                    }
                    self.channel_send(lane, r, to.0 as usize, TbFrame::Data(wire).to_bytes(), at);
                }
                TbEffect::SendAck { to, upto } => {
                    // Cumulative acks silence the broadcaster's
                    // retransmission of the buffered tail (§4.2).
                    self.channel_send(
                        lane,
                        r,
                        to.0 as usize,
                        TbFrame::Ack(TbAck { upto }).to_bytes(),
                        at,
                    );
                }
                TbEffect::Deliver { from, k: _, payload } => {
                    self.deliver_tb_payload(r, lane, from, payload, at);
                }
            }
        }
    }

    fn deliver_tb_payload(
        &mut self,
        r: usize,
        lane: Lane,
        from: ReplicaId,
        payload: Vec<u8>,
        at: Time,
    ) {
        match lane {
            Lane::CtbTb { stream } => {
                if let Ok(wire) = CtbWire::from_bytes(&payload) {
                    self.ctb_call(r, stream, at, |c| c.on_tb_deliver(from, wire));
                }
            }
            Lane::ConsTb => {
                if let Ok(msg) = TbMsg::from_bytes(&payload) {
                    self.engine_call(r, at, |e| e.on_tb_deliver(from, msg));
                }
            }
            _ => {}
        }
    }

    fn channel_send(&mut self, lane: Lane, from: usize, to: usize, bytes: Vec<u8>, at: Time) {
        let mut at = at;
        match self.byz_mode(from, at) {
            // A silent replica stops transmitting entirely; it keeps
            // receiving, which is what distinguishes it from a crash in the
            // logs but not in effect.
            Some(ByzantineMode::Silent) => return,
            // A laggard is correct but slow: every outgoing message is
            // delayed (a gray failure; the fast path must absorb or
            // time out past it).
            Some(ByzantineMode::Laggard) => at += Duration::from_micros(50),
            _ => {}
        }
        let Some(ch) = self.channels.get_mut(&(lane, from, to)) else {
            return;
        };
        let out = ch.tx.send(&mut self.fabric, at, &bytes);
        let staged = ch.tx.staged_len() > 0;
        let flush_at = ch.tx.next_flush_at();
        for (_seq, arrival) in out.issued {
            self.events.push(arrival + self.cfg.poll_pickup, Ev::Poll { lane, from, to });
        }
        if staged {
            if let Some(t) = flush_at {
                let t = if t > at { t } else { at + Duration::from_nanos(1) };
                self.events.push(t, Ev::Flush { lane, from, to });
            }
        }
    }

    fn on_flush(&mut self, lane: Lane, from: usize, to: usize, at: Time) {
        let Some(ch) = self.channels.get_mut(&(lane, from, to)) else {
            return;
        };
        let out = ch.tx.flush(&mut self.fabric, at);
        let staged = ch.tx.staged_len() > 0;
        let flush_at = ch.tx.next_flush_at();
        for (_seq, arrival) in out.issued {
            self.events.push(arrival + self.cfg.poll_pickup, Ev::Poll { lane, from, to });
        }
        if staged {
            if let Some(t) = flush_at {
                let t = if t > at { t } else { at + Duration::from_nanos(1) };
                self.events.push(t, Ev::Flush { lane, from, to });
            }
        }
    }

    fn on_poll(&mut self, lane: Lane, from: usize, to: usize, at: Time) {
        let Some(ch) = self.channels.get_mut(&(lane, from, to)) else {
            return;
        };
        let out = ch.rx.poll(&mut self.fabric, at);
        if out.repoll {
            self.events.push(at + Duration::from_nanos(200), Ev::Poll { lane, from, to });
        }
        for (_seq, payload) in out.delivered {
            self.dispatch_message(lane, from, to, payload, at);
        }
    }

    fn dispatch_message(&mut self, lane: Lane, from: usize, to: usize, payload: Vec<u8>, at: Time) {
        match lane {
            Lane::CtbTb { stream } => match TbFrame::from_bytes(&payload) {
                Ok(TbFrame::Data(wire)) => {
                    let fx = self.ctb_rx[to][stream][from].on_wire(wire);
                    self.handle_tb_effects(to, lane, at, fx);
                }
                Ok(TbFrame::Ack(ack)) => {
                    self.ctb_tx[to][stream].on_ack(ReplicaId(from as u32), ack.upto);
                }
                Err(_) => {}
            },
            Lane::ConsTb => match TbFrame::from_bytes(&payload) {
                Ok(TbFrame::Data(wire)) => {
                    let fx = self.cons_rx[to][from].on_wire(wire);
                    self.handle_tb_effects(to, lane, at, fx);
                }
                Ok(TbFrame::Ack(ack)) => {
                    self.cons_tx[to].on_ack(ReplicaId(from as u32), ack.upto);
                }
                Err(_) => {}
            },
            Lane::Direct => {
                if let Ok(msg) = DirectMsg::from_bytes(&payload) {
                    // A censoring leader pretends it never saw the request:
                    // it drops follower echoes (and client requests below)
                    // but participates in everything else.
                    if matches!(msg, DirectMsg::Echo { .. })
                        && self.byz_mode(to, at) == Some(ByzantineMode::CensorRequests)
                    {
                        return;
                    }
                    let f = ReplicaId(from as u32);
                    self.engine_call(to, at, |e| e.on_direct(f, msg));
                }
            }
            Lane::ClientReq => {
                if let Ok(req) = Request::from_bytes(&payload) {
                    self.counters.rpc_msgs += 1;
                    if self.byz_mode(to, at) == Some(ByzantineMode::CensorRequests) {
                        return;
                    }
                    self.engine_call(to, at, |e| e.on_client_request(req));
                }
            }
            Lane::ClientResp => {
                if let Ok(reply) = Reply::from_bytes(&payload) {
                    let c = to - self.n();
                    let fx = self.clients[c].on_reply(reply);
                    for e in fx {
                        if let ClientEffect::Complete { .. } = e {
                            self.on_client_complete(c, at);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Clients and the run loop
    // ------------------------------------------------------------------

    /// One TBcast retransmission tick: every broadcaster this replica owns
    /// resends its stale unacknowledged tail (§4.2), then the tick re-arms.
    fn on_retransmit_tick(&mut self, r: usize, at: Time) {
        if !self.crashed[r] {
            for s in 0..self.n() {
                let fx = self.ctb_tx[r][s].retransmit_stale();
                self.handle_tb_effects(r, Lane::CtbTb { stream: s }, at, fx);
            }
            let fx = self.cons_tx[r].retransmit_stale();
            self.handle_tb_effects(r, Lane::ConsTb, at, fx);
        }
        self.events.push(at + self.cfg.retransmit_period, Ev::Retransmit { r });
    }

    fn on_client_issue(&mut self, c: usize, at: Time) {
        if !self.clients[c].is_idle() {
            return;
        }
        let seq = self.completed;
        let payload = (self.workload)(seq);
        let (_id, fx) = self.clients[c].issue(payload);
        self.issue_times[c] = at;
        for e in fx {
            if let ClientEffect::SendRequest { to, req } = e {
                self.counters.rpc_msgs += 1;
                self.channel_send(
                    Lane::ClientReq,
                    self.client_node(c),
                    to.0 as usize,
                    req.to_bytes(),
                    at,
                );
            }
        }
    }

    fn on_client_complete(&mut self, c: usize, at: Time) {
        self.completed += 1;
        if self.completed > self.warmup {
            self.latency.record(at.since(self.issue_times[c]));
        }
        if self.completed < self.target {
            self.events.push(at, Ev::ClientIssue { c });
        }
    }

    /// Runs `warmup + requests` closed-loop requests and reports post-warmup
    /// latency statistics.
    ///
    /// # Panics
    ///
    /// Panics if the simulation stops making progress before completing the
    /// requested number of operations (the panic message carries per-replica
    /// protocol diagnostics).
    pub fn run(&mut self, requests: u64, warmup: u64) -> RunReport {
        let report = self.run_until(requests, warmup, Time::ZERO + Duration::from_secs(60));
        assert!(
            report.completed >= requests + warmup,
            "run stalled at {}/{} completed requests (t = {})\n{}",
            report.completed,
            requests + warmup,
            self.now,
            self.diag_lines(),
        );
        report
    }

    /// Per-replica protocol diagnostics, one line each.
    pub fn diag_lines(&self) -> String {
        let mut s: String = self
            .engines
            .iter()
            .enumerate()
            .map(|(r, e)| {
                let ctb: Vec<String> = (0..self.n())
                    .map(|st| {
                        format!(
                            "s{}:dlv{}/fifo{}",
                            st,
                            self.ctbs[r][st].max_delivered().0,
                            e.fifo_position(ReplicaId(st as u32)).0,
                        )
                    })
                    .collect();
                format!("  {} crashed={} [{}]\n", e.diag(), self.crashed[r], ctb.join(" "))
            })
            .collect();
        for (detector, culprit, why) in &self.byz_reports {
            s.push_str(&format!("  r{detector} branded r{culprit} byzantine: {why}\n"));
        }
        s
    }

    /// Like [`Cluster::run`] but gives up (without panicking) when virtual
    /// time exceeds `deadline`, so stalls are observable instead of fatal.
    pub fn run_until(&mut self, requests: u64, warmup: u64, deadline: Time) -> RunReport {
        self.target = requests + warmup;
        self.warmup = warmup;
        for c in 0..self.clients.len() {
            self.events
                .push(Time::ZERO + Duration::from_micros(1 + c as u64), Ev::ClientIssue { c });
        }
        let max_events = 200_000_000u64;
        while let Some((t, ev)) = self.events.pop() {
            self.now = t;
            if self.completed >= self.target || t > deadline {
                break;
            }
            assert!(self.events.total_pushed() < max_events, "simulation diverged (event flood)");
            // Apply scheduled replica crashes.
            for r in 0..self.n() {
                if !self.crashed[r] {
                    if let Some(ct) = self.cfg.failures.replica_crash_time(r) {
                        if t >= ct {
                            self.crashed[r] = true;
                        }
                    }
                }
            }
            match ev {
                Ev::Poll { lane, from, to } => self.on_poll(lane, from, to, t),
                Ev::Flush { lane, from, to } => self.on_flush(lane, from, to, t),
                Ev::Timer { r, kind } => {
                    self.engine_call(r, t, |e| e.on_timer(kind));
                }
                Ev::CtbSlow { r, k } => {
                    self.ctb_call(r, r, t, |c| c.on_slow_timeout(k));
                }
                Ev::CtbSignDone { r, k, sig } => {
                    self.ctb_call(r, r, t, |c| c.on_sign_done(k, sig));
                }
                Ev::CtbVerifyDone { r, stream, tag, ok } => {
                    self.ctb_call(r, stream, t, |c| c.on_verify_done(tag, ok));
                }
                Ev::CtbWritten { r, stream, k } => {
                    self.ctb_call(r, stream, t, |c| c.on_register_written(k));
                }
                Ev::CtbReadDone { r, stream, k, entries } => {
                    self.ctb_call(r, stream, t, |c| c.on_registers_read(k, entries));
                }
                Ev::ClientIssue { c } => self.on_client_issue(c, t),
                Ev::Retransmit { r } => self.on_retransmit_tick(r, t),
            }
        }
        RunReport {
            latency: std::mem::take(&mut self.latency),
            counters: self.counters,
            completed: self.completed,
            end: self.now,
            views: self.engines.iter().map(|e| e.view()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubft_apps::FlipApp;

    fn flip_apps(n: usize) -> Vec<Box<dyn App>> {
        (0..n).map(|_| Box::new(FlipApp::new()) as Box<dyn App>).collect()
    }

    fn payload32() -> Box<dyn FnMut(u64) -> Vec<u8>> {
        Box::new(|i| {
            let mut p = vec![0u8; 32];
            p[..8].copy_from_slice(&i.to_le_bytes());
            p
        })
    }

    #[test]
    fn fast_path_end_to_end() {
        let cfg = SimConfig::paper_default(42).fast_only();
        let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
        let report = cluster.run(100, 10);
        assert_eq!(report.completed, 110);
        let mut lat = report.latency;
        let p50 = lat.median();
        // Microsecond scale: the paper's fast path is ~11 µs end to end.
        assert!(
            p50 > Duration::from_micros(4) && p50 < Duration::from_micros(40),
            "fast-path median {p50} out of expected envelope"
        );
        // Signature-less fast path: CTBcast never signs. The engine's only
        // signatures are the *background* bookkeeping ones (§5.4: CTBcast
        // summaries and checkpoints), far fewer than one per request.
        assert_eq!(report.counters.ctb_signs, 0);
        assert!(
            report.counters.engine_signs < report.completed / 4,
            "too many engine signs for a fast path: {}",
            report.counters.engine_signs
        );
    }

    #[test]
    fn slow_path_end_to_end() {
        let cfg = SimConfig::paper_default(43).slow_only();
        let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
        let report = cluster.run(50, 5);
        assert_eq!(report.completed, 55);
        let mut lat = report.latency;
        let p50 = lat.median();
        // Crypto-dominated: hundreds of microseconds.
        assert!(
            p50 > Duration::from_micros(100) && p50 < Duration::from_micros(1000),
            "slow-path median {p50} out of expected envelope"
        );
        assert!(report.counters.ctb_signs > 0);
        assert!(report.counters.reg_writes > 0);
        assert!(report.counters.reg_reads > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg = SimConfig::paper_default(seed).fast_only();
            let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
            let report = cluster.run(50, 5);
            (report.latency.mean(), report.end, report.counters)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn fast_path_faster_than_slow_path() {
        let fast = {
            let cfg = SimConfig::paper_default(1).fast_only();
            Cluster::new(cfg, flip_apps(3), payload32()).run(50, 5)
        };
        let slow = {
            let cfg = SimConfig::paper_default(1).slow_only();
            Cluster::new(cfg, flip_apps(3), payload32()).run(50, 5)
        };
        let (mut f, mut s) = (fast.latency, slow.latency);
        assert!(
            s.median() > f.median() * 5,
            "slow {} should be >5x fast {}",
            s.median(),
            f.median()
        );
    }

    #[test]
    fn two_clients_interleave_and_raise_throughput() {
        let one = {
            let cfg = SimConfig::paper_default(3).fast_only();
            Cluster::new(cfg, flip_apps(3), payload32()).run(200, 20)
        };
        let two = {
            let cfg = SimConfig::paper_default(3).fast_only().with_clients(2);
            Cluster::new(cfg, flip_apps(3), payload32()).run(200, 20)
        };
        assert_eq!(two.completed, 220);
        let tput = |r: &RunReport| r.completed as f64 / r.end.since(Time::ZERO).as_nanos() as f64;
        // Two in-flight slots must yield clearly more than one slot's
        // throughput (the paper reports ~2x, §9).
        assert!(
            tput(&two) > 1.5 * tput(&one),
            "interleaving gained only {:.2}x",
            tput(&two) / tput(&one)
        );
    }

    #[test]
    fn batching_raises_throughput_with_many_clients() {
        // 32 closed-loop clients keep a deep backlog; a narrow pipeline with
        // wide batches must beat one-request-per-slot on requests/sec while
        // every replica still executes the same totals.
        let run = |batch: usize| {
            let cfg = SimConfig::paper_default(11)
                .fast_only()
                .with_clients(32)
                .with_pipeline_depth(2)
                .with_batch(batch);
            let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
            let report = cluster.run(400, 40);
            let digests: Vec<_> = (0..3).map(|r| cluster.app_digest(r)).collect();
            (report, digests)
        };
        let (unbatched, d1) = run(1);
        let (batched, d16) = run(16);
        assert_eq!(unbatched.completed, 440);
        assert_eq!(batched.completed, 440);
        // Safety first: correct replicas agree among themselves in each run.
        assert!(d1.windows(2).all(|w| w[0] == w[1]));
        assert!(d16.windows(2).all(|w| w[0] == w[1]));
        let tput = |r: &RunReport| r.completed as f64 / r.end.since(Time::ZERO).as_nanos() as f64;
        assert!(
            tput(&batched) > 1.3 * tput(&unbatched),
            "batching gained only {:.2}x",
            tput(&batched) / tput(&unbatched)
        );
    }

    #[test]
    fn default_config_batches_are_singletons() {
        // The defaults (max_batch = 1, window-wide pipeline) must behave
        // exactly like the unbatched engine: same per-request counters as a
        // config that spells the degenerate values out explicitly.
        let run = |cfg: SimConfig| {
            let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
            let report = cluster.run(100, 10);
            let digest = cluster.app_digest(0);
            (report.counters, report.completed, digest)
        };
        let implicit = run(SimConfig::paper_default(9).fast_only());
        let explicit = run(SimConfig::paper_default(9).fast_only().with_batch(1));
        assert_eq!(implicit, explicit);
    }

    #[test]
    fn unit_batch_unit_pipeline_reproduces_unbatched_run_bit_for_bit() {
        // A single closed-loop client keeps at most one slot in flight, so
        // `max_batch = 1, pipeline_depth = 1` must be indistinguishable from
        // the default engine down to every counter, latency sample, and the
        // application digest.
        let run = |cfg: SimConfig| {
            let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
            let report = cluster.run(150, 15);
            let digests: Vec<_> = (0..3).map(|r| cluster.app_digest(r)).collect();
            (report.counters, report.completed, report.end, report.latency.mean(), digests)
        };
        let seed_like = run(SimConfig::paper_default(21).fast_only());
        let degenerate =
            run(SimConfig::paper_default(21).fast_only().with_batch(1).with_pipeline_depth(1));
        assert_eq!(seed_like, degenerate);
    }

    #[test]
    fn memory_accounting_scales_with_tail() {
        let small = Cluster::new(
            SimConfig::paper_default(1).fast_only().with_tail(16),
            flip_apps(3),
            payload32(),
        );
        let large = Cluster::new(
            SimConfig::paper_default(1).fast_only().with_tail(128),
            flip_apps(3),
            payload32(),
        );
        assert!(large.disagg_bytes_per_node() > small.disagg_bytes_per_node());
        assert!(large.replica_local_bytes(0) > small.replica_local_bytes(0));
        // Disaggregated memory is small: well under 1 MiB per node.
        assert!(large.disagg_bytes_per_node() < 1 << 20);
    }
}
