//! Per-replica protocol state: one [`ReplicaNode`] bundles everything a
//! single uBFT replica owns — previously inlined as parallel `Vec`s in the
//! `Cluster` monolith.

use ubft_core::app::App;
use ubft_core::engine::Engine;
use ubft_core::lru::LruMap;
use ubft_core::msg::Reply;
use ubft_crypto::Digest;
use ubft_ctb::ctbcast::Ctb;
use ubft_ctb::tbcast::{TailBroadcaster, TailReceiver};
use ubft_dmem::register::RegisterWriter;
use ubft_types::{ClientId, Slot, Time};

/// How many recent checkpoint snapshots a replica retains for serving
/// state transfers to replacement nodes. The joiner always asks for a
/// *recent* stable checkpoint (its `f + 1` join acks name one), so a short
/// history suffices; anything older is covered by a newer checkpoint.
pub(crate) const SNAPSHOT_RETAIN: usize = 4;

/// One retained checkpoint snapshot: everything a certified state transfer
/// hands a lagging replica — the serialized application plus the
/// request-dedup table, each verified by the receiver against the
/// checkpoint certificate's digests.
pub(crate) struct Snapshot {
    /// First slot *not* covered.
    pub base: Slot,
    /// Digest the restored application must reproduce.
    pub app_digest: Digest,
    /// Serialized application state.
    pub app_bytes: Vec<u8>,
    /// The dedup table at `base` (certified via
    /// [`CheckpointData::exec_digest`](ubft_core::msg::CheckpointData)).
    pub exec_table: Vec<(ClientId, u64)>,
}

/// One replica's complete protocol stack.
///
/// A replica owns its consensus engine, its replicated application
/// instance, one CTBcast instance per stream (its own stream as
/// broadcaster, every peer's as receiver), the TBcast endpoints those
/// streams and the consensus lane ride on, the SWMR register writers for
/// its own slots of every stream's bank, and its two virtual-time cost
/// cursors (main event-loop core and background crypto worker, §5.4).
pub(crate) struct ReplicaNode {
    /// The consensus state machine (Algorithms 2–5).
    pub engine: Engine,
    /// The replicated application.
    pub app: Box<dyn App>,
    /// CTBcast instances, one per stream: `ctbs[s]` handles stream `s`.
    pub ctbs: Vec<Ctb>,
    /// TBcast broadcasters for this replica's side of each CTBcast stream.
    pub ctb_tx: Vec<TailBroadcaster>,
    /// TBcast receivers: `ctb_rx[stream][sender]`.
    pub ctb_rx: Vec<Vec<TailReceiver>>,
    /// Broadcaster for the consensus-level TBcast lane.
    pub cons_tx: TailBroadcaster,
    /// Consensus-lane receivers, one per sender.
    pub cons_rx: Vec<TailReceiver>,
    /// SWMR register writers this replica owns: `reg_writers[stream]` is
    /// the writer for this replica's slots in `stream`'s bank.
    pub reg_writers: Vec<RegisterWriter>,
    /// Main-core busy-until cursor (event-loop dispatch serializes here).
    pub busy: Time,
    /// Crypto-worker busy-until cursor: engine signatures/verifications
    /// serialize here instead of on the main cursor (the paper's
    /// background crypto pool, §5.4).
    pub crypto_busy: Time,
    /// Whether a scheduled crash has taken effect.
    pub crashed: bool,
    /// Recent checkpoint snapshots, oldest first, retained to serve
    /// certified state transfers — to replacement nodes and to replicas
    /// that lagged a whole window behind a partition or asynchrony. Empty
    /// (and never populated) unless the deployment's fault plan schedules
    /// faults, so failure-free runs pay nothing.
    pub snapshots: Vec<Snapshot>,
    /// Engine-effect batches deferred behind crypto completion that have
    /// not been applied yet (see `Ev::EngineFx` in the group runtime).
    pub deferred_fx: u32,
    /// Scheduled time of the most recent deferred batch: later batches —
    /// even crypto-free ones — must apply after it to preserve the
    /// engine's emission order.
    pub deferred_until: Time,
    /// Incarnation counter, bumped on replacement: deferred batches carry
    /// the epoch that scheduled them and are dropped on mismatch.
    pub epoch: u32,
    /// Consecutive retransmission ticks during which this node's own
    /// CTBcast summary stayed stalled (a boundary crossed but not
    /// certified); past a threshold the runtime force-converts the
    /// unsummarized tail to the signed slow path so receivers whose
    /// fast-path unanimity a dead peer broke can still deliver.
    pub summary_stall_ticks: u32,
    /// The last reply sent to each client (PBFT's last-reply table): a
    /// retransmitted request that already executed is answered from here —
    /// the engine's dedup cannot re-execute it, and without the cached
    /// reply a client whose response was lost would stall forever.
    /// Bounded alongside the engine's dedup table by
    /// [`SimConfig::client_cache_cap`](crate::calibration::SimConfig):
    /// replica-local, so eviction needs no cross-replica agreement.
    pub reply_cache: LruMap<ClientId, Reply>,
    /// Every non-noop request this replica executed, in execution order.
    /// Pure observation (no event or RNG interaction), recorded so the
    /// backend-equivalence suite can compare decided sequences between the
    /// simulator and the wall-clock threaded runtime request by request.
    pub exec_log: Vec<(ClientId, u64)>,
}

impl ReplicaNode {
    /// Resident bytes of this node's CTBcast bookkeeping and TB
    /// retransmission buffers (the channel buffers are accounted by the
    /// group, which owns the channel map).
    pub fn protocol_resident_bytes(&self) -> usize {
        let mut total = 0usize;
        for (ctb, tx) in self.ctbs.iter().zip(&self.ctb_tx) {
            total += ctb.resident_bytes();
            total += tx.buffered_bytes();
        }
        total += self.cons_tx.buffered_bytes();
        total
    }

    /// Bytes retained in checkpoint snapshots kept for serving state
    /// transfers (zero unless the fault plan schedules faults).
    pub fn snapshot_bytes(&self) -> usize {
        self.snapshots.iter().map(|s| s.app_bytes.len()).sum()
    }
}
