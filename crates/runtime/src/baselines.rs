//! The comparison systems, measured under the same calibrated substrate:
//! unreplicated execution, Mu (crash-only SMR), and MinBFT (vanilla and
//! HMAC variants).
//!
//! All three serve one closed-loop client, so each request's latency is the
//! sum of the components on its critical chain; the chains are driven
//! through the real baseline state machines (`ubft-mu`, `ubft-minbft`) with
//! virtual-time costs sampled from the shared models. MinBFT additionally
//! charges a per-hop software-stack overhead: its public implementation is
//! TCP-based and, even with the VMA kernel-bypass substitution the paper
//! applies (§7.2), far less optimized than the RDMA-native systems.

use ubft_core::app::App;
use ubft_core::msg::Request;
use ubft_crypto::KeyRing;
use ubft_minbft::{ClientAuth, MinbftEffect, MinbftReplica, Usig};
use ubft_mu::{MuEffect, MuFollower, MuLeader};
use ubft_sim::stats::LatencyStats;
use ubft_sim::SimRng;
use ubft_types::{ClientId, Duration, ProcessId, ReplicaId, RequestId, Slot, Time};

use crate::calibration::SimConfig;

/// Per-hop software-stack overhead of the MinBFT implementation over VMA
/// (message marshalling, socket emulation, thread handoffs), in nanoseconds.
const MINBFT_STACK_OVERHEAD_NS: u64 = 22_000;

fn hop(cfg: &SimConfig, rng: &mut SimRng, bytes: usize) -> Duration {
    cfg.latency.sample(rng, bytes) + cfg.poll_pickup + cfg.cost.dispatch
}

/// Unreplicated execution: request to the server, execute, reply.
pub fn run_unreplicated(
    cfg: &SimConfig,
    app: &mut dyn App,
    mut workload: impl FnMut(u64) -> Vec<u8>,
    requests: u64,
    warmup: u64,
) -> LatencyStats {
    let mut rng = SimRng::new(cfg.seed ^ 0x0BA5E);
    let mut stats = LatencyStats::new();
    for i in 0..requests + warmup {
        let payload = workload(i);
        let mut t = Duration::ZERO;
        t += hop(cfg, &mut rng, payload.len());
        t += app.execute_cost(&payload);
        let resp = app.execute(&payload);
        t += hop(cfg, &mut rng, resp.len());
        if i >= warmup {
            stats.record(t);
        }
    }
    stats
}

/// Mu: the leader RDMA-writes the request to follower logs and replies after
/// a majority completes (one write round above unreplicated).
pub fn run_mu(
    cfg: &SimConfig,
    app: &mut dyn App,
    mut workload: impl FnMut(u64) -> Vec<u8>,
    requests: u64,
    warmup: u64,
) -> LatencyStats {
    let mut rng = SimRng::new(cfg.seed ^ 0x0117);
    let mut stats = LatencyStats::new();
    let n = cfg.params.n();
    let followers: Vec<ReplicaId> = (1..n as u32).map(ReplicaId).collect();
    let mut leader = MuLeader::new(ReplicaId(0), followers);
    let mut follower_logs: Vec<MuFollower> = (1..n).map(|_| MuFollower::new()).collect();

    for i in 0..requests + warmup {
        let payload = workload(i);
        let req = Request { id: RequestId::new(ClientId(0), i), payload: payload.clone() };
        let mut t = Duration::ZERO;
        t += hop(cfg, &mut rng, payload.len()); // client -> leader

        let fx = leader.on_client_request(req);
        // Issue the log writes; completion = write + ack (one RDMA RTT).
        let mut write_completions: Vec<(Duration, Slot)> = Vec::new();
        for e in &fx {
            if let MuEffect::WriteLog { to, slot, req } = e {
                let rtt =
                    cfg.latency.sample(&mut rng, payload.len()) + cfg.latency.sample(&mut rng, 16);
                write_completions.push((rtt, *slot));
                follower_logs[to.0 as usize - 1].on_log_write(*slot, req.clone());
            }
        }
        write_completions.sort();
        // The leader commits at the first completion (majority of 2 with
        // n = 3 counts the leader's own copy).
        let mut committed = false;
        for (rtt, slot) in write_completions {
            let fx = leader.on_write_complete(slot);
            if !committed {
                if let Some(MuEffect::Commit { req, .. }) =
                    fx.into_iter().find(|e| matches!(e, MuEffect::Commit { .. }))
                {
                    t += rtt;
                    t += app.execute_cost(&req.payload);
                    let resp = app.execute(&req.payload);
                    t += hop(cfg, &mut rng, resp.len()); // leader -> client
                    committed = true;
                }
            }
        }
        assert!(committed, "mu request did not commit");
        if i >= warmup {
            stats.record(t);
        }
    }
    stats
}

/// Mu driving batched load: the leader groups `batch` client requests into
/// one log append, so the replication round (the write RTT) is paid once per
/// batch instead of once per request — the same amortization lever the
/// batched uBFT engine pulls. Records one latency sample *per batch*; divide
/// `batch` by the mean to get requests per unit time.
pub fn run_mu_batched(
    cfg: &SimConfig,
    app: &mut dyn App,
    mut workload: impl FnMut(u64) -> Vec<u8>,
    batches: u64,
    warmup: u64,
    batch: usize,
) -> LatencyStats {
    let batch = batch.max(1);
    let mut rng = SimRng::new(cfg.seed ^ 0x117B);
    let mut stats = LatencyStats::new();
    let n = cfg.params.n();
    let followers: Vec<ReplicaId> = (1..n as u32).map(ReplicaId).collect();
    let mut leader = MuLeader::new(ReplicaId(0), followers);
    let mut follower_logs: Vec<MuFollower> = (1..n).map(|_| MuFollower::new()).collect();

    let mut seq = 0u64;
    for i in 0..batches + warmup {
        // Concatenate the batch into one log record; the request carried
        // through Mu's state machine is the whole batch.
        let payloads: Vec<Vec<u8>> = (0..batch as u64)
            .map(|_| {
                let p = workload(seq);
                seq += 1;
                p
            })
            .collect();
        let record: Vec<u8> = payloads.iter().flat_map(|p| p.iter().copied()).collect();
        let req = Request { id: RequestId::new(ClientId(0), i), payload: record.clone() };

        let mut t = Duration::ZERO;
        // Clients reach the leader independently; the last arrival gates the
        // batch (charged as one hop of the largest request).
        t += hop(cfg, &mut rng, payloads.iter().map(Vec::len).max().unwrap_or(0));

        let fx = leader.on_client_request(req);
        let mut write_completions: Vec<(Duration, Slot)> = Vec::new();
        for e in &fx {
            if let MuEffect::WriteLog { to, slot, req } = e {
                let rtt =
                    cfg.latency.sample(&mut rng, record.len()) + cfg.latency.sample(&mut rng, 16);
                write_completions.push((rtt, *slot));
                follower_logs[to.0 as usize - 1].on_log_write(*slot, req.clone());
            }
        }
        write_completions.sort();
        let mut committed = false;
        for (rtt, slot) in write_completions {
            let fx = leader.on_write_complete(slot);
            if !committed && fx.iter().any(|e| matches!(e, MuEffect::Commit { .. })) {
                t += rtt;
                // Execute every request of the batch in order.
                for p in &payloads {
                    t += app.execute_cost(p);
                    let _ = app.execute(p);
                }
                t += hop(cfg, &mut rng, 64); // leader -> clients (replies)
                committed = true;
            }
        }
        assert!(committed, "mu batch did not commit");
        if i >= warmup {
            stats.record(t);
        }
    }
    stats
}

/// MinBFT over a VMA-like kernel-bypass transport, with enclave accesses
/// charged at 7–12.5 µs (§7.4) and, for the vanilla variant, public-key
/// client signatures and signed replies.
pub fn run_minbft(
    cfg: &SimConfig,
    auth: ClientAuth,
    app: &mut dyn App,
    mut workload: impl FnMut(u64) -> Vec<u8>,
    requests: u64,
    warmup: u64,
) -> LatencyStats {
    let mut rng = SimRng::new(cfg.seed ^ 0x314B);
    let mut stats = LatencyStats::new();
    let n = cfg.params.n();
    let f = cfg.params.f;
    let secret = [0xA5u8; 32];
    let ids: Vec<ReplicaId> = (0..n as u32).map(ReplicaId).collect();
    let ring = KeyRing::generate(
        cfg.seed,
        ids.iter().map(|r| ProcessId::Replica(*r)).chain([ProcessId::Client(ClientId(0))]),
    );
    let client_signer = ring.signer(ProcessId::Client(ClientId(0))).expect("client key");
    let mut replicas: Vec<MinbftReplica> = ids
        .iter()
        .map(|&me| {
            let peers = ids.iter().copied().filter(|x| *x != me).collect();
            MinbftReplica::new(me, peers, f, Usig::new(me, secret), ring.clone(), auth)
        })
        .collect();

    let vma_hop = |rng: &mut SimRng, cfg: &SimConfig, bytes: usize| {
        hop(cfg, rng, bytes) + Duration::from_nanos(MINBFT_STACK_OVERHEAD_NS)
    };

    for i in 0..requests + warmup {
        let payload = workload(i);
        let req = Request { id: RequestId::new(ClientId(0), i), payload: payload.clone() };
        let mut t = Duration::ZERO;

        // Client authentication.
        use ubft_types::wire::Wire;
        let sig = match auth {
            ClientAuth::Signatures => {
                t += cfg.cost.sign_total();
                Some(client_signer.sign(&req.to_bytes()))
            }
            ClientAuth::EnclaveHmac => {
                t += cfg.cost.enclave_access(&mut rng);
                None
            }
        };
        t += vma_hop(&mut rng, cfg, payload.len()); // client -> leader

        // Leader processes the request; charge its enclave/PK meters.
        let fx = replicas[0].on_client_request(req.clone(), sig.as_ref());
        t += charge_meters(cfg, &mut rng, &mut replicas[0]);

        // Deliver every message FIFO (USIG counters are sequential). Time is
        // charged for the critical chain only: one prepare hop, one
        // follower's processing, one commit hop back.
        let mut queue: std::collections::VecDeque<(usize, MinbftEffect)> =
            fx.into_iter().map(|e| (0usize, e)).collect();
        let mut executed = None;
        let mut prepare_hop_charged = false;
        let mut follower_charged = false;
        let mut commit_hop_charged = false;
        while let Some((who, e)) = queue.pop_front() {
            match e {
                MinbftEffect::SendPrepare { to, slot, req, ui } => {
                    if !prepare_hop_charged {
                        t += vma_hop(&mut rng, cfg, payload.len());
                        prepare_hop_charged = true;
                    }
                    let ti = to.0 as usize;
                    let ffx =
                        replicas[ti].on_prepare(ReplicaId(who as u32), slot, req, ui, sig.as_ref());
                    if !follower_charged {
                        t += charge_meters(cfg, &mut rng, &mut replicas[ti]);
                        follower_charged = true;
                    } else {
                        let _ = replicas[ti].take_meters();
                    }
                    queue.extend(ffx.into_iter().map(|fe| (ti, fe)));
                }
                MinbftEffect::SendCommit { to, slot, ui } => {
                    let ti = to.0 as usize;
                    let ffx = replicas[ti].on_commit(ReplicaId(who as u32), slot, ui);
                    if ti == 0 && !commit_hop_charged {
                        t += vma_hop(&mut rng, cfg, 64);
                        commit_hop_charged = true;
                    }
                    queue.extend(ffx.into_iter().map(|fe| (ti, fe)));
                }
                MinbftEffect::Execute { req, .. } => {
                    if who == 0 && executed.is_none() {
                        executed = Some(req);
                    }
                }
            }
        }
        t += charge_meters(cfg, &mut rng, &mut replicas[0]);
        let req = executed.expect("minbft request must execute");
        t += app.execute_cost(&req.payload);
        let resp = app.execute(&req.payload);

        // Reply to the client; the client needs f+1 matching replies, and in
        // the vanilla variant replies are signed and verified.
        if auth == ClientAuth::Signatures {
            t += cfg.cost.sign_total(); // replica signs the reply
        }
        t += vma_hop(&mut rng, cfg, resp.len());
        match auth {
            ClientAuth::Signatures => {
                t += Duration::from_nanos(cfg.cost.verify_total().as_nanos() * (f as u64 + 1));
            }
            ClientAuth::EnclaveHmac => {
                t += cfg.cost.enclave_access(&mut rng);
            }
        }
        if i >= warmup {
            stats.record(t);
        }
    }
    stats
}

fn charge_meters(cfg: &SimConfig, rng: &mut SimRng, replica: &mut MinbftReplica) -> Duration {
    let (enclave, pk) = replica.take_meters();
    let mut t = Duration::ZERO;
    for _ in 0..enclave {
        t += cfg.cost.enclave_access(rng);
    }
    t += Duration::from_nanos(cfg.cost.verify_total().as_nanos() * pk);
    t
}

/// The SGX-based non-equivocation primitive of Figure 10: sender enclave
/// access + broadcast to two receivers + receiver enclave access.
pub fn run_sgx_nonequivocation(
    cfg: &SimConfig,
    msg_size: usize,
    rounds: u64,
    seed: u64,
) -> LatencyStats {
    let mut rng = SimRng::new(seed);
    let mut stats = LatencyStats::new();
    for _ in 0..rounds {
        let mut t = Duration::ZERO;
        t += cfg.cost.enclave_access(&mut rng); // sender binds the counter
        t += cfg.cost.checksum(msg_size);
        t += hop(cfg, &mut rng, msg_size); // broadcast (parallel receivers)
        t += cfg.cost.enclave_access(&mut rng); // receiver verifies
        stats.record(t);
    }
    stats
}

/// Virtual time origin helper for baseline tests.
pub fn t0() -> Time {
    Time::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubft_apps::FlipApp;

    fn payload(size: usize) -> impl FnMut(u64) -> Vec<u8> {
        move |i| {
            let mut p = vec![0u8; size];
            let k = 8.min(size);
            p[..k].copy_from_slice(&i.to_le_bytes()[..k]);
            p
        }
    }

    #[test]
    fn unreplicated_is_microseconds() {
        let cfg = SimConfig::paper_default(1);
        let mut app = FlipApp::new();
        let mut s = run_unreplicated(&cfg, &mut app, payload(32), 200, 20);
        let p50 = s.median();
        assert!(
            p50 > Duration::from_nanos(1500) && p50 < Duration::from_micros(6),
            "unreplicated median {p50}"
        );
    }

    #[test]
    fn mu_adds_one_write_round() {
        let cfg = SimConfig::paper_default(1);
        let mut app = FlipApp::new();
        let mut unrepl = run_unreplicated(&cfg, &mut app, payload(32), 200, 20);
        let mut app2 = FlipApp::new();
        let mut mu = run_mu(&cfg, &mut app2, payload(32), 200, 20);
        assert!(mu.median() > unrepl.median());
        assert!(
            mu.median() < unrepl.median() + Duration::from_micros(5),
            "mu {} vs unreplicated {}",
            mu.median(),
            unrepl.median()
        );
    }

    #[test]
    fn batched_mu_amortizes_the_write_round() {
        let cfg = SimConfig::paper_default(1);
        let mut app = FlipApp::new();
        let mut one = run_mu_batched(&cfg, &mut app, payload(32), 200, 20, 1);
        let mut app16 = FlipApp::new();
        let mut sixteen = run_mu_batched(&cfg, &mut app16, payload(32), 200, 20, 16);
        // Requests per microsecond: batch size over per-batch latency.
        let tput = |b: f64, s: &mut LatencyStats| b / s.mean().as_micros_f64();
        assert!(
            tput(16.0, &mut sixteen) > 4.0 * tput(1.0, &mut one),
            "batching Mu gained only {:.2}x",
            tput(16.0, &mut sixteen) / tput(1.0, &mut one)
        );
        // Per-batch latency still grows with the batch (bigger record).
        assert!(sixteen.median() > one.median());
    }

    #[test]
    fn minbft_vanilla_slower_than_hmac() {
        let cfg = SimConfig::paper_default(1);
        let mut a1 = FlipApp::new();
        let mut vanilla = run_minbft(&cfg, ClientAuth::Signatures, &mut a1, payload(32), 100, 10);
        let mut a2 = FlipApp::new();
        let mut hmac = run_minbft(&cfg, ClientAuth::EnclaveHmac, &mut a2, payload(32), 100, 10);
        assert!(
            vanilla.median() > hmac.median() * 3 / 2,
            "vanilla {} should be >1.5x hmac {}",
            vanilla.median(),
            hmac.median()
        );
        // Hundreds of microseconds, as in Figure 8.
        assert!(vanilla.median() > Duration::from_micros(300));
        assert!(hmac.median() > Duration::from_micros(150));
    }

    #[test]
    fn sgx_nonequivocation_over_16us() {
        let cfg = SimConfig::paper_default(1);
        let mut s = run_sgx_nonequivocation(&cfg, 32, 100, 3);
        let p50 = s.median();
        assert!(
            p50 > Duration::from_micros(14) && p50 < Duration::from_micros(30),
            "sgx non-equivocation {p50}"
        );
    }

    #[test]
    fn deterministic_baselines() {
        let cfg = SimConfig::paper_default(9);
        let mut a = FlipApp::new();
        let mut b = FlipApp::new();
        let s1 = run_unreplicated(&cfg, &mut a, payload(32), 50, 5).mean();
        let s2 = run_unreplicated(&cfg, &mut b, payload(32), 50, 5).mean();
        assert_eq!(s1, s2);
    }
}
