//! Calibration constants: the simulated testbed (paper Table 1).
//!
//! The physical testbed is 4 dual-socket Xeon Gold 6244 servers with
//! ConnectX-6 NICs on one 100 Gbps EDR switch. We reproduce its *timing
//! envelope*: the network follows [`LatencyModel::paper_testbed`], CPU/crypto
//! costs follow [`CostModel::paper_testbed`], and protocol timeouts are set
//! far above common-case latency so they never fire in failure-free runs.

use ubft_core::PathMode;
use ubft_sim::chaos::ChaosPlan;
use ubft_sim::cost::CostModel;
use ubft_sim::failure::FailurePlan;
use ubft_sim::net::LatencyModel;
use ubft_types::{ClusterParams, Duration, Time};

use crate::audit::AuditMutation;

/// Full configuration of one simulated experiment.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Cluster shape (f, f_m, tail, window, δ, max request size).
    pub params: ClusterParams,
    /// Fast path / slow path selection.
    pub path: PathMode,
    /// Experiment seed (all randomness derives from it).
    pub seed: u64,
    /// Network latency model.
    pub latency: LatencyModel,
    /// CPU/crypto cost model.
    pub cost: CostModel,
    /// Fault schedule.
    pub failures: FailurePlan,
    /// Fast-path timeout before the slow path starts.
    pub slow_trigger: Duration,
    /// Leader-progress watchdog period.
    pub progress_timeout: Duration,
    /// Echo-round fallback timeout.
    pub echo_fallback: Duration,
    /// Receiver poll pickup delay (buffer scan granularity).
    pub poll_pickup: Duration,
    /// TBcast retransmission tick: unacknowledged buffered messages older
    /// than one full period are resent (§4.2). Recovery from message loss
    /// (partitions, buffer overwrite) takes between one and two periods.
    pub retransmit_period: Duration,
    /// Whether the leader runs the §5.4 echo round before proposing
    /// (disabled in the echo ablation).
    pub echo_round: bool,
    /// Number of closed-loop clients. Two clients keep two consensus slots
    /// in flight, the §9 interleaving that doubles throughput by using the
    /// slack between a slot's protocol events.
    pub n_clients: usize,
    /// Override for the CTBcast-summary trigger interval (Algorithm 4).
    /// `None` keeps the paper's `t/2` double-buffering; `Some(t)` is the
    /// single-buffered ablation.
    pub summary_every: Option<u64>,
    /// Most requests the leader packs into one consensus slot
    /// ([`EngineConfig::max_batch`](ubft_core::engine::EngineConfig)).
    /// `1` — the default — reproduces the unbatched paper prototype.
    pub max_batch: usize,
    /// Most slots the leader keeps in flight (proposed but not yet
    /// executed). `None` — the default — bounds the pipeline only by the
    /// consensus window, which never binds; small values make the backlog
    /// queue up so batches actually form under load.
    pub pipeline_depth: Option<usize>,
    /// Number of independent consensus groups a
    /// [`ShardedCluster`](crate::sharded::ShardedCluster) instantiates over
    /// one shared fabric and memory-node set. `1` — the default — is the
    /// classic single-group deployment; [`Cluster`](crate::cluster::Cluster)
    /// always runs one group regardless of this knob.
    pub shards: usize,
    /// Additional fault schedules addressed to individual shards:
    /// `(shard, plan)` pairs whose replica/memory-node indices are
    /// group-local. The scalar [`SimConfig::failures`] plan addresses
    /// shard 0 (so single-group configurations behave unchanged).
    pub shard_failures: Vec<(usize, FailurePlan)>,
    /// Whether the omniscient safety [`Auditor`](crate::audit::Auditor)
    /// observes the run ([`SimConfig::with_audit`]). Off by default: an
    /// unaudited run records nothing and stays bit-for-bit historical.
    pub audit: bool,
    /// Deliberately injected bug for auditor self-tests
    /// ([`SimConfig::with_audit_mutation`]); never set in production
    /// configurations.
    pub audit_mutation: Option<AuditMutation>,
    /// Capacity of the per-client dedup table and last-reply cache
    /// ([`EngineConfig::client_cache_cap`](ubft_core::engine::EngineConfig)).
    /// `None` — the default — keeps one entry per client forever (the
    /// paper prototype's unbounded tables); `Some(c)` bounds both with
    /// deterministic LRU eviction. The engine floors the effective cap so
    /// in-flight requests can never be evicted into re-execution.
    pub client_cache_cap: Option<usize>,
    /// Which deployment backend runs this configuration. The
    /// discrete-event simulator ([`Backend::Sim`], the default) is
    /// deterministic virtual time; [`Backend::Threads`]
    /// ([`crate::threads`]) runs every node on its own OS thread against
    /// the wall clock.
    pub backend: Backend,
    /// Threaded backend only: size of the shared crypto worker pool that
    /// signature/digest work is offloaded to (the paper's background
    /// crypto cores, §5.4). Ignored by the simulator, which models one
    /// crypto core per replica as a virtual-time cursor.
    pub crypto_workers: usize,
    /// Threaded backend only: multiplier stretching virtual-time timer
    /// durations (progress watchdog, slow-path trigger, retransmit tick)
    /// into wall-clock time. The simulator's timers are calibrated to
    /// RDMA microseconds; OS scheduling jitter is orders of magnitude
    /// coarser, so un-stretched timers fire spuriously and derail runs
    /// into view changes. Ignored by the simulator.
    pub time_scale: u32,
}

/// Deployment backend selector ([`SimConfig::backend`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Deterministic discrete-event simulation in virtual time — every
    /// existing test and calibration figure runs here, bit-for-bit.
    Sim,
    /// Wall-clock execution: one OS thread per replica, client driver,
    /// and memory node, connected by in-process queues
    /// ([`crate::threads`]).
    Threads,
}

impl SimConfig {
    /// The deployed configuration on the simulated testbed.
    pub fn paper_default(seed: u64) -> Self {
        SimConfig {
            params: ClusterParams::paper_default(),
            path: PathMode::FastWithFallback,
            seed,
            latency: LatencyModel::paper_testbed(),
            cost: CostModel::paper_testbed(),
            failures: FailurePlan::none(),
            slow_trigger: Duration::from_micros(200),
            // Far above common-case latency *including* the checkpoint
            // boundary's crypto burst (certificate signing/verification
            // serializes on the background crypto worker for a few hundred
            // microseconds every window), so the watchdog never fires in a
            // failure-free run and never mistakes a checkpoint for a dead
            // leader.
            progress_timeout: Duration::from_micros(2_500),
            echo_fallback: Duration::from_micros(100),
            poll_pickup: Duration::from_nanos(150),
            retransmit_period: Duration::from_micros(150),
            echo_round: true,
            n_clients: 1,
            summary_every: None,
            max_batch: 1,
            pipeline_depth: None,
            shards: 1,
            shard_failures: Vec::new(),
            audit: false,
            audit_mutation: None,
            client_cache_cap: None,
            backend: Backend::Sim,
            crypto_workers: 2,
            time_scale: 20,
        }
    }

    /// Fast-path-only variant (Figures 7, 11).
    #[must_use]
    pub fn fast_only(mut self) -> Self {
        self.path = PathMode::FastOnly;
        self
    }

    /// Forced-slow-path variant (Figure 8's "uBFT slow path").
    #[must_use]
    pub fn slow_only(mut self) -> Self {
        self.path = PathMode::SlowOnly;
        self
    }

    /// Overrides the CTBcast tail (Figure 11 / Table 2 sweeps).
    #[must_use]
    pub fn with_tail(mut self, tail: usize) -> Self {
        self.params = self.params.with_tail(tail);
        self
    }

    /// Overrides the consensus window (checkpoint cadence; recovery tests
    /// shrink it so replacements catch up within short runs).
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.params = self.params.with_window(window);
        self
    }

    /// Overrides the largest request size (channel slot sizing).
    #[must_use]
    pub fn with_max_request(mut self, bytes: usize) -> Self {
        self.params = self.params.with_max_request_bytes(bytes);
        self
    }

    /// Disables the §5.4 echo round (the echo ablation: what the round
    /// costs in latency, and what Byzantine-client protection it buys).
    #[must_use]
    pub fn without_echo(mut self) -> Self {
        self.echo_round = false;
        self
    }

    /// Sets the number of concurrent closed-loop clients (§9 throughput).
    #[must_use]
    pub fn with_clients(mut self, n: usize) -> Self {
        self.n_clients = n.max(1);
        self
    }

    /// Bounds the per-client dedup table and last-reply cache to `cap`
    /// entries with deterministic LRU eviction (subject to the engine's
    /// in-flight safety floor). The default (`None`) is unbounded.
    #[must_use]
    pub fn with_client_cache_cap(mut self, cap: usize) -> Self {
        self.client_cache_cap = Some(cap);
        self
    }

    /// Selects the deployment backend (default: the deterministic
    /// discrete-event simulator).
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sizes the threaded backend's shared crypto worker pool.
    #[must_use]
    pub fn with_crypto_workers(mut self, n: usize) -> Self {
        self.crypto_workers = n.max(1);
        self
    }

    /// Sets the threaded backend's virtual-to-wall-clock timer stretch.
    #[must_use]
    pub fn with_time_scale(mut self, scale: u32) -> Self {
        self.time_scale = scale.max(1);
        self
    }

    /// Overrides the CTBcast-summary trigger interval: `t` instead of the
    /// default `t/2` reproduces the single-buffered design the paper's
    /// footnote 3 rejects.
    #[must_use]
    pub fn with_summary_every(mut self, every: u64) -> Self {
        self.summary_every = Some(every.max(1));
        self
    }

    /// Sets the per-slot request batch bound (the Fig. 10/11 throughput
    /// lever). Combine with [`SimConfig::with_pipeline_depth`] so a backlog
    /// builds and batches wider than one actually form.
    #[must_use]
    pub fn with_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Bounds the leader's proposal pipeline to `depth` in-flight slots.
    #[must_use]
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = Some(depth.max(1));
        self
    }

    /// Sets the number of consensus groups a
    /// [`ShardedCluster`](crate::sharded::ShardedCluster) deploys over the
    /// shared fabric (clamped to at least one).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Schedules a live replica replacement: replica `victim` crashes at
    /// `crash_at` and a fresh node for the same replica id boots
    /// `rejoin_delay` later on a new host, reconstructing its state from
    /// the memory-node register banks, the latest certified checkpoint, and
    /// a `Join`/`JoinAck` handshake with its peers (uBFT extended version,
    /// §replacement). Composes with every other fault-plan builder.
    #[must_use]
    pub fn with_replacement(
        mut self,
        victim: usize,
        crash_at: Time,
        rejoin_delay: Duration,
    ) -> Self {
        self.failures = self.failures.replace_replica(victim, crash_at, crash_at + rejoin_delay);
        self
    }

    /// Addresses a fault schedule to one shard: `plan`'s *replica* indices
    /// are local to that group. Memory nodes are shared by every shard, so
    /// a memory-node crash in any shard's plan crashes that global node
    /// for the whole deployment (register banks are replicated across all
    /// of them, which is what makes the crash survivable). Composes with
    /// the scalar [`SimConfig::failures`] plan, which addresses shard 0.
    /// The asynchrony phase (GST) remains a deployment-global property of
    /// the base plan.
    #[must_use]
    pub fn with_shard_failures(mut self, shard: usize, plan: FailurePlan) -> Self {
        self.shard_failures.push((shard, plan));
        self
    }

    /// Enables the omniscient safety auditor: every decision, execution,
    /// and checkpoint of the run is checked online against uBFT's safety
    /// invariants (see [`crate::audit`]), and the verdict is attached to
    /// the run's report ([`RunReport::audit`](crate::RunReport)).
    /// Auditing observes only — an audited run is bit-for-bit identical
    /// to an unaudited one.
    #[must_use]
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Injects a deliberate bug for auditor self-tests (implies
    /// [`SimConfig::with_audit`]): mutation tests assert the auditor
    /// catches the damage. Never use outside tests.
    #[must_use]
    pub fn with_audit_mutation(mut self, mutation: AuditMutation) -> Self {
        self.audit = true;
        self.audit_mutation = Some(mutation);
        self
    }

    /// Applies a generated [`ChaosPlan`]: group 0's faults (and the
    /// deployment-global asynchrony phase) become [`SimConfig::failures`],
    /// every other group's faults become [`SimConfig::with_shard_failures`]
    /// entries, and the shard count is raised to cover every addressed
    /// group. Chaos runs are exactly the fault plans a hand-written test
    /// would build — a printed plan reproduces byte for byte.
    #[must_use]
    pub fn with_chaos(mut self, plan: &ChaosPlan) -> Self {
        self.shards = self.shards.max(plan.max_group() + 1);
        self.failures = plan.group_plan(0);
        for g in 1..self.shards {
            let gp = plan.group_plan(g);
            if !gp.faults().is_empty() {
                self.shard_failures.push((g, gp));
            }
        }
        self
    }

    /// The effective fault plan of one shard: the base [`SimConfig::failures`]
    /// plan for shard 0, plus every [`SimConfig::with_shard_failures`] entry
    /// addressed to `shard`.
    pub fn shard_plan(&self, shard: usize) -> FailurePlan {
        let mut plan = if shard == 0 { self.failures.clone() } else { FailurePlan::none() };
        for (s, extra) in &self.shard_failures {
            if *s == shard {
                for f in extra.faults() {
                    plan = plan.with_fault(*f);
                }
            }
        }
        plan
    }

    /// The virtual-time deadline after which a closed-loop run of `total`
    /// requests is declared stalled. Derived from the request count and
    /// batch size (each slot amortizes up to `max_batch` requests), with
    /// budgets hundreds of times above common-case latency: a healthy
    /// fast-path slot takes ~10 µs against a 20 ms/slot budget, and the
    /// per-request floor covers even the signature-bound slow path many
    /// times over. The shard count deliberately does *not* tighten the
    /// bound: routing is by key, and a fully skewed stream may legally
    /// send every request to one group — the deadline must cover that
    /// worst legitimate schedule (a looser-than-needed deadline costs
    /// nothing; a tighter one panics healthy runs). An asynchronous
    /// prefix defers the whole budget: the clock starts at GST, since
    /// nothing is owed progress before it. Replaces the old fixed 60 s
    /// deadline, which large batched/sharded runs could outgrow.
    pub fn stall_deadline(&self, total: u64) -> Time {
        let slots = total / self.max_batch.max(1) as u64 + 1;
        self.failures.gst
            + Duration::from_secs(5)
            + Duration::from_millis(20) * slots
            + Duration::from_millis(5) * total
    }

    /// Encoded per-request wire overhead inside a batch beyond the payload
    /// itself (request id + length prefixes, generously rounded): what keeps
    /// a full batch of maximum-size requests under the slot assert in
    /// `ubft_transport` even at extreme `max_batch`.
    const PER_REQUEST_OVERHEAD: usize = 64;

    /// Bytes a full batch can occupy on the wire (payloads plus per-request
    /// framing; the first request's framing is covered by the fixed slot
    /// headroom, keeping `max_batch = 1` sizing identical to the unbatched
    /// engine).
    fn batch_bytes(&self) -> usize {
        let b = self.max_batch.max(1);
        b * self.params.max_request_bytes + (b - 1) * Self::PER_REQUEST_OVERHEAD
    }

    /// Channel slot payload for CTBcast lanes: one request batch plus
    /// certificate and header headroom (checked at send time).
    pub fn slot_payload(&self) -> usize {
        self.batch_bytes() + 4096
    }

    /// Channel slot payload for consensus-TB and direct lanes, which carry
    /// bounded state summaries (up to 4 commits, each wrapping a batch).
    pub fn wide_slot_payload(&self) -> usize {
        6 * self.batch_bytes() + 8192
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_shaped() {
        let c = SimConfig::paper_default(1);
        assert_eq!(c.params.n(), 3);
        assert_eq!(c.params.tail, 128);
        assert!(c.slow_trigger > Duration::from_micros(50));
        assert!(c.slot_payload() >= 2048);
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::paper_default(1).fast_only().with_tail(16).with_max_request(64);
        assert_eq!(c.path, PathMode::FastOnly);
        assert_eq!(c.params.tail, 16);
        assert_eq!(c.params.max_request_bytes, 64);
    }

    #[test]
    fn batch_builders_scale_slot_sizing() {
        let base = SimConfig::paper_default(1);
        assert_eq!(base.max_batch, 1);
        assert_eq!(base.pipeline_depth, None);
        let batched = SimConfig::paper_default(1).with_batch(16).with_pipeline_depth(4);
        assert_eq!(batched.max_batch, 16);
        assert_eq!(batched.pipeline_depth, Some(4));
        // CTBcast slots must fit a full batch of maximum-size requests,
        // including each extra request's wire framing.
        assert_eq!(
            batched.slot_payload(),
            base.slot_payload()
                + 15 * (base.params.max_request_bytes + SimConfig::PER_REQUEST_OVERHEAD)
        );
        assert!(batched.wide_slot_payload() > base.wide_slot_payload());
        // `max_batch = 1` sizing is byte-identical to the unbatched engine.
        assert_eq!(SimConfig::paper_default(1).with_batch(1).slot_payload(), base.slot_payload());
        // An extreme batch of maximum-size requests still fits its slot:
        // encode a worst-case batch and compare against the capacity.
        {
            use ubft_core::msg::{Batch, CtbMsg, Prepare, Request};
            use ubft_types::wire::Wire;
            use ubft_types::{ClientId, RequestId, Slot, View};
            let cfg = SimConfig::paper_default(1).with_batch(256);
            let reqs: Vec<Request> = (0..256)
                .map(|i| Request {
                    id: RequestId::new(ClientId(u32::MAX - 1), i),
                    payload: vec![0xA5; cfg.params.max_request_bytes],
                })
                .collect();
            let msg =
                CtbMsg::Prepare(Prepare { view: View(0), slot: Slot(0), batch: Batch::new(reqs) });
            assert!(msg.to_bytes().len() <= cfg.slot_payload());
        }
        // Degenerate values are clamped, not rejected.
        let clamped = SimConfig::paper_default(1).with_batch(0).with_pipeline_depth(0);
        assert_eq!(clamped.max_batch, 1);
        assert_eq!(clamped.pipeline_depth, Some(1));
    }
}
