//! Calibration constants: the simulated testbed (paper Table 1).
//!
//! The physical testbed is 4 dual-socket Xeon Gold 6244 servers with
//! ConnectX-6 NICs on one 100 Gbps EDR switch. We reproduce its *timing
//! envelope*: the network follows [`LatencyModel::paper_testbed`], CPU/crypto
//! costs follow [`CostModel::paper_testbed`], and protocol timeouts are set
//! far above common-case latency so they never fire in failure-free runs.

use ubft_core::PathMode;
use ubft_sim::cost::CostModel;
use ubft_sim::failure::FailurePlan;
use ubft_sim::net::LatencyModel;
use ubft_types::{ClusterParams, Duration};

/// Full configuration of one simulated experiment.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Cluster shape (f, f_m, tail, window, δ, max request size).
    pub params: ClusterParams,
    /// Fast path / slow path selection.
    pub path: PathMode,
    /// Experiment seed (all randomness derives from it).
    pub seed: u64,
    /// Network latency model.
    pub latency: LatencyModel,
    /// CPU/crypto cost model.
    pub cost: CostModel,
    /// Fault schedule.
    pub failures: FailurePlan,
    /// Fast-path timeout before the slow path starts.
    pub slow_trigger: Duration,
    /// Leader-progress watchdog period.
    pub progress_timeout: Duration,
    /// Echo-round fallback timeout.
    pub echo_fallback: Duration,
    /// Receiver poll pickup delay (buffer scan granularity).
    pub poll_pickup: Duration,
    /// TBcast retransmission tick: unacknowledged buffered messages older
    /// than one full period are resent (§4.2). Recovery from message loss
    /// (partitions, buffer overwrite) takes between one and two periods.
    pub retransmit_period: Duration,
    /// Whether the leader runs the §5.4 echo round before proposing
    /// (disabled in the echo ablation).
    pub echo_round: bool,
    /// Number of closed-loop clients. Two clients keep two consensus slots
    /// in flight, the §9 interleaving that doubles throughput by using the
    /// slack between a slot's protocol events.
    pub n_clients: usize,
    /// Override for the CTBcast-summary trigger interval (Algorithm 4).
    /// `None` keeps the paper's `t/2` double-buffering; `Some(t)` is the
    /// single-buffered ablation.
    pub summary_every: Option<u64>,
}

impl SimConfig {
    /// The deployed configuration on the simulated testbed.
    pub fn paper_default(seed: u64) -> Self {
        SimConfig {
            params: ClusterParams::paper_default(),
            path: PathMode::FastWithFallback,
            seed,
            latency: LatencyModel::paper_testbed(),
            cost: CostModel::paper_testbed(),
            failures: FailurePlan::none(),
            slow_trigger: Duration::from_micros(200),
            progress_timeout: Duration::from_millis(1),
            echo_fallback: Duration::from_micros(100),
            poll_pickup: Duration::from_nanos(150),
            retransmit_period: Duration::from_micros(150),
            echo_round: true,
            n_clients: 1,
            summary_every: None,
        }
    }

    /// Fast-path-only variant (Figures 7, 11).
    #[must_use]
    pub fn fast_only(mut self) -> Self {
        self.path = PathMode::FastOnly;
        self
    }

    /// Forced-slow-path variant (Figure 8's "uBFT slow path").
    #[must_use]
    pub fn slow_only(mut self) -> Self {
        self.path = PathMode::SlowOnly;
        self
    }

    /// Overrides the CTBcast tail (Figure 11 / Table 2 sweeps).
    #[must_use]
    pub fn with_tail(mut self, tail: usize) -> Self {
        self.params = self.params.with_tail(tail);
        self
    }

    /// Overrides the largest request size (channel slot sizing).
    #[must_use]
    pub fn with_max_request(mut self, bytes: usize) -> Self {
        self.params = self.params.with_max_request_bytes(bytes);
        self
    }

    /// Disables the §5.4 echo round (the echo ablation: what the round
    /// costs in latency, and what Byzantine-client protection it buys).
    #[must_use]
    pub fn without_echo(mut self) -> Self {
        self.echo_round = false;
        self
    }

    /// Sets the number of concurrent closed-loop clients (§9 throughput).
    #[must_use]
    pub fn with_clients(mut self, n: usize) -> Self {
        self.n_clients = n.max(1);
        self
    }

    /// Overrides the CTBcast-summary trigger interval: `t` instead of the
    /// default `t/2` reproduces the single-buffered design the paper's
    /// footnote 3 rejects.
    #[must_use]
    pub fn with_summary_every(mut self, every: u64) -> Self {
        self.summary_every = Some(every.max(1));
        self
    }

    /// Channel slot payload for CTBcast lanes: one request plus certificate
    /// and header headroom (checked at send time).
    pub fn slot_payload(&self) -> usize {
        self.params.max_request_bytes + 4096
    }

    /// Channel slot payload for consensus-TB and direct lanes, which carry
    /// bounded state summaries (up to 4 commits, each wrapping a request).
    pub fn wide_slot_payload(&self) -> usize {
        6 * self.params.max_request_bytes + 8192
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_shaped() {
        let c = SimConfig::paper_default(1);
        assert_eq!(c.params.n(), 3);
        assert_eq!(c.params.tail, 128);
        assert!(c.slow_trigger > Duration::from_micros(50));
        assert!(c.slot_payload() >= 2048);
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::paper_default(1).fast_only().with_tail(16).with_max_request(64);
        assert_eq!(c.path, PathMode::FastOnly);
        assert_eq!(c.params.tail, 16);
        assert_eq!(c.params.max_request_bytes, 64);
    }
}
