//! Multi-group uBFT: `G` independent consensus groups sharing one RDMA
//! fabric and one set of passive memory nodes.
//!
//! This is the paper's deployment story scaled out: each group is a full
//! `2f + 1`-replica uBFT instance with bounded memory, so many groups fit
//! on one disaggregated memory pool, and the key space shards across them.
//! Clients route every request through a [`ShardRouter`] — FNV over the
//! KV key, round-robin for keyless payloads — so a key's whole history
//! lives in one group and cross-group coordination is never needed.
//!
//! Host-ID layout (see `ARCHITECTURE.md`): group `g` owns the contiguous
//! host block `[g·(n+c), (g+1)·(n+c))` (replicas then clients); the
//! `2f_m + 1` memory nodes take the final ids and are shared by every
//! group, their register space partitioned per group. With `shards = 1`
//! the layout, seeds, and event order are identical to
//! [`Cluster`](crate::cluster::Cluster) — bit-for-bit, which
//! `tests/sharding.rs` pins.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use ubft_apps::ShardRouter;
use ubft_core::app::App;
use ubft_types::{Time, View};

use crate::calibration::SimConfig;
use crate::cluster::RunReport;
use crate::group::Deployment;

/// The outcome of a sharded run: per-shard breakdowns plus the merged
/// whole-deployment view.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// The merged report: latencies pooled across shards, counters summed,
    /// `views` the concatenation of every shard's replica views in shard
    /// order. With one shard this is exactly the [`Cluster`] report.
    ///
    /// [`Cluster`]: crate::cluster::Cluster
    pub aggregate: RunReport,
    /// One report per shard: its own latency distribution, counters,
    /// completion count, and replica views.
    pub shards: Vec<RunReport>,
}

/// Most requests the source keeps parked per group, on average: once the
/// total parked backlog reaches `PARK_CAP_PER_GROUP × G`, generation
/// pauses until consumers drain it, so a skewed key stream bounds memory
/// instead of growing a hot group's queue without limit.
const PARK_CAP_PER_GROUP: usize = 1024;

/// The shared request source: one global workload stream fanned out to
/// per-group closed-loop clients by key hash.
///
/// When a group's client goes idle it pulls the next request *destined for
/// that group*: first from the group's pending queue (requests generated
/// earlier that routed here), then by generating fresh requests — parking
/// any that route elsewhere on their owners' queues. Each generated
/// request gets the next index of the global stream as its `u64` argument
/// (monotone, never repeated), so a workload that is a pure function of
/// that index still yields distinct requests across routing retries.
/// Generation is bounded per call *and* by the total parked backlog
/// ([`PARK_CAP_PER_GROUP`]); a group that comes up empty retries shortly,
/// and parked requests are never lost.
struct RoutedSource {
    workload: Box<dyn FnMut(u64) -> Vec<u8>>,
    router: ShardRouter,
    pending: Vec<VecDeque<Vec<u8>>>,
    /// Requests generated so far (the `u64` stream index).
    issued: u64,
    /// Requests currently parked across all pending queues.
    parked: usize,
}

impl RoutedSource {
    fn new(workload: Box<dyn FnMut(u64) -> Vec<u8>>, groups: usize) -> Self {
        RoutedSource {
            workload,
            router: ShardRouter::new(groups),
            pending: (0..groups.max(1)).map(|_| VecDeque::new()).collect(),
            issued: 0,
            parked: 0,
        }
    }

    fn next_for(&mut self, g: usize) -> Option<Vec<u8>> {
        if let Some(p) = self.pending[g].pop_front() {
            self.parked -= 1;
            return Some(p);
        }
        if self.parked >= PARK_CAP_PER_GROUP * self.pending.len() {
            return None;
        }
        let bound = 64 * self.pending.len();
        for _ in 0..bound {
            let p = (self.workload)(self.issued);
            self.issued += 1;
            let tg = self.router.route(&p);
            if tg == g {
                return Some(p);
            }
            self.pending[tg].push_back(p);
            self.parked += 1;
        }
        None
    }
}

/// A sharded uBFT deployment: `cfg.shards` consensus groups over one
/// fabric, one event queue, and one set of shared memory nodes.
pub struct ShardedCluster {
    dep: Deployment,
}

impl ShardedCluster {
    /// Builds `cfg.shards` groups. `make_apps(g)` yields group `g`'s `n`
    /// application instances; `workload` is the single global request
    /// stream, routed per request by a [`ShardRouter`] over `cfg.shards`
    /// groups. The `u64` argument is the request's index in the globally
    /// generated stream — monotone and never repeated. (With one shard
    /// and one client this coincides with the completed-count hint
    /// [`Cluster::new`](crate::cluster::Cluster::new) passes; when
    /// multiple clients race it can differ, which the stock §7.1
    /// generators never observe because they derive requests from
    /// internal state.)
    pub fn new(
        cfg: SimConfig,
        mut make_apps: impl FnMut(usize) -> Vec<Box<dyn App>>,
        workload: Box<dyn FnMut(u64) -> Vec<u8>>,
    ) -> Self {
        let shards = cfg.shards.max(1);
        let source = Rc::new(RefCell::new(RoutedSource::new(workload, shards)));
        let dep = Deployment::build(&cfg, &mut make_apps, |g| {
            let src = Rc::clone(&source);
            Box::new(move |_seq| src.borrow_mut().next_for(g))
        });
        ShardedCluster { dep }
    }

    /// Number of consensus groups.
    pub fn shards(&self) -> usize {
        self.dep.groups.len()
    }

    /// The application state digest of replica `r` of shard `g`.
    pub fn app_digest(&self, g: usize, r: usize) -> ubft_crypto::Digest {
        self.dep.groups[g].app_digest(r)
    }

    /// The view replica `r` of shard `g` is in.
    pub fn view_of(&self, g: usize, r: usize) -> View {
        self.dep.groups[g].view_of(r)
    }

    /// Individual requests replica `r` of shard `g` has decided.
    pub fn decided_of(&self, g: usize, r: usize) -> u64 {
        self.dep.groups[g].decided_of(r)
    }

    /// Disaggregated bytes shard `g`'s register banks occupy on one
    /// memory node.
    pub fn shard_disagg_bytes_per_node(&self, g: usize) -> usize {
        self.dep.groups[g].disagg_bytes_per_node()
    }

    /// Total disaggregated bytes on one memory node across every shard's
    /// register banks (the nodes are shared, so the partitions add up).
    pub fn disagg_bytes_per_node(&self) -> usize {
        self.dep.groups.iter().map(|g| g.disagg_bytes_per_node()).sum()
    }

    /// Approximate replica-local resident bytes of replica `r` of shard `g`.
    pub fn replica_local_bytes(&self, g: usize, r: usize) -> usize {
        self.dep.groups[g].replica_local_bytes(r)
    }

    /// Per-replica protocol diagnostics, grouped by shard.
    pub fn diag_lines(&self) -> String {
        self.dep.diag_lines()
    }

    /// Runs `warmup + requests` *total* closed-loop requests across all
    /// shards and reports per-shard and aggregate statistics. The stall
    /// deadline derives from the request count and batch size
    /// ([`SimConfig::stall_deadline`]; the shard count deliberately does
    /// not tighten it — a fully key-skewed stream may legally route
    /// everything to one group).
    ///
    /// # Panics
    ///
    /// Panics if the deployment stops making progress before completing
    /// the requested number of operations.
    pub fn run(&mut self, requests: u64, warmup: u64) -> ShardReport {
        let deadline = self.dep.groups[0].cfg.stall_deadline(requests + warmup);
        let report = self.run_until(requests, warmup, deadline);
        assert!(
            report.aggregate.completed >= requests + warmup,
            "sharded run stalled at {}/{} completed requests (t = {})\n{}",
            report.aggregate.completed,
            requests + warmup,
            self.dep.now,
            self.diag_lines(),
        );
        report
    }

    /// Drains in-flight work for `extra` more virtual time after a run, so
    /// lagging replicas — most notably freshly replaced ones — converge
    /// before post-run state assertions. No new requests are issued.
    pub fn settle(&mut self, extra: ubft_types::Duration) {
        self.dep.settle(extra);
    }

    /// Bytes replica `r` of shard `g` retains in checkpoint snapshots for
    /// serving replacement-node state transfers.
    pub fn replica_snapshot_bytes(&self, g: usize, r: usize) -> usize {
        self.dep.groups[g].replica_snapshot_bytes(r)
    }

    /// The safety auditor's verdict over everything observed so far
    /// (`None` unless the run was configured with
    /// [`SimConfig::with_audit`]). Idempotent; call again after
    /// [`ShardedCluster::settle`] to audit the drained tail too.
    pub fn audit_report(&mut self) -> Option<crate::audit::AuditReport> {
        self.dep.audit_report()
    }

    /// Like [`ShardedCluster::run`] but gives up (without panicking) when
    /// virtual time exceeds `deadline`, so stalls are observable instead of
    /// fatal.
    pub fn run_until(&mut self, requests: u64, warmup: u64, deadline: Time) -> ShardReport {
        self.dep.run_loop(requests, warmup, deadline);
        let audit = self.dep.audit_report();
        let shards: Vec<RunReport> = (0..self.dep.groups.len())
            .map(|g| {
                let mut r = self.dep.shard_report(g);
                r.audit = audit.as_ref().map(|a| a.for_group(g));
                r
            })
            .collect();
        let aggregate = self.dep.aggregate_report(audit);
        ShardReport { aggregate, shards }
    }
}
