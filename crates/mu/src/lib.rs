//! Mu (OSDI '20): the crash-fault-tolerant microsecond SMR baseline (§7).
//!
//! Mu's common case is a single round: the leader RDMA-writes the request to
//! a majority of follower logs and replies — no signatures, no voting, no
//! Byzantine tolerance. This crate reproduces exactly that data path as a
//! sans-IO state machine the runtime drives over the same simulated RDMA
//! fabric as uBFT, so Figure 7/8 comparisons share every substrate constant.
//!
//! Followers apply the log in the background (off the critical path), which
//! is why Mu's latency is one RDMA write above unreplicated execution.

use std::collections::BTreeMap;

use ubft_core::msg::{Reply, Request};
use ubft_types::{ReplicaId, Slot};

/// Effects emitted by the Mu leader.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MuEffect {
    /// RDMA-write `req` into follower `to`'s log at `slot`; the runtime
    /// reports completion via [`MuLeader::on_write_complete`].
    WriteLog {
        /// Destination follower.
        to: ReplicaId,
        /// Log position.
        slot: Slot,
        /// The replicated request.
        req: Request,
    },
    /// The request is replicated at a majority: execute and reply.
    Commit {
        /// Log position.
        slot: Slot,
        /// The request to execute.
        req: Request,
    },
}

/// The Mu leader state machine.
#[derive(Clone, Debug)]
pub struct MuLeader {
    me: ReplicaId,
    followers: Vec<ReplicaId>,
    /// Majority across the *whole* group (leader included).
    majority: usize,
    next_slot: Slot,
    /// Outstanding slots: acks received so far and the request.
    inflight: BTreeMap<Slot, (usize, Request, bool)>,
}

impl MuLeader {
    /// Creates a leader for a group of `followers.len() + 1` replicas.
    pub fn new(me: ReplicaId, followers: Vec<ReplicaId>) -> Self {
        let n = followers.len() + 1;
        MuLeader {
            me,
            followers,
            majority: n / 2 + 1,
            next_slot: Slot(0),
            inflight: BTreeMap::new(),
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.me
    }

    /// Replicates one client request: writes it to every follower log.
    pub fn on_client_request(&mut self, req: Request) -> Vec<MuEffect> {
        let slot = self.next_slot;
        self.next_slot = self.next_slot.next();
        // The leader's own copy counts towards the majority immediately.
        self.inflight.insert(slot, (1, req.clone(), false));
        let mut fx: Vec<MuEffect> = self
            .followers
            .iter()
            .map(|&to| MuEffect::WriteLog { to, slot, req: req.clone() })
            .collect();
        fx.extend(self.check_commit(slot));
        fx
    }

    /// One follower's log write completed.
    pub fn on_write_complete(&mut self, slot: Slot) -> Vec<MuEffect> {
        if let Some((acks, _, _)) = self.inflight.get_mut(&slot) {
            *acks += 1;
        }
        self.check_commit(slot)
    }

    fn check_commit(&mut self, slot: Slot) -> Vec<MuEffect> {
        let ready =
            self.inflight.get(&slot).is_some_and(|(acks, _, done)| *acks >= self.majority && !done);
        if !ready {
            return Vec::new();
        }
        let (_, req, done) = self.inflight.get_mut(&slot).expect("ready");
        *done = true;
        let req = req.clone();
        // Retain the entry until a later GC (bounded by pipeline depth).
        if self.inflight.len() > 1024 {
            let committed: Vec<Slot> =
                self.inflight.iter().filter(|(_, (_, _, d))| *d).map(|(s, _)| *s).collect();
            for s in committed {
                self.inflight.remove(&s);
            }
        }
        vec![MuEffect::Commit { slot, req }]
    }
}

/// A Mu follower: applies the leader's log in order (background path).
#[derive(Clone, Debug, Default)]
pub struct MuFollower {
    log: BTreeMap<Slot, Request>,
    applied_next: Slot,
}

impl MuFollower {
    /// Creates an empty follower.
    pub fn new() -> Self {
        Self::default()
    }

    /// A log entry landed in this follower's memory; returns requests now
    /// applicable in order.
    pub fn on_log_write(&mut self, slot: Slot, req: Request) -> Vec<(Slot, Request)> {
        self.log.insert(slot, req);
        let mut out = Vec::new();
        while let Some(r) = self.log.remove(&self.applied_next) {
            out.push((self.applied_next, r));
            self.applied_next = self.applied_next.next();
        }
        out
    }

    /// Next slot the follower will apply.
    pub fn applied_next(&self) -> Slot {
        self.applied_next
    }
}

/// Convenience: a reply from the Mu leader.
pub fn reply(me: ReplicaId, req: &Request, payload: Vec<u8>) -> Reply {
    Reply { id: req.id, replica: me, payload }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubft_types::{ClientId, RequestId};

    fn req(seq: u64) -> Request {
        Request { id: RequestId::new(ClientId(0), seq), payload: vec![seq as u8] }
    }

    fn leader() -> MuLeader {
        MuLeader::new(ReplicaId(0), vec![ReplicaId(1), ReplicaId(2)])
    }

    #[test]
    fn writes_to_all_followers() {
        let mut l = leader();
        let fx = l.on_client_request(req(0));
        let writes = fx.iter().filter(|e| matches!(e, MuEffect::WriteLog { .. })).count();
        assert_eq!(writes, 2);
        assert!(!fx.iter().any(|e| matches!(e, MuEffect::Commit { .. })));
    }

    #[test]
    fn commits_after_first_follower_ack() {
        // n=3: leader + 1 follower = majority of 2.
        let mut l = leader();
        l.on_client_request(req(0));
        let fx = l.on_write_complete(Slot(0));
        assert!(matches!(&fx[..], [MuEffect::Commit { slot: Slot(0), .. }]));
        // The second ack must not commit again.
        assert!(l.on_write_complete(Slot(0)).is_empty());
    }

    #[test]
    fn pipeline_commits_in_any_ack_order() {
        let mut l = leader();
        l.on_client_request(req(0));
        l.on_client_request(req(1));
        let fx1 = l.on_write_complete(Slot(1));
        assert!(matches!(&fx1[..], [MuEffect::Commit { slot: Slot(1), .. }]));
        let fx0 = l.on_write_complete(Slot(0));
        assert!(matches!(&fx0[..], [MuEffect::Commit { slot: Slot(0), .. }]));
    }

    #[test]
    fn follower_applies_in_order() {
        let mut f = MuFollower::new();
        assert!(f.on_log_write(Slot(1), req(1)).is_empty());
        let applied = f.on_log_write(Slot(0), req(0));
        assert_eq!(applied.len(), 2);
        assert_eq!(applied[0].0, Slot(0));
        assert_eq!(applied[1].0, Slot(1));
        assert_eq!(f.applied_next(), Slot(2));
    }

    #[test]
    fn five_node_group_needs_three_copies() {
        let mut l = MuLeader::new(
            ReplicaId(0),
            vec![ReplicaId(1), ReplicaId(2), ReplicaId(3), ReplicaId(4)],
        );
        l.on_client_request(req(0));
        assert!(l.on_write_complete(Slot(0)).is_empty(), "2 copies: not yet");
        let fx = l.on_write_complete(Slot(0));
        assert!(matches!(&fx[..], [MuEffect::Commit { .. }]), "3 copies: committed");
    }

    #[test]
    fn inflight_table_is_garbage_collected() {
        let mut l = leader();
        for i in 0..2000u64 {
            l.on_client_request(req(i));
            l.on_write_complete(Slot(i));
        }
        assert!(l.inflight.len() <= 1025, "inflight grew to {}", l.inflight.len());
    }
}
