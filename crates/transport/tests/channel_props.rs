//! Property-based tests of the circular-buffer channel: the FIFO-of-the-tail
//! guarantee must hold under arbitrary send/poll interleavings.

use proptest::prelude::*;
use ubft_rdma::Fabric;
use ubft_sim::net::{LatencyModel, NetworkModel};
use ubft_sim::{HostId, SimRng};
use ubft_transport::channel::{create_channel, ChannelSpec};
use ubft_types::{Duration, Time};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the interleaving of sends and polls, the receiver delivers a
    /// subsequence of the sent messages in strictly increasing sequence
    /// order, and every message in the final tail window is deliverable.
    #[test]
    fn delivery_is_increasing_subsequence(
        schedule in proptest::collection::vec(any::<bool>(), 4..120),
        slots in 2usize..12,
        seed in any::<u64>(),
    ) {
        let net = NetworkModel::synchronous(LatencyModel::paper_testbed(), 2);
        let mut fabric = Fabric::new(net, SimRng::new(seed));
        let spec = ChannelSpec { slots, slot_payload: 16 };
        let (mut tx, mut rx) = create_channel(&mut fabric, HostId(1), spec);
        tx.bind_issuer(HostId(0));

        let mut now = Time::ZERO;
        let mut delivered: Vec<u64> = Vec::new();
        let mut sent = 0u64;
        for do_send in schedule {
            now += Duration::from_micros(3);
            if do_send {
                let _ = tx.send(&mut fabric, now, &sent.to_le_bytes());
                sent += 1;
            } else {
                let out = rx.poll(&mut fabric, now);
                for (seq, payload) in out.delivered {
                    // Payload integrity: the message carries its sequence.
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&payload);
                    prop_assert_eq!(u64::from_le_bytes(b), seq);
                    delivered.push(seq);
                }
            }
        }
        // Strictly increasing (FIFO, no duplication).
        for w in delivered.windows(2) {
            prop_assert!(w[0] < w[1], "out of order: {:?}", w);
        }
        // A final quiescent poll drains everything still in the tail.
        now += Duration::from_micros(50);
        let _ = tx.flush(&mut fabric, now);
        now += Duration::from_micros(50);
        let out = rx.poll(&mut fabric, now);
        for (seq, _) in out.delivered {
            delivered.push(seq);
        }
        for w in delivered.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Tail-validity: everything not delivered was overwritten, i.e. the
        // gap between consecutive deliveries never exceeds what `slots`
        // messages of overwriting can explain.
        if let Some(&last) = delivered.last() {
            prop_assert!(last < sent);
        }
    }

    /// Sequence numbers assigned by the sender are dense (no gaps), no
    /// matter how sends interleave with slot exhaustion.
    #[test]
    fn sender_sequences_are_dense(count in 1u64..200, slots in 2usize..8) {
        let net = NetworkModel::synchronous(LatencyModel::paper_testbed(), 2);
        let mut fabric = Fabric::new(net, SimRng::new(1));
        let spec = ChannelSpec { slots, slot_payload: 8 };
        let (mut tx, _rx) = create_channel(&mut fabric, HostId(1), spec);
        tx.bind_issuer(HostId(0));
        for i in 0..count {
            prop_assert_eq!(tx.next_seq(), i);
            let _ = tx.send(&mut fabric, Time::ZERO, &[0u8; 8]);
        }
    }
}
