//! The circular-buffer channel (Figure 6).
//!
//! Slot layout: `[checksum: 8 B][incarnation: 4 B][size: 4 B][payload…]`.
//! Message with sequence number `n` (0-based) goes to slot `n % t` with
//! incarnation `n / t + 1`, so the receiver can tell "not yet written"
//! (incarnation too low) from "overwritten" (incarnation too high) and
//! recover the exact sequence number of whatever it finds.

use std::collections::VecDeque;

use ubft_crypto::checksum64;
use ubft_rdma::{AccessToken, Fabric, RdmaError, RegionId};
use ubft_sim::HostId;
use ubft_types::Time;

/// Domain-separation seed for slot checksums.
const CHECKSUM_SEED: u64 = 0x4349_5243_4255_4621; // "CIRCBUF!"

/// Header bytes per slot: checksum (8) + incarnation (4) + size (4).
pub const SLOT_HEADER: usize = 16;

/// Shape of a channel: slot count (the tail `t`) and per-slot payload
/// capacity (sized for the largest message).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Number of slots (`t`): the receiver is guaranteed only the last `t`
    /// messages.
    pub slots: usize,
    /// Maximum payload bytes per message.
    pub slot_payload: usize,
}

impl ChannelSpec {
    /// Total bytes of one slot including header.
    pub fn slot_size(&self) -> usize {
        SLOT_HEADER + self.slot_payload
    }

    /// Total bytes of the receiver-side buffer (Table 2 accounting).
    pub fn buffer_bytes(&self) -> usize {
        self.slots * self.slot_size()
    }
}

/// Creates a channel into `receiver_host`, returning the sender and receiver
/// endpoints. The circular buffer lives in the receiver's memory; only the
/// sender holds the write token.
pub fn create_channel(
    fabric: &mut Fabric,
    receiver_host: HostId,
    spec: ChannelSpec,
) -> (ChannelSender, ChannelReceiver) {
    assert!(spec.slots >= 1, "channel needs at least one slot");
    let (region, token) = fabric.create_region(receiver_host, spec.buffer_bytes());
    let sender = ChannelSender {
        spec,
        region,
        token,
        next_seq: 0,
        slot_busy_until: vec![Time::ZERO; spec.slots],
        staging: VecDeque::new(),
        staged_dropped: 0,
        issuer: None,
    };
    let receiver =
        ChannelReceiver { spec, region, host: receiver_host, expected_seq: 0, skipped: 0 };
    (sender, receiver)
}

/// The writes issued by one send/flush call: `(sequence, arrival time at the
/// receiver's memory)`. The runtime schedules a receiver poll at each
/// arrival.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SendOutcome {
    /// Newly issued writes.
    pub issued: Vec<(u64, Time)>,
    /// Messages evicted from the staging queue without ever being sent.
    pub evicted: u64,
}

/// Sending endpoint: owns the write token and the local mirror bookkeeping.
#[derive(Debug)]
pub struct ChannelSender {
    spec: ChannelSpec,
    region: RegionId,
    token: AccessToken,
    next_seq: u64,
    /// Per-slot time until which an RDMA write is outstanding (the slot is
    /// "unavailable" in the paper's terms).
    slot_busy_until: Vec<Time>,
    /// Staging queue of `(seq, payload)` waiting for their slot.
    staging: VecDeque<(u64, Vec<u8>)>,
    staged_dropped: u64,
    /// The host this sender runs on (late-bound by the runtime).
    issuer: Option<HostId>,
}

impl ChannelSender {
    /// Sequence number the next message will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Messages ever evicted from staging (diagnostics).
    pub fn evicted_total(&self) -> u64 {
        self.staged_dropped
    }

    /// Number of messages currently staged.
    pub fn staged_len(&self) -> usize {
        self.staging.len()
    }

    /// Sends `payload`. First flushes any staged messages whose slots have
    /// freed up, then transmits or stages the new message.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds the slot capacity.
    pub fn send(&mut self, fabric: &mut Fabric, now: Time, payload: &[u8]) -> SendOutcome {
        assert!(
            payload.len() <= self.spec.slot_payload,
            "payload of {} bytes exceeds slot capacity {}",
            payload.len(),
            self.spec.slot_payload
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut outcome = self.flush(fabric, now);
        if self.staging.is_empty() && self.slot_free(seq, now) {
            if let Some(arrival) = self.transmit(fabric, now, seq, payload) {
                outcome.issued.push((seq, arrival));
            }
        } else {
            // Stage it; evict the oldest staged message if full. The staging
            // buffer mirrors the main buffer's size.
            if self.staging.len() >= self.spec.slots {
                self.staging.pop_front();
                self.staged_dropped += 1;
                outcome.evicted += 1;
            }
            self.staging.push_back((seq, payload.to_vec()));
        }
        outcome
    }

    /// Transmits staged messages whose slots are free, in order, stopping at
    /// the first unavailable slot.
    pub fn flush(&mut self, fabric: &mut Fabric, now: Time) -> SendOutcome {
        let mut outcome = SendOutcome::default();
        while let Some((seq, _)) = self.staging.front() {
            let seq = *seq;
            if !self.slot_free(seq, now) {
                break;
            }
            let (_, payload) = self.staging.pop_front().expect("checked front");
            if let Some(arrival) = self.transmit(fabric, now, seq, &payload) {
                outcome.issued.push((seq, arrival));
            }
        }
        outcome
    }

    /// The earliest time at which `flush` could make progress, if any
    /// message is staged (for runtime re-flush scheduling).
    pub fn next_flush_at(&self) -> Option<Time> {
        let (seq, _) = self.staging.front()?;
        Some(self.slot_busy_until[(*seq % self.spec.slots as u64) as usize])
    }

    fn slot_free(&self, seq: u64, now: Time) -> bool {
        self.slot_busy_until[(seq % self.spec.slots as u64) as usize] <= now
    }

    fn transmit(
        &mut self,
        fabric: &mut Fabric,
        now: Time,
        seq: u64,
        payload: &[u8],
    ) -> Option<Time> {
        let slot = (seq % self.spec.slots as u64) as usize;
        let inc = (seq / self.spec.slots as u64 + 1) as u32;
        let mut frame = Vec::with_capacity(SLOT_HEADER + payload.len());
        frame.extend_from_slice(&[0u8; 8]); // checksum placeholder
        frame.extend_from_slice(&inc.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        let csum = checksum64(CHECKSUM_SEED, &frame[8..]);
        frame[..8].copy_from_slice(&csum.to_le_bytes());

        let offset = slot * self.spec.slot_size();
        // The issuer host is wherever the token holder runs; fabric enforces
        // write permission via the token, and the network model needs the
        // issuer only for latency/crash checks — the runtime passes it in
        // through `fabric` state. We derive it from the write call instead.
        match fabric.write(self.issuer_host(fabric), self.token, self.region, offset, &frame, now) {
            Ok(ticket) => {
                self.slot_busy_until[slot] = ticket.completion;
                Some(ticket.arrival)
            }
            Err(RdmaError::TargetUnavailable | RdmaError::IssuerUnavailable) => None,
            Err(e) => panic!("channel write failed: {e}"),
        }
    }

    fn issuer_host(&self, _fabric: &Fabric) -> HostId {
        self.issuer.expect("ChannelSender::bind_issuer must be called before sending")
    }

    /// Binds the sender to the host it runs on (used for latency and crash
    /// modelling of outgoing writes).
    pub fn bind_issuer(&mut self, host: HostId) -> &mut Self {
        self.issuer = Some(host);
        self
    }

    /// Receiver-side buffer footprint in bytes.
    pub fn buffer_bytes(&self) -> usize {
        self.spec.buffer_bytes()
    }
}

/// What a receiver poll produced.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PollOutcome {
    /// Messages delivered in FIFO order: `(sequence, payload)`.
    pub delivered: Vec<(u64, Vec<u8>)>,
    /// A slot looked mid-write (bad checksum): poll again shortly.
    pub repoll: bool,
}

/// Receiving endpoint: polls the local circular buffer.
#[derive(Debug)]
pub struct ChannelReceiver {
    spec: ChannelSpec,
    region: RegionId,
    host: HostId,
    expected_seq: u64,
    skipped: u64,
}

impl ChannelReceiver {
    /// The next sequence number the receiver expects to deliver.
    pub fn expected_seq(&self) -> u64 {
        self.expected_seq
    }

    /// Total messages skipped due to overwrites (diagnostics; these are the
    /// messages the tail guarantee allows to be lost).
    pub fn skipped_total(&self) -> u64 {
        self.skipped
    }

    /// The host this receiver runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Polls the buffer at virtual time `now`, delivering every message that
    /// is ready, in FIFO order, skipping ahead over overwritten slots.
    pub fn poll(&mut self, fabric: &mut Fabric, now: Time) -> PollOutcome {
        let mut out = PollOutcome::default();
        loop {
            let slot = (self.expected_seq % self.spec.slots as u64) as usize;
            let expected_inc = (self.expected_seq / self.spec.slots as u64 + 1) as u32;
            let offset = slot * self.spec.slot_size();
            let frame =
                match fabric.local_read(self.host, self.region, offset, self.spec.slot_size(), now)
                {
                    Ok(f) => f,
                    Err(_) => return out, // crashed host: nothing deliverable
                };
            let inc = u32::from_le_bytes(frame[8..12].try_into().expect("header"));
            if inc < expected_inc {
                // Not written yet.
                return out;
            }
            if inc > expected_inc {
                // Overwritten: the message in this slot has sequence
                // (inc-1)*t + slot; the oldest message possibly still in the
                // buffer is that minus (t-1).
                let found_seq = (inc as u64 - 1) * self.spec.slots as u64 + slot as u64;
                let oldest_live = found_seq + 1 - self.spec.slots as u64;
                debug_assert!(oldest_live > self.expected_seq);
                self.skipped += oldest_live - self.expected_seq;
                self.expected_seq = oldest_live;
                continue;
            }
            // Incarnation matches: copy out and validate (the copy guards
            // against in-place interference; the checksum catches tearing).
            let mut c = [0u8; 8];
            c.copy_from_slice(&frame[..8]);
            let stored = u64::from_le_bytes(c);
            let size = u32::from_le_bytes(frame[12..16].try_into().expect("header")) as usize;
            if size > self.spec.slot_payload
                || checksum64(CHECKSUM_SEED, &frame[8..SLOT_HEADER + size]) != stored
            {
                // Mid-write or corrupt: retry shortly.
                out.repoll = true;
                return out;
            }
            out.delivered
                .push((self.expected_seq, frame[SLOT_HEADER..SLOT_HEADER + size].to_vec()));
            self.expected_seq += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubft_sim::net::{LatencyModel, NetworkModel};
    use ubft_sim::SimRng;
    use ubft_types::Duration;

    fn fabric() -> Fabric {
        let net = NetworkModel::synchronous(LatencyModel::paper_testbed(), 4);
        Fabric::new(net, SimRng::new(11))
    }

    fn spec() -> ChannelSpec {
        ChannelSpec { slots: 4, slot_payload: 64 }
    }

    fn t(us: u64) -> Time {
        Time::ZERO + Duration::from_micros(us)
    }

    #[test]
    fn single_message_roundtrip() {
        let mut f = fabric();
        let (mut tx, mut rx) = create_channel(&mut f, HostId(1), spec());
        tx.bind_issuer(HostId(0));
        let out = tx.send(&mut f, t(0), b"hello");
        assert_eq!(out.issued.len(), 1);
        let (seq, arrival) = out.issued[0];
        assert_eq!(seq, 0);
        let polled = rx.poll(&mut f, arrival + Duration::from_nanos(150));
        assert_eq!(polled.delivered, vec![(0, b"hello".to_vec())]);
        assert!(!polled.repoll);
    }

    #[test]
    fn fifo_delivery_of_many() {
        let mut f = fabric();
        let (mut tx, mut rx) = create_channel(&mut f, HostId(1), spec());
        tx.bind_issuer(HostId(0));
        let mut last_arrival = Time::ZERO;
        for i in 0..4u8 {
            let out = tx.send(&mut f, t(i as u64 * 10), &[i]);
            for (_, a) in out.issued {
                last_arrival = last_arrival.max(a);
            }
        }
        let polled = rx.poll(&mut f, last_arrival + Duration::from_micros(1));
        let seqs: Vec<u64> = polled.delivered.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        let payloads: Vec<u8> = polled.delivered.iter().map(|(_, p)| p[0]).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3]);
    }

    #[test]
    fn overwrite_skips_to_oldest_live() {
        let mut f = fabric();
        let (mut tx, mut rx) = create_channel(&mut f, HostId(1), spec());
        tx.bind_issuer(HostId(0));
        // Send 12 messages spaced in time so each write completes before its
        // slot is reused (slots=4, so messages 8..11 survive).
        let mut last = Time::ZERO;
        for i in 0..12u8 {
            let out = tx.send(&mut f, t(i as u64 * 20), &[i]);
            for (_, a) in out.issued {
                last = last.max(a);
            }
        }
        let polled = rx.poll(&mut f, last + Duration::from_micros(1));
        let seqs: Vec<u64> = polled.delivered.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![8, 9, 10, 11]);
        assert_eq!(rx.skipped_total(), 8);
    }

    #[test]
    fn staging_absorbs_bursts() {
        let mut f = fabric();
        let (mut tx, mut rx) = create_channel(&mut f, HostId(1), spec());
        tx.bind_issuer(HostId(0));
        // Burst of 8 sends at the same instant: 4 go out, 4 stage (slots
        // busy until write completion ≈ 2 µs later).
        let mut arrivals = Vec::new();
        for i in 0..8u8 {
            let out = tx.send(&mut f, t(0), &[i]);
            arrivals.extend(out.issued);
        }
        assert_eq!(arrivals.len(), 4);
        assert_eq!(tx.staged_len(), 4);
        // A receiver polling promptly sees the first wave before overwrite.
        let first_wave = arrivals.iter().map(|(_, a)| *a).max().unwrap();
        let polled = rx.poll(&mut f, first_wave);
        let seqs: Vec<u64> = polled.delivered.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        // Later, flushing at each slot-free time drains the staging queue.
        let mut last = Time::ZERO;
        let mut flushed = 0;
        while let Some(flush_at) = tx.next_flush_at() {
            let out = tx.flush(&mut f, flush_at);
            flushed += out.issued.len();
            for (_, a) in out.issued {
                last = last.max(a);
            }
        }
        assert_eq!(flushed, 4);
        assert_eq!(tx.staged_len(), 0);
        let polled = rx.poll(&mut f, last + Duration::from_micros(1));
        // The staged wave arrives in order too: staging preserved FIFO.
        let seqs: Vec<u64> = polled.delivered.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![4, 5, 6, 7]);
    }

    #[test]
    fn staging_evicts_oldest_when_full() {
        let mut f = fabric();
        let (mut tx, _rx) = create_channel(&mut f, HostId(1), spec());
        tx.bind_issuer(HostId(0));
        let mut evicted = 0;
        for i in 0..16u8 {
            let out = tx.send(&mut f, t(0), &[i]);
            evicted += out.evicted;
        }
        // 4 transmitted, 4 staged capacity, 8 evicted.
        assert_eq!(evicted, 8);
        assert_eq!(tx.evicted_total(), 8);
        assert_eq!(tx.staged_len(), 4);
    }

    #[test]
    fn poll_before_arrival_sees_nothing() {
        let mut f = fabric();
        let (mut tx, mut rx) = create_channel(&mut f, HostId(1), spec());
        tx.bind_issuer(HostId(0));
        let out = tx.send(&mut f, t(0), b"later");
        let arrival = out.issued[0].1;
        let early = rx.poll(&mut f, t(0));
        assert!(early.delivered.is_empty());
        assert!(!early.repoll);
        let on_time = rx.poll(&mut f, arrival);
        assert_eq!(on_time.delivered.len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds slot capacity")]
    fn oversize_payload_panics() {
        let mut f = fabric();
        let (mut tx, _rx) = create_channel(&mut f, HostId(1), spec());
        tx.bind_issuer(HostId(0));
        let _ = tx.send(&mut f, t(0), &[0u8; 65]);
    }

    #[test]
    fn crashed_receiver_drops_sends() {
        let mut f = fabric();
        let (mut tx, _rx) = create_channel(&mut f, HostId(1), spec());
        tx.bind_issuer(HostId(0));
        f.net_mut().crash_host(HostId(1), Time::ZERO);
        let out = tx.send(&mut f, t(1), b"x");
        assert!(out.issued.is_empty());
    }

    #[test]
    fn buffer_accounting() {
        let s = spec();
        assert_eq!(s.slot_size(), 80);
        assert_eq!(s.buffer_bytes(), 320);
    }
}
