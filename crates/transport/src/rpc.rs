//! The client RPC layer.
//!
//! Clients send **unsigned** requests to *all* replicas (§5.4: the fast path
//! eschews client signatures; replicas only endorse a proposal for a request
//! they received directly). Replicas respond after executing; the client
//! accepts a result once `f + 1` replicas sent *matching* responses — at
//! least one of which is then correct.

use ubft_crypto::sha256;
use ubft_types::wire::{Wire, WireReader};
use ubft_types::{CodecError, ReplicaId, RequestId};

/// A client request as carried on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcRequest {
    /// Unique request id (client id + client-local sequence).
    pub id: RequestId,
    /// Opaque application payload.
    pub payload: Vec<u8>,
}

impl Wire for RpcRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.payload.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(RpcRequest { id: RequestId::decode(r)?, payload: Vec::<u8>::decode(r)? })
    }
}

/// A replica's response to a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcResponse {
    /// The request being answered.
    pub id: RequestId,
    /// The responding replica.
    pub replica: ReplicaId,
    /// Application output.
    pub payload: Vec<u8>,
}

impl Wire for RpcResponse {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.replica.encode(buf);
        self.payload.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(RpcResponse {
            id: RequestId::decode(r)?,
            replica: ReplicaId::decode(r)?,
            payload: Vec::<u8>::decode(r)?,
        })
    }
}

/// Client-side collector: accepts a response once `quorum` replicas sent the
/// same payload for the same request.
#[derive(Clone, Debug)]
pub struct ResponseCollector {
    quorum: usize,
    /// `(replica, payload digest)` pairs seen for the current request.
    seen: Vec<(ReplicaId, ubft_crypto::Digest)>,
    current: Option<RequestId>,
    accepted: Option<Vec<u8>>,
}

impl ResponseCollector {
    /// Creates a collector requiring `quorum` matching responses
    /// (`f + 1` in uBFT).
    pub fn new(quorum: usize) -> Self {
        assert!(quorum >= 1);
        ResponseCollector { quorum, seen: Vec::new(), current: None, accepted: None }
    }

    /// Starts collecting for a new request, discarding older state.
    pub fn begin(&mut self, id: RequestId) {
        self.current = Some(id);
        self.seen.clear();
        self.accepted = None;
    }

    /// Feeds one response; returns the accepted payload the first time a
    /// quorum of matching responses is reached.
    pub fn offer(&mut self, resp: &RpcResponse) -> Option<Vec<u8>> {
        if self.current != Some(resp.id) || self.accepted.is_some() {
            return None;
        }
        let digest = sha256(&resp.payload);
        if self.seen.iter().any(|(r, _)| *r == resp.replica) {
            return None; // a replica only gets one vote
        }
        self.seen.push((resp.replica, digest));
        let matching = self.seen.iter().filter(|(_, d)| *d == digest).count();
        if matching >= self.quorum {
            self.accepted = Some(resp.payload.clone());
            return Some(resp.payload.clone());
        }
        None
    }

    /// The accepted payload, if quorum was reached.
    pub fn accepted(&self) -> Option<&[u8]> {
        self.accepted.as_deref()
    }

    /// Distinct replicas heard from for the current request.
    pub fn responses_seen(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubft_types::ClientId;

    fn req_id() -> RequestId {
        RequestId::new(ClientId(1), 7)
    }

    fn resp(replica: u32, payload: &[u8]) -> RpcResponse {
        RpcResponse { id: req_id(), replica: ReplicaId(replica), payload: payload.to_vec() }
    }

    #[test]
    fn wire_roundtrips() {
        ubft_types::wire::roundtrip(&RpcRequest { id: req_id(), payload: vec![1, 2, 3] });
        ubft_types::wire::roundtrip(&resp(2, b"out"));
    }

    #[test]
    fn accepts_on_quorum_of_matching() {
        let mut c = ResponseCollector::new(2);
        c.begin(req_id());
        assert_eq!(c.offer(&resp(0, b"A")), None);
        assert_eq!(c.offer(&resp(1, b"A")), Some(b"A".to_vec()));
        assert_eq!(c.accepted(), Some(&b"A"[..]));
    }

    #[test]
    fn byzantine_minority_cannot_force_wrong_result() {
        let mut c = ResponseCollector::new(2);
        c.begin(req_id());
        assert_eq!(c.offer(&resp(0, b"WRONG")), None);
        assert_eq!(c.offer(&resp(1, b"right")), None);
        assert_eq!(c.offer(&resp(2, b"right")), Some(b"right".to_vec()));
    }

    #[test]
    fn duplicate_replica_votes_ignored() {
        let mut c = ResponseCollector::new(2);
        c.begin(req_id());
        assert_eq!(c.offer(&resp(0, b"A")), None);
        assert_eq!(c.offer(&resp(0, b"A")), None);
        assert_eq!(c.responses_seen(), 1);
    }

    #[test]
    fn stale_request_responses_ignored() {
        let mut c = ResponseCollector::new(1);
        c.begin(req_id());
        let mut stale = resp(0, b"A");
        stale.id = RequestId::new(ClientId(1), 6);
        assert_eq!(c.offer(&stale), None);
    }

    #[test]
    fn accepts_only_once() {
        let mut c = ResponseCollector::new(1);
        c.begin(req_id());
        assert_eq!(c.offer(&resp(0, b"A")), Some(b"A".to_vec()));
        assert_eq!(c.offer(&resp(1, b"A")), None);
    }

    #[test]
    fn begin_resets_state() {
        let mut c = ResponseCollector::new(2);
        c.begin(req_id());
        c.offer(&resp(0, b"A"));
        c.begin(RequestId::new(ClientId(1), 8));
        assert_eq!(c.responses_seen(), 0);
        assert_eq!(c.accepted(), None);
    }
}
