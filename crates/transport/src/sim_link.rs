//! The discrete-event [`Transport`]: every link is one of the RDMA
//! circular-buffer [`channel`](crate::channel)s living in fabric memory.
//!
//! This is a mechanical re-homing of the link map the simulator's group
//! runtime used to own inline: the channel mechanics (staging, slot
//! busy-until, incarnation-checked polls) are untouched, so a deployment
//! driven through this transport is bit-for-bit identical to the
//! pre-trait code. The driver remains responsible for *scheduling*: it
//! turns [`SendReport::arrivals`] into receiver-poll events and
//! [`SendReport::flush_at`] into flush events in its virtual-time queue.

use std::collections::HashMap;

use ubft_rdma::Fabric;
use ubft_sim::HostId;
use ubft_types::Time;

use crate::channel::{create_channel, ChannelReceiver, ChannelSender, ChannelSpec};
use crate::net::{Inbound, LaneId, PollReport, SendReport, Transport};

struct Link {
    tx: ChannelSender,
    rx: ChannelReceiver,
}

/// Keyed collection of simulated circular-buffer links, one per
/// `(lane, from, to)` triple the deployment opened.
#[derive(Default)]
pub struct SimLinkTransport {
    links: HashMap<(LaneId, u32, u32), Link>,
}

impl SimLinkTransport {
    /// An empty link map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens (or replaces) the link `(lane, from, to)`: allocates the
    /// circular buffer in `to_host`'s fabric memory and binds the sender
    /// to `from_host` for crash/partition modelling. Replacing an existing
    /// link drops the old endpoints — exactly what a replacement node's
    /// re-established connection does.
    #[allow(clippy::too_many_arguments)]
    pub fn open_link(
        &mut self,
        fabric: &mut Fabric,
        lane: LaneId,
        from: u32,
        to: u32,
        from_host: HostId,
        to_host: HostId,
        spec: ChannelSpec,
    ) {
        let (mut tx, rx) = create_channel(fabric, to_host, spec);
        tx.bind_issuer(from_host);
        self.links.insert((lane, from, to), Link { tx, rx });
    }

    /// Buffer bytes attributable to node `r`: receive buffers it hosts
    /// plus sender mirrors/staging of its outgoing links (Table 2's
    /// replica-local accounting).
    pub fn resident_bytes_touching(&self, r: u32) -> usize {
        let mut total = 0usize;
        for ((_lane, from, to), link) in &self.links {
            if *to == r {
                total += link.tx.buffer_bytes(); // receiver-side buffer
            }
            if *from == r {
                total += link.tx.buffer_bytes(); // sender mirror + staging
            }
        }
        total
    }
}

impl Transport for SimLinkTransport {
    type Ctx = Fabric;

    fn send(
        &mut self,
        fabric: &mut Fabric,
        lane: LaneId,
        from: u32,
        to: u32,
        payload: &[u8],
        now: Time,
    ) -> SendReport {
        let Some(link) = self.links.get_mut(&(lane, from, to)) else {
            return SendReport::default();
        };
        let out = link.tx.send(fabric, now, payload);
        let flush_at = if link.tx.staged_len() > 0 { link.tx.next_flush_at() } else { None };
        SendReport {
            arrivals: out.issued.into_iter().map(|(_seq, at)| at).collect(),
            flush_at,
            evicted: out.evicted,
        }
    }

    fn flush(
        &mut self,
        fabric: &mut Fabric,
        lane: LaneId,
        from: u32,
        to: u32,
        now: Time,
    ) -> SendReport {
        let Some(link) = self.links.get_mut(&(lane, from, to)) else {
            return SendReport::default();
        };
        let out = link.tx.flush(fabric, now);
        let flush_at = if link.tx.staged_len() > 0 { link.tx.next_flush_at() } else { None };
        SendReport {
            arrivals: out.issued.into_iter().map(|(_seq, at)| at).collect(),
            flush_at,
            evicted: out.evicted,
        }
    }

    fn recv_poll(
        &mut self,
        fabric: &mut Fabric,
        to: u32,
        from: Option<(LaneId, u32)>,
        now: Time,
    ) -> PollReport {
        let Some((lane, sender)) = from else {
            // The simulated backend is poll-driven per link; a drain-all
            // poll has no single buffer to walk.
            return PollReport::default();
        };
        let Some(link) = self.links.get_mut(&(lane, sender, to)) else {
            return PollReport::default();
        };
        let out = link.rx.poll(fabric, now);
        PollReport {
            delivered: out
                .delivered
                .into_iter()
                .map(|(_seq, payload)| Inbound { lane, from: sender, payload })
                .collect(),
            repoll: out.repoll,
        }
    }
}
