//! The wall-clock [`Transport`]: one inbox queue per node, connected by
//! lock-free in-process channels.
//!
//! Every node of a threaded deployment owns an [`InProcEndpoint`] — the
//! receiving half of an MPSC queue plus a [`InProcRouter`] holding a
//! sender handle to every peer's queue. Sends enqueue directly into the
//! destination's inbox (the `std::sync::mpsc` send path is lock-free);
//! the receiving thread blocks on its inbox instead of polling, which is
//! what replaces the simulator's scheduled poll events.
//!
//! **FIFO guarantee.** A node's protocol loop runs on one thread, so all
//! its sends to a given peer are issued from one thread through one
//! `Sender` clone — `std::sync::mpsc` preserves that per-producer order,
//! which is exactly the per-`(lane, from, to)` FIFO contract of
//! [`Transport`] (stronger, in fact: FIFO per `(from, to)` across all
//! lanes, and nothing is ever dropped). `tests` in this module stress the
//! guarantee under cross-thread contention.
//!
//! Deployments also need a *control plane* (crypto-pool completions,
//! register-op RPCs, shutdown) that is not protocol traffic; the inbox
//! carries both, typed, so a thread can block on a single queue. The
//! control payload type `X` is deployment-defined.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};

use ubft_types::Time;

use crate::net::{Inbound, LaneId, PollReport, SendReport, Transport};

/// One message in a node's inbox: protocol bytes or a typed control frame.
pub enum InMsg<X> {
    /// Transport-level protocol traffic (what [`Transport::send`] emits).
    Net(Inbound),
    /// Deployment-defined control traffic (crypto completions, register
    /// RPCs, shutdown).
    Ctl(X),
}

/// Cloneable handle that can reach every node's inbox.
pub struct InProcRouter<X> {
    senders: Vec<Sender<InMsg<X>>>,
}

impl<X> Clone for InProcRouter<X> {
    fn clone(&self) -> Self {
        InProcRouter { senders: self.senders.clone() }
    }
}

impl<X> InProcRouter<X> {
    /// Number of nodes in the mesh.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Whether the mesh is empty.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Sends a control frame to node `to`. Returns `false` if the
    /// destination's endpoint was dropped (its thread exited).
    pub fn send_ctl(&self, to: u32, msg: X) -> bool {
        self.senders[to as usize].send(InMsg::Ctl(msg)).is_ok()
    }

    /// Sends protocol bytes to node `to` (the raw form of
    /// [`Transport::send`], usable from any thread holding a router).
    pub fn send_net(&self, lane: LaneId, from: u32, to: u32, payload: Vec<u8>) -> bool {
        self.senders[to as usize].send(InMsg::Net(Inbound { lane, from, payload })).is_ok()
    }
}

/// One node's end of the mesh: its inbox plus a router to every peer.
pub struct InProcEndpoint<X> {
    me: u32,
    rx: Receiver<InMsg<X>>,
    router: InProcRouter<X>,
    /// Control frames encountered by a [`Transport::recv_poll`] drain;
    /// handed back through [`InProcEndpoint::take_ctl`] so trait-driven
    /// consumers never lose them.
    ctl_backlog: Vec<X>,
}

/// Builds an `n`-node in-process mesh: a router (for threads that are not
/// nodes, e.g. crypto workers answering into replica inboxes) and one
/// endpoint per node, in index order.
pub fn inproc_mesh<X>(n: usize) -> (InProcRouter<X>, Vec<InProcEndpoint<X>>) {
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(rx);
    }
    let router = InProcRouter { senders };
    let endpoints = receivers
        .into_iter()
        .enumerate()
        .map(|(i, rx)| InProcEndpoint {
            me: i as u32,
            rx,
            router: router.clone(),
            ctl_backlog: Vec::new(),
        })
        .collect();
    (router, endpoints)
}

impl<X> InProcEndpoint<X> {
    /// This endpoint's node index.
    pub fn me(&self) -> u32 {
        self.me
    }

    /// The mesh router (clone it to hand to helper threads).
    pub fn router(&self) -> &InProcRouter<X> {
        &self.router
    }

    /// Blocks up to `timeout` for the next inbox message. `None` on
    /// timeout or when every sender is gone.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<InMsg<X>> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Some(m),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<InMsg<X>> {
        self.rx.try_recv().ok()
    }

    /// Control frames a [`Transport::recv_poll`] drain set aside.
    pub fn take_ctl(&mut self) -> Vec<X> {
        std::mem::take(&mut self.ctl_backlog)
    }
}

impl<X> Transport for InProcEndpoint<X> {
    type Ctx = ();

    fn send(
        &mut self,
        _ctx: &mut (),
        lane: LaneId,
        from: u32,
        to: u32,
        payload: &[u8],
        _now: Time,
    ) -> SendReport {
        // Delivery is eager: the destination thread wakes on its inbox, so
        // there are no arrivals to schedule and nothing ever stages.
        let _ = self.router.send_net(lane, from, to, payload.to_vec());
        SendReport::default()
    }

    fn flush(
        &mut self,
        _ctx: &mut (),
        _lane: LaneId,
        _from: u32,
        _to: u32,
        _now: Time,
    ) -> SendReport {
        SendReport::default()
    }

    fn recv_poll(
        &mut self,
        _ctx: &mut (),
        to: u32,
        from: Option<(LaneId, u32)>,
        _now: Time,
    ) -> PollReport {
        debug_assert_eq!(to, self.me, "an endpoint polls only its own inbox");
        let mut delivered = Vec::new();
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                InMsg::Net(inb) => match from {
                    Some((lane, sender)) if inb.lane != lane || inb.from != sender => {
                        // A filtered poll must still preserve global inbox
                        // order for what it does deliver; deliver
                        // everything and let the caller demultiplex.
                        delivered.push(inb);
                    }
                    _ => delivered.push(inb),
                },
                InMsg::Ctl(x) => self.ctl_backlog.push(x),
            }
        }
        PollReport { delivered, repoll: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// The FIFO contract under contention: many producer threads blast
    /// numbered messages at one consumer endpoint concurrently; per-pair
    /// order must survive arbitrary interleaving, with nothing lost.
    #[test]
    fn per_producer_fifo_survives_contention() {
        const PRODUCERS: usize = 8;
        const MSGS: u64 = 5_000;
        let (router, mut eps) = inproc_mesh::<()>(PRODUCERS + 1);
        let consumer_idx = PRODUCERS as u32;
        let mut consumer = eps.pop().expect("consumer endpoint");

        let barrier = std::sync::Arc::new(std::sync::Barrier::new(PRODUCERS));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let router = router.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait(); // maximize interleaving
                    for i in 0..MSGS {
                        let mut payload = (p as u64).to_le_bytes().to_vec();
                        payload.extend_from_slice(&i.to_le_bytes());
                        assert!(router.send_net(7, p as u32, consumer_idx, payload));
                    }
                })
            })
            .collect();

        let mut next_expected = [0u64; PRODUCERS];
        let mut total = 0u64;
        while total < PRODUCERS as u64 * MSGS {
            let report = consumer.recv_poll(&mut (), consumer_idx, None, Time::ZERO);
            for inb in report.delivered {
                assert_eq!(inb.lane, 7);
                let p = u64::from_le_bytes(inb.payload[..8].try_into().unwrap()) as usize;
                let i = u64::from_le_bytes(inb.payload[8..16].try_into().unwrap());
                assert_eq!(inb.from, p as u32);
                assert_eq!(
                    i, next_expected[p],
                    "producer {p} delivered out of order: got {i}, expected {}",
                    next_expected[p]
                );
                next_expected[p] += 1;
                total += 1;
            }
            std::thread::yield_now();
        }
        for h in handles {
            h.join().expect("producer");
        }
        assert!(next_expected.iter().all(|&n| n == MSGS));
    }

    /// Control frames interleaved with protocol traffic are never lost by
    /// a trait-driven drain, and arrive in per-producer order too.
    #[test]
    fn ctl_frames_survive_recv_poll_drain() {
        let (router, mut eps) = inproc_mesh::<u64>(2);
        let mut ep = eps.pop().expect("endpoint 1");
        for i in 0..100u64 {
            assert!(router.send_net(3, 0, 1, vec![i as u8]));
            assert!(router.send_ctl(1, i));
        }
        let report = ep.recv_poll(&mut (), 1, None, Time::ZERO);
        assert_eq!(report.delivered.len(), 100);
        let ctl = ep.take_ctl();
        assert_eq!(ctl, (0..100).collect::<Vec<_>>());
    }
}
