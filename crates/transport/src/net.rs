//! The pluggable transport abstraction every deployment backend speaks.
//!
//! A [`Transport`] carries opaque byte payloads between *nodes* (dense
//! `u32` indices assigned by the deployment) over *lanes* (a [`LaneId`]
//! namespace the runtime defines: one lane per CTBcast stream plus fixed
//! lanes for consensus TBcast, direct messages, and client RPC). The
//! contract is exactly what the protocol stack assumes of the RDMA
//! fabric's circular-buffer channels:
//!
//! * **Per-pair FIFO**: of the messages a `(lane, from, to)` triple
//!   delivers, delivery order equals send order. Messages may be *dropped*
//!   (a slower receiver's buffer overwrites its tail) but never reordered
//!   or duplicated.
//! * **Send never blocks**: a send either stages or overwrites; the
//!   sender learns about completions through the [`SendReport`].
//!
//! Two implementations exist: [`SimLinkTransport`](crate::sim_link) wraps
//! the discrete-event fabric's channels (its `Ctx` is the shared
//! [`Fabric`](ubft_rdma::Fabric), and reports carry *virtual-time*
//! scheduling hints), and [`InProcEndpoint`](crate::inproc) connects OS
//! threads through lock-free in-process queues (its `Ctx` is `()` and
//! delivery is immediate — the receiving thread wakes on its inbox).

use ubft_types::Time;

/// Lane identifier. The runtime maps its protocol lanes into this
/// namespace: CTBcast stream `s` uses lane `s`, and the reserved lanes
/// below carry everything else.
pub type LaneId = u32;

/// Consensus-level TBcast traffic.
pub const LANE_CONS_TB: LaneId = 0xFFFF_FF00;
/// Point-to-point protocol messages.
pub const LANE_DIRECT: LaneId = 0xFFFF_FF01;
/// Client requests.
pub const LANE_CLIENT_REQ: LaneId = 0xFFFF_FF02;
/// Replica replies to clients.
pub const LANE_CLIENT_RESP: LaneId = 0xFFFF_FF03;

/// What a send (or flush) accomplished, in the transport's own time base.
#[derive(Clone, Debug, Default)]
pub struct SendReport {
    /// Completion times of writes issued to the wire by this call. A
    /// simulated transport reports virtual arrival times so the driver can
    /// schedule receiver polls; an in-process transport delivers eagerly
    /// and reports nothing.
    pub arrivals: Vec<Time>,
    /// When staged (not yet issued) data will next become flushable;
    /// `None` when nothing is staged. Drivers schedule a
    /// [`Transport::flush`] at this time.
    pub flush_at: Option<Time>,
    /// Messages evicted unsent by this call (buffer overwrite under
    /// backpressure).
    pub evicted: u64,
}

/// One delivered message.
#[derive(Clone, Debug)]
pub struct Inbound {
    /// Lane the message arrived on.
    pub lane: LaneId,
    /// Sending node.
    pub from: u32,
    /// The payload bytes, exactly as sent.
    pub payload: Vec<u8>,
}

/// The outcome of one receive poll.
#[derive(Clone, Debug, Default)]
pub struct PollReport {
    /// Messages delivered by this poll, in delivery order.
    pub delivered: Vec<Inbound>,
    /// Whether the receiver observed in-flight data worth re-polling for
    /// shortly (a torn slot mid-write). In-process transports never set
    /// this — their receivers block instead of polling.
    pub repoll: bool,
}

/// A deployment backend's message plane. See the module docs for the
/// delivery contract.
pub trait Transport {
    /// Backend context threaded through every call: the shared simulated
    /// fabric for the discrete-event backend, `()` for in-process queues.
    type Ctx: ?Sized;

    /// Sends `payload` from node `from` to node `to` on `lane`. Never
    /// blocks; per-pair FIFO order is `send` call order.
    fn send(
        &mut self,
        ctx: &mut Self::Ctx,
        lane: LaneId,
        from: u32,
        to: u32,
        payload: &[u8],
        now: Time,
    ) -> SendReport;

    /// Retries staged data on one link (backends whose sends can stage;
    /// a no-op elsewhere).
    fn flush(
        &mut self,
        ctx: &mut Self::Ctx,
        lane: LaneId,
        from: u32,
        to: u32,
        now: Time,
    ) -> SendReport;

    /// Polls node `to`'s receive side. `from = Some((lane, sender))`
    /// restricts the poll to one link (how the simulated backend walks
    /// its per-link buffers); `None` drains everything pending (how the
    /// in-process backend empties its inbox).
    fn recv_poll(
        &mut self,
        ctx: &mut Self::Ctx,
        to: u32,
        from: Option<(LaneId, u32)>,
        now: Time,
    ) -> PollReport;

    /// Sends `payload` to every node in `to`, reporting per-destination.
    fn multicast(
        &mut self,
        ctx: &mut Self::Ctx,
        lane: LaneId,
        from: u32,
        to: &[u32],
        payload: &[u8],
        now: Time,
    ) -> Vec<(u32, SendReport)> {
        to.iter().map(|&t| (t, self.send(ctx, lane, from, t, payload, now))).collect()
    }
}
