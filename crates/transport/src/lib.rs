//! uBFT's fast message-passing primitive (§6.2) and the client RPC layer.
//!
//! The primitive is a one-way channel from a sender to a receiver where the
//! receiver is only required to deliver the last `t` messages sent. The
//! receiver exposes a circular buffer over RDMA; the sender RDMA-writes
//! messages into it and **never waits for acknowledgements** — new messages
//! overwrite old ones, and a staging queue absorbs bursts while slots have
//! in-flight writes. The receiver polls its local memory, detects overwritten
//! slots via incarnation numbers, and skips ahead to the oldest message still
//! in the buffer, preserving FIFO order of what it does deliver.
//!
//! This ack-free design is what gives uBFT its tail latency: the paper
//! measures ≈300 ns lost per scheduled acknowledgement and instead
//! piggybacks acks in SMR-level messages (§6.2).

pub mod channel;
pub mod inproc;
pub mod net;
pub mod rpc;
pub mod sim_link;

pub use channel::{ChannelReceiver, ChannelSender, ChannelSpec, PollOutcome, SendOutcome};
pub use inproc::{inproc_mesh, InMsg, InProcEndpoint, InProcRouter};
pub use net::{Inbound, LaneId, PollReport, SendReport, Transport};
pub use rpc::{ResponseCollector, RpcRequest, RpcResponse};
pub use sim_link::SimLinkTransport;
