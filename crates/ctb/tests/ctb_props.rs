//! Property-based tests of CTBcast's agreement invariant: under *arbitrary*
//! interleavings of the slow-path stages across receivers — including a
//! Byzantine broadcaster signing conflicting messages — two correct
//! receivers never deliver different messages for the same identifier.

use proptest::prelude::*;
use ubft_crypto::KeyRing;
use ubft_ctb::ctbcast::{Ctb, CtbConfig, CtbEffect, RegEntry, SlowMode};
use ubft_ctb::wire::{fingerprint, signed_bytes, CtbWire};
use ubft_types::{ProcessId, ReplicaId, SeqId};

const N: usize = 3;
const T: usize = 4;

struct World {
    ctbs: Vec<Ctb>,
    registers: Vec<Vec<Option<RegEntry>>>,
    ring: KeyRing,
    delivered: Vec<Vec<(SeqId, Vec<u8>)>>,
    /// Pending effects per replica, executed in a fuzzed order.
    pending: Vec<(usize, CtbEffect)>,
}

impl World {
    fn new() -> Self {
        let replicas: Vec<ReplicaId> = (0..N as u32).map(ReplicaId).collect();
        let cfg = CtbConfig { n: N, tail: T, fast_enabled: false, slow: SlowMode::Always };
        World {
            ctbs: replicas
                .iter()
                .map(|&me| Ctb::new(me, ReplicaId(0), replicas.clone(), cfg))
                .collect(),
            registers: vec![vec![None; T]; N],
            ring: KeyRing::generate(3, (0..N as u32).map(|i| ProcessId::Replica(ReplicaId(i)))),
            delivered: vec![Vec::new(); N],
            pending: Vec::new(),
        }
    }

    fn push(&mut self, who: usize, fx: Vec<CtbEffect>) {
        for e in fx {
            self.pending.push((who, e));
        }
    }

    /// Executes pending effect `idx` (wrapped); returns false when empty.
    fn step(&mut self, idx: usize) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let (who, e) = self.pending.remove(idx % self.pending.len());
        match e {
            CtbEffect::Broadcast(wire) => {
                for r in 0..N {
                    let out = self.ctbs[r].on_tb_deliver(ReplicaId(who as u32), wire.clone());
                    self.push(r, out);
                }
            }
            CtbEffect::Sign { .. } => {} // broadcaster signing handled by the test
            CtbEffect::Verify { tag, k, fp, sig } => {
                let ok = self.ring.verify(
                    ProcessId::Replica(ReplicaId(0)),
                    &signed_bytes(ReplicaId(0), k, &fp),
                    &sig,
                );
                let out = self.ctbs[who].on_verify_done(tag, ok);
                self.push(who, out);
            }
            CtbEffect::WriteRegister { slot, k, entry } => {
                self.registers[who][slot] = Some(entry);
                let out = self.ctbs[who].on_register_written(k);
                self.push(who, out);
            }
            CtbEffect::ReadSlot { slot, k } => {
                let entries: Vec<Option<RegEntry>> =
                    (0..N).map(|r| self.registers[r][slot].clone()).collect();
                let out = self.ctbs[who].on_registers_read(k, entries);
                self.push(who, out);
            }
            CtbEffect::Deliver { k, payload } => self.delivered[who].push((k, payload)),
            CtbEffect::Equivocation { .. } | CtbEffect::ArmSlowTimer { .. } => {}
        }
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Byzantine broadcaster sends conflicting SIGNED messages for the same
    /// k to different receivers; stage interleaving is fuzzed. Agreement
    /// must hold for every schedule.
    #[test]
    fn agreement_under_equivocation(schedule in proptest::collection::vec(any::<usize>(), 1..200)) {
        let mut w = World::new();
        let signer = w.ring.signer(ProcessId::Replica(ReplicaId(0))).unwrap();
        let k = SeqId(1);
        let m1 = b"message-one".to_vec();
        let m2 = b"message-two".to_vec();
        let s1 = signer.sign(&signed_bytes(ReplicaId(0), k, &fingerprint(&m1)));
        let s2 = signer.sign(&signed_bytes(ReplicaId(0), k, &fingerprint(&m2)));
        // Receiver 1 gets m1, receiver 2 gets m2 (the equivocation).
        let out = w.ctbs[1].on_tb_deliver(ReplicaId(0), CtbWire::Signed { k, m: m1, sig: s1 });
        w.push(1, out);
        let out = w.ctbs[2].on_tb_deliver(ReplicaId(0), CtbWire::Signed { k, m: m2, sig: s2 });
        w.push(2, out);
        // Fuzzed interleaving, then drain deterministically.
        for idx in schedule {
            if !w.step(idx) {
                break;
            }
        }
        while w.step(0) {}
        // Agreement: no two correct receivers deliver different payloads
        // for k.
        let payloads: Vec<&Vec<u8>> = w
            .delivered
            .iter()
            .flat_map(|d| d.iter().filter(|(kk, _)| *kk == k).map(|(_, p)| p))
            .collect();
        for pair in payloads.windows(2) {
            prop_assert_eq!(pair[0], pair[1], "agreement violated");
        }
    }

    /// An honest broadcast delivers exactly once at every receiver for
    /// every schedule (validity + no-duplication under reordering).
    #[test]
    fn honest_broadcast_delivers_once_everywhere(
        schedule in proptest::collection::vec(any::<usize>(), 1..300),
    ) {
        let mut w = World::new();
        let signer = w.ring.signer(ProcessId::Replica(ReplicaId(0))).unwrap();
        let k = SeqId(1);
        let m = b"honest".to_vec();
        let sig = signer.sign(&signed_bytes(ReplicaId(0), k, &fingerprint(&m)));
        for r in 0..N {
            let out =
                w.ctbs[r].on_tb_deliver(ReplicaId(0), CtbWire::Signed { k, m: m.clone(), sig });
            w.push(r, out);
        }
        for idx in schedule {
            if !w.step(idx) {
                break;
            }
        }
        while w.step(0) {}
        for r in 0..N {
            prop_assert_eq!(
                w.delivered[r].len(),
                1,
                "replica {} delivered {} times",
                r,
                w.delivered[r].len()
            );
            prop_assert_eq!(&w.delivered[r][0].1, &m);
        }
    }
}
