//! Consistent Tail Broadcast — Algorithm 1 as a sans-IO state machine.
//!
//! One [`Ctb`] instance is *one replica's view of one broadcaster's stream*:
//! replica `me` participating in the stream whose designated broadcaster is
//! `stream`. All `n` replicas (including the broadcaster) act as receivers.
//!
//! Signature verification and register access are asynchronous in the real
//! system (thread pool, RDMA), so the slow path is staged: `SIGNED` arrives →
//! verify → check/set lock → write own SWMR register slot → read everyone's
//! slot → (verify any conflicting entries) → deliver. Each stage is resumed
//! through an `on_*` input carrying the results the runtime collected.

use std::collections::{BTreeSet, HashMap};

use ubft_crypto::{Digest, Signature};
use ubft_types::wire::{Wire, WireReader};
use ubft_types::{CodecError, ReplicaId, SeqId};

use crate::wire::{fingerprint, CtbWire};

/// When the broadcaster emits the slow-path `SIGNED` message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlowMode {
    /// Sign and send immediately alongside the fast path (Algorithm 1's
    /// pedagogical presentation).
    Always,
    /// Only after the runtime's fast-path timeout fires (the deployed
    /// configuration, §4.2).
    OnTimeout,
    /// Never (fast-path-only experiments).
    Never,
}

/// Static configuration of a CTBcast stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CtbConfig {
    /// Number of replicas participating as receivers (`2f + 1`).
    pub n: usize,
    /// The tail parameter `t`.
    pub tail: usize,
    /// Whether the signature-less fast path runs.
    pub fast_enabled: bool,
    /// Slow-path triggering policy.
    pub slow: SlowMode,
}

impl CtbConfig {
    /// The paper's deployed configuration for `n` replicas and tail `t`:
    /// fast path on, slow path on timeout.
    pub fn deployed(n: usize, tail: usize) -> Self {
        CtbConfig { n, tail, fast_enabled: true, slow: SlowMode::OnTimeout }
    }
}

/// What one receiver's SWMR register slot holds: the message id, its
/// fingerprint, and the broadcaster's signature binding them (§7.6 stores
/// id + fingerprint; the signature makes entries self-certifying so
/// Byzantine *receivers* cannot poison delivery).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegEntry {
    /// Message identifier (doubles as the register timestamp).
    pub k: SeqId,
    /// Fingerprint of the message body.
    pub fp: Digest,
    /// Broadcaster's signature over `(stream, k, fp)`.
    pub sig: Signature,
}

impl RegEntry {
    /// Encoded size of one entry in bytes — what a SWMR register slot must
    /// hold. Computed from the wire encoding itself (id + fingerprint +
    /// signature are all fixed-size), so register sizing can never drift
    /// from the codec.
    pub fn encoded_size() -> usize {
        RegEntry { k: SeqId(0), fp: Digest::from_bytes([0; 32]), sig: Signature::garbage() }
            .to_bytes()
            .len()
    }
}

impl Wire for RegEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.k.encode(buf);
        self.fp.encode(buf);
        self.sig.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(RegEntry { k: SeqId::decode(r)?, fp: Digest::decode(r)?, sig: Signature::decode(r)? })
    }
}

/// Correlates an asynchronous signature verification with the state machine
/// stage that requested it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyTag {
    /// Verifying a `SIGNED` message for id `k`.
    Signed {
        /// Message id.
        k: SeqId,
    },
    /// Verifying a conflicting register entry owned by `owner`, found while
    /// slow-delivering id `k`.
    Entry {
        /// The id being delivered.
        k: SeqId,
        /// The register's owner.
        owner: ReplicaId,
        /// What the entry conflicts on: same id with a different message
        /// (equivocation, line 33) or a newer id aliasing the same slot
        /// (out of tail, line 35).
        kind: ConflictKind,
    },
}

/// How a register entry conflicts with a pending slow-path delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictKind {
    /// Same `k`, different fingerprint: the broadcaster equivocated.
    SameId,
    /// Higher `k` on the same ring slot: our message fell out of the tail.
    NewerId,
}

/// Effects emitted by [`Ctb`], to be executed by the runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtbEffect {
    /// TBcast-broadcast this frame on the stream (the runtime routes it
    /// through this replica's [`crate::TailBroadcaster`], whose self-delivery
    /// feeds back into [`Ctb::on_tb_deliver`]).
    Broadcast(CtbWire),
    /// Request an asynchronous signature over
    /// [`crate::wire::signed_bytes`]`(stream, k, fp)` (broadcaster only).
    Sign {
        /// Message id.
        k: SeqId,
        /// Message fingerprint.
        fp: Digest,
    },
    /// Request an asynchronous verification of the stream broadcaster's
    /// signature over `(stream, k, fp)`.
    Verify {
        /// Correlation tag.
        tag: VerifyTag,
        /// Claimed message id.
        k: SeqId,
        /// Claimed fingerprint.
        fp: Digest,
        /// The signature to check.
        sig: Signature,
    },
    /// Write `entry` to this replica's own SWMR register slot for the
    /// stream, using `k` as the register timestamp.
    WriteRegister {
        /// Ring slot (`k % t`).
        slot: usize,
        /// Message id / register timestamp.
        k: SeqId,
        /// The entry to store.
        entry: RegEntry,
    },
    /// Read every receiver's register for `slot` (quorum-replicated read).
    ReadSlot {
        /// Ring slot.
        slot: usize,
        /// The id whose delivery is pending on this read.
        k: SeqId,
    },
    /// CTBcast-deliver `(k, payload)` from this stream.
    Deliver {
        /// Message id.
        k: SeqId,
        /// Message body.
        payload: Vec<u8>,
    },
    /// Proof was found that the broadcaster equivocated on `k`; the layer
    /// above must stop interpreting this stream (Algorithm 2, line 1).
    Equivocation {
        /// The id with conflicting signed messages.
        k: SeqId,
    },
    /// Ask the runtime to arm the fast-path timeout for `(k, m)`; if it
    /// fires before delivery, feed [`Ctb::on_slow_timeout`] (broadcaster
    /// only, [`SlowMode::OnTimeout`]).
    ArmSlowTimer {
        /// Message id.
        k: SeqId,
    },
}

#[derive(Clone, Debug)]
struct SlowPending {
    k: SeqId,
    fp: Digest,
    sig: Signature,
    stage: SlowStage,
    outstanding: usize,
    /// A same-id conflicting entry verified: the broadcaster equivocated.
    equivocated: bool,
    /// A newer-id entry verified: `k` fell out of the tail; drop silently.
    out_of_tail: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlowStage {
    VerifyingSig,
    Writing,
    Reading,
    VerifyingEntries,
}

/// One replica's state machine for one CTBcast stream (Algorithm 1).
#[derive(Clone, Debug)]
pub struct Ctb {
    me: ReplicaId,
    stream: ReplicaId,
    cfg: CtbConfig,
    replicas: Vec<ReplicaId>,
    /// Broadcaster only: next id to assign.
    next_k: SeqId,
    /// Broadcaster only: bodies of own recent broadcasts (for `SIGNED`
    /// emission after async signing), pruned to the last `2t`.
    my_broadcasts: HashMap<u64, Vec<u8>>,
    /// Broadcaster only: ids for which a sign was already requested.
    sign_requested: BTreeSet<u64>,
    /// `locks` array (line 9): per ring slot, the `(k, fp)` this replica is
    /// committed to.
    locks: Vec<Option<(SeqId, Digest)>>,
    /// `locked` array (line 10): per receiver, per ring slot.
    locked: Vec<Vec<Option<(SeqId, Digest)>>>,
    /// `delivered` array (line 8).
    delivered: Vec<Option<SeqId>>,
    /// Payload cache keyed by `(k, fp)`, pruned to the tail window.
    payloads: HashMap<(u64, Digest), Vec<u8>>,
    /// Highest id seen on the stream (drives cache pruning).
    max_seen: SeqId,
    /// In-flight slow-path deliveries, keyed by ring slot.
    slow: HashMap<usize, SlowPending>,
}

impl Ctb {
    /// Creates the state machine for replica `me` on `stream`'s CTBcast,
    /// with receivers `replicas` (must have length `cfg.n` and contain both
    /// `me` and `stream`).
    pub fn new(me: ReplicaId, stream: ReplicaId, replicas: Vec<ReplicaId>, cfg: CtbConfig) -> Self {
        assert_eq!(replicas.len(), cfg.n);
        assert!(replicas.contains(&me) && replicas.contains(&stream));
        assert!(cfg.tail >= 2);
        Ctb {
            me,
            stream,
            cfg,
            replicas,
            next_k: SeqId(1),
            my_broadcasts: HashMap::new(),
            sign_requested: BTreeSet::new(),
            locks: vec![None; cfg.tail],
            locked: vec![vec![None; cfg.tail]; cfg.n],
            delivered: vec![None; cfg.tail],
            payloads: HashMap::new(),
            max_seen: SeqId(0),
            slow: HashMap::new(),
        }
    }

    /// The stream's designated broadcaster.
    pub fn stream(&self) -> ReplicaId {
        self.stream
    }

    /// Adopts the stream's tail at an arbitrary sequence offset: the next
    /// id to originate (broadcaster) or interpret (receiver) becomes
    /// `next`, and everything below it is treated as already handled.
    ///
    /// This is the replacement node's transport-level catch-up (uBFT
    /// extended version, §replacement): a fresh instance that learned the
    /// stream's position — from the SWMR register bank and `f + 1` join
    /// acks — moves its cursors forward so (a) a rebooted broadcaster
    /// never reuses an id peers already interpreted, and (b) a rebooted
    /// receiver never delivers a stale retransmission from before its
    /// adoption point. `next` need not align with the ring (`next % t`
    /// can be anything): each ring slot's delivery floor becomes the
    /// nearest id below `next` that maps to it, so a mid-wraparound
    /// adoption refuses exactly the ids `< next` and nothing else.
    ///
    /// Cursors never move backwards; adopting at or below the current
    /// position is a no-op.
    pub fn adopt_tail(&mut self, next: SeqId) {
        if next > self.next_k {
            self.next_k = next;
        }
        let floor = SeqId(next.0.saturating_sub(1));
        if floor > self.max_seen {
            self.max_seen = floor;
            let prune = self.max_seen.0.saturating_sub(2 * self.cfg.tail as u64);
            self.payloads.retain(|(pk, _), _| *pk > prune);
            self.my_broadcasts.retain(|pk, _| *pk > prune);
            self.sign_requested.retain(|pk| *pk > prune);
        }
        // Per-ring-slot delivery floors: the highest id below `next` that
        // aliases each slot.
        for back in 1..=self.cfg.tail as u64 {
            let Some(id) = next.0.checked_sub(back).filter(|id| *id >= 1) else { break };
            let id = SeqId(id);
            let slot = self.slot(id);
            if self.delivered[slot].is_none_or(|d| id > d) {
                self.delivered[slot] = Some(id);
            }
        }
        // Any in-flight slow delivery below the adoption point is moot.
        let keep = next;
        self.slow.retain(|_, p| p.k >= keep);
    }

    /// The id the next [`Ctb::broadcast`] will use.
    pub fn next_seq(&self) -> SeqId {
        self.next_k
    }

    /// Highest id this replica has delivered on any slot (diagnostics).
    pub fn max_delivered(&self) -> SeqId {
        self.delivered.iter().flatten().copied().max().unwrap_or(SeqId(0))
    }

    fn index_of(&self, r: ReplicaId) -> Option<usize> {
        self.replicas.iter().position(|x| *x == r)
    }

    fn slot(&self, k: SeqId) -> usize {
        k.ring_index(self.cfg.tail)
    }

    fn cache_payload(&mut self, k: SeqId, fp: Digest, m: &[u8]) {
        if k > self.max_seen {
            self.max_seen = k;
            let floor = self.max_seen.0.saturating_sub(2 * self.cfg.tail as u64);
            self.payloads.retain(|(pk, _), _| *pk > floor);
            self.my_broadcasts.retain(|pk, _| *pk > floor);
            self.sign_requested.retain(|pk| *pk > floor);
        }
        self.payloads.entry((k.0, fp)).or_insert_with(|| m.to_vec());
    }

    /// Broadcasts `m` on this stream (Algorithm 1, lines 2–4).
    ///
    /// # Panics
    ///
    /// Panics if `me` is not the stream's broadcaster.
    pub fn broadcast(&mut self, m: Vec<u8>) -> (SeqId, Vec<CtbEffect>) {
        assert_eq!(self.me, self.stream, "only the broadcaster may broadcast");
        let k = self.next_k;
        self.next_k = self.next_k.next();
        let fp = fingerprint(&m);
        self.cache_payload(k, fp, &m);
        self.my_broadcasts.insert(k.0, m.clone());
        let mut fx = Vec::new();
        if self.cfg.fast_enabled {
            fx.push(CtbEffect::Broadcast(CtbWire::Lock { k, m }));
        }
        match self.cfg.slow {
            SlowMode::Always => {
                self.sign_requested.insert(k.0);
                fx.push(CtbEffect::Sign { k, fp });
            }
            SlowMode::OnTimeout => fx.push(CtbEffect::ArmSlowTimer { k }),
            SlowMode::Never => {}
        }
        (k, fx)
    }

    /// The runtime's fast-path timeout for `k` fired without delivery:
    /// trigger the slow path (broadcaster only).
    pub fn on_slow_timeout(&mut self, k: SeqId) -> Vec<CtbEffect> {
        if self.me != self.stream || self.sign_requested.contains(&k.0) {
            return Vec::new();
        }
        let slot = self.slot(k);
        if self.delivered[slot].is_some_and(|d| d >= k) {
            return Vec::new(); // fast path already delivered
        }
        let Some(m) = self.my_broadcasts.get(&k.0) else {
            return Vec::new(); // out of tail already
        };
        let fp = fingerprint(m);
        self.sign_requested.insert(k.0);
        vec![CtbEffect::Sign { k, fp }]
    }

    /// Forces the slow path for `k` *even if we fast-delivered it
    /// ourselves* (broadcaster only; no-op when the slow path is disabled
    /// or already requested). The broadcaster's fast delivery only proves
    /// that *it* collected every `LOCKED` echo; a receiver whose unanimity
    /// was broken by a crashed peer still waits, and if the broadcaster
    /// never signs, neither the fast nor the slow path can ever deliver to
    /// it — and the CTBcast *summary* that would repair the gap deadlocks
    /// too, because it needs the stuck receiver's own share. The runtime
    /// calls this for the unsummarized tail when a summary boundary stays
    /// uncertified suspiciously long.
    pub fn force_slow(&mut self, k: SeqId) -> Vec<CtbEffect> {
        if self.me != self.stream
            || self.cfg.slow == SlowMode::Never
            || self.sign_requested.contains(&k.0)
        {
            return Vec::new();
        }
        let Some(m) = self.my_broadcasts.get(&k.0) else {
            return Vec::new(); // out of tail already
        };
        let fp = fingerprint(m);
        self.sign_requested.insert(k.0);
        vec![CtbEffect::Sign { k, fp }]
    }

    /// The crypto pool finished signing `(stream, k, fp)`.
    pub fn on_sign_done(&mut self, k: SeqId, sig: Signature) -> Vec<CtbEffect> {
        let Some(m) = self.my_broadcasts.get(&k.0).cloned() else {
            return Vec::new();
        };
        vec![CtbEffect::Broadcast(CtbWire::Signed { k, m, sig })]
    }

    /// A TBcast frame of this stream was delivered from `from` (which the
    /// authenticated transport guarantees is the true sender).
    pub fn on_tb_deliver(&mut self, from: ReplicaId, wire: CtbWire) -> Vec<CtbEffect> {
        match wire {
            CtbWire::Lock { k, m } => self.on_lock(from, k, m),
            CtbWire::Locked { k, m } => self.on_locked(from, k, m),
            CtbWire::Signed { k, m, sig } => self.on_signed(from, k, m, sig),
        }
    }

    /// Lines 12–16.
    fn on_lock(&mut self, from: ReplicaId, k: SeqId, m: Vec<u8>) -> Vec<CtbEffect> {
        if from != self.stream {
            return Vec::new(); // only the broadcaster locks
        }
        let fp = fingerprint(&m);
        self.cache_payload(k, fp, &m);
        let slot = self.slot(k);
        let newer = self.locks[slot].is_none_or(|(k2, _)| k > k2);
        let mut fx = Vec::new();
        if newer {
            self.locks[slot] = Some((k, fp));
            if self.cfg.fast_enabled {
                fx.push(CtbEffect::Broadcast(CtbWire::Locked { k, m }));
            }
        }
        fx
    }

    /// Lines 18–23.
    fn on_locked(&mut self, from: ReplicaId, k: SeqId, m: Vec<u8>) -> Vec<CtbEffect> {
        let Some(q) = self.index_of(from) else {
            return Vec::new();
        };
        let fp = fingerprint(&m);
        self.cache_payload(k, fp, &m);
        let slot = self.slot(k);
        let newer = self.locked[q][slot].is_none_or(|(k2, _)| k > k2);
        if !newer {
            return Vec::new();
        }
        self.locked[q][slot] = Some((k, fp));
        // Line 22: unanimity across all n receivers.
        let unanimous = self.locked.iter().all(|row| row[slot] == Some((k, fp)));
        if unanimous {
            self.deliver_once(k, fp)
        } else {
            Vec::new()
        }
    }

    /// Lines 25–26: stage the signed message for async verification.
    fn on_signed(
        &mut self,
        from: ReplicaId,
        k: SeqId,
        m: Vec<u8>,
        sig: Signature,
    ) -> Vec<CtbEffect> {
        if from != self.stream {
            return Vec::new();
        }
        let fp = fingerprint(&m);
        self.cache_payload(k, fp, &m);
        let slot = self.slot(k);
        if let Some(p) = self.slow.get(&slot) {
            if p.k >= k {
                return Vec::new(); // duplicate or superseded
            }
        }
        if self.delivered[slot].is_some_and(|d| d >= k) {
            return Vec::new(); // already delivered (fast path)
        }
        self.slow.insert(
            slot,
            SlowPending {
                k,
                fp,
                sig,
                stage: SlowStage::VerifyingSig,
                outstanding: 0,
                equivocated: false,
                out_of_tail: false,
            },
        );
        vec![CtbEffect::Verify { tag: VerifyTag::Signed { k }, k, fp, sig }]
    }

    /// A verification requested by this machine completed.
    pub fn on_verify_done(&mut self, tag: VerifyTag, ok: bool) -> Vec<CtbEffect> {
        match tag {
            VerifyTag::Signed { k } => self.on_signed_verified(k, ok),
            VerifyTag::Entry { k, owner, kind } => self.on_entry_verified(k, owner, kind, ok),
        }
    }

    /// Lines 27–30 (after the line-26 signature check).
    fn on_signed_verified(&mut self, k: SeqId, ok: bool) -> Vec<CtbEffect> {
        let slot = self.slot(k);
        let Some(p) = self.slow.get_mut(&slot) else {
            return Vec::new();
        };
        if p.k != k || p.stage != SlowStage::VerifyingSig {
            return Vec::new();
        }
        if !ok {
            self.slow.remove(&slot);
            return Vec::new();
        }
        let fp = p.fp;
        let sig = p.sig;
        // Line 28: proceed iff k is newer than our lock, or equals it with
        // the same message.
        let proceed = match self.locks[slot] {
            None => true,
            Some((k2, fp2)) => k > k2 || (k == k2 && fp == fp2),
        };
        if !proceed {
            self.slow.remove(&slot);
            return Vec::new();
        }
        self.locks[slot] = Some((k, fp));
        let p = self.slow.get_mut(&slot).expect("just checked");
        p.stage = SlowStage::Writing;
        vec![CtbEffect::WriteRegister { slot, k, entry: RegEntry { k, fp, sig } }]
    }

    /// The register write for `k` completed at a quorum of memory nodes.
    pub fn on_register_written(&mut self, k: SeqId) -> Vec<CtbEffect> {
        let slot = self.slot(k);
        let Some(p) = self.slow.get_mut(&slot) else {
            return Vec::new();
        };
        if p.k != k || p.stage != SlowStage::Writing {
            return Vec::new();
        }
        p.stage = SlowStage::Reading;
        vec![CtbEffect::ReadSlot { slot, k }]
    }

    /// Lines 31–37: the quorum read of everyone's register slot returned.
    /// `entries[i]` is receiver `replicas[i]`'s register content (`None` when
    /// never written or detectably invalid).
    pub fn on_registers_read(
        &mut self,
        k: SeqId,
        entries: Vec<Option<RegEntry>>,
    ) -> Vec<CtbEffect> {
        let slot = self.slot(k);
        let Some(p) = self.slow.get_mut(&slot) else {
            return Vec::new();
        };
        if p.k != k || p.stage != SlowStage::Reading {
            return Vec::new();
        }
        let fp = p.fp;
        let sig = p.sig;
        let mut suspects: Vec<(ReplicaId, RegEntry, ConflictKind)> = Vec::new();
        for (i, entry) in entries.into_iter().enumerate() {
            let Some(e) = entry else { continue };
            let owner = self.replicas[i];
            if e.k == k && e.fp == fp && e.sig == sig {
                continue; // our own message, already verified
            }
            if e.k == k && e.fp != fp {
                suspects.push((owner, e, ConflictKind::SameId)); // line 33
            } else if e.k > k && e.k.ring_index(self.cfg.tail) == self.slot(k) {
                suspects.push((owner, e, ConflictKind::NewerId)); // line 35
            }
            // e.k < k: stale entry, ignore.
        }
        if suspects.is_empty() {
            self.slow.remove(&slot);
            return self.deliver_once(k, fp);
        }
        let p = self.slow.get_mut(&slot).expect("present");
        p.stage = SlowStage::VerifyingEntries;
        p.outstanding = suspects.len();
        // A forged entry (bad signature) must not block delivery: verify
        // each suspect before honouring it.
        suspects
            .into_iter()
            .map(|(owner, e, kind)| CtbEffect::Verify {
                tag: VerifyTag::Entry { k, owner, kind },
                k: e.k,
                fp: e.fp,
                sig: e.sig,
            })
            .collect()
    }

    fn on_entry_verified(
        &mut self,
        k: SeqId,
        _owner: ReplicaId,
        kind: ConflictKind,
        ok: bool,
    ) -> Vec<CtbEffect> {
        let slot = self.slot(k);
        let Some(p) = self.slow.get_mut(&slot) else {
            return Vec::new();
        };
        if p.k != k || p.stage != SlowStage::VerifyingEntries {
            return Vec::new();
        }
        p.outstanding -= 1;
        if ok {
            // The entry is genuinely signed by the broadcaster. A same-id
            // conflict proves equivocation (line 33: abort and report); a
            // newer id on the same ring slot only means our message fell out
            // of the tail (line 35: drop silently — an honest broadcaster
            // does this under load, so it must NOT be branded Byzantine).
            match kind {
                ConflictKind::SameId => p.equivocated = true,
                ConflictKind::NewerId => p.out_of_tail = true,
            }
        }
        if p.outstanding == 0 {
            let (equivocated, out_of_tail, fp) = (p.equivocated, p.out_of_tail, p.fp);
            self.slow.remove(&slot);
            if equivocated {
                // Deliver nothing; report proven equivocation for the
                // consensus layer's Byzantine bookkeeping.
                return vec![CtbEffect::Equivocation { k }];
            }
            if out_of_tail {
                return Vec::new(); // skip delivery; a summary fills the gap
            }
            return self.deliver_once(k, fp);
        }
        Vec::new()
    }

    /// Lines 39–42.
    fn deliver_once(&mut self, k: SeqId, fp: Digest) -> Vec<CtbEffect> {
        let slot = self.slot(k);
        if self.delivered[slot].is_some_and(|d| d >= k) {
            return Vec::new();
        }
        let Some(payload) = self.payloads.get(&(k.0, fp)).cloned() else {
            // Payload unknown (should not happen: every path caches it).
            return Vec::new();
        };
        self.delivered[slot] = Some(k);
        vec![CtbEffect::Deliver { k, payload }]
    }

    /// Approximate resident memory of this state machine in bytes
    /// (Table 2 accounting): the bookkeeping arrays are O(n·t) and the
    /// payload cache is bounded by `2t` messages.
    pub fn resident_bytes(&self) -> usize {
        let lock_entry = core::mem::size_of::<Option<(SeqId, Digest)>>();
        self.locks.len() * lock_entry
            + self.locked.len() * self.cfg.tail * lock_entry
            + self.delivered.len() * core::mem::size_of::<Option<SeqId>>()
            + self.payloads.values().map(|p| p.len() + 48).sum::<usize>()
            + self.my_broadcasts.values().map(|p| p.len() + 16).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::signed_bytes;
    use ubft_crypto::KeyRing;
    use ubft_types::ProcessId;

    const N: usize = 3;
    const T: usize = 4;

    fn rid(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    fn ring() -> KeyRing {
        KeyRing::generate(99, (0..N as u32).map(|i| ProcessId::Replica(rid(i))))
    }

    /// Pins the register-slot sizing the runtime derives from the codec:
    /// id (8) + fingerprint (32) + signature (32). If this moves, every
    /// register bank's slot size moves with it — deliberately, but the
    /// change should be a conscious one.
    #[test]
    fn reg_entry_encoded_size_is_pinned() {
        assert_eq!(RegEntry::encoded_size(), 72);
        // And it really is what an arbitrary entry encodes to.
        let e = RegEntry {
            k: SeqId(u64::MAX),
            fp: fingerprint(b"some message"),
            sig: Signature::garbage(),
        };
        assert_eq!(e.to_bytes().len(), RegEntry::encoded_size());
    }

    /// A tiny synchronous harness: perfect TBcast, synchronous crypto, and
    /// in-memory registers, driving n Ctb instances to quiescence.
    struct Harness {
        ctbs: Vec<Ctb>,
        ring: KeyRing,
        stream: ReplicaId,
        /// registers[receiver][slot]
        registers: Vec<Vec<Option<RegEntry>>>,
        delivered: Vec<Vec<(SeqId, Vec<u8>)>>,
        equivocations: Vec<Vec<SeqId>>,
    }

    impl Harness {
        fn new(cfg: CtbConfig) -> Self {
            let replicas: Vec<ReplicaId> = (0..N as u32).map(rid).collect();
            let stream = rid(0);
            let ctbs =
                replicas.iter().map(|&me| Ctb::new(me, stream, replicas.clone(), cfg)).collect();
            Harness {
                ctbs,
                ring: ring(),
                stream,
                registers: vec![vec![None; T]; N],
                delivered: vec![Vec::new(); N],
                equivocations: vec![Vec::new(); N],
            }
        }

        fn run(&mut self, start: Vec<(usize, CtbEffect)>) {
            let mut queue: std::collections::VecDeque<(usize, CtbEffect)> = start.into();
            let mut steps = 0;
            while let Some((who, fx)) = queue.pop_front() {
                steps += 1;
                assert!(steps < 100_000, "harness diverged");
                match fx {
                    CtbEffect::Broadcast(wire) => {
                        // Perfect TBcast: every replica (incl. sender)
                        // delivers from `who`.
                        for r in 0..N {
                            let out = self.ctbs[r].on_tb_deliver(rid(who as u32), wire.clone());
                            queue.extend(out.into_iter().map(|e| (r, e)));
                        }
                    }
                    CtbEffect::Sign { k, fp } => {
                        let signer = self.ring.signer(ProcessId::Replica(rid(who as u32))).unwrap();
                        let sig = signer.sign(&signed_bytes(self.stream, k, &fp));
                        let out = self.ctbs[who].on_sign_done(k, sig);
                        queue.extend(out.into_iter().map(|e| (who, e)));
                    }
                    CtbEffect::Verify { tag, k, fp, sig } => {
                        let ok = self.ring.verify(
                            ProcessId::Replica(self.stream),
                            &signed_bytes(self.stream, k, &fp),
                            &sig,
                        );
                        let out = self.ctbs[who].on_verify_done(tag, ok);
                        queue.extend(out.into_iter().map(|e| (who, e)));
                    }
                    CtbEffect::WriteRegister { slot, k, entry } => {
                        self.registers[who][slot] = Some(entry);
                        let out = self.ctbs[who].on_register_written(k);
                        queue.extend(out.into_iter().map(|e| (who, e)));
                    }
                    CtbEffect::ReadSlot { slot, k } => {
                        let entries: Vec<Option<RegEntry>> =
                            (0..N).map(|r| self.registers[r][slot].clone()).collect();
                        let out = self.ctbs[who].on_registers_read(k, entries);
                        queue.extend(out.into_iter().map(|e| (who, e)));
                    }
                    CtbEffect::Deliver { k, payload } => {
                        self.delivered[who].push((k, payload));
                    }
                    CtbEffect::Equivocation { k } => {
                        self.equivocations[who].push(k);
                    }
                    CtbEffect::ArmSlowTimer { .. } => {
                        // Timeout never fires in the synchronous harness.
                    }
                }
            }
        }

        fn broadcast(&mut self, m: &[u8]) -> SeqId {
            let (k, fx) = self.ctbs[0].broadcast(m.to_vec());
            self.run(fx.into_iter().map(|e| (0usize, e)).collect());
            k
        }
    }

    fn cfg_fast() -> CtbConfig {
        CtbConfig { n: N, tail: T, fast_enabled: true, slow: SlowMode::Never }
    }

    fn cfg_slow() -> CtbConfig {
        CtbConfig { n: N, tail: T, fast_enabled: false, slow: SlowMode::Always }
    }

    #[test]
    fn fast_path_delivers_to_all() {
        let mut h = Harness::new(cfg_fast());
        let k = h.broadcast(b"hello");
        for r in 0..N {
            assert_eq!(h.delivered[r], vec![(k, b"hello".to_vec())], "replica {r}");
        }
    }

    #[test]
    fn slow_path_delivers_to_all() {
        let mut h = Harness::new(cfg_slow());
        let k = h.broadcast(b"slowly");
        for r in 0..N {
            assert_eq!(h.delivered[r], vec![(k, b"slowly".to_vec())], "replica {r}");
        }
    }

    #[test]
    fn both_paths_deliver_exactly_once() {
        let cfg = CtbConfig { n: N, tail: T, fast_enabled: true, slow: SlowMode::Always };
        let mut h = Harness::new(cfg);
        let k = h.broadcast(b"once");
        for r in 0..N {
            assert_eq!(h.delivered[r], vec![(k, b"once".to_vec())], "replica {r}");
        }
    }

    #[test]
    fn sequential_broadcasts_all_delivered_in_tail() {
        let mut h = Harness::new(cfg_fast());
        for i in 0..10u8 {
            h.broadcast(&[i]);
        }
        for r in 0..N {
            assert_eq!(h.delivered[r].len(), 10);
            let ks: Vec<u64> = h.delivered[r].iter().map(|(k, _)| k.0).collect();
            assert_eq!(ks, (1..=10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fast_equivocation_never_delivers_conflicting() {
        // Byzantine broadcaster: LOCK m1 to r1, LOCK m2 to r2 under k=1.
        let mut h = Harness::new(cfg_fast());
        let k = SeqId(1);
        let mut queue = Vec::new();
        let out1 = h.ctbs[1].on_tb_deliver(rid(0), CtbWire::Lock { k, m: b"m1".to_vec() });
        queue.extend(out1.into_iter().map(|e| (1usize, e)));
        let out2 = h.ctbs[2].on_tb_deliver(rid(0), CtbWire::Lock { k, m: b"m2".to_vec() });
        queue.extend(out2.into_iter().map(|e| (2usize, e)));
        h.run(queue);
        // Unanimity is impossible: nobody delivers anything.
        for r in 0..N {
            assert!(h.delivered[r].is_empty(), "replica {r} delivered during equivocation");
        }
    }

    #[test]
    fn slow_equivocation_preserves_agreement() {
        // Byzantine broadcaster signs two different messages for k=1 and
        // sends one to each receiver. Registers must prevent conflicting
        // deliveries.
        let h_ring = ring();
        let signer = h_ring.signer(ProcessId::Replica(rid(0))).unwrap();
        let mut h = Harness::new(cfg_slow());
        let k = SeqId(1);
        let m1 = b"m1".to_vec();
        let m2 = b"m2".to_vec();
        let s1 = signer.sign(&signed_bytes(rid(0), k, &fingerprint(&m1)));
        let s2 = signer.sign(&signed_bytes(rid(0), k, &fingerprint(&m2)));
        // r1 processes m1 fully first, then r2 receives m2.
        let out = h.ctbs[1].on_tb_deliver(rid(0), CtbWire::Signed { k, m: m1.clone(), sig: s1 });
        h.run(out.into_iter().map(|e| (1usize, e)).collect());
        assert_eq!(h.delivered[1], vec![(k, m1.clone())]);
        let out = h.ctbs[2].on_tb_deliver(rid(0), CtbWire::Signed { k, m: m2, sig: s2 });
        h.run(out.into_iter().map(|e| (2usize, e)).collect());
        // r2 found r1's conflicting valid entry: no delivery, equivocation
        // reported. Agreement holds.
        assert!(h.delivered[2].is_empty());
        assert_eq!(h.equivocations[2], vec![k]);
    }

    #[test]
    fn forged_register_entry_does_not_block_delivery() {
        // A Byzantine *receiver* (r2) plants a garbage entry in its own
        // register for slot k%t. r1's slow delivery must verify it, find the
        // signature invalid, and still deliver.
        let h_ring = ring();
        let signer = h_ring.signer(ProcessId::Replica(rid(0))).unwrap();
        let mut h = Harness::new(cfg_slow());
        let k = SeqId(1);
        let m = b"legit".to_vec();
        let fp = fingerprint(&m);
        let sig = signer.sign(&signed_bytes(rid(0), k, &fp));
        // r2 plants a forged conflicting entry.
        h.registers[2][k.ring_index(T)] =
            Some(RegEntry { k, fp: fingerprint(b"fake"), sig: Signature::garbage() });
        let out = h.ctbs[1].on_tb_deliver(rid(0), CtbWire::Signed { k, m: m.clone(), sig });
        h.run(out.into_iter().map(|e| (1usize, e)).collect());
        assert_eq!(h.delivered[1], vec![(k, m)]);
        assert!(h.equivocations[1].is_empty());
    }

    #[test]
    fn out_of_tail_signed_message_dropped() {
        // r1 holds back processing of k=1 while the broadcaster moves on to
        // k = 1 + T (same ring slot). When r1 finally reads the registers it
        // finds the newer entry and must drop k=1.
        let h_ring = ring();
        let signer = h_ring.signer(ProcessId::Replica(rid(0))).unwrap();
        let mut h = Harness::new(cfg_slow());
        let old_k = SeqId(1);
        let new_k = SeqId(1 + T as u64);
        let m_old = b"old".to_vec();
        let m_new = b"new".to_vec();
        let fp_new = fingerprint(&m_new);
        let sig_new = signer.sign(&signed_bytes(rid(0), new_k, &fp_new));
        // r2 already processed new_k: its register holds the newer entry.
        h.registers[2][new_k.ring_index(T)] = Some(RegEntry { k: new_k, fp: fp_new, sig: sig_new });
        let sig_old = signer.sign(&signed_bytes(rid(0), old_k, &fingerprint(&m_old)));
        let out =
            h.ctbs[1].on_tb_deliver(rid(0), CtbWire::Signed { k: old_k, m: m_old, sig: sig_old });
        h.run(out.into_iter().map(|e| (1usize, e)).collect());
        assert!(h.delivered[1].is_empty(), "out-of-tail message must not deliver");
    }

    #[test]
    fn invalid_signature_rejected() {
        let mut h = Harness::new(cfg_slow());
        let out = h.ctbs[1].on_tb_deliver(
            rid(0),
            CtbWire::Signed { k: SeqId(1), m: b"bad".to_vec(), sig: Signature::garbage() },
        );
        h.run(out.into_iter().map(|e| (1usize, e)).collect());
        assert!(h.delivered[1].is_empty());
    }

    #[test]
    fn lock_from_non_broadcaster_ignored() {
        let mut h = Harness::new(cfg_fast());
        let out =
            h.ctbs[1].on_tb_deliver(rid(2), CtbWire::Lock { k: SeqId(1), m: b"fake".to_vec() });
        assert!(out.is_empty());
    }

    #[test]
    fn memory_stays_bounded_over_many_broadcasts() {
        let mut h = Harness::new(cfg_fast());
        let mut peak = 0usize;
        for i in 0..200u32 {
            h.broadcast(&i.to_le_bytes());
            peak = peak.max(h.ctbs[1].resident_bytes());
        }
        // The cache holds at most 2t payloads plus O(n·t) bookkeeping; with
        // t=4 and 4-byte payloads this is well under 4 KiB.
        assert!(peak < 4096, "resident bytes grew to {peak}");
        for r in 0..N {
            assert_eq!(h.delivered[r].len(), 200);
        }
    }

    #[test]
    fn fast_lock_forces_slow_path_value() {
        // r1 locked (k, m1) via the fast path; a signed (k, m2) must not
        // pass the line-28 check.
        let h_ring = ring();
        let signer = h_ring.signer(ProcessId::Replica(rid(0))).unwrap();
        let cfg = CtbConfig { n: N, tail: T, fast_enabled: true, slow: SlowMode::Never };
        let mut h = Harness::new(cfg);
        let k = SeqId(1);
        let out = h.ctbs[1].on_tb_deliver(rid(0), CtbWire::Lock { k, m: b"m1".to_vec() });
        // Swallow the LOCKED broadcast: we only care about the lock.
        drop(out);
        let m2 = b"m2".to_vec();
        let sig = signer.sign(&signed_bytes(rid(0), k, &fingerprint(&m2)));
        let out = h.ctbs[1].on_tb_deliver(rid(0), CtbWire::Signed { k, m: m2, sig });
        h.run(out.into_iter().map(|e| (1usize, e)).collect());
        assert!(h.delivered[1].is_empty(), "conflicting slow value must be refused");
    }

    #[test]
    fn adopt_tail_mid_wraparound_refuses_stale_and_accepts_fresh() {
        // T = 4, adoption at k = 7: mid-ring (7 % 4 = 3), so the floors
        // straddle a wraparound — slots hold floors 6, 5, 4, 3.
        let mut h = Harness::new(cfg_fast());
        for r in 0..N {
            h.ctbs[r].adopt_tail(SeqId(7));
        }
        assert_eq!(h.ctbs[0].next_seq(), SeqId(7));
        // A stale retransmission from before the adoption point (k = 5)
        // must never deliver, even with full unanimity.
        let mut queue = Vec::new();
        for r in 0..N {
            let out = h.ctbs[r]
                .on_tb_deliver(rid(0), CtbWire::Lock { k: SeqId(5), m: b"stale".to_vec() });
            queue.extend(out.into_iter().map(|e| (r, e)));
        }
        h.run(queue);
        for r in 0..N {
            assert!(h.delivered[r].is_empty(), "replica {r} delivered a pre-adoption id");
        }
        // The adopted broadcaster's next id flows end to end.
        let k = h.broadcast(b"fresh");
        assert_eq!(k, SeqId(7));
        for r in 0..N {
            assert_eq!(h.delivered[r], vec![(SeqId(7), b"fresh".to_vec())], "replica {r}");
        }
    }

    #[test]
    fn adopt_tail_never_moves_backwards() {
        let mut h = Harness::new(cfg_fast());
        for _ in 0..6 {
            h.broadcast(b"x");
        }
        assert_eq!(h.ctbs[0].next_seq(), SeqId(7));
        h.ctbs[0].adopt_tail(SeqId(3)); // stale adoption: no-op
        assert_eq!(h.ctbs[0].next_seq(), SeqId(7));
        let k = h.broadcast(b"y");
        assert_eq!(k, SeqId(7));
    }

    #[test]
    fn adopt_tail_on_slow_path_refuses_pre_adoption_signed() {
        // A joiner that adopted at k = 6 receives a valid *signed* message
        // for k = 5 (a pre-crash retransmission): the whole slow path runs
        // — verify, write, read — but delivery is refused at the floor.
        let h_ring = ring();
        let signer = h_ring.signer(ProcessId::Replica(rid(0))).unwrap();
        let mut h = Harness::new(cfg_slow());
        h.ctbs[1].adopt_tail(SeqId(6));
        let k = SeqId(5);
        let m = b"pre-crash".to_vec();
        let sig = signer.sign(&signed_bytes(rid(0), k, &fingerprint(&m)));
        let out = h.ctbs[1].on_tb_deliver(rid(0), CtbWire::Signed { k, m, sig });
        h.run(out.into_iter().map(|e| (1usize, e)).collect());
        assert!(h.delivered[1].is_empty(), "pre-adoption signed message must not deliver");
        // A post-adoption id on the same ring slot (5 % 4 == 1 == 9 % 4)
        // still delivers.
        let k2 = SeqId(9);
        let m2 = b"post-join".to_vec();
        let sig2 = signer.sign(&signed_bytes(rid(0), k2, &fingerprint(&m2)));
        let out =
            h.ctbs[1].on_tb_deliver(rid(0), CtbWire::Signed { k: k2, m: m2.clone(), sig: sig2 });
        h.run(out.into_iter().map(|e| (1usize, e)).collect());
        assert_eq!(h.delivered[1], vec![(k2, m2)]);
    }

    #[test]
    fn next_seq_and_accessors() {
        let h = Harness::new(cfg_fast());
        assert_eq!(h.ctbs[0].next_seq(), SeqId(1));
        assert_eq!(h.ctbs[0].stream(), rid(0));
        assert_eq!(h.ctbs[0].max_delivered(), SeqId(0));
    }

    #[test]
    #[should_panic(expected = "only the broadcaster")]
    fn non_broadcaster_cannot_broadcast() {
        let mut h = Harness::new(cfg_fast());
        let _ = h.ctbs[1].broadcast(b"nope".to_vec());
    }
}
