//! Wire formats for TBcast and CTBcast messages.

use ubft_crypto::{sha256, Digest, Signature};
use ubft_types::wire::{Wire, WireReader};
use ubft_types::{CodecError, ReplicaId, SeqId};

/// A Tail Broadcast frame: broadcast sequence number plus opaque payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TbWire {
    /// The broadcaster's sequence number for this message.
    pub k: SeqId,
    /// Opaque payload (an encoded [`CtbWire`] or a consensus message).
    pub payload: Vec<u8>,
}

impl Wire for TbWire {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.k.encode(buf);
        self.payload.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(TbWire { k: SeqId::decode(r)?, payload: Vec::<u8>::decode(r)? })
    }
}

/// An acknowledgement for TBcast retransmission control (piggybacked or
/// periodic): "I have delivered everything I will up to `upto`".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TbAck {
    /// Highest delivered sequence number.
    pub upto: SeqId,
}

impl Wire for TbAck {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.upto.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(TbAck { upto: SeqId::decode(r)? })
    }
}

/// Everything a TBcast lane carries: data frames one way, acks the other.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TbFrame {
    /// A broadcast (or retransmitted) message.
    Data(TbWire),
    /// A cumulative acknowledgement.
    Ack(TbAck),
}

impl Wire for TbFrame {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            TbFrame::Data(w) => {
                0u8.encode(buf);
                w.encode(buf);
            }
            TbFrame::Ack(a) => {
                1u8.encode(buf);
                a.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(TbFrame::Data(TbWire::decode(r)?)),
            1 => Ok(TbFrame::Ack(TbAck::decode(r)?)),
            tag => Err(CodecError::BadTag { ty: "TbFrame", tag }),
        }
    }
}

/// CTBcast protocol messages (Algorithm 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtbWire {
    /// Fast path round 1: the broadcaster proposes `(k, m)`.
    Lock {
        /// Broadcast identifier.
        k: SeqId,
        /// Message payload.
        m: Vec<u8>,
    },
    /// Fast path round 2: a receiver commits to `(k, m)`.
    Locked {
        /// Broadcast identifier.
        k: SeqId,
        /// Message payload (echoed so any receiver can deliver it).
        m: Vec<u8>,
    },
    /// Slow path: the broadcaster's signed message.
    Signed {
        /// Broadcast identifier.
        k: SeqId,
        /// Message payload.
        m: Vec<u8>,
        /// Signature over `(stream, k, fingerprint(m))`.
        sig: Signature,
    },
}

impl Wire for CtbWire {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CtbWire::Lock { k, m } => {
                0u8.encode(buf);
                k.encode(buf);
                m.encode(buf);
            }
            CtbWire::Locked { k, m } => {
                1u8.encode(buf);
                k.encode(buf);
                m.encode(buf);
            }
            CtbWire::Signed { k, m, sig } => {
                2u8.encode(buf);
                k.encode(buf);
                m.encode(buf);
                sig.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(CtbWire::Lock { k: SeqId::decode(r)?, m: Vec::<u8>::decode(r)? }),
            1 => Ok(CtbWire::Locked { k: SeqId::decode(r)?, m: Vec::<u8>::decode(r)? }),
            2 => Ok(CtbWire::Signed {
                k: SeqId::decode(r)?,
                m: Vec::<u8>::decode(r)?,
                sig: Signature::decode(r)?,
            }),
            tag => Err(CodecError::BadTag { ty: "CtbWire", tag }),
        }
    }
}

/// The fingerprint of a CTBcast message body (what gets signed and what the
/// SWMR registers store, §7.6).
pub fn fingerprint(m: &[u8]) -> Digest {
    sha256(m)
}

/// The exact bytes a broadcaster signs for `(stream, k, fp)`; domain-separated
/// so signatures cannot be replayed across streams or layers.
pub fn signed_bytes(stream: ReplicaId, k: SeqId, fp: &Digest) -> Vec<u8> {
    let mut buf = b"ubft-ctb-signed\0".to_vec();
    stream.encode(&mut buf);
    k.encode(&mut buf);
    fp.encode(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubft_types::wire::roundtrip;

    #[test]
    fn wires_roundtrip() {
        roundtrip(&TbWire { k: SeqId(9), payload: vec![1, 2, 3] });
        roundtrip(&TbAck { upto: SeqId(4) });
        roundtrip(&TbFrame::Data(TbWire { k: SeqId(9), payload: vec![1, 2, 3] }));
        roundtrip(&TbFrame::Ack(TbAck { upto: SeqId(4) }));
        roundtrip(&CtbWire::Lock { k: SeqId(1), m: b"m".to_vec() });
        roundtrip(&CtbWire::Locked { k: SeqId(2), m: b"m".to_vec() });
        roundtrip(&CtbWire::Signed { k: SeqId(3), m: b"m".to_vec(), sig: Signature::garbage() });
    }

    #[test]
    fn batch_sized_payloads_roundtrip() {
        // CTBcast payloads are opaque, so a 64-request batch of 2 KiB
        // requests (the largest proposal the batched engine emits at the
        // paper-default request size) must frame and roundtrip unchanged.
        let batch_bytes: Vec<u8> = (0..64 * 2048u32).map(|i| (i * 31 % 251) as u8).collect();
        roundtrip(&CtbWire::Lock { k: SeqId(7), m: batch_bytes.clone() });
        roundtrip(&TbFrame::Data(TbWire { k: SeqId(7), payload: batch_bytes.clone() }));
        assert_eq!(fingerprint(&batch_bytes), fingerprint(&batch_bytes));
    }

    #[test]
    fn signed_bytes_domain_separated() {
        let fp = fingerprint(b"m");
        let a = signed_bytes(ReplicaId(0), SeqId(1), &fp);
        let b = signed_bytes(ReplicaId(1), SeqId(1), &fp);
        let c = signed_bytes(ReplicaId(0), SeqId(2), &fp);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        assert_eq!(fingerprint(b"x"), fingerprint(b"x"));
        assert_ne!(fingerprint(b"x"), fingerprint(b"y"));
    }
}
