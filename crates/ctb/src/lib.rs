//! Consistent Tail Broadcast (CTBcast) — the paper's core abstraction (§4).
//!
//! CTBcast prevents a Byzantine broadcaster from *equivocating* (sending
//! different messages under the same identifier to different processes)
//! while using only finite memory: correct processes are guaranteed to
//! deliver only the last `t` messages of a correct broadcaster
//! (*tail-validity*), but **agreement holds for all messages** — two correct
//! processes never deliver different messages for the same identifier.
//!
//! The implementation ([`ctbcast::Ctb`], Algorithm 1) is a pure state
//! machine with two paths:
//!
//! * **fast path** — `LOCK`/`LOCKED` rounds of [Tail Broadcast](tbcast):
//!   no signatures, no disaggregated memory; delivers when all `n` receivers
//!   lock the same message;
//! * **slow path** — a `SIGNED` message plus one write and one read-all of
//!   the receiver's SWMR register slot; the first correct writer's value
//!   forces every later reader, preserving agreement under `f` Byzantine
//!   receivers.
//!
//! Both paths interlock through the `locks` array so whichever commits first
//! binds the other. This crate is sans-IO: state machines consume inputs and
//! emit [`CtbEffect`]s/[`TbEffect`]s that the runtime maps onto the RDMA
//! transport, the register layer, and the crypto pool.

pub mod ctbcast;
pub mod tbcast;
pub mod wire;

pub use ctbcast::{Ctb, CtbConfig, CtbEffect, RegEntry, SlowMode, VerifyTag};
pub use tbcast::{TailBroadcaster, TailReceiver, TbEffect};
pub use wire::{CtbWire, TbWire};
