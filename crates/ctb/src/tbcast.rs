//! Tail Broadcast (TBcast): best-effort broadcast with finite memory (§4.2).
//!
//! TBcast has all CTBcast properties *except agreement*: tail-validity for
//! the last `2t` messages, integrity, and no duplication. The broadcaster
//! buffers its last `2t` messages and retransmits them until acknowledged;
//! when the buffer is full, broadcasting a new message simply evicts the
//! oldest — which is what keeps memory bounded and is why only the tail is
//! guaranteed.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ubft_types::{ReplicaId, SeqId};

use crate::wire::TbWire;

/// Effects emitted by the TBcast state machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TbEffect {
    /// Transmit a frame to one peer (the runtime maps this onto the
    /// circular-buffer channel for this stream).
    SendTo {
        /// Destination replica.
        to: ReplicaId,
        /// The frame.
        wire: TbWire,
    },
    /// Send an acknowledgement to the broadcaster.
    SendAck {
        /// Destination (the broadcaster).
        to: ReplicaId,
        /// Highest delivered sequence number.
        upto: SeqId,
    },
    /// Deliver a payload locally.
    Deliver {
        /// The original broadcaster of the stream.
        from: ReplicaId,
        /// Broadcast sequence number.
        k: SeqId,
        /// The payload.
        payload: Vec<u8>,
    },
}

/// The broadcasting side of one TBcast stream.
#[derive(Clone, Debug)]
pub struct TailBroadcaster {
    me: ReplicaId,
    peers: Vec<ReplicaId>,
    capacity: usize,
    next: SeqId,
    /// Last `2t` messages in sequence order: `(k, payload, last_sent_gen)`.
    buffer: VecDeque<(SeqId, Vec<u8>, u64)>,
    /// Highest ack received per peer.
    acked: BTreeMap<ReplicaId, SeqId>,
    /// Retransmission generation: bumped by [`Self::retransmit_stale`].
    gen: u64,
}

impl TailBroadcaster {
    /// Creates a broadcaster for `me` with the given receivers and a buffer
    /// of `capacity` (`2t` in Algorithm 1).
    pub fn new(me: ReplicaId, peers: Vec<ReplicaId>, capacity: usize) -> Self {
        assert!(capacity >= 1);
        let acked = peers.iter().map(|p| (*p, SeqId(0))).collect();
        TailBroadcaster {
            me,
            peers,
            capacity,
            next: SeqId(1),
            buffer: VecDeque::new(),
            acked,
            gen: 0,
        }
    }

    /// The sequence number the next broadcast will use.
    pub fn next_seq(&self) -> SeqId {
        self.next
    }

    /// Broadcasts `payload`: buffers it (evicting the oldest if full), sends
    /// to every peer, and self-delivers.
    pub fn broadcast(&mut self, payload: Vec<u8>) -> (SeqId, Vec<TbEffect>) {
        let k = self.next;
        self.next = self.next.next();
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
        }
        self.buffer.push_back((k, payload.clone(), self.gen));
        let mut effects = Vec::with_capacity(self.peers.len() + 1);
        for &p in &self.peers {
            effects.push(TbEffect::SendTo { to: p, wire: TbWire { k, payload: payload.clone() } });
        }
        effects.push(TbEffect::Deliver { from: self.me, k, payload });
        (k, effects)
    }

    /// Records an acknowledgement from `peer`.
    pub fn on_ack(&mut self, peer: ReplicaId, upto: SeqId) {
        if let Some(a) = self.acked.get_mut(&peer) {
            if upto > *a {
                *a = upto;
            }
        }
    }

    /// Retransmits every buffered message a peer has not acknowledged.
    /// A no-op when all peers are caught up.
    pub fn retransmit(&mut self) -> Vec<TbEffect> {
        let mut effects = Vec::new();
        for &p in &self.peers {
            let acked = self.acked.get(&p).copied().unwrap_or(SeqId(0));
            for (k, payload, _) in &self.buffer {
                if *k > acked {
                    effects.push(TbEffect::SendTo {
                        to: p,
                        wire: TbWire { k: *k, payload: payload.clone() },
                    });
                }
            }
        }
        effects
    }

    /// Retransmits unacknowledged messages that have not been (re)sent for a
    /// full retransmission period. Driven by a periodic runtime timer: a
    /// message is resent only after surviving one complete period without an
    /// acknowledgement, so the common case (prompt delivery, ack in flight)
    /// causes no duplicate traffic.
    pub fn retransmit_stale(&mut self) -> Vec<TbEffect> {
        self.gen += 1;
        let min_unacked = self.acked.values().copied().min().unwrap_or(SeqId(0));
        let mut effects = Vec::new();
        for (k, payload, last_gen) in &mut self.buffer {
            if *k <= min_unacked || *last_gen + 1 >= self.gen {
                continue;
            }
            *last_gen = self.gen;
            for &p in &self.peers {
                let acked = self.acked.get(&p).copied().unwrap_or(SeqId(0));
                if *k > acked {
                    effects.push(TbEffect::SendTo {
                        to: p,
                        wire: TbWire { k: *k, payload: payload.clone() },
                    });
                }
            }
        }
        effects
    }

    /// Number of buffered (retained) messages.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Bytes retained in the retransmission buffer (memory accounting).
    pub fn buffered_bytes(&self) -> usize {
        self.buffer.iter().map(|(_, p, _)| p.len()).sum()
    }
}

/// The receiving side of one TBcast stream (one per remote broadcaster).
#[derive(Clone, Debug)]
pub struct TailReceiver {
    broadcaster: ReplicaId,
    window: usize,
    /// Highest delivered sequence number.
    hi: SeqId,
    /// Recently delivered ids (for no-duplication under retransmission);
    /// pruned below `hi - window`.
    seen: BTreeSet<SeqId>,
    ack_every: u64,
    delivered_since_ack: u64,
}

impl TailReceiver {
    /// Creates a receiver for `broadcaster`'s stream with a dedup window of
    /// `window` (`2t`).
    pub fn new(broadcaster: ReplicaId, window: usize) -> Self {
        TailReceiver {
            broadcaster,
            window,
            hi: SeqId(0),
            seen: BTreeSet::new(),
            ack_every: 16,
            delivered_since_ack: 0,
        }
    }

    /// Sets how many deliveries happen between acknowledgements.
    #[must_use]
    pub fn with_ack_every(mut self, n: u64) -> Self {
        self.ack_every = n.max(1);
        self
    }

    /// Handles an incoming frame, delivering it exactly once if it is still
    /// within the tail window.
    ///
    /// A duplicate (or out-of-tail) frame is answered with an immediate
    /// cumulative ack: receiving one means the broadcaster believes this
    /// receiver is behind, and the ack is what stops the retransmission.
    pub fn on_wire(&mut self, wire: TbWire) -> Vec<TbEffect> {
        let mut effects = Vec::new();
        let k = wire.k;
        // Out of tail: ids at or below hi - window can never be delivered
        // (no-duplication bookkeeping for them is gone).
        let floor = SeqId(self.hi.0.saturating_sub(self.window as u64));
        if k <= floor || self.seen.contains(&k) {
            self.delivered_since_ack = 0;
            effects.push(TbEffect::SendAck { to: self.broadcaster, upto: self.hi });
            return effects;
        }
        self.seen.insert(k);
        if k > self.hi {
            self.hi = k;
        }
        // Prune dedup state outside the window.
        let new_floor = self.hi.0.saturating_sub(self.window as u64);
        self.seen = self.seen.split_off(&SeqId(new_floor + 1));
        effects.push(TbEffect::Deliver { from: self.broadcaster, k, payload: wire.payload });
        self.delivered_since_ack += 1;
        if self.delivered_since_ack >= self.ack_every {
            self.delivered_since_ack = 0;
            effects.push(TbEffect::SendAck { to: self.broadcaster, upto: self.hi });
        }
        effects
    }

    /// Produces an explicit ack (periodic timer; keeps the broadcaster's
    /// retransmission quiet when traffic is idle).
    pub fn ack_now(&mut self) -> TbEffect {
        self.delivered_since_ack = 0;
        TbEffect::SendAck { to: self.broadcaster, upto: self.hi }
    }

    /// Highest sequence number delivered so far.
    pub fn high_watermark(&self) -> SeqId {
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(i: u8) -> Vec<u8> {
        vec![i]
    }

    #[test]
    fn broadcast_sends_to_all_and_self_delivers() {
        let mut b = TailBroadcaster::new(ReplicaId(0), vec![ReplicaId(1), ReplicaId(2)], 8);
        let (k, fx) = b.broadcast(payload(7));
        assert_eq!(k, SeqId(1));
        let sends = fx.iter().filter(|e| matches!(e, TbEffect::SendTo { .. })).count();
        assert_eq!(sends, 2);
        assert!(fx
            .iter()
            .any(|e| matches!(e, TbEffect::Deliver { from: ReplicaId(0), k: SeqId(1), .. })));
    }

    #[test]
    fn buffer_evicts_oldest_beyond_capacity() {
        let mut b = TailBroadcaster::new(ReplicaId(0), vec![ReplicaId(1)], 3);
        for i in 0..5 {
            b.broadcast(payload(i));
        }
        assert_eq!(b.buffered(), 3);
        // Retransmit covers only the last 3 (k=3,4,5).
        let fx = b.retransmit();
        let ks: Vec<u64> = fx
            .iter()
            .filter_map(|e| match e {
                TbEffect::SendTo { wire, .. } => Some(wire.k.0),
                _ => None,
            })
            .collect();
        assert_eq!(ks, vec![3, 4, 5]);
    }

    #[test]
    fn acks_suppress_retransmission() {
        let mut b = TailBroadcaster::new(ReplicaId(0), vec![ReplicaId(1), ReplicaId(2)], 8);
        for i in 0..4 {
            b.broadcast(payload(i));
        }
        b.on_ack(ReplicaId(1), SeqId(4));
        b.on_ack(ReplicaId(2), SeqId(2));
        let fx = b.retransmit();
        // Only peer 2's missing k=3,4 are resent.
        assert_eq!(fx.len(), 2);
        for e in fx {
            match e {
                TbEffect::SendTo { to, wire } => {
                    assert_eq!(to, ReplicaId(2));
                    assert!(wire.k >= SeqId(3));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn stale_acks_ignored() {
        let mut b = TailBroadcaster::new(ReplicaId(0), vec![ReplicaId(1)], 8);
        b.broadcast(payload(0));
        b.on_ack(ReplicaId(1), SeqId(1));
        b.on_ack(ReplicaId(1), SeqId(0)); // stale
        assert!(b.retransmit().is_empty());
    }

    #[test]
    fn receiver_delivers_once_and_acks_duplicates() {
        let mut r = TailReceiver::new(ReplicaId(0), 8);
        let w = TbWire { k: SeqId(1), payload: payload(1) };
        let fx1 = r.on_wire(w.clone());
        assert_eq!(fx1.iter().filter(|e| matches!(e, TbEffect::Deliver { .. })).count(), 1);
        let fx2 = r.on_wire(w);
        assert!(
            fx2.iter().all(|e| matches!(e, TbEffect::SendAck { .. })),
            "duplicate must not deliver"
        );
        // The duplicate-triggered ack is what silences retransmission.
        assert_eq!(fx2, vec![TbEffect::SendAck { to: ReplicaId(0), upto: SeqId(1) }]);
    }

    #[test]
    fn receiver_tolerates_reordering() {
        let mut r = TailReceiver::new(ReplicaId(0), 8);
        for k in [2u64, 1, 3] {
            let fx = r.on_wire(TbWire { k: SeqId(k), payload: payload(k as u8) });
            assert_eq!(fx.iter().filter(|e| matches!(e, TbEffect::Deliver { .. })).count(), 1);
        }
        assert_eq!(r.high_watermark(), SeqId(3));
    }

    #[test]
    fn receiver_drops_out_of_tail() {
        let mut r = TailReceiver::new(ReplicaId(0), 4);
        assert!(!r.on_wire(TbWire { k: SeqId(100), payload: payload(0) }).is_empty());
        // k=96 is exactly hi - window: too old — acked away, never delivered.
        let fx = r.on_wire(TbWire { k: SeqId(96), payload: payload(0) });
        assert!(fx.iter().all(|e| matches!(e, TbEffect::SendAck { .. })));
        // k=97 is within the window.
        let fx = r.on_wire(TbWire { k: SeqId(97), payload: payload(0) });
        assert!(fx.iter().any(|e| matches!(e, TbEffect::Deliver { .. })));
    }

    #[test]
    fn stale_retransmission_waits_one_full_period() {
        let mut b = TailBroadcaster::new(ReplicaId(0), vec![ReplicaId(1)], 8);
        b.broadcast(payload(0));
        // First tick after the broadcast: the message may have been sent
        // moments ago — no duplicate traffic yet.
        assert!(b.retransmit_stale().is_empty());
        // Second tick: a full period elapsed without an ack — resend.
        let fx = b.retransmit_stale();
        assert_eq!(
            fx,
            vec![TbEffect::SendTo {
                to: ReplicaId(1),
                wire: TbWire { k: SeqId(1), payload: payload(0) }
            }]
        );
        // Third tick: it was just resent — quiet again.
        assert!(b.retransmit_stale().is_empty());
        // Fourth: still unacked, resend again.
        assert_eq!(b.retransmit_stale().len(), 1);
    }

    #[test]
    fn stale_retransmission_stops_after_ack() {
        let mut b = TailBroadcaster::new(ReplicaId(0), vec![ReplicaId(1), ReplicaId(2)], 8);
        b.broadcast(payload(0));
        b.broadcast(payload(1));
        b.retransmit_stale();
        // Peer 1 acks everything; peer 2 acks only k=1.
        b.on_ack(ReplicaId(1), SeqId(2));
        b.on_ack(ReplicaId(2), SeqId(1));
        let fx = b.retransmit_stale();
        // Only k=2 to peer 2 is still outstanding.
        assert_eq!(
            fx,
            vec![TbEffect::SendTo {
                to: ReplicaId(2),
                wire: TbWire { k: SeqId(2), payload: payload(1) }
            }]
        );
        b.on_ack(ReplicaId(2), SeqId(2));
        assert!(b.retransmit_stale().is_empty());
        assert!(b.retransmit_stale().is_empty());
    }

    #[test]
    fn acks_emitted_periodically() {
        let mut r = TailReceiver::new(ReplicaId(0), 64).with_ack_every(3);
        let mut acks = 0;
        for k in 1..=9u64 {
            let fx = r.on_wire(TbWire { k: SeqId(k), payload: payload(0) });
            acks += fx.iter().filter(|e| matches!(e, TbEffect::SendAck { .. })).count();
        }
        assert_eq!(acks, 3);
        match r.ack_now() {
            TbEffect::SendAck { to, upto } => {
                assert_eq!(to, ReplicaId(0));
                assert_eq!(upto, SeqId(9));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn buffered_bytes_accounting() {
        let mut b = TailBroadcaster::new(ReplicaId(0), vec![ReplicaId(1)], 4);
        b.broadcast(vec![0u8; 100]);
        b.broadcast(vec![0u8; 50]);
        assert_eq!(b.buffered_bytes(), 150);
    }
}
