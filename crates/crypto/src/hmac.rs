//! HMAC-SHA-256 (RFC 2104), used for signatures-in-simulation and for the
//! MinBFT USIG's authenticated counters.

use crate::sha256::{Digest, Sha256};

const BLOCK: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Computes `HMAC-SHA-256(key, msg)`.
///
/// # Example
///
/// ```
/// use ubft_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag.as_bytes().len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    // Keys longer than the block size are hashed first.
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let kd = crate::sha256::sha256(key);
        key_block[..32].copy_from_slice(kd.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ IPAD).collect();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ OPAD).collect();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Constant-shape comparison of two digests.
///
/// In a real deployment this would be constant-time; in the simulation it
/// only needs to be correct, but we still avoid early exit for fidelity.
pub fn digest_eq(a: &Digest, b: &Digest) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.as_bytes().iter().zip(b.as_bytes()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4231_case_1() {
        // Key = 0x0b * 20, Data = "Hi There"
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        // Key = "Jefe", Data = "what do ya want for nothing?"
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        // Key = 0xaa * 20, Data = 0xdd * 50
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Case 6: 131-byte key gets hashed down first.
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn digest_eq_works() {
        let a = hmac_sha256(b"k", b"m");
        let b = hmac_sha256(b"k", b"m");
        let c = hmac_sha256(b"k", b"n");
        assert!(digest_eq(&a, &b));
        assert!(!digest_eq(&a, &c));
    }
}
