//! A fast 64-bit non-cryptographic checksum in the spirit of xxHash64.
//!
//! The paper uses xxHash to detect torn RDMA reads (§6.1) and corrupt
//! circular-buffer slots (§6.2). We implement an xxHash64-*style* mixer —
//! same structure and avalanche finalizer — without claiming bit
//! compatibility with the reference implementation. What the protocols need
//! is: deterministic, fast, and overwhelmingly likely to catch torn 8-byte
//! interleavings; the tests exercise exactly that.

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2)).rotate_left(31).wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4)
}

#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

fn read_u64(b: &[u8]) -> u64 {
    let mut arr = [0u8; 8];
    arr.copy_from_slice(&b[..8]);
    u64::from_le_bytes(arr)
}

fn read_u32(b: &[u8]) -> u64 {
    let mut arr = [0u8; 4];
    arr.copy_from_slice(&b[..4]);
    u32::from_le_bytes(arr) as u64
}

/// Computes a 64-bit checksum of `data` with the given `seed`.
///
/// # Example
///
/// ```
/// use ubft_crypto::checksum::checksum64;
///
/// let a = checksum64(0, b"payload");
/// let b = checksum64(0, b"payload");
/// let c = checksum64(0, b"paylaod");
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn checksum64(seed: u64, data: &[u8]) -> u64 {
    let len = data.len() as u64;
    let mut rest = data;
    let mut h: u64;

    if rest.len() >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len);

    while rest.len() >= 8 {
        h ^= round(0, read_u64(rest));
        h = h.rotate_left(27).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= read_u32(rest).wrapping_mul(PRIME64_1);
        h = h.rotate_left(23).wrapping_mul(PRIME64_2).wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &b in rest {
        h ^= (b as u64).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
    }

    avalanche(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let data: Vec<u8> = (0..100u8).collect();
        assert_eq!(checksum64(7, &data), checksum64(7, &data));
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(checksum64(0, b"data"), checksum64(1, b"data"));
    }

    #[test]
    fn length_extension_distinct() {
        // Same prefix, different lengths, must differ (length is mixed in).
        assert_ne!(checksum64(0, b""), checksum64(0, b"\0"));
        assert_ne!(checksum64(0, b"\0"), checksum64(0, b"\0\0"));
    }

    #[test]
    fn all_length_classes_covered() {
        // Exercise the 32-byte stripe loop, 8-byte tail, 4-byte tail and
        // single-byte tail paths.
        let mut seen = std::collections::HashSet::new();
        for len in 0..=100usize {
            let data = vec![0x5Au8; len];
            assert!(seen.insert(checksum64(42, &data)), "collision at len {len}");
        }
    }

    #[test]
    fn detects_torn_words() {
        // Simulate a torn read: two full writes A and B interleaved at 8-byte
        // granularity must not checksum to either original value.
        let a = vec![0x11u8; 64];
        let b = vec![0x22u8; 64];
        let ca = checksum64(0, &a);
        let cb = checksum64(0, &b);
        for torn_at in (8..64).step_by(8) {
            let mut torn = a.clone();
            torn[torn_at..].copy_from_slice(&b[torn_at..]);
            let ct = checksum64(0, &torn);
            assert_ne!(ct, ca, "torn at {torn_at} matched A");
            assert_ne!(ct, cb, "torn at {torn_at} matched B");
        }
    }

    #[test]
    fn single_bit_flip_detected() {
        let data: Vec<u8> = (0..64u8).collect();
        let base = checksum64(0, &data);
        for byte in 0..64 {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                assert_ne!(checksum64(0, &d), base, "flip at {byte}:{bit}");
            }
        }
    }
}
