//! Cryptographic primitives for the uBFT reproduction.
//!
//! The paper's prototype uses ed25519-dalek signatures, BLAKE3 HMACs and
//! xxHash checksums. This crate provides the same *interfaces* with:
//!
//! * a real [FIPS 180-4 SHA-256](mod@sha256) implementation (tested against the
//!   standard vectors),
//! * [HMAC-SHA-256](hmac) (tested against RFC 4231 vectors),
//! * a fast [xxHash64-style checksum](checksum) for the RDMA register and
//!   circular-buffer framing, and
//! * a [signature scheme](sign) in which each process holds a secret MAC key
//!   and verification goes through a shared [`sign::KeyRing`] — the
//!   simulation's stand-in for pre-published public keys. Within the
//!   simulation this provides unforgeability and transferable authentication,
//!   which is all the protocol's safety argument needs; the *latency* of
//!   public-key operations is charged separately in virtual time by the
//!   runtime's cost model (sign ≈ 17 µs, verify ≈ 45 µs, per §7.3).
//!
//! # Example
//!
//! ```
//! use ubft_crypto::{sha256::sha256, sign::KeyRing};
//! use ubft_types::{ProcessId, ReplicaId};
//!
//! let digest = sha256(b"hello");
//! assert_eq!(digest.as_bytes().len(), 32);
//!
//! let ring = KeyRing::generate(0xC0FFEE, [ProcessId::Replica(ReplicaId(0))]);
//! let signer = ring.signer(ProcessId::Replica(ReplicaId(0))).unwrap();
//! let sig = signer.sign(b"msg");
//! assert!(ring.verify(ProcessId::Replica(ReplicaId(0)), b"msg", &sig));
//! assert!(!ring.verify(ProcessId::Replica(ReplicaId(0)), b"other", &sig));
//! ```

pub mod checksum;
pub mod hmac;
pub mod sha256;
pub mod sign;

pub use checksum::checksum64;
pub use sha256::{sha256, Digest};
pub use sign::{Certificate, KeyRing, Signature, Signer};
