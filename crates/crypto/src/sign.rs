//! Signatures with transferable authentication, simulated.
//!
//! The paper assumes public-key cryptography: each process signs with a
//! private key and anyone can verify with pre-published public keys (§2.4).
//! Inside a single-address-space simulation we model this with per-process
//! secret MAC keys and a shared [`KeyRing`] acting as the pre-published key
//! directory: only the owner of a secret can produce a valid tag, and any
//! process can verify any tag, so unforgeability and *transferability* (a
//! verified proof can be forwarded and re-verified by others) both hold.
//!
//! The runtime charges virtual-time costs for sign/verify separately; this
//! module is purely functional.

use std::collections::BTreeMap;
use std::sync::Arc;

use ubft_types::wire::{decode_seq, encode_seq, Wire, WireReader};
use ubft_types::{CodecError, ProcessId};

use crate::hmac::{digest_eq, hmac_sha256};
use crate::sha256::Digest;

/// A signature over a byte string by a specific process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature(Digest);

impl Signature {
    /// A syntactically valid but never-verifying placeholder, useful for
    /// Byzantine test fixtures.
    pub fn garbage() -> Signature {
        Signature(Digest::from_bytes([0xEE; 32]))
    }

    /// The raw tag bytes.
    pub fn as_digest(&self) -> &Digest {
        &self.0
    }
}

impl Wire for Signature {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Signature(Digest::decode(r)?))
    }
}

/// The signing half of a key pair, held only by its owner.
#[derive(Clone, Debug)]
pub struct Signer {
    id: ProcessId,
    secret: [u8; 32],
}

impl Signer {
    /// The identity this signer signs as.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Signs `msg`.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature(hmac_sha256(&self.secret, msg))
    }
}

/// The pre-published key directory: maps every process to its verification
/// key. Cloning is cheap (shared storage).
#[derive(Clone, Debug)]
pub struct KeyRing {
    keys: Arc<BTreeMap<ProcessId, [u8; 32]>>,
}

impl KeyRing {
    /// Deterministically generates keys for `ids` from a master `seed`.
    pub fn generate(seed: u64, ids: impl IntoIterator<Item = ProcessId>) -> Self {
        let mut keys = BTreeMap::new();
        for id in ids {
            let mut material = seed.to_le_bytes().to_vec();
            id.encode(&mut material);
            let d = crate::sha256::sha256(&material);
            keys.insert(id, *d.as_bytes());
        }
        KeyRing { keys: Arc::new(keys) }
    }

    /// Returns the signer for `id`, or `None` if `id` is unknown.
    ///
    /// In a real deployment each process would hold only its own private
    /// key; tests and the runtime hand each actor exactly one signer.
    pub fn signer(&self, id: ProcessId) -> Option<Signer> {
        self.keys.get(&id).map(|secret| Signer { id, secret: *secret })
    }

    /// Verifies that `sig` is `id`'s signature over `msg`.
    pub fn verify(&self, id: ProcessId, msg: &[u8], sig: &Signature) -> bool {
        match self.keys.get(&id) {
            Some(secret) => digest_eq(&hmac_sha256(secret, msg), &sig.0),
            None => false,
        }
    }

    /// Number of known identities.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// An aggregated certificate: `count` distinct processes' signatures over the
/// same byte string (the paper's `f + 1`-signed proofs, e.g. COMMIT
/// certificates, checkpoint certificates, and CTBcast summaries).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Certificate {
    shares: Vec<(ProcessId, Signature)>,
}

impl Certificate {
    /// Creates an empty certificate.
    pub fn new() -> Self {
        Certificate { shares: Vec::new() }
    }

    /// Adds a share; returns `false` (and ignores it) if the signer is
    /// already present.
    pub fn add(&mut self, signer: ProcessId, sig: Signature) -> bool {
        if self.shares.iter().any(|(p, _)| *p == signer) {
            return false;
        }
        self.shares.push((signer, sig));
        true
    }

    /// Number of distinct signers.
    pub fn count(&self) -> usize {
        self.shares.len()
    }

    /// The distinct signers.
    pub fn signers(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.shares.iter().map(|(p, _)| *p)
    }

    /// Verifies that the certificate carries at least `quorum` valid
    /// signatures from distinct processes over `msg`.
    pub fn verify(&self, ring: &KeyRing, msg: &[u8], quorum: usize) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        let mut valid = 0usize;
        for (p, sig) in &self.shares {
            if seen.insert(*p) && ring.verify(*p, msg, sig) {
                valid += 1;
            }
        }
        valid >= quorum
    }
}

impl Wire for Certificate {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_seq(
            &self.shares.iter().map(|(p, s)| Share { p: *p, s: *s }).collect::<Vec<_>>(),
            buf,
        );
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let shares: Vec<Share> = decode_seq(r)?;
        Ok(Certificate { shares: shares.into_iter().map(|sh| (sh.p, sh.s)).collect() })
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Share {
    p: ProcessId,
    s: Signature,
}

impl Wire for Share {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.p.encode(buf);
        self.s.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Share { p: ProcessId::decode(r)?, s: Signature::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubft_types::{ClientId, ReplicaId};

    fn ring() -> KeyRing {
        KeyRing::generate(
            1,
            [
                ProcessId::Replica(ReplicaId(0)),
                ProcessId::Replica(ReplicaId(1)),
                ProcessId::Replica(ReplicaId(2)),
                ProcessId::Client(ClientId(0)),
            ],
        )
    }

    #[test]
    fn sign_verify_roundtrip() {
        let ring = ring();
        let s = ring.signer(ProcessId::Replica(ReplicaId(1))).unwrap();
        let sig = s.sign(b"hello");
        assert!(ring.verify(ProcessId::Replica(ReplicaId(1)), b"hello", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let ring = ring();
        let s = ring.signer(ProcessId::Replica(ReplicaId(1))).unwrap();
        let sig = s.sign(b"hello");
        assert!(!ring.verify(ProcessId::Replica(ReplicaId(1)), b"hellp", &sig));
    }

    #[test]
    fn wrong_signer_rejected() {
        // A signature by r1 must not verify as r2: no forgery by identity swap.
        let ring = ring();
        let s = ring.signer(ProcessId::Replica(ReplicaId(1))).unwrap();
        let sig = s.sign(b"hello");
        assert!(!ring.verify(ProcessId::Replica(ReplicaId(2)), b"hello", &sig));
    }

    #[test]
    fn unknown_identity_rejected() {
        let ring = ring();
        let s = ring.signer(ProcessId::Replica(ReplicaId(0))).unwrap();
        let sig = s.sign(b"x");
        assert!(!ring.verify(ProcessId::Replica(ReplicaId(42)), b"x", &sig));
        assert!(ring.signer(ProcessId::Replica(ReplicaId(42))).is_none());
    }

    #[test]
    fn garbage_signature_rejected() {
        let ring = ring();
        assert!(!ring.verify(ProcessId::Replica(ReplicaId(0)), b"x", &Signature::garbage()));
    }

    #[test]
    fn deterministic_across_rings() {
        // Same seed => same keys, so signatures transfer between processes
        // that each derived the ring independently.
        let a = ring();
        let b = ring();
        let sig = a.signer(ProcessId::Client(ClientId(0))).unwrap().sign(b"m");
        assert!(b.verify(ProcessId::Client(ClientId(0)), b"m", &sig));
    }

    #[test]
    fn certificate_quorum() {
        let ring = ring();
        let msg = b"proposal";
        let mut cert = Certificate::new();
        assert!(!cert.verify(&ring, msg, 2));
        for i in 0..2u32 {
            let p = ProcessId::Replica(ReplicaId(i));
            let sig = ring.signer(p).unwrap().sign(msg);
            assert!(cert.add(p, sig));
        }
        assert!(cert.verify(&ring, msg, 2));
        assert!(!cert.verify(&ring, msg, 3));
        assert!(!cert.verify(&ring, b"other", 2));
    }

    #[test]
    fn certificate_rejects_duplicate_signers() {
        let ring = ring();
        let p = ProcessId::Replica(ReplicaId(0));
        let sig = ring.signer(p).unwrap().sign(b"m");
        let mut cert = Certificate::new();
        assert!(cert.add(p, sig));
        assert!(!cert.add(p, sig));
        assert_eq!(cert.count(), 1);
        // Even a hand-built certificate with duplicate shares only counts
        // distinct valid signers.
        let dup = Certificate { shares: vec![(p, sig), (p, sig)] };
        assert!(!dup.verify(&ring, b"m", 2));
    }

    #[test]
    fn certificate_with_bad_share_still_counts_valid_ones() {
        let ring = ring();
        let msg = b"m";
        let mut cert = Certificate::new();
        cert.add(ProcessId::Replica(ReplicaId(0)), Signature::garbage());
        for i in 1..3u32 {
            let p = ProcessId::Replica(ReplicaId(i));
            cert.add(p, ring.signer(p).unwrap().sign(msg));
        }
        assert!(cert.verify(&ring, msg, 2));
        assert!(!cert.verify(&ring, msg, 3));
    }

    #[test]
    fn certificate_wire_roundtrip() {
        let ring = ring();
        let mut cert = Certificate::new();
        for i in 0..3u32 {
            let p = ProcessId::Replica(ReplicaId(i));
            cert.add(p, ring.signer(p).unwrap().sign(b"payload"));
        }
        ubft_types::wire::roundtrip(&cert);
    }
}
