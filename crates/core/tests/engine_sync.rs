//! Synchronous multi-replica tests of the consensus engine.
//!
//! These tests drive `n` [`Engine`]s with a *perfect* broadcast fabric
//! (CTBcast ids assigned in order, instant delivery, no Byzantine behaviour
//! unless injected by hand), validating the consensus logic in isolation
//! from the transport, register, and timing layers.

use std::collections::VecDeque;

use ubft_core::app::{App, NoopApp};
use ubft_core::engine::{Effect, Engine, EngineConfig, PathMode, TimerKind};
use ubft_core::msg::{CtbMsg, Request};
use ubft_crypto::KeyRing;
use ubft_types::{ClientId, ClusterParams, ProcessId, ReplicaId, RequestId, SeqId, Slot, View};

struct Net {
    engines: Vec<Engine>,
    apps: Vec<NoopApp>,
    /// Shared engine configuration + key ring, kept for replacement nodes.
    cfg: EngineConfig,
    ring: KeyRing,
    /// CTBcast id counters per stream.
    ctb_next: Vec<u64>,
    /// Every CTBcast broadcast in emission order: (stream, message).
    ctb_log: Vec<(usize, CtbMsg)>,
    /// Executed (slot, request) per replica.
    executed: Vec<Vec<(Slot, Request)>>,
    /// Timers armed per replica (kind), fired manually by tests.
    timers: Vec<Vec<TimerKind>>,
    /// Replicas that are crashed (drop all their traffic).
    crashed: Vec<bool>,
    /// Byzantine detections observed: (detector, culprit).
    brands: Vec<(usize, u32)>,
    /// Latest checkpoint snapshot per replica: (base, digest, app bytes) —
    /// what a replacement node's state transfer is served from.
    /// `(base, app digest, app bytes, exec table)` per replica.
    #[allow(clippy::type_complexity)]
    snapshots: Vec<Option<(Slot, ubft_crypto::Digest, Vec<u8>, Vec<(ClientId, u64)>)>>,
    /// Pending effect queue: (origin replica, effect).
    queue: VecDeque<(usize, Effect)>,
}

impl Net {
    fn new(path: PathMode) -> Self {
        Self::with_params(path, ClusterParams::paper_default())
    }

    fn with_params(path: PathMode, params: ClusterParams) -> Self {
        Net::with_config(EngineConfig::new(params, path))
    }

    /// Builds a net whose engines share an arbitrary configuration (batch
    /// and pipeline tests tweak `max_batch` / `pipeline_depth`).
    fn with_config(cfg: EngineConfig) -> Self {
        let n = cfg.params.n();
        let ring = KeyRing::generate(5, (0..n as u32).map(|i| ProcessId::Replica(ReplicaId(i))));
        let engines: Vec<Engine> =
            (0..n as u32).map(|i| Engine::new(ReplicaId(i), cfg.clone(), ring.clone())).collect();
        let mut net = Net {
            engines,
            apps: (0..n).map(|_| NoopApp::new()).collect(),
            cfg,
            ring,
            ctb_next: vec![1; n],
            ctb_log: Vec::new(),
            executed: vec![Vec::new(); n],
            timers: vec![Vec::new(); n],
            crashed: vec![false; n],
            brands: Vec::new(),
            snapshots: vec![None; n],
            queue: VecDeque::new(),
        };
        for i in 0..n {
            let fx = net.engines[i].start();
            net.enqueue(i, fx);
        }
        net.drain();
        net
    }

    fn n(&self) -> usize {
        self.engines.len()
    }

    fn enqueue(&mut self, who: usize, fx: Vec<Effect>) {
        for e in fx {
            self.queue.push_back((who, e));
        }
    }

    fn drain(&mut self) {
        let mut steps = 0;
        while let Some((who, effect)) = self.queue.pop_front() {
            steps += 1;
            assert!(steps < 1_000_000, "effect loop diverged");
            if self.crashed[who] {
                continue;
            }
            match effect {
                Effect::CtbBroadcast(msg) => {
                    let k = SeqId(self.ctb_next[who]);
                    self.ctb_next[who] += 1;
                    self.ctb_log.push((who, msg.clone()));
                    for r in 0..self.n() {
                        if self.crashed[r] {
                            continue;
                        }
                        let fx =
                            self.engines[r].on_ctb_deliver(ReplicaId(who as u32), k, msg.clone());
                        self.enqueue(r, fx);
                    }
                }
                Effect::TbBroadcast(msg) => {
                    for r in 0..self.n() {
                        if self.crashed[r] {
                            continue;
                        }
                        let fx = self.engines[r].on_tb_deliver(ReplicaId(who as u32), msg.clone());
                        self.enqueue(r, fx);
                    }
                }
                Effect::SendReplica { to, msg } => {
                    let r = to.0 as usize;
                    if !self.crashed[r] {
                        let fx = self.engines[r].on_direct(ReplicaId(who as u32), msg);
                        self.enqueue(r, fx);
                    }
                }
                Effect::Execute { slot, req } => {
                    self.apps[who].execute(&req.payload);
                    self.executed[who].push((slot, req));
                }
                Effect::RequestSnapshot { base } => {
                    let digest = self.apps[who].snapshot_digest();
                    let table = self.engines[who].exec_table();
                    let exec_digest = ubft_core::msg::exec_table_digest(&table);
                    self.snapshots[who] =
                        Some((base, digest, self.apps[who].snapshot_bytes(), table));
                    let fx = self.engines[who].on_snapshot(base, digest, exec_digest);
                    self.enqueue(who, fx);
                }
                Effect::StateTransfer { base, app_digest, exec_digest } => {
                    // Serve the transfer from any live peer's retained
                    // checkpoint snapshot, verified against the certified
                    // digests (the runtime does exactly this).
                    let donor = (0..self.n()).find(|r| {
                        !self.crashed[*r]
                            && self.snapshots[*r]
                                .as_ref()
                                .is_some_and(|(b, d, _, _)| *b == base && *d == app_digest)
                    });
                    let (_, _, bytes, table) =
                        self.snapshots[donor.expect("a live donor snapshot")].clone().unwrap();
                    self.apps[who].restore_bytes(&bytes);
                    assert_eq!(self.apps[who].snapshot_digest(), app_digest);
                    assert_eq!(ubft_core::msg::exec_table_digest(&table), exec_digest);
                    let fx = self.engines[who].on_exec_table(base, table);
                    self.enqueue(who, fx);
                }
                Effect::AdoptStreams { tails } => {
                    // The harness's only transport cursor is the per-stream
                    // broadcast counter; adopt our own entry.
                    for (stream, next) in tails {
                        if stream.0 as usize == who {
                            self.ctb_next[who] = self.ctb_next[who].max(next.0);
                        }
                    }
                }
                Effect::ArmTimer { kind } => {
                    self.timers[who].push(kind);
                }
                Effect::CheckpointAdopted { .. } | Effect::ViewChanged { .. } => {}
                Effect::ByzantineDetected { replica, reason } => {
                    eprintln!("replica {who} branded {replica} byzantine: {reason}");
                    self.brands.push((who, replica.0));
                }
            }
        }
    }

    fn client_request(&mut self, seq: u64, payload: &[u8]) -> RequestId {
        let id = self.client_request_no_drain(seq, payload);
        self.drain();
        id
    }

    /// Injects a request at every live replica without draining, so tests
    /// can pile up a backlog and process it in one burst.
    fn client_request_no_drain(&mut self, seq: u64, payload: &[u8]) -> RequestId {
        let id = RequestId::new(ClientId(1), seq);
        let req = Request { id, payload: payload.to_vec() };
        for r in 0..self.n() {
            if self.crashed[r] {
                continue;
            }
            let fx = self.engines[r].on_client_request(req.clone());
            self.enqueue(r, fx);
        }
        id
    }

    fn fire_timers(&mut self, filter: impl Fn(&TimerKind) -> bool) {
        for r in 0..self.n() {
            let kinds: Vec<TimerKind> = self.timers[r].drain(..).collect();
            for k in kinds {
                if filter(&k) {
                    let fx = self.engines[r].on_timer(k);
                    self.enqueue(r, fx);
                } else {
                    self.timers[r].push(k);
                }
            }
        }
        self.drain();
    }

    /// Boots a replacement node for crashed replica `v`: fresh engine and
    /// application, join handshake driven to completion (the acks arrive
    /// synchronously inside the drain).
    fn replace(&mut self, v: usize) {
        assert!(self.crashed[v], "only a crashed replica can be replaced");
        self.crashed[v] = false;
        self.engines[v] = Engine::new(ReplicaId(v as u32), self.cfg.clone(), self.ring.clone());
        self.apps[v] = NoopApp::new();
        self.executed[v].clear();
        self.timers[v].clear();
        self.snapshots[v] = None;
        let fx = self.engines[v].begin_join(SeqId(0));
        self.enqueue(v, fx);
        self.drain();
    }

    fn live_replicas(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n()).filter(|r| !self.crashed[*r])
    }

    fn assert_executed_prefix_agreement(&self) {
        let longest = self.live_replicas().map(|r| self.executed[r].len()).max().unwrap_or(0);
        for len in 0..longest {
            let mut vals: Vec<&(Slot, Request)> = Vec::new();
            for r in self.live_replicas() {
                if let Some(v) = self.executed[r].get(len) {
                    vals.push(v);
                }
            }
            for w in vals.windows(2) {
                assert_eq!(w[0], w[1], "execution logs diverged at index {len}");
            }
        }
    }
}

#[test]
fn fast_path_decides_and_executes_everywhere() {
    let mut net = Net::new(PathMode::FastOnly);
    net.client_request(0, b"hello");
    for r in 0..3 {
        assert_eq!(net.executed[r].len(), 1, "replica {r}");
        assert_eq!(net.executed[r][0].0, Slot(0));
        assert_eq!(net.executed[r][0].1.payload, b"hello");
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn slow_path_decides_and_executes_everywhere() {
    let mut net = Net::new(PathMode::SlowOnly);
    net.client_request(0, b"slow");
    for r in 0..3 {
        assert_eq!(net.executed[r].len(), 1, "replica {r}");
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn many_requests_execute_in_order() {
    let mut net = Net::new(PathMode::FastOnly);
    for i in 0..50u64 {
        net.client_request(i, format!("req-{i}").as_bytes());
    }
    for r in 0..3 {
        assert_eq!(net.executed[r].len(), 50);
        for (i, (slot, req)) in net.executed[r].iter().enumerate() {
            assert_eq!(slot.0, i as u64);
            assert_eq!(req.payload, format!("req-{i}").as_bytes());
        }
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn slow_path_many_requests() {
    let mut net = Net::new(PathMode::SlowOnly);
    for i in 0..20u64 {
        net.client_request(i, &i.to_le_bytes());
    }
    for r in 0..3 {
        assert_eq!(net.executed[r].len(), 20);
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn checkpoint_advances_window_and_gc() {
    // Window is 256; push past it to force a checkpoint + slide.
    let mut net = Net::new(PathMode::FastOnly);
    let total = 300u64;
    for i in 0..total {
        net.client_request(i, &i.to_le_bytes());
    }
    for r in 0..3 {
        assert_eq!(net.executed[r].len(), total as usize, "replica {r}");
        assert!(net.engines[r].exec_next() >= Slot(total));
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn fast_with_fallback_decides_without_timers_in_sync_run() {
    let mut net = Net::new(PathMode::FastWithFallback);
    net.client_request(0, b"x");
    for r in 0..3 {
        assert_eq!(net.executed[r].len(), 1);
    }
}

#[test]
fn fallback_timer_completes_via_slow_path_when_fast_path_stalls() {
    // Crash one replica *after* setup: the fast path needs unanimity, so
    // WILL_* rounds stall; firing the slot's slow trigger must decide via
    // the slow path with the remaining majority.
    let mut net = Net::new(PathMode::FastWithFallback);
    net.crashed[2] = true;
    net.client_request(0, b"degraded");
    // Echo round incomplete (only 1 of 2 followers alive): leader proposes
    // after the echo-fallback timer.
    net.fire_timers(|k| matches!(k, TimerKind::EchoFallback(_)));
    // Fast path cannot reach unanimity (only 2 of 3 alive).
    assert!(net.executed[0].is_empty());
    net.fire_timers(|k| matches!(k, TimerKind::SlotSlowTrigger(_)));
    for r in 0..2 {
        assert_eq!(net.executed[r].len(), 1, "replica {r}");
        assert_eq!(net.executed[r][0].1.payload, b"degraded");
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn view_change_elects_next_leader_and_recovers() {
    // Crash the leader (replica 0) before any request. Followers time out,
    // seal the view, and replica 1 becomes leader of view 1.
    let mut net = Net::new(PathMode::FastWithFallback);
    net.crashed[0] = true;
    net.client_request(0, b"orphaned");
    assert!(net.executed[1].is_empty());
    // Slow triggers do nothing useful (no prepare); progress timers fire.
    net.fire_timers(|k| matches!(k, TimerKind::Progress));
    assert_eq!(net.engines[1].view(), View(1));
    assert_eq!(net.engines[2].view(), View(1));
    assert_eq!(net.engines[1].leader(), ReplicaId(1));
    // With replica 0 dead the fast path cannot reach unanimity in view 1
    // either; the slow-path trigger completes the slot.
    net.fire_timers(|k| matches!(k, TimerKind::SlotSlowTrigger(_)));
    // The new leader re-proposed the echoed request.
    for r in 1..3 {
        assert_eq!(net.executed[r].len(), 1, "replica {r}");
        assert_eq!(net.executed[r][0].1.payload, b"orphaned");
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn view_change_preserves_decided_requests() {
    // Decide a request in view 0, then crash the leader and force a view
    // change; the decided request must survive (agreement across views).
    let mut net = Net::new(PathMode::FastWithFallback);
    net.client_request(0, b"first");
    for r in 0..3 {
        assert_eq!(net.executed[r].len(), 1);
    }
    net.crashed[0] = true;
    net.client_request(1, b"second");
    // First watchdog firing only observes that progress had been made since
    // arming; the second detects the stall and seals the view.
    net.fire_timers(|k| matches!(k, TimerKind::Progress));
    net.fire_timers(|k| matches!(k, TimerKind::Progress));
    net.fire_timers(|k| matches!(k, TimerKind::SlotSlowTrigger(_)));
    for r in 1..3 {
        assert_eq!(net.executed[r].len(), 2, "replica {r}");
        assert_eq!(net.executed[r][0].1.payload, b"first");
        assert_eq!(net.executed[r][1].1.payload, b"second");
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn equivocation_report_brands_stream() {
    let mut net = Net::new(PathMode::FastOnly);
    let fx = net.engines[1].on_ctb_equivocation(ReplicaId(0), SeqId(1));
    assert!(matches!(&fx[..], [Effect::ByzantineDetected { replica: ReplicaId(0), .. }]));
    // Subsequent messages from the branded stream are dropped.
    let fx =
        net.engines[1].on_ctb_deliver(ReplicaId(0), SeqId(1), CtbMsg::SealView { view: View(1) });
    assert!(fx.is_empty());
}

#[test]
fn invalid_prepare_brands_leader() {
    // A prepare claiming a view whose leader is someone else.
    let mut net = Net::new(PathMode::FastOnly);
    let bogus = CtbMsg::Prepare(ubft_core::msg::Prepare {
        view: View(1), // leader of view 1 is replica 1, not replica 0
        slot: Slot(0),
        batch: ubft_core::msg::Batch::noop(Slot(0)),
    });
    let fx = net.engines[1].on_ctb_deliver(ReplicaId(0), SeqId(1), bogus);
    assert!(
        fx.iter().any(|e| matches!(e, Effect::ByzantineDetected { replica: ReplicaId(0), .. })),
        "expected byzantine detection, got {fx:?}"
    );
}

#[test]
fn double_prepare_for_same_slot_brands_leader() {
    let mut net = Net::new(PathMode::FastOnly);
    let mk = |payload: &[u8]| {
        CtbMsg::Prepare(ubft_core::msg::Prepare {
            view: View(0),
            slot: Slot(0),
            batch: ubft_core::msg::Batch::single(Request {
                id: RequestId::new(ClientId(9), 0),
                payload: payload.to_vec(),
            }),
        })
    };
    let fx = net.engines[1].on_ctb_deliver(ReplicaId(0), SeqId(1), mk(b"a"));
    assert!(!fx.iter().any(|e| matches!(e, Effect::ByzantineDetected { .. })));
    let fx = net.engines[1].on_ctb_deliver(ReplicaId(0), SeqId(2), mk(b"b"));
    assert!(fx.iter().any(|e| matches!(e, Effect::ByzantineDetected { .. })));
}

#[test]
fn five_replica_cluster_works() {
    let params = ClusterParams::paper_default().with_f(2);
    let mut net = Net::with_params(PathMode::FastOnly, params);
    for i in 0..10u64 {
        net.client_request(i, &i.to_le_bytes());
    }
    for r in 0..5 {
        assert_eq!(net.executed[r].len(), 10, "replica {r}");
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn five_replica_slow_path_with_two_crashes() {
    let params = ClusterParams::paper_default().with_f(2);
    let mut net = Net::with_params(PathMode::SlowOnly, params);
    net.crashed[3] = true;
    net.crashed[4] = true;
    for i in 0..5u64 {
        net.client_request(i, &i.to_le_bytes());
        // Two followers are dead, so the echo round never completes.
        net.fire_timers(|k| matches!(k, TimerKind::EchoFallback(_)));
    }
    for r in 0..3 {
        assert_eq!(net.executed[r].len(), 5, "replica {r}");
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn duplicate_client_request_not_executed_twice() {
    let mut net = Net::new(PathMode::FastOnly);
    let id = net.client_request(0, b"once");
    // Re-send the same request.
    let req = Request { id, payload: b"once".to_vec() };
    for r in 0..3 {
        let fx = net.engines[r].on_client_request(req.clone());
        net.enqueue(r, fx);
    }
    net.drain();
    for r in 0..3 {
        assert_eq!(net.executed[r].len(), 1, "replica {r}");
    }
}

#[test]
fn crypto_ops_metered_on_slow_path() {
    let mut net = Net::new(PathMode::SlowOnly);
    net.client_request(0, b"metered");
    let total: u32 = (0..3)
        .map(|r| {
            let ops = net.engines[r].take_crypto_ops();
            ops.signs + ops.verifies
        })
        .sum();
    assert!(total > 0, "slow path must meter crypto work");
}

#[test]
fn checkpoint_announced_before_proposals_into_new_window() {
    // Pile a backlog larger than the window onto the leader, then process
    // it in one burst: when the checkpoint at slot 256 is adopted, pending
    // proposals for slots ≥ 256 must be emitted on the leader's stream
    // *after* the CHECKPOINT message (peers validate PREPAREs against the
    // checkpoint most recently seen on the stream — Algorithm 5).
    let mut net = Net::new(PathMode::FastOnly);
    for i in 0..300u64 {
        net.client_request_no_drain(i, &i.to_le_bytes());
    }
    net.drain();
    assert!(net.brands.is_empty(), "honest replicas branded: {:?}", net.brands);
    for r in 0..3 {
        assert_eq!(net.executed[r].len(), 300, "replica {r}");
    }
    // Check the emission order on the leader's stream directly.
    let leader_stream: Vec<&CtbMsg> =
        net.ctb_log.iter().filter(|(s, _)| *s == 0).map(|(_, m)| m).collect();
    let cp_pos = leader_stream
        .iter()
        .position(|m| matches!(m, CtbMsg::Checkpoint(c) if c.data.base == Slot(256)))
        .expect("leader announced the slot-256 checkpoint");
    let first_new_window_prepare = leader_stream
        .iter()
        .position(|m| matches!(m, CtbMsg::Prepare(p) if p.slot >= Slot(256)))
        .expect("leader proposed into the new window");
    assert!(
        cp_pos < first_new_window_prepare,
        "PREPARE for the new window emitted before its CHECKPOINT \
         (checkpoint at {cp_pos}, prepare at {first_new_window_prepare})"
    );
    net.assert_executed_prefix_agreement();
}

#[test]
fn leader_entering_view_on_certificates_seals_first() {
    // Five replicas, leader (0) crashed. Only replicas 2, 3, 4 time out and
    // seal view 1; replica 1 — the incoming leader — never does. It must
    // still enter view 1 on the collected certificates, and its stream must
    // carry SEAL_VIEW(1) before NEW_VIEW(1) or peers reject the NEW_VIEW.
    let params = ClusterParams::paper_default().with_f(2);
    let mut net = Net::with_params(PathMode::FastWithFallback, params);
    net.crashed[0] = true;
    net.client_request(0, b"orphaned");
    // Fire the progress watchdog only on replicas 2..5 (nothing decided
    // since arming, so one firing detects the stall and seals).
    for r in 2..5 {
        let kinds: Vec<TimerKind> = net.timers[r].drain(..).collect();
        for k in kinds {
            if matches!(k, TimerKind::Progress) {
                let fx = net.engines[r].on_timer(k);
                net.enqueue(r, fx);
            } else {
                net.timers[r].push(k);
            }
        }
    }
    net.drain();
    assert_eq!(net.engines[1].view(), View(1), "replica 1 should lead view 1");
    let r1_stream: Vec<&CtbMsg> =
        net.ctb_log.iter().filter(|(s, _)| *s == 1).map(|(_, m)| m).collect();
    let seal =
        r1_stream.iter().position(|m| matches!(m, CtbMsg::SealView { view } if *view == View(1)));
    let nv = r1_stream
        .iter()
        .position(|m| matches!(m, CtbMsg::NewView { view, .. } if *view == View(1)));
    let (seal, nv) = (seal.expect("seal emitted"), nv.expect("new-view emitted"));
    assert!(seal < nv, "NEW_VIEW emitted before SEAL_VIEW on the leader's stream");
    assert!(net.brands.is_empty(), "honest replicas branded: {:?}", net.brands);
    // The orphaned request survives into the new view.
    net.fire_timers(|k| matches!(k, TimerKind::SlotSlowTrigger(_)));
    for r in 1..5 {
        assert_eq!(net.executed[r].len(), 1, "replica {r}");
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn progress_backoff_doubles_per_view_change_and_resets_on_decide() {
    let mut net = Net::new(PathMode::FastWithFallback);
    assert_eq!(net.engines[1].progress_backoff(), 1);
    net.crashed[0] = true;
    net.client_request(0, b"stall");
    // Nothing decided since the watchdog was armed: one firing seals.
    net.fire_timers(|k| matches!(k, TimerKind::Progress));
    assert_eq!(net.engines[1].view(), View(1));
    assert!(
        net.engines[1].progress_backoff() >= 2,
        "a fruitless view change must widen the watchdog"
    );
    // Deciding the request resets the backoff.
    net.fire_timers(|k| matches!(k, TimerKind::SlotSlowTrigger(_)));
    assert_eq!(net.executed[1].len(), 1);
    assert_eq!(net.engines[1].progress_backoff(), 1);
}

#[test]
fn disabled_echo_round_proposes_immediately() {
    let params = ClusterParams::paper_default();
    let ring = KeyRing::generate(5, (0..3u32).map(|i| ProcessId::Replica(ReplicaId(i))));
    let mut cfg = EngineConfig::new(params, PathMode::FastOnly);
    cfg.echo_round = false;
    let mut leader = Engine::new(ReplicaId(0), cfg, ring);
    let _ = leader.start();
    let req = Request { id: RequestId::new(ClientId(1), 0), payload: b"now".to_vec() };
    let fx = leader.on_client_request(req);
    assert!(
        fx.iter().any(|e| matches!(e, Effect::CtbBroadcast(CtbMsg::Prepare(_)))),
        "leader without echo round must propose on direct receipt, got {fx:?}"
    );
}

fn batched_config(path: PathMode, max_batch: usize, pipeline_depth: usize) -> EngineConfig {
    let mut cfg = EngineConfig::new(ClusterParams::paper_default(), path);
    cfg.max_batch = max_batch;
    cfg.pipeline_depth = pipeline_depth;
    cfg
}

#[test]
fn batches_amortize_slots_and_preserve_order() {
    // Ten requests, batches of up to 4, one slot in flight: the backlog that
    // accumulates behind the full pipeline must flush as {r0}, {r1..r4},
    // {r5..r8}, {r9} — 4 slots instead of 10 — and still execute in
    // submission order everywhere.
    let mut net = Net::with_config(batched_config(PathMode::FastOnly, 4, 1));
    for i in 0..10u64 {
        net.client_request_no_drain(i, format!("req-{i}").as_bytes());
    }
    net.drain();
    let prepares =
        net.ctb_log.iter().filter(|(s, m)| *s == 0 && matches!(m, CtbMsg::Prepare(_))).count();
    assert_eq!(prepares, 4, "expected 4 batched slots for 10 requests");
    for r in 0..3 {
        assert_eq!(net.executed[r].len(), 10, "replica {r}");
        for (i, (_, req)) in net.executed[r].iter().enumerate() {
            assert_eq!(req.payload, format!("req-{i}").as_bytes());
        }
        assert_eq!(net.engines[r].decided_count(), 10, "decided_count counts requests");
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn pipeline_depth_bounds_in_flight_slots() {
    // With an unbounded batch and depth 1, a 10-request backlog collapses
    // into exactly two slots: the first ready request proposes alone, and
    // everything that queued behind the full pipeline flushes together.
    let mut net = Net::with_config(batched_config(PathMode::FastOnly, 64, 1));
    for i in 0..10u64 {
        net.client_request_no_drain(i, &i.to_le_bytes());
    }
    net.drain();
    let batch_sizes: Vec<usize> = net
        .ctb_log
        .iter()
        .filter(|(s, _)| *s == 0)
        .filter_map(|(_, m)| match m {
            CtbMsg::Prepare(p) => Some(p.batch.len()),
            _ => None,
        })
        .collect();
    assert_eq!(batch_sizes, vec![1, 9]);
    for r in 0..3 {
        assert_eq!(net.executed[r].len(), 10, "replica {r}");
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn batched_decisions_survive_view_change() {
    let mut net = Net::with_config(batched_config(PathMode::FastWithFallback, 4, 1));
    for i in 0..6u64 {
        net.client_request_no_drain(i, &i.to_le_bytes());
    }
    net.drain();
    for r in 0..3 {
        assert_eq!(net.executed[r].len(), 6, "replica {r} pre-crash");
    }
    net.crashed[0] = true;
    net.client_request(6, b"after-crash-a");
    net.client_request(7, b"after-crash-b");
    net.fire_timers(|k| matches!(k, TimerKind::Progress));
    net.fire_timers(|k| matches!(k, TimerKind::Progress));
    net.fire_timers(|k| matches!(k, TimerKind::SlotSlowTrigger(_)));
    assert_eq!(net.engines[1].view(), View(1));
    for r in 1..3 {
        assert_eq!(net.executed[r].len(), 8, "replica {r} post-view-change");
        assert_eq!(net.executed[r][6].1.payload, b"after-crash-a");
        assert_eq!(net.executed[r][7].1.payload, b"after-crash-b");
    }
    net.assert_executed_prefix_agreement();
}

#[test]
fn echo_timeout_requests_are_batched_alone() {
    // A Byzantine client sends its request only to the leader, so the echo
    // round never completes and the EchoFallback timer proposes it. That
    // request must get a slot of its own: co-batching it with fully-echoed
    // honest requests would make followers hold the whole prepare (§5.4)
    // and knock the honest requests off the fast path as collateral.
    let mut net = Net::with_config(batched_config(PathMode::FastOnly, 8, 1));
    // Honest request 0 reaches everyone and decides (fills the pipeline is
    // not an issue: it executes within the drain).
    net.client_request(0, b"honest-0");
    // Byzantine client: request seen by the leader only.
    let byz = Request { id: RequestId::new(ClientId(2), 0), payload: b"leader-only".to_vec() };
    let fx = net.engines[0].on_client_request(byz);
    net.enqueue(0, fx);
    net.drain();
    // Two more honest requests queue up behind it.
    net.client_request_no_drain(1, b"honest-1");
    net.client_request_no_drain(2, b"honest-2");
    net.drain();
    // The leader proposes the Byzantine request on fallback.
    net.fire_timers(|k| matches!(k, TimerKind::EchoFallback(_)));
    // Every honest request executed everywhere — none were trapped in a
    // held batch with the leader-only request.
    for r in 0..3 {
        let payloads: Vec<&[u8]> = net.executed[r].iter().map(|(_, q)| &q.payload[..]).collect();
        assert!(payloads.contains(&b"honest-0".as_slice()), "replica {r}");
        assert!(payloads.contains(&b"honest-1".as_slice()), "replica {r}");
        assert!(payloads.contains(&b"honest-2".as_slice()), "replica {r}");
    }
    // The leader-only request rode in a singleton batch (held at followers,
    // so it never executed on the fast path — but it stalled only itself).
    let solo_batches: Vec<usize> = net
        .ctb_log
        .iter()
        .filter(|(s, _)| *s == 0)
        .filter_map(|(_, m)| match m {
            CtbMsg::Prepare(p)
                if p.batch.requests().iter().any(|q| q.payload == b"leader-only") =>
            {
                Some(p.batch.len())
            }
            _ => None,
        })
        .collect();
    assert_eq!(solo_batches, vec![1], "leader-only request must be proposed alone");
    net.assert_executed_prefix_agreement();
}

#[test]
fn batch_flush_stops_before_solo_requests() {
    // Drive a lone leader engine by hand: with the pipeline full, the queue
    // accumulates [h1, byz, h2] where `byz` was proposed via echo timeout.
    // Each decide reopens one pipeline slot; the flushes must come out as
    // {h1}, {byz}, {h2} — never co-batching `byz` with an honest request.
    let ring = KeyRing::generate(5, (0..3u32).map(|i| ProcessId::Replica(ReplicaId(i))));
    let mut cfg = EngineConfig::new(ClusterParams::paper_default(), PathMode::FastOnly);
    cfg.max_batch = 8;
    cfg.pipeline_depth = 1;
    let mut leader = Engine::new(ReplicaId(0), cfg, ring);
    let _ = leader.start();
    let mk = |c: u32, s: u64, p: &[u8]| Request {
        id: RequestId::new(ClientId(c), s),
        payload: p.to_vec(),
    };
    // Self-delivers every CtbBroadcast (the loopback the full harness does)
    // and reports the proposed batches, in order.
    let mut k = 1u64;
    let mut batches_in = move |leader: &mut Engine, mut fx: Vec<Effect>| -> Vec<Vec<Vec<u8>>> {
        let mut batches = Vec::new();
        let mut i = 0;
        while i < fx.len() {
            if let Effect::CtbBroadcast(msg) = fx[i].clone() {
                if let CtbMsg::Prepare(p) = &msg {
                    batches.push(
                        p.batch.requests().iter().map(|q| q.payload.clone()).collect::<Vec<_>>(),
                    );
                }
                let more = leader.on_ctb_deliver(ReplicaId(0), SeqId(k), msg);
                k += 1;
                fx.extend(more);
            }
            i += 1;
        }
        batches
    };
    let echoed = |leader: &mut Engine, req: Request| -> Vec<Effect> {
        let mut fx = leader.on_client_request(req.clone());
        fx.extend(leader.on_echo(ReplicaId(1), req.clone()));
        fx.extend(leader.on_echo(ReplicaId(2), req));
        fx
    };
    // Decides `slot` on the leader by injecting both fast-path rounds.
    let decide = |leader: &mut Engine, slot: Slot| -> Vec<Effect> {
        let mut fx = Vec::new();
        for r in 0..3u32 {
            let m = ubft_core::msg::TbMsg::WillCertify { view: View(0), slot };
            fx.extend(leader.on_tb_deliver(ReplicaId(r), m));
        }
        for r in 0..3u32 {
            let m = ubft_core::msg::TbMsg::WillCommit { view: View(0), slot };
            fx.extend(leader.on_tb_deliver(ReplicaId(r), m));
        }
        fx
    };

    // h0 fills the single pipeline slot.
    let fx = echoed(&mut leader, mk(1, 0, b"h0"));
    assert_eq!(batches_in(&mut leader, fx), vec![vec![b"h0".to_vec()]]);
    // h1 queues (pipeline full), then byz via echo timeout, then h2.
    let byz = mk(2, 0, b"byz");
    let fx = echoed(&mut leader, mk(1, 1, b"h1"));
    assert!(batches_in(&mut leader, fx).is_empty());
    let mut fx = leader.on_client_request(byz.clone());
    fx.extend(leader.on_timer(TimerKind::EchoFallback(byz.id)));
    assert!(batches_in(&mut leader, fx).is_empty());
    let fx = echoed(&mut leader, mk(1, 2, b"h2"));
    assert!(batches_in(&mut leader, fx).is_empty());

    // Deciding h0's slot flushes h1 alone: the flush stops *before* byz.
    let fx = decide(&mut leader, Slot(0));
    assert_eq!(batches_in(&mut leader, fx), vec![vec![b"h1".to_vec()]]);
    // Deciding h1's slot flushes byz in a slot of its own.
    let fx = decide(&mut leader, Slot(1));
    assert_eq!(batches_in(&mut leader, fx), vec![vec![b"byz".to_vec()]]);
    // And h2 follows normally.
    let fx = decide(&mut leader, Slot(2));
    assert_eq!(batches_in(&mut leader, fx), vec![vec![b"h2".to_vec()]]);
}

#[test]
fn unbatched_config_proposes_one_request_per_slot() {
    // max_batch = 1 with the default (window-wide) pipeline reproduces the
    // unbatched engine: every request gets its own slot.
    let mut net = Net::new(PathMode::FastOnly);
    for i in 0..10u64 {
        net.client_request_no_drain(i, &i.to_le_bytes());
    }
    net.drain();
    let batch_sizes: Vec<usize> = net
        .ctb_log
        .iter()
        .filter(|(s, _)| *s == 0)
        .filter_map(|(_, m)| match m {
            CtbMsg::Prepare(p) => Some(p.batch.len()),
            _ => None,
        })
        .collect();
    assert_eq!(batch_sizes, vec![1; 10]);
    net.assert_executed_prefix_agreement();
}

#[test]
fn fast_path_is_signature_free() {
    let mut net = Net::new(PathMode::FastOnly);
    for r in 0..3 {
        let _ = net.engines[r].take_crypto_ops();
    }
    net.client_request(0, b"free");
    for r in 0..3 {
        let ops = net.engines[r].take_crypto_ops();
        assert_eq!(ops.signs, 0, "replica {r} signed on the fast path");
        assert_eq!(ops.verifies, 0, "replica {r} verified on the fast path");
    }
}

/// Decides one request while a replica is down: the echo round and the
/// fast path both lack unanimity, so the echo-fallback and slow-path
/// timers carry the slot.
fn decide_degraded(net: &mut Net, seq: u64, payload: &[u8]) {
    net.client_request(seq, payload);
    net.fire_timers(|k| matches!(k, TimerKind::EchoFallback(_)));
    net.fire_timers(|k| matches!(k, TimerKind::SlotSlowTrigger(_)));
}

#[test]
fn replacement_node_rejoins_and_converges() {
    // Small window so checkpoints (and therefore state transfer) happen
    // within a short run: crash follower 2, decide two windows' worth of
    // slots without it, replace it, then keep going until the next
    // checkpoint hands it the state it cannot replay.
    let params = ClusterParams::paper_default().with_window(16);
    let mut net = Net::with_params(PathMode::FastWithFallback, params);
    for i in 0..10u64 {
        net.client_request(i, &i.to_le_bytes());
    }
    net.crashed[2] = true;
    for i in 10..40u64 {
        decide_degraded(&mut net, i, &i.to_le_bytes());
    }
    assert_eq!(net.engines[0].exec_next(), Slot(40));

    net.replace(2);
    let diag = net.engines[2].diag();
    assert!(!diag.joining, "join must complete once both acks are in");
    // The join adopted the latest stable checkpoint (slot 32 with window
    // 16), transferred the state below it, and replayed the certified
    // recent decisions above it.
    assert!(net.engines[2].exec_next() >= Slot(32), "checkpoint not adopted");

    // New traffic flows through all three replicas again (full fast-path
    // unanimity, no timers); the next checkpoints heal whatever the
    // bounded replay missed.
    for i in 40..60u64 {
        net.client_request(i, &i.to_le_bytes());
    }
    assert_eq!(net.engines[0].exec_next(), Slot(60));
    assert_eq!(net.engines[2].exec_next(), Slot(60), "replacement lagging");
    let digest = net.apps[0].snapshot_digest();
    assert_eq!(net.apps[1].snapshot_digest(), digest);
    assert_eq!(net.apps[2].snapshot_digest(), digest, "replacement diverged");
    // The replacement's own execution log is a clean suffix: it starts at
    // its state-transfer base, not at genesis.
    assert!(net.executed[2].first().is_some_and(|(s, _)| *s >= Slot(32)));
    // Nobody branded anybody: a replacement is not misbehaviour.
    assert!(net.brands.is_empty(), "spurious byzantine brands: {:?}", net.brands);
}

#[test]
fn replacement_leader_is_replaced_and_group_reelects() {
    // Crash the *leader*, let the view change elect replica 1, then boot
    // leader 0's replacement: it must adopt view 1 from the acks and act
    // as a follower, not re-propose as a stale leader of view 0.
    let mut net = Net::new(PathMode::FastWithFallback);
    net.client_request(0, b"before");
    net.crashed[0] = true;
    net.client_request(1, b"during");
    net.fire_timers(|k| matches!(k, TimerKind::Progress));
    net.fire_timers(|k| matches!(k, TimerKind::Progress));
    net.fire_timers(|k| matches!(k, TimerKind::SlotSlowTrigger(_)));
    assert_eq!(net.engines[1].view(), View(1));

    net.replace(0);
    assert!(!net.engines[0].diag().joining);
    assert_eq!(net.engines[0].view(), View(1), "joiner must adopt the acks' view");
    assert!(!net.engines[0].is_leader(), "view 1 is led by replica 1");

    // The replaced node participates in new decisions immediately. Slot 0
    // decided on the certificate-free fast path before the crash, so the
    // joiner cannot replay it (only the next checkpoint covers it); slot 1
    // came with a slow-path certificate and replayed during the join.
    net.client_request(2, b"after");
    for r in 1..3 {
        assert_eq!(net.engines[r].decided_count(), 3, "replica {r}");
    }
    assert!(net.engines[0].decided_count() >= 2, "joiner missed the replay or the new slot");
    assert_eq!(net.apps[1].snapshot_digest(), net.apps[2].snapshot_digest());
    assert!(net.brands.is_empty(), "spurious byzantine brands: {:?}", net.brands);
}

#[test]
fn join_waits_for_quorum_acks() {
    let mut net = Net::new(PathMode::FastOnly);
    net.client_request(0, b"x");
    net.crashed[2] = true;
    net.client_request(1, b"y");
    // Drive the handshake by hand: a single ack must not complete it.
    net.crashed[2] = false;
    net.engines[2] = Engine::new(ReplicaId(2), net.cfg.clone(), net.ring.clone());
    let fx = net.engines[2].begin_join(SeqId(0));
    let joins = fx
        .iter()
        .filter(|e| {
            matches!(e, Effect::SendReplica { msg: ubft_core::msg::DirectMsg::Join { .. }, .. })
        })
        .count();
    assert_eq!(joins, 2, "one Join per peer");
    assert!(net.engines[2].diag().joining);
    let ack = net.engines[0].on_join(ReplicaId(2));
    let [Effect::SendReplica {
        msg: ubft_core::msg::DirectMsg::JoinAck { view, streams, commits },
        ..
    }] = &ack[..]
    else {
        panic!("expected one JoinAck, got {ack:?}");
    };
    let fx = net.engines[2].on_join_ack(ReplicaId(0), *view, streams.clone(), commits.clone());
    assert!(fx.is_empty(), "one ack is below the f+1 quorum");
    assert!(net.engines[2].diag().joining, "must keep waiting for a second ack");
}

#[test]
fn equivocation_sequence_recorded_in_diag() {
    // The `_k` regression: the equivocating sequence number must survive
    // into the diagnostics, not be dropped on the floor.
    let mut net = Net::new(PathMode::FastOnly);
    let fx = net.engines[1].on_ctb_equivocation(ReplicaId(0), SeqId(7));
    assert!(matches!(
        &fx[..],
        [Effect::ByzantineDetected { replica: ReplicaId(0), reason }] if reason.contains("k=7")
    ));
    let diag = net.engines[1].diag();
    assert_eq!(diag.equivocations, vec![(ReplicaId(0), SeqId(7))]);
    // Only the first proof per stream is recorded; the stream is blocked.
    let fx = net.engines[1].on_ctb_equivocation(ReplicaId(0), SeqId(9));
    assert!(fx.is_empty());
    assert_eq!(net.engines[1].diag().equivocations, vec![(ReplicaId(0), SeqId(7))]);
}
