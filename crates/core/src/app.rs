//! The replicated-application interface.

use ubft_crypto::Digest;
use ubft_types::Duration;

/// A deterministic state machine replicated by uBFT.
///
/// Implementations must be deterministic: identical request sequences yield
/// identical outputs and snapshots on every replica — that is the whole
/// premise of SMR.
pub trait App {
    /// Executes one request, returning the response payload.
    fn execute(&mut self, request: &[u8]) -> Vec<u8>;

    /// A digest of the current application state (for checkpoints).
    fn snapshot_digest(&self) -> Digest;

    /// Serializes the full application state for transfer to a replacement
    /// node. Must capture everything [`App::restore_bytes`] needs to make
    /// a fresh instance indistinguishable from this one — in particular,
    /// `restore_bytes(snapshot_bytes())` must reproduce
    /// [`App::snapshot_digest`] exactly, which is how a joiner verifies a
    /// transferred snapshot against the certified checkpoint digest
    /// without trusting the serving replica.
    fn snapshot_bytes(&self) -> Vec<u8>;

    /// Replaces the application state with a previously serialized
    /// snapshot (state transfer to a replacement node).
    fn restore_bytes(&mut self, bytes: &[u8]);

    /// The modelled per-request CPU cost charged in virtual time. Real
    /// applications in the paper (Memcached, Redis, Liquibook) have heavier
    /// stacks than our in-process reimplementations, so each app carries a
    /// calibration constant (DESIGN.md §1).
    fn execute_cost(&self, request: &[u8]) -> Duration {
        let _ = request;
        Duration::from_nanos(200)
    }

    /// A fresh instance of this application at genesis, used by the safety
    /// auditor as its *sequential model*: the canonical decided request
    /// sequence is replayed through it and every replica's state digest is
    /// compared against the model's (linearizability by construction —
    /// replicated execution must be indistinguishable from one sequential
    /// machine). `None` — the default — skips model-based auditing for
    /// applications that do not implement it.
    fn sequential_model(&self) -> Option<Box<dyn App>> {
        None
    }

    /// Human-readable name used by the benchmark harness.
    fn name(&self) -> &'static str {
        "app"
    }
}

/// The trivial no-op application used in Figure 8: replies with a payload of
/// the same size as the request.
#[derive(Clone, Debug, Default)]
pub struct NoopApp {
    executed: u64,
}

impl NoopApp {
    /// Creates a fresh no-op app.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of requests executed.
    pub fn executed(&self) -> u64 {
        self.executed
    }
}

impl App for NoopApp {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        self.executed += 1;
        request.to_vec()
    }

    fn snapshot_digest(&self) -> Digest {
        ubft_crypto::sha256(&self.executed.to_le_bytes())
    }

    fn snapshot_bytes(&self) -> Vec<u8> {
        self.executed.to_le_bytes().to_vec()
    }

    fn restore_bytes(&mut self, bytes: &[u8]) {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[..8]);
        self.executed = u64::from_le_bytes(b);
    }

    fn execute_cost(&self, _request: &[u8]) -> Duration {
        Duration::from_nanos(100)
    }

    fn sequential_model(&self) -> Option<Box<dyn App>> {
        Some(Box::new(NoopApp::new()))
    }

    fn name(&self) -> &'static str {
        "noop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_echoes_request() {
        let mut a = NoopApp::new();
        assert_eq!(a.execute(b"ping"), b"ping");
        assert_eq!(a.executed(), 1);
        assert_eq!(a.name(), "noop");
    }

    #[test]
    fn noop_snapshot_tracks_history_length() {
        let mut a = NoopApp::new();
        let d0 = a.snapshot_digest();
        a.execute(b"x");
        let d1 = a.snapshot_digest();
        assert_ne!(d0, d1);
        // Determinism: a second instance with the same history matches.
        let mut b = NoopApp::new();
        b.execute(b"anything");
        assert_eq!(b.snapshot_digest(), d1);
    }

    #[test]
    fn snapshot_roundtrip_reproduces_digest() {
        let mut a = NoopApp::new();
        a.execute(b"one");
        a.execute(b"two");
        let mut b = NoopApp::new();
        b.restore_bytes(&a.snapshot_bytes());
        assert_eq!(b.snapshot_digest(), a.snapshot_digest());
        assert_eq!(b.executed(), 2);
    }

    #[test]
    fn default_cost_is_small() {
        let a = NoopApp::new();
        assert!(a.execute_cost(b"x") < Duration::from_micros(1));
    }
}
