//! A deterministic bounded map with least-recently-*written* eviction.
//!
//! The engine's per-client bookkeeping (the request-dedup table, the
//! runtime's last-reply cache) is unbounded in the paper prototype: one
//! entry per client that ever issued a request. [`LruMap`] bounds it with
//! a capacity knob while preserving the property the rest of the stack
//! depends on: **eviction is a deterministic function of the insert
//! sequence**. Every insert gets a unique monotone stamp; when the map
//! exceeds its capacity the entry with the *smallest* stamp among the
//! unpinned ones is evicted. Stamps are unique, so there are no ties —
//! two replicas that perform the same inserts in the same order evict the
//! same keys, regardless of hash-map iteration order. That is what keeps
//! the checkpoint-certified dedup table identical across correct replicas
//! when a cap is set.
//!
//! Reads are deliberately *non-touching* (`get` does not refresh the
//! stamp): a dedup lookup on a retransmitted request must not perturb the
//! eviction order, because retransmission timing is not part of the
//! replicated state.
//!
//! Pinning: [`LruMap::insert`] takes a predicate naming keys that must
//! not be evicted (e.g. clients with a request still in flight through
//! consensus). Pins stretch the capacity — the map grows past `cap`
//! rather than evict a pinned entry, and shrinks back as pins clear.

use std::collections::HashMap;
use std::hash::Hash;

/// Bounded map with deterministic least-recently-written eviction.
/// See the module docs for the eviction contract.
#[derive(Clone, Debug)]
pub struct LruMap<K, V> {
    map: HashMap<K, (V, u64)>,
    cap: Option<usize>,
    clock: u64,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// An empty map. `cap = None` never evicts (today's unbounded
    /// behavior); `Some(c)` holds at most `c` unpinned entries.
    pub fn new(cap: Option<usize>) -> Self {
        LruMap { map: HashMap::new(), cap, clock: 0 }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Non-touching lookup: does not refresh the entry's recency.
    pub fn get(&self, k: &K) -> Option<&V> {
        self.map.get(k).map(|(v, _)| v)
    }

    /// Resident entries in arbitrary order (callers sort canonically).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, (v, _))| (k, v))
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Inserts (or overwrites) `k`, stamping it most recent, then evicts
    /// the least-recently-written entry for which `pinned` is false if the
    /// map exceeds capacity. Returns the evicted pair, if any. The freshly
    /// inserted key is never the eviction victim.
    pub fn insert(&mut self, k: K, v: V, pinned: impl Fn(&K) -> bool) -> Option<(K, V)> {
        self.clock += 1;
        let stamp = self.clock;
        self.map.insert(k.clone(), (v, stamp));
        let cap = self.cap?;
        if self.map.len() <= cap {
            return None;
        }
        // Deterministic victim: unique stamps mean a unique minimum, so
        // hash-map iteration order cannot influence the choice.
        let victim = self
            .map
            .iter()
            .filter(|(key, (_, s))| *s != stamp && !pinned(key))
            .min_by_key(|(_, (_, s))| *s)
            .map(|(key, _)| key.clone())?;
        self.map.remove(&victim).map(|(v, _)| (victim, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_pin(_: &u32) -> bool {
        false
    }

    #[test]
    fn uncapped_never_evicts() {
        let mut m = LruMap::new(None);
        for i in 0..10_000u32 {
            assert!(m.insert(i, i, no_pin).is_none());
        }
        assert_eq!(m.len(), 10_000);
        assert_eq!(m.get(&0), Some(&0));
    }

    #[test]
    fn evicts_least_recently_written_first() {
        let mut m = LruMap::new(Some(3));
        for i in 0..3u32 {
            assert!(m.insert(i, i * 10, no_pin).is_none());
        }
        // Re-writing 0 refreshes it; 1 is now the oldest write.
        assert!(m.insert(0, 100, no_pin).is_none());
        let evicted = m.insert(3, 30, no_pin);
        assert_eq!(evicted, Some((1, 10)));
        assert_eq!(m.get(&0), Some(&100));
        assert_eq!(m.get(&2), Some(&20));
        assert_eq!(m.get(&3), Some(&30));
    }

    #[test]
    fn get_does_not_touch() {
        let mut m = LruMap::new(Some(2));
        m.insert(1, 1, no_pin);
        m.insert(2, 2, no_pin);
        // Reading 1 must not save it: it is still the oldest write.
        assert_eq!(m.get(&1), Some(&1));
        assert_eq!(m.insert(3, 3, no_pin), Some((1, 1)));
    }

    #[test]
    fn pinned_entries_survive_and_stretch_capacity() {
        let mut m = LruMap::new(Some(2));
        m.insert(1, 1, no_pin);
        m.insert(2, 2, no_pin);
        // 1 is oldest but pinned: 2 goes instead.
        assert_eq!(m.insert(3, 3, |k| *k == 1), Some((2, 2)));
        // Everything resident pinned: the map stretches past its cap.
        assert_eq!(m.insert(4, 4, |k| *k == 1 || *k == 3), None);
        assert_eq!(m.len(), 3);
        // Pins cleared: the stretched map drains back one per insert.
        assert_eq!(m.insert(5, 5, no_pin), Some((1, 1)));
    }

    #[test]
    fn eviction_sequence_is_deterministic() {
        // Two maps fed the same insert sequence evict identically, entry
        // for entry, regardless of internal hash ordering.
        let run = || {
            let mut m = LruMap::new(Some(16));
            let mut evictions = Vec::new();
            for i in 0..1000u32 {
                let k = (i * 7) % 97;
                if let Some((k, _)) = m.insert(k, i, no_pin) {
                    evictions.push(k);
                }
            }
            (evictions, m.len())
        };
        assert_eq!(run(), run());
    }
}
