//! The uBFT client state machine.
//!
//! Clients send unsigned requests to *all* replicas (the fast path's echo
//! round makes this safe, §5.4) and accept a result once `f + 1` replicas
//! return matching payloads.

use ubft_crypto::{sha256, Digest};
use ubft_types::{ClientId, ReplicaId, RequestId};

use crate::msg::{Reply, Request};

/// Effects emitted by the client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientEffect {
    /// Send `req` to replica `to`.
    SendRequest {
        /// Destination replica.
        to: ReplicaId,
        /// The request.
        req: Request,
    },
    /// A result was accepted: `f + 1` matching replies arrived.
    Complete {
        /// The request that completed.
        id: RequestId,
        /// The agreed response payload.
        payload: Vec<u8>,
    },
}

/// A closed-loop uBFT client: one outstanding request at a time.
#[derive(Clone, Debug)]
pub struct Client {
    id: ClientId,
    replicas: Vec<ReplicaId>,
    quorum: usize,
    next_seq: u64,
    current: Option<RequestId>,
    /// The in-flight request, kept for retransmission.
    current_req: Option<Request>,
    votes: Vec<(ReplicaId, Digest)>,
    done: bool,
}

impl Client {
    /// Creates a client that needs `quorum` (`f + 1`) matching replies.
    pub fn new(id: ClientId, replicas: Vec<ReplicaId>, quorum: usize) -> Self {
        assert!(quorum >= 1 && quorum <= replicas.len());
        Client {
            id,
            replicas,
            quorum,
            next_seq: 0,
            current: None,
            current_req: None,
            votes: Vec::new(),
            done: true,
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Whether the previous request completed (a new one may be issued).
    pub fn is_idle(&self) -> bool {
        self.done
    }

    /// The id of the request in flight, if any.
    pub fn in_flight(&self) -> Option<RequestId> {
        if self.done {
            None
        } else {
            self.current
        }
    }

    /// Issues the next request with the given payload.
    ///
    /// # Panics
    ///
    /// Panics if a request is still in flight.
    pub fn issue(&mut self, payload: Vec<u8>) -> (RequestId, Vec<ClientEffect>) {
        assert!(self.done, "previous request still in flight");
        let id = RequestId::new(self.id, self.next_seq);
        self.next_seq += 1;
        self.current = Some(id);
        self.votes.clear();
        self.done = false;
        let req = Request { id, payload };
        self.current_req = Some(req.clone());
        let fx = self
            .replicas
            .iter()
            .map(|&to| ClientEffect::SendRequest { to, req: req.clone() })
            .collect();
        (id, fx)
    }

    /// Re-sends the in-flight request to every replica (no effect when
    /// idle). Clients retransmit on a timeout: a request or reply lost to
    /// a partition or crash must not stall the closed loop forever —
    /// replicas deduplicate, and executed requests are answered from
    /// their last-reply cache.
    pub fn retransmit(&mut self) -> Vec<ClientEffect> {
        if self.done {
            return Vec::new();
        }
        let Some(req) = self.current_req.clone() else {
            return Vec::new();
        };
        self.replicas.iter().map(|&to| ClientEffect::SendRequest { to, req: req.clone() }).collect()
    }

    /// Feeds a reply from a replica.
    pub fn on_reply(&mut self, reply: Reply) -> Vec<ClientEffect> {
        if self.done || self.current != Some(reply.id) {
            return Vec::new();
        }
        if self.votes.iter().any(|(r, _)| *r == reply.replica) {
            return Vec::new();
        }
        let digest = sha256(&reply.payload);
        self.votes.push((reply.replica, digest));
        let matching = self.votes.iter().filter(|(_, d)| *d == digest).count();
        if matching >= self.quorum {
            self.done = true;
            return vec![ClientEffect::Complete { id: reply.id, payload: reply.payload }];
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> Client {
        Client::new(ClientId(7), vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)], 2)
    }

    fn reply(c: &Client, replica: u32, payload: &[u8]) -> Reply {
        Reply { id: c.in_flight().unwrap(), replica: ReplicaId(replica), payload: payload.to_vec() }
    }

    #[test]
    fn issue_sends_to_all_replicas() {
        let mut c = client();
        let (id, fx) = c.issue(b"hi".to_vec());
        assert_eq!(fx.len(), 3);
        assert_eq!(id.seq, 0);
        assert!(!c.is_idle());
    }

    #[test]
    fn completes_on_quorum() {
        let mut c = client();
        c.issue(b"req".to_vec());
        assert!(c.on_reply(reply(&c, 0, b"out")).is_empty());
        let fx = c.on_reply(reply(&c, 1, b"out"));
        assert_eq!(
            fx,
            vec![ClientEffect::Complete {
                id: RequestId::new(ClientId(7), 0),
                payload: b"out".to_vec()
            }]
        );
        assert!(c.is_idle());
    }

    #[test]
    fn byzantine_reply_cannot_win() {
        let mut c = client();
        c.issue(b"req".to_vec());
        assert!(c.on_reply(reply(&c, 0, b"WRONG")).is_empty());
        assert!(c.on_reply(reply(&c, 1, b"right")).is_empty());
        let fx = c.on_reply(reply(&c, 2, b"right"));
        assert!(matches!(&fx[..], [ClientEffect::Complete { payload, .. }] if payload == b"right"));
    }

    #[test]
    fn duplicate_replica_replies_ignored() {
        let mut c = client();
        c.issue(b"req".to_vec());
        assert!(c.on_reply(reply(&c, 0, b"out")).is_empty());
        assert!(c.on_reply(reply(&c, 0, b"out")).is_empty());
        assert!(!c.is_idle());
    }

    #[test]
    fn stale_replies_ignored() {
        let mut c = client();
        c.issue(b"a".to_vec());
        let stale = Reply {
            id: RequestId::new(ClientId(7), 99),
            replica: ReplicaId(0),
            payload: b"x".to_vec(),
        };
        assert!(c.on_reply(stale).is_empty());
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut c = client();
        let (id0, _) = c.issue(b"a".to_vec());
        c.on_reply(reply(&c, 0, b"r"));
        c.on_reply(reply(&c, 1, b"r"));
        let (id1, _) = c.issue(b"b".to_vec());
        assert_eq!(id0.seq + 1, id1.seq);
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn double_issue_panics() {
        let mut c = client();
        c.issue(b"a".to_vec());
        c.issue(b"b".to_vec());
    }
}
