//! Protocol messages of the uBFT consensus engine.
//!
//! Three transports carry them:
//! * [`CtbMsg`] — equivocation-protected, on the sender's CTBcast stream;
//! * [`TbMsg`] — plain Tail Broadcast (no agreement needed);
//! * [`DirectMsg`] — point-to-point.

use ubft_crypto::{sha256, Certificate, Digest, Signature};
use ubft_types::wire::{decode_seq, encode_seq, Wire, WireReader};
use ubft_types::{ClientId, CodecError, ReplicaId, RequestId, SeqId, Slot, View};

/// A client request as ordered by consensus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Unique id (client + client sequence number).
    pub id: RequestId,
    /// Opaque application payload.
    pub payload: Vec<u8>,
}

impl Request {
    /// The no-op request a new leader proposes for slots it must fill but
    /// for which no request may have been applied.
    pub fn noop(slot: Slot) -> Self {
        Request { id: RequestId::new(ClientId(u32::MAX), slot.0), payload: Vec::new() }
    }

    /// Whether this is a view-change filler no-op.
    pub fn is_noop(&self) -> bool {
        self.id.client == ClientId(u32::MAX)
    }

    /// Content digest used in certificates and response matching.
    pub fn digest(&self) -> Digest {
        sha256(&self.to_bytes())
    }
}

impl Wire for Request {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.payload.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Request { id: RequestId::decode(r)?, payload: Vec::<u8>::decode(r)? })
    }
}

/// An ordered, non-empty group of client requests decided by *one* consensus
/// slot.
///
/// Batching is the throughput lever of the paper's evaluation (Figures
/// 10/11): the fixed per-slot protocol cost — one PREPARE on the leader's
/// CTBcast stream, two all-to-all `WILL_*` rounds, one COMMIT — is paid once
/// per batch instead of once per request. Replicas execute the requests of a
/// decided batch strictly in batch order, so a batch is semantically
/// equivalent to deciding its requests in consecutive slots.
///
/// Invariants: a batch is never empty, and a view-change filler is a batch
/// holding exactly one [`Request::noop`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Batch {
    reqs: Vec<Request>,
}

impl Batch {
    /// Creates a batch from an ordered, non-empty request list.
    ///
    /// # Panics
    ///
    /// Panics if `reqs` is empty (an empty proposal is meaningless; use
    /// [`Batch::noop`] for view-change filler slots).
    pub fn new(reqs: Vec<Request>) -> Self {
        assert!(!reqs.is_empty(), "a batch must carry at least one request");
        Batch { reqs }
    }

    /// Wraps a single request (the `max_batch = 1` degenerate case, which
    /// reproduces the unbatched engine exactly).
    pub fn single(req: Request) -> Self {
        Batch { reqs: vec![req] }
    }

    /// The filler batch a new leader proposes for slots it must close but
    /// for which no request may have been applied (Algorithm 3).
    pub fn noop(slot: Slot) -> Self {
        Batch::single(Request::noop(slot))
    }

    /// Whether this is a view-change filler batch.
    pub fn is_noop(&self) -> bool {
        self.reqs.len() == 1 && self.reqs[0].is_noop()
    }

    /// Number of requests in the batch (always ≥ 1).
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Always `false` — kept for API completeness alongside [`Batch::len`].
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// The requests, in decided execution order.
    pub fn requests(&self) -> &[Request] {
        &self.reqs
    }

    /// Consumes the batch, yielding its requests in execution order (the
    /// hot execution path moves requests out instead of cloning them).
    pub fn into_requests(self) -> Vec<Request> {
        self.reqs
    }

    /// Iterator over the request ids in the batch.
    pub fn ids(&self) -> impl Iterator<Item = RequestId> + '_ {
        self.reqs.iter().map(|r| r.id)
    }

    /// Combined content digest covering every request in order; this is what
    /// certificates bind and what `must_propose` compares across views.
    pub fn digest(&self) -> Digest {
        sha256(&self.to_bytes())
    }
}

impl Wire for Batch {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_seq(&self.reqs, buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let reqs: Vec<Request> = decode_seq(r)?;
        if reqs.is_empty() {
            // An empty batch never appears on an honest stream; reject it at
            // the codec layer so Byzantine senders are branded upstream.
            return Err(CodecError::Invalid { ty: "Batch" });
        }
        Ok(Batch { reqs })
    }
}

/// A reply from a replica to a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reply {
    /// The request answered.
    pub id: RequestId,
    /// The answering replica.
    pub replica: ReplicaId,
    /// Application output.
    pub payload: Vec<u8>,
}

impl Wire for Reply {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.replica.encode(buf);
        self.payload.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Reply {
            id: RequestId::decode(r)?,
            replica: ReplicaId::decode(r)?,
            payload: Vec::<u8>::decode(r)?,
        })
    }
}

/// A leader's proposal binding an ordered request batch to `slot` in `view`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prepare {
    /// Proposing view.
    pub view: View,
    /// Target consensus slot.
    pub slot: Slot,
    /// The proposed request batch (one or more requests, decided together).
    pub batch: Batch,
}

impl Prepare {
    /// The bytes replicas sign when certifying this proposal.
    pub fn certify_bytes(&self) -> Vec<u8> {
        let mut buf = b"ubft-certify\0".to_vec();
        self.encode(&mut buf);
        buf
    }
}

impl Wire for Prepare {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.slot.encode(buf);
        self.batch.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Prepare { view: View::decode(r)?, slot: Slot::decode(r)?, batch: Batch::decode(r)? })
    }
}

/// An unforgeable proof that the leader proposed `prepare`: `f + 1`
/// signatures over [`Prepare::certify_bytes`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitCert {
    /// The certified proposal.
    pub prepare: Prepare,
    /// `f + 1` signatures from distinct replicas.
    pub cert: Certificate,
}

impl Wire for CommitCert {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.prepare.encode(buf);
        self.cert.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(CommitCert { prepare: Prepare::decode(r)?, cert: Certificate::decode(r)? })
    }
}

/// The content of an application checkpoint: every slot below `base` has
/// been applied, yielding application state `app_digest`. Open slots are
/// `[base, base + window)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointData {
    /// First open (un-checkpointed) slot.
    pub base: Slot,
    /// Digest of the application state after applying slots `< base`.
    pub app_digest: Digest,
    /// Digest of the request-dedup table (highest executed client sequence
    /// per client) after applying slots `< base`. Deterministic across
    /// correct replicas, and *decision-relevant*: a replacement node that
    /// adopts a certified state without this table could re-execute (or
    /// wrongly skip) a request re-proposed across the checkpoint — so it
    /// is certified and transferred alongside the application state.
    pub exec_digest: Digest,
}

impl CheckpointData {
    /// Bytes signed in `CERTIFY_CHECKPOINT` shares.
    pub fn sign_bytes(&self) -> Vec<u8> {
        let mut buf = b"ubft-checkpoint\0".to_vec();
        self.encode(&mut buf);
        buf
    }
}

/// Canonical digest of a request-dedup table (sorted highest-executed
/// sequence per client), as certified by [`CheckpointData::exec_digest`].
pub fn exec_table_digest(table: &[(ClientId, u64)]) -> Digest {
    let mut buf = b"ubft-exec-table\0".to_vec();
    for (client, seq) in table {
        buf.extend_from_slice(&client.0.to_le_bytes());
        buf.extend_from_slice(&seq.to_le_bytes());
    }
    sha256(&buf)
}

impl Wire for CheckpointData {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.base.encode(buf);
        self.app_digest.encode(buf);
        self.exec_digest.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(CheckpointData {
            base: Slot::decode(r)?,
            app_digest: Digest::decode(r)?,
            exec_digest: Digest::decode(r)?,
        })
    }
}

/// An `f + 1`-signed application checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointCert {
    /// What was checkpointed.
    pub data: CheckpointData,
    /// The signatures.
    pub cert: Certificate,
}

impl CheckpointCert {
    /// The genesis checkpoint: nothing applied, empty certificate (valid by
    /// convention, Algorithm 2 line 6).
    pub fn genesis() -> Self {
        CheckpointCert {
            data: CheckpointData {
                base: Slot(0),
                app_digest: Digest::ZERO,
                exec_digest: Digest::ZERO,
            },
            cert: Certificate::new(),
        }
    }

    /// Whether this checkpoint is strictly newer than `other`.
    pub fn supersedes(&self, other: &CheckpointCert) -> bool {
        self.data.base > other.data.base
    }
}

impl Wire for CheckpointCert {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.data.encode(buf);
        self.cert.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(CheckpointCert { data: CheckpointData::decode(r)?, cert: Certificate::decode(r)? })
    }
}

/// A compact, signable snapshot of one replica's consensus-relevant state:
/// its latest checkpoint and its most recent COMMIT per open slot. Used by
/// `CRTFY_VC` (view change, Algorithm 3) and CTBcast summaries (Algorithm 4).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct StateSummary {
    /// The replica's latest stable checkpoint.
    pub checkpoint: Option<CheckpointCert>,
    /// Most recent COMMIT certificate per open slot.
    pub commits: Vec<(Slot, CommitCert)>,
}

impl StateSummary {
    /// Content digest for matching certificate shares.
    pub fn digest(&self) -> Digest {
        sha256(&self.to_bytes())
    }
}

impl Wire for StateSummary {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.checkpoint.encode(buf);
        encode_seq(
            &self.commits.iter().map(|(s, c)| SlotCommit(*s, c.clone())).collect::<Vec<_>>(),
            buf,
        );
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let checkpoint = Option::<CheckpointCert>::decode(r)?;
        let commits: Vec<SlotCommit> = decode_seq(r)?;
        Ok(StateSummary { checkpoint, commits: commits.into_iter().map(|p| (p.0, p.1)).collect() })
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct SlotCommit(Slot, CommitCert);

impl Wire for SlotCommit {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(SlotCommit(Slot::decode(r)?, CommitCert::decode(r)?))
    }
}

/// One view-change certificate: `f + 1` replicas attest that replica
/// `about`'s sealed state is `summary`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VcCert {
    /// Whose state was certified.
    pub about: ReplicaId,
    /// The certified state.
    pub summary: StateSummary,
    /// `f + 1` signatures over [`vc_sign_bytes`].
    pub cert: Certificate,
}

impl Wire for VcCert {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.about.encode(buf);
        self.summary.encode(buf);
        self.cert.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(VcCert {
            about: ReplicaId::decode(r)?,
            summary: StateSummary::decode(r)?,
            cert: Certificate::decode(r)?,
        })
    }
}

/// Bytes signed in a `CRTFY_VC` share about replica `about` in `view`.
pub fn vc_sign_bytes(view: View, about: ReplicaId, summary_digest: &Digest) -> Vec<u8> {
    let mut buf = b"ubft-crtfy-vc\0".to_vec();
    view.encode(&mut buf);
    about.encode(&mut buf);
    summary_digest.encode(&mut buf);
    buf
}

/// Bytes signed in a `CERTIFY_SUMMARY` share: stream `p` has broadcast up to
/// `upto` and its state digest is `digest` (Algorithm 4 line 2).
pub fn summary_sign_bytes(stream: ReplicaId, upto: SeqId, digest: &Digest) -> Vec<u8> {
    let mut buf = b"ubft-summary\0".to_vec();
    stream.encode(&mut buf);
    upto.encode(&mut buf);
    digest.encode(&mut buf);
    buf
}

/// Messages carried on a replica's CTBcast stream (equivocation-protected).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtbMsg {
    /// Leader proposal (Algorithm 2 line 16).
    Prepare(Prepare),
    /// Commit certificate broadcast (line 36).
    Commit(CommitCert),
    /// Stable checkpoint broadcast (line 61 / §5.2).
    Checkpoint(CheckpointCert),
    /// View seal (Algorithm 3 line 6).
    SealView {
        /// The view being *entered* (current + 1).
        view: View,
    },
    /// New-view message from the incoming leader (Algorithm 3 line 15).
    NewView {
        /// The new view.
        view: View,
        /// Certificates about `f + 1` replicas' sealed states.
        certs: Vec<VcCert>,
    },
}

impl Wire for CtbMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CtbMsg::Prepare(p) => {
                0u8.encode(buf);
                p.encode(buf);
            }
            CtbMsg::Commit(c) => {
                1u8.encode(buf);
                c.encode(buf);
            }
            CtbMsg::Checkpoint(c) => {
                2u8.encode(buf);
                c.encode(buf);
            }
            CtbMsg::SealView { view } => {
                3u8.encode(buf);
                view.encode(buf);
            }
            CtbMsg::NewView { view, certs } => {
                4u8.encode(buf);
                view.encode(buf);
                encode_seq(certs, buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(CtbMsg::Prepare(Prepare::decode(r)?)),
            1 => Ok(CtbMsg::Commit(CommitCert::decode(r)?)),
            2 => Ok(CtbMsg::Checkpoint(CheckpointCert::decode(r)?)),
            3 => Ok(CtbMsg::SealView { view: View::decode(r)? }),
            4 => Ok(CtbMsg::NewView { view: View::decode(r)?, certs: decode_seq(r)? }),
            tag => Err(CodecError::BadTag { ty: "CtbMsg", tag }),
        }
    }
}

/// Messages carried on a replica's consensus Tail Broadcast stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TbMsg {
    /// Fast path round 1 promise (Figure 4).
    WillCertify {
        /// Current view.
        view: View,
        /// The slot.
        slot: Slot,
    },
    /// Fast path round 2 promise.
    WillCommit {
        /// Current view.
        view: View,
        /// The slot.
        slot: Slot,
    },
    /// Slow path certification share: a signature over the PREPARE.
    Certify {
        /// The prepare being certified.
        prepare: Prepare,
        /// Signature over [`Prepare::certify_bytes`].
        sig: Signature,
    },
    /// Checkpoint certification share.
    CertifyCheckpoint {
        /// The checkpoint content.
        data: CheckpointData,
        /// Signature over [`CheckpointData::sign_bytes`].
        sig: Signature,
    },
    /// A completed CTBcast summary (Algorithm 4 line 8).
    Summary {
        /// The summarized stream (always the sender).
        upto: SeqId,
        /// The broadcaster's state at `upto`.
        summary: StateSummary,
        /// `f + 1` signatures over [`summary_sign_bytes`].
        cert: Certificate,
    },
}

impl Wire for TbMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            TbMsg::WillCertify { view, slot } => {
                0u8.encode(buf);
                view.encode(buf);
                slot.encode(buf);
            }
            TbMsg::WillCommit { view, slot } => {
                1u8.encode(buf);
                view.encode(buf);
                slot.encode(buf);
            }
            TbMsg::Certify { prepare, sig } => {
                2u8.encode(buf);
                prepare.encode(buf);
                sig.encode(buf);
            }
            TbMsg::CertifyCheckpoint { data, sig } => {
                3u8.encode(buf);
                data.encode(buf);
                sig.encode(buf);
            }
            TbMsg::Summary { upto, summary, cert } => {
                4u8.encode(buf);
                upto.encode(buf);
                summary.encode(buf);
                cert.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(TbMsg::WillCertify { view: View::decode(r)?, slot: Slot::decode(r)? }),
            1 => Ok(TbMsg::WillCommit { view: View::decode(r)?, slot: Slot::decode(r)? }),
            2 => Ok(TbMsg::Certify { prepare: Prepare::decode(r)?, sig: Signature::decode(r)? }),
            3 => Ok(TbMsg::CertifyCheckpoint {
                data: CheckpointData::decode(r)?,
                sig: Signature::decode(r)?,
            }),
            4 => Ok(TbMsg::Summary {
                upto: SeqId::decode(r)?,
                summary: StateSummary::decode(r)?,
                cert: Certificate::decode(r)?,
            }),
            tag => Err(CodecError::BadTag { ty: "TbMsg", tag }),
        }
    }
}

/// One stream's state as reported in a [`DirectMsg::JoinAck`]: where the
/// responder's FIFO interpretation of the stream stands, which view it last
/// saw the stream in, and the stream's latest certified checkpoint. A
/// replacement node adopts these (taking the per-field maximum over `f + 1`
/// acks, so no single replica is trusted) to resume interpreting streams at
/// the live tail instead of from genesis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinStream {
    /// The stream (its designated broadcaster).
    pub stream: ReplicaId,
    /// The next CTBcast id the responder expects on this stream.
    pub fifo_next: SeqId,
    /// The view the responder last saw this stream enter.
    pub view: View,
    /// First slot the responder has seen no `PREPARE` from this stream
    /// for: a replacement *leader* must resume proposing here, not at its
    /// fresh engine's slot 0 — re-preparing a slot its predecessor already
    /// prepared in the same view is indistinguishable from equivocation
    /// and gets the replacement branded Byzantine. Liveness-steering only
    /// (a lie can delay proposals, never decide anything).
    pub next_free: Slot,
    /// The latest checkpoint the responder saw certified on this stream
    /// (`None` if still at genesis).
    pub checkpoint: Option<CheckpointCert>,
}

impl Wire for JoinStream {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.stream.encode(buf);
        self.fifo_next.encode(buf);
        self.view.encode(buf);
        self.next_free.encode(buf);
        self.checkpoint.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(JoinStream {
            stream: ReplicaId::decode(r)?,
            fifo_next: SeqId::decode(r)?,
            view: View::decode(r)?,
            next_free: Slot::decode(r)?,
            checkpoint: Option::<CheckpointCert>::decode(r)?,
        })
    }
}

/// Point-to-point messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirectMsg {
    /// A follower echoing a client request to the leader (§5.4 Echo Req).
    Echo {
        /// The echoed request.
        req: Request,
    },
    /// A view-change certificate share sent to the incoming leader
    /// (Algorithm 3 line 11).
    CertifyVc {
        /// The view being formed.
        view: View,
        /// Whose sealed state this share attests.
        about: ReplicaId,
        /// The attested state.
        summary: StateSummary,
        /// Signature over [`vc_sign_bytes`].
        sig: Signature,
    },
    /// A replacement node announcing itself to a peer (uBFT extended
    /// version, §replacement): "I am `replica`'s fresh incarnation; tell me
    /// where the protocol stands." `reg_floor` is the highest CTBcast id
    /// the joiner recovered from its own stream's register bank on the
    /// memory nodes — peers need not trust it (it only raises the joiner's
    /// own broadcast cursor), it is carried for observability.
    Join {
        /// Highest own-stream id recovered from the SWMR register bank.
        reg_floor: SeqId,
    },
    /// A peer's answer to [`DirectMsg::Join`]: its protocol coordinates.
    /// The joiner acts only on `f + 1` matching-or-dominated acks, and
    /// everything decision-relevant inside (checkpoints, commits) carries
    /// its own `f + 1` certificate, so no single responder is trusted.
    JoinAck {
        /// The responder's current view.
        view: View,
        /// Per-stream FIFO positions, views, and checkpoints.
        streams: Vec<JoinStream>,
        /// The responder's most recent decided slots (certificate-backed),
        /// for replaying decided-but-unexecuted slots above the adopted
        /// checkpoint. Bounded like a [`StateSummary`]'s commit list.
        commits: Vec<(Slot, CommitCert)>,
    },
    /// A summary certification share sent to the stream's broadcaster
    /// (Algorithm 4 line 2).
    CertifySummary {
        /// The summarized stream.
        stream: ReplicaId,
        /// Messages up to this id are covered.
        upto: SeqId,
        /// Digest of the attested [`StateSummary`].
        digest: Digest,
        /// Signature over [`summary_sign_bytes`].
        sig: Signature,
    },
}

impl Wire for DirectMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            DirectMsg::Echo { req } => {
                0u8.encode(buf);
                req.encode(buf);
            }
            DirectMsg::CertifyVc { view, about, summary, sig } => {
                1u8.encode(buf);
                view.encode(buf);
                about.encode(buf);
                summary.encode(buf);
                sig.encode(buf);
            }
            DirectMsg::CertifySummary { stream, upto, digest, sig } => {
                2u8.encode(buf);
                stream.encode(buf);
                upto.encode(buf);
                digest.encode(buf);
                sig.encode(buf);
            }
            DirectMsg::Join { reg_floor } => {
                3u8.encode(buf);
                reg_floor.encode(buf);
            }
            DirectMsg::JoinAck { view, streams, commits } => {
                4u8.encode(buf);
                view.encode(buf);
                encode_seq(streams, buf);
                encode_seq(
                    &commits.iter().map(|(s, c)| SlotCommit(*s, c.clone())).collect::<Vec<_>>(),
                    buf,
                );
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(DirectMsg::Echo { req: Request::decode(r)? }),
            1 => Ok(DirectMsg::CertifyVc {
                view: View::decode(r)?,
                about: ReplicaId::decode(r)?,
                summary: StateSummary::decode(r)?,
                sig: Signature::decode(r)?,
            }),
            2 => Ok(DirectMsg::CertifySummary {
                stream: ReplicaId::decode(r)?,
                upto: SeqId::decode(r)?,
                digest: Digest::decode(r)?,
                sig: Signature::decode(r)?,
            }),
            3 => Ok(DirectMsg::Join { reg_floor: SeqId::decode(r)? }),
            4 => Ok(DirectMsg::JoinAck {
                view: View::decode(r)?,
                streams: decode_seq(r)?,
                commits: {
                    let commits: Vec<SlotCommit> = decode_seq(r)?;
                    commits.into_iter().map(|p| (p.0, p.1)).collect()
                },
            }),
            tag => Err(CodecError::BadTag { ty: "DirectMsg", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubft_types::wire::roundtrip;

    fn req() -> Request {
        Request { id: RequestId::new(ClientId(1), 2), payload: vec![1, 2, 3] }
    }

    fn prepare() -> Prepare {
        Prepare { view: View(1), slot: Slot(2), batch: Batch::single(req()) }
    }

    fn reqs(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| Request { id: RequestId::new(ClientId(1), i), payload: vec![i as u8; 4] })
            .collect()
    }

    #[test]
    fn noop_requests() {
        let n = Request::noop(Slot(4));
        assert!(n.is_noop());
        assert!(!req().is_noop());
        assert_ne!(Request::noop(Slot(4)).digest(), Request::noop(Slot(5)).digest());
    }

    #[test]
    fn noop_batches() {
        let b = Batch::noop(Slot(4));
        assert!(b.is_noop());
        assert_eq!(b.len(), 1);
        assert!(!Batch::single(req()).is_noop());
        // A multi-request batch is never a noop, even if it contains one.
        let mixed = Batch::new(vec![Request::noop(Slot(4)), req()]);
        assert!(!mixed.is_noop());
        assert_ne!(Batch::noop(Slot(4)).digest(), Batch::noop(Slot(5)).digest());
    }

    #[test]
    fn batch_digest_covers_order_and_content() {
        let fwd = Batch::new(reqs(3));
        let mut rev_reqs = reqs(3);
        rev_reqs.reverse();
        let rev = Batch::new(rev_reqs);
        assert_ne!(fwd.digest(), rev.digest(), "order must change the digest");
        assert_eq!(fwd.digest(), Batch::new(reqs(3)).digest());
        assert_ne!(fwd.digest(), Batch::new(reqs(2)).digest());
    }

    #[test]
    fn batch_roundtrips_and_rejects_empty() {
        roundtrip(&Batch::single(req()));
        roundtrip(&Batch::new(reqs(17)));
        let empty: Vec<Request> = Vec::new();
        let mut buf = Vec::new();
        encode_seq(&empty, &mut buf);
        assert!(Batch::from_bytes(&buf).is_err(), "empty batch must not decode");
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn empty_batch_panics() {
        let _ = Batch::new(Vec::new());
    }

    #[test]
    fn all_wire_roundtrips() {
        roundtrip(&req());
        roundtrip(&Reply { id: req().id, replica: ReplicaId(1), payload: b"out".to_vec() });
        roundtrip(&prepare());
        roundtrip(&CommitCert { prepare: prepare(), cert: Certificate::new() });
        roundtrip(&CheckpointCert::genesis());
        roundtrip(&StateSummary::default());
        roundtrip(&StateSummary {
            checkpoint: Some(CheckpointCert::genesis()),
            commits: vec![(Slot(1), CommitCert { prepare: prepare(), cert: Certificate::new() })],
        });
        roundtrip(&CtbMsg::Prepare(prepare()));
        roundtrip(&CtbMsg::Prepare(Prepare {
            view: View(0),
            slot: Slot(7),
            batch: Batch::new(reqs(64)),
        }));
        roundtrip(&CtbMsg::SealView { view: View(3) });
        roundtrip(&CtbMsg::NewView { view: View(3), certs: vec![] });
        roundtrip(&TbMsg::WillCertify { view: View(0), slot: Slot(9) });
        roundtrip(&TbMsg::WillCommit { view: View(0), slot: Slot(9) });
        roundtrip(&TbMsg::Certify { prepare: prepare(), sig: Signature::garbage() });
        roundtrip(&TbMsg::Summary {
            upto: SeqId(64),
            summary: StateSummary::default(),
            cert: Certificate::new(),
        });
        roundtrip(&DirectMsg::Echo { req: req() });
        roundtrip(&DirectMsg::Join { reg_floor: SeqId(17) });
        roundtrip(&DirectMsg::JoinAck {
            view: View(2),
            streams: vec![
                JoinStream {
                    stream: ReplicaId(0),
                    fifo_next: SeqId(41),
                    view: View(2),
                    next_free: Slot(40),
                    checkpoint: Some(CheckpointCert::genesis()),
                },
                JoinStream {
                    stream: ReplicaId(1),
                    fifo_next: SeqId(1),
                    view: View(0),
                    next_free: Slot(0),
                    checkpoint: None,
                },
            ],
            commits: vec![(Slot(9), CommitCert { prepare: prepare(), cert: Certificate::new() })],
        });
    }

    #[test]
    fn checkpoint_supersedes() {
        let g = CheckpointCert::genesis();
        let mut later = g.clone();
        later.data.base = Slot(256);
        assert!(later.supersedes(&g));
        assert!(!g.supersedes(&later));
        assert!(!g.supersedes(&g.clone()));
    }

    #[test]
    fn sign_bytes_domain_separation() {
        let p = prepare();
        assert_ne!(p.certify_bytes(), p.to_bytes());
        let cp =
            CheckpointData { base: Slot(1), app_digest: Digest::ZERO, exec_digest: Digest::ZERO };
        assert_ne!(cp.sign_bytes(), cp.to_bytes());
        let d = Digest::ZERO;
        assert_ne!(
            vc_sign_bytes(View(1), ReplicaId(0), &d),
            summary_sign_bytes(ReplicaId(0), SeqId(1), &d)
        );
    }

    #[test]
    fn summary_digest_changes_with_content() {
        let a = StateSummary::default();
        let b = StateSummary { checkpoint: Some(CheckpointCert::genesis()), commits: vec![] };
        assert_ne!(a.digest(), b.digest());
    }
}
