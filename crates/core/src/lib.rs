//! The uBFT state-machine-replication engine (§5, Appendix B).
//!
//! A PBFT-shaped, leader-based consensus protocol re-engineered for
//! `2f + 1` replicas, finite memory, and microsecond latency:
//!
//! * **Common case, fast path** (Figure 4): `PREPARE` via CTBcast's fast
//!   path, then signature-less `WILL_CERTIFY` / `WILL_COMMIT` rounds of
//!   TBcast; decides after two unanimous rounds.
//! * **Common case, slow path** (Figure 3): `PREPARE` via CTBcast, signed
//!   `CERTIFY` shares aggregated into an unforgeable certificate, and a
//!   `COMMIT` round via CTBcast; decides on `f + 1` matching COMMITs.
//! * **Checkpoints** bound memory: a sliding window of open slots advances
//!   only via `f + 1`-signed application checkpoints.
//! * **CTBcast summaries** (Algorithm 4) restore FIFO interpretation across
//!   the delivery gaps that tail-validity permits, and gate a broadcaster
//!   every `t/2` messages (double buffering) — the mechanism behind the
//!   paper's Figure 11 thrashing result.
//! * **View change** (Algorithm 3) with `SEAL_VIEW` / `CRTFY_VC` /
//!   `NEW_VIEW` preserves applied requests across leader changes.
//! * **Byzantine checks** (Algorithm 5) validate every CTBcast message
//!   in FIFO order; a detectably Byzantine stream is blocked forever.
//!
//! The [`engine::Engine`] is a sans-IO state machine: the runtime feeds it
//! deliveries/timers and executes its [`engine::Effect`]s. Crypto runs
//! inline but is *metered* ([`engine::CryptoOps`]) so the runtime charges
//! virtual time for every signature and verification.

pub mod app;
pub mod client;
pub mod engine;
pub mod lru;
pub mod msg;

pub use app::App;
pub use client::{Client, ClientEffect};
pub use engine::{CryptoOps, Effect, Engine, EngineConfig, PathMode, TimerKind};
pub use lru::LruMap;
pub use msg::{CheckpointCert, CommitCert, CtbMsg, DirectMsg, Prepare, Reply, Request, TbMsg};
