//! The uBFT replica engine: Algorithms 2 (common case), 3 (view change),
//! 4 (summaries), and 5 (Byzantine checks) as one sans-IO state machine.
//!
//! The runtime owns transport, CTBcast instances, registers, the clock, and
//! the application; the engine owns protocol state. Crypto runs inline (the
//! simulation's key ring is cheap) but every operation is metered in
//! [`CryptoOps`] so the runtime charges the paper-calibrated virtual time
//! (sign ≈ 17 µs, verify ≈ 45 µs) before the resulting effects act.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use ubft_crypto::{Certificate, Digest, KeyRing, Signer};
use ubft_types::{ClusterParams, ProcessId, ReplicaId, RequestId, SeqId, Slot, View};

use crate::msg::{
    summary_sign_bytes, vc_sign_bytes, Batch, CheckpointCert, CheckpointData, CommitCert, CtbMsg,
    DirectMsg, JoinStream, Prepare, Request, StateSummary, TbMsg, VcCert,
};

/// Which replication path(s) the engine runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathMode {
    /// Signature-less fast path only (failure-free experiments).
    FastOnly,
    /// Slow path only: sign CERTIFY immediately, skip WILL_* rounds
    /// (the paper's forced-slow-path measurements).
    SlowOnly,
    /// Fast path with slow-path fallback on timeout (deployed mode).
    FastWithFallback,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Cluster shape and windows.
    pub params: ClusterParams,
    /// Path selection.
    pub path: PathMode,
    /// How many of its own CTBcast messages a broadcaster may run ahead of
    /// its last completed summary before blocking (Algorithm 4; the paper
    /// double-buffers with summaries every `t/2`).
    pub summary_half: u64,
    /// Whether the leader waits for follower echoes before proposing
    /// (§5.4's protection against Byzantine clients that send a request
    /// only to the leader). Disabled in the echo ablation.
    pub echo_round: bool,
    /// Most requests the leader packs into one consensus slot. `1` proposes
    /// every request in its own slot (the unbatched paper prototype);
    /// larger values amortize the fixed per-slot protocol cost over many
    /// requests (Fig. 10/11 throughput).
    pub max_batch: usize,
    /// Most slots the leader keeps in flight (proposed but not yet
    /// executed) at once. While the pipeline is full, ready requests
    /// accumulate in the proposal queue — which is exactly what lets
    /// batches larger than one form under load. The default (the full
    /// consensus window) never binds, reproducing the eager unpipelined
    /// proposer exactly.
    pub pipeline_depth: usize,
    /// Whether the engine records a [`DecisionRecord`] for every slot it
    /// decides (drained via [`Engine::take_decisions`]). Off by default:
    /// only audited runs pay the bookkeeping.
    pub record_decisions: bool,
    /// Test-only mutation hook: decide a slot on the *first* WILL_COMMIT /
    /// COMMIT instead of the full quorum — i.e. skip the certificate/quorum
    /// check that makes decisions safe. Exists so the safety auditor's
    /// certified-commit-coverage invariant can be shown to actually fire
    /// (an auditor that cannot fail is untested). Never set in production
    /// configurations.
    #[doc(hidden)]
    pub test_decide_early: bool,
    /// Capacity of the per-client request-dedup table (and, mirrored by
    /// the runtime, the last-reply cache). `None` — the default — keeps
    /// one entry per client forever, the paper prototype's unbounded
    /// behavior. `Some(c)` bounds the table to `c` clients with
    /// deterministic least-recently-executed eviction ([`crate::lru`]);
    /// clients with a request still in flight through consensus are
    /// pinned and never evicted. Like PBFT's bounded last-reply table,
    /// a capped table trades memory for exactly-once coverage: a client
    /// must retransmit before `c` *other* clients execute, or its
    /// retransmission is ordered (and executed) anew.
    pub client_cache_cap: Option<usize>,
}

impl EngineConfig {
    /// Deployed defaults for the given cluster parameters: unbatched
    /// (`max_batch = 1`), with the pipeline bounded only by the consensus
    /// window.
    pub fn new(params: ClusterParams, path: PathMode) -> Self {
        let summary_half = (params.tail / 2).max(1) as u64;
        let pipeline_depth = params.window;
        EngineConfig {
            params,
            path,
            summary_half,
            echo_round: true,
            max_batch: 1,
            pipeline_depth,
            record_decisions: false,
            test_decide_early: false,
            client_cache_cap: None,
        }
    }
}

/// Timers the engine asks the runtime to arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Leader-progress watchdog; fires a view change when stuck.
    Progress,
    /// Fast-path timeout for one slot; starts the slow path.
    SlotSlowTrigger(Slot),
    /// Echo-round fallback: propose even without all echoes.
    EchoFallback(RequestId),
}

/// Metered crypto work, converted to virtual time by the runtime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CryptoOps {
    /// Signatures generated.
    pub signs: u32,
    /// Signatures verified.
    pub verifies: u32,
}

impl CryptoOps {
    /// Adds another batch of operations.
    pub fn add(&mut self, other: CryptoOps) {
        self.signs += other.signs;
        self.verifies += other.verifies;
    }

    /// Whether any work was metered.
    pub fn is_zero(&self) -> bool {
        self.signs == 0 && self.verifies == 0
    }
}

/// Effects the runtime must execute on the engine's behalf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Effect {
    /// Broadcast on this replica's CTBcast stream.
    CtbBroadcast(CtbMsg),
    /// Broadcast on this replica's consensus TBcast stream.
    TbBroadcast(TbMsg),
    /// Send a point-to-point message.
    SendReplica {
        /// Destination.
        to: ReplicaId,
        /// The message.
        msg: DirectMsg,
    },
    /// Apply `req` as slot `slot` to the application and reply to its
    /// client. Emitted strictly in slot order.
    Execute {
        /// The decided slot.
        slot: Slot,
        /// The decided request.
        req: Request,
    },
    /// Ask the application for a state digest after every slot `< base` has
    /// been applied; answer via [`Engine::on_snapshot`].
    RequestSnapshot {
        /// First slot *not* covered by the snapshot.
        base: Slot,
    },
    /// Arm (or re-arm) a timer; the runtime picks the duration and calls
    /// [`Engine::on_timer`] when it fires.
    ArmTimer {
        /// Which timer.
        kind: TimerKind,
    },
    /// The stable checkpoint advanced (bookkeeping hook for the runtime).
    CheckpointAdopted {
        /// New first open slot.
        base: Slot,
    },
    /// The engine adopted a certified checkpoint it cannot reach by local
    /// execution (a replacement node, or a replica that missed a whole
    /// window): the runtime must restore the application to the certified
    /// state at `base` — verified against `app_digest`, so the serving
    /// peer is not trusted — and feed the donor's request-dedup table back
    /// via [`Engine::on_exec_table`] (verified against `exec_digest`)
    /// before executing any later effects.
    StateTransfer {
        /// First slot *not* covered by the transferred state.
        base: Slot,
        /// Certified digest the restored state must match.
        app_digest: Digest,
        /// Certified digest the transferred dedup table must match.
        exec_digest: Digest,
    },
    /// A completed join adopted stream positions: the runtime must move its
    /// CTBcast instances to these cursors (the own-stream entry sets the
    /// broadcaster's next id; peer entries set receiver delivery floors) so
    /// transport-level state agrees with the engine's FIFO adoption.
    AdoptStreams {
        /// `(stream, next_id)` per stream, in no particular order.
        tails: Vec<(ReplicaId, SeqId)>,
    },
    /// The replica moved to a new view (informational).
    ViewChanged {
        /// The new view.
        view: View,
    },
    /// A peer was detected Byzantine and its stream blocked.
    ByzantineDetected {
        /// The culprit.
        replica: ReplicaId,
        /// Human-readable evidence.
        reason: String,
    },
}

/// The evidence path that decided a slot — what an omniscient safety
/// auditor checks against the quorum rules (a fast-path decision takes all
/// `n` WILL_COMMITs; everything else takes an `f + 1` certificate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionEvidence {
    /// Decided by the signature-less fast path on `votes` WILL_COMMITs
    /// (safe only when `votes == n`).
    FastQuorum {
        /// WILL_COMMIT votes held at decision time (including our own).
        votes: usize,
    },
    /// Decided by `commits` matching certificate-backed COMMIT broadcasts
    /// (safe only when `commits >= f + 1`).
    CommitQuorum {
        /// Matching COMMITs delivered at decision time.
        commits: usize,
    },
    /// Replayed by a replacement node from a join ack's commit certificate
    /// (safe only when the certificate carries `shares >= f + 1`).
    JoinReplay {
        /// Signature shares in the verified certificate.
        shares: usize,
    },
}

/// One decided slot, as the engine saw it at the moment of decision.
/// Recorded only when [`EngineConfig::record_decisions`] is set; drained by
/// the runtime via [`Engine::take_decisions`] and handed to the auditor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionRecord {
    /// The decided slot.
    pub slot: Slot,
    /// The view this replica was in when it decided.
    pub view: View,
    /// Content digest of the decided batch.
    pub batch_digest: Digest,
    /// This replica's stable checkpoint base at decision time — the
    /// auditor checks `slot` against the paper's two-window bound from it.
    pub base: Slot,
    /// How the decision was reached.
    pub evidence: DecisionEvidence,
}

/// Per-peer consensus bookkeeping (Algorithm 2 lines 7–12), interpreted
/// strictly in CTBcast-FIFO order.
#[derive(Clone, Debug)]
struct PeerState {
    view: View,
    seal_view: Option<View>,
    new_view: Option<Vec<VcCert>>,
    prepares: BTreeMap<Slot, Prepare>,
    commits: BTreeMap<Slot, CommitCert>,
    checkpoint: CheckpointCert,
    /// Next CTBcast id expected from this peer (FIFO interpretation).
    fifo_next: SeqId,
    /// Out-of-order CTBcast deliveries awaiting their predecessors.
    pending: BTreeMap<SeqId, CtbMsg>,
}

impl PeerState {
    fn new() -> Self {
        PeerState {
            view: View(0),
            seal_view: None,
            new_view: None,
            prepares: BTreeMap::new(),
            commits: BTreeMap::new(),
            checkpoint: CheckpointCert::genesis(),
            fifo_next: SeqId(1),
            pending: BTreeMap::new(),
        }
    }

    fn open_window(&self, window: usize) -> (Slot, Slot) {
        let base = self.checkpoint.data.base;
        (base, Slot(base.0 + window as u64))
    }

    fn in_window(&self, slot: Slot, window: usize) -> bool {
        let (lo, hi) = self.open_window(window);
        slot >= lo && slot < hi
    }

    fn summary(&self) -> StateSummary {
        // A bounded synopsis: the latest commits are the only ones that can
        // still matter (older open slots are decided/checkpointed before the
        // window advances); bounding them keeps summaries and view-change
        // certificates within one transport slot. DESIGN.md §7 records this
        // as a deviation from the unbounded pseudocode.
        const SUMMARY_COMMIT_CAP: usize = 4;
        let skip = self.commits.len().saturating_sub(SUMMARY_COMMIT_CAP);
        StateSummary {
            checkpoint: Some(self.checkpoint.clone()),
            commits: self.commits.iter().skip(skip).map(|(s, c)| (*s, c.clone())).collect(),
        }
    }

    fn apply_summary(&mut self, s: &StateSummary) {
        if let Some(cp) = &s.checkpoint {
            if cp.supersedes(&self.checkpoint) {
                self.checkpoint = cp.clone();
            }
        }
        for (slot, c) in &s.commits {
            self.commits.insert(*slot, c.clone());
        }
    }
}

/// Per-slot consensus state.
#[derive(Clone, Debug, Default)]
struct SlotState {
    /// The accepted proposal (from the current leader's stream).
    prepare: Option<Prepare>,
    /// Prepares seen but held until the client request arrives directly.
    held_prepare: Option<Prepare>,
    will_certify: BTreeSet<ReplicaId>,
    will_commit: BTreeSet<ReplicaId>,
    sent_will_certify: bool,
    sent_will_commit: bool,
    /// View in which this replica promised WILL_COMMIT (view-change duty).
    promised_in: Option<View>,
    /// CERTIFY shares collected over our accepted prepare.
    cert: Certificate,
    sent_certify: bool,
    sent_commit: bool,
    /// Replicas whose COMMIT (with matching prepare) we delivered.
    commit_from: BTreeSet<ReplicaId>,
    decided: Option<Batch>,
}

/// A point-in-time snapshot of an engine's protocol state, for operator
/// dashboards and stall diagnosis (see [`Engine::diag`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineDiag {
    /// The replica.
    pub me: ReplicaId,
    /// Current view.
    pub view: View,
    /// View being sealed, if a view change is in progress.
    pub sealing: Option<View>,
    /// Requests decided so far.
    pub decided: u64,
    /// First slot not yet executed.
    pub exec_next: Slot,
    /// Leader only: next proposal slot.
    pub next_slot: Slot,
    /// Leader only: slots proposed but not yet executed (pipeline fill).
    pub in_flight: u64,
    /// Stable checkpoint base.
    pub checkpoint_base: Slot,
    /// Requests seen but not yet executed.
    pub outstanding: usize,
    /// Leader: requests queued for proposal.
    pub propose_queue: usize,
    /// Undecided slots with an accepted prepare.
    pub open_prepares: usize,
    /// CTBcast messages sent on our own stream.
    pub ctb_sent: u64,
    /// Highest summarized CTBcast id on our own stream.
    pub summary_done: u64,
    /// CTBcast messages blocked behind the summary gate.
    pub ctb_queued: usize,
    /// Peers branded Byzantine.
    pub byzantine: usize,
    /// Proven CTBcast equivocations: `(stream, sequence id)` of the first
    /// conflicting broadcast per branded stream.
    pub equivocations: Vec<(ReplicaId, SeqId)>,
    /// Whether the engine is a replacement node still completing its join.
    pub joining: bool,
}

impl std::fmt::Display for EngineDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "r{} view={} sealing={:?} decided={} exec_next={} next_slot={} in_flight={} cp={} \
             outstanding={} queue={} open_prepares={} ctb sent/summarized/queued={}/{}/{} byz={}",
            self.me.0,
            self.view.0,
            self.sealing.map(|v| v.0),
            self.decided,
            self.exec_next.0,
            self.next_slot.0,
            self.in_flight,
            self.checkpoint_base.0,
            self.outstanding,
            self.propose_queue,
            self.open_prepares,
            self.ctb_sent,
            self.summary_done,
            self.ctb_queued,
            self.byzantine,
        )?;
        for (stream, k) in &self.equivocations {
            write!(f, " equiv=r{}@k{}", stream.0, k.0)?;
        }
        if self.joining {
            write!(f, " joining")?;
        }
        Ok(())
    }
}

/// One peer's [`DirectMsg::JoinAck`], parked until `f + 1` acks arrive.
#[derive(Clone, Debug)]
struct JoinAckData {
    view: View,
    streams: Vec<JoinStream>,
    commits: Vec<(Slot, CommitCert)>,
}

/// A replacement node's in-progress join: the register-bank floor it
/// recovered for its own stream, and the acks collected so far.
#[derive(Clone, Debug)]
struct JoinState {
    reg_floor: SeqId,
    acks: BTreeMap<ReplicaId, JoinAckData>,
}

/// The uBFT replica state machine.
pub struct Engine {
    me: ReplicaId,
    cfg: EngineConfig,
    ring: KeyRing,
    signer: Signer,
    view: View,
    /// Leader only: next slot to propose into.
    next_slot: Slot,
    /// My stable checkpoint.
    checkpoint: CheckpointCert,
    /// Highest checkpoint base already broadcast on our own CTBcast stream.
    /// Peers validate our proposals against the checkpoint they saw on our
    /// stream, so every adoption must be announced there exactly once, and
    /// *before* any proposal into the new window.
    cp_broadcast_base: Slot,
    /// Highest view for which we broadcast SEAL_VIEW on our own stream.
    /// Peers accept our NEW_VIEW only after seeing our seal, so entering a
    /// view as leader must announce the seal first.
    seal_emitted: View,
    /// Next slot to hand to the application.
    exec_next: Slot,
    /// Outstanding snapshot request base (avoid duplicates).
    snapshot_pending: Option<Slot>,
    state: BTreeMap<ReplicaId, PeerState>,
    slots: BTreeMap<Slot, SlotState>,
    byzantine: BTreeSet<ReplicaId>,
    /// Requests received directly from clients.
    seen_requests: HashMap<RequestId, Request>,
    /// Requests seen but not yet executed (liveness tracking).
    outstanding: BTreeMap<RequestId, Request>,
    /// Highest executed client sequence per client (the dedup cache,
    /// like PBFT's last-reply table) — bounded by
    /// [`EngineConfig::client_cache_cap`] with deterministic LRU
    /// eviction, so every correct replica's table (and hence the
    /// checkpoint-certified [`Engine::exec_table`]) stays identical.
    last_exec_seq: crate::lru::LruMap<ubft_types::ClientId, u64>,
    /// Leader: echo counts per request.
    echoes: HashMap<RequestId, BTreeSet<ReplicaId>>,
    /// Leader: requests ready to propose.
    propose_queue: VecDeque<Request>,
    /// Leader: queued requests that must be proposed in a slot of their own
    /// because the echo round never completed for them (§5.4). Co-batching
    /// one with fully-echoed requests would make followers hold the whole
    /// prepare and knock every request in the batch off the fast path.
    propose_solo: HashSet<RequestId>,
    /// Requests already proposed/decided (dedup).
    proposed: HashSet<RequestId>,
    /// Summary gating (Algorithm 4).
    my_ctb_sent: u64,
    summary_done_upto: u64,
    queued_ctb: VecDeque<CtbMsg>,
    /// Summary shares collected (as broadcaster): upto -> digest -> cert.
    summary_shares: BTreeMap<u64, HashMap<Digest, Certificate>>,
    /// View-change shares collected (as incoming leader), keyed by
    /// `(view, about)` — shares signed in different views cover different
    /// bytes and must never be merged into one certificate.
    vc_shares: HashMap<(View, ReplicaId), HashMap<Digest, (StateSummary, Certificate)>>,
    /// Slots with an outstanding WILL_COMMIT promise blocking our SEAL_VIEW.
    sealing: Option<View>,
    /// The view for which we (as leader) have broadcast NEW_VIEW.
    new_view_broadcast: Option<View>,
    /// Certificates already verified (content digest), to avoid re-metering.
    verified_certs: HashSet<Digest>,
    /// Checkpoint certification shares keyed by (base, app digest).
    /// Keyed by the *full* signed data (base, app digest, exec digest):
    /// shares over different exec tables must never mix into one
    /// certificate.
    cp_shares: BTreeMap<(Slot, Digest, Digest), Certificate>,
    /// Checkpoint *data* already proven: assembling our own certificate
    /// from individually verified shares, or verifying any peer's
    /// certificate, proves `(base, app_digest)` once and for all — a
    /// different certificate over the same data adds nothing, so checkpoint
    /// boundaries stop costing every replica two redundant certificate
    /// verifications (the crypto burst that stretched checkpoint gaps).
    verified_cp_data: HashSet<(Slot, Digest, Digest)>,
    /// Decide counter for the progress watchdog.
    decide_count: u64,
    armed_marker: u64,
    /// Consecutive fruitless view changes (PBFT-style timeout backoff);
    /// reset on every decide.
    vc_streak: u32,
    /// Replacement-node join in progress ([`Engine::begin_join`]).
    join: Option<JoinState>,
    /// Proven CTBcast equivocations, one per branded stream.
    equivocations: Vec<(ReplicaId, SeqId)>,
    /// Decisions recorded for the auditor (only when
    /// [`EngineConfig::record_decisions`] is set).
    decisions: Vec<DecisionRecord>,
    ops: CryptoOps,
}

impl Engine {
    /// Creates a replica engine.
    ///
    /// # Panics
    ///
    /// Panics if `ring` has no key for `me`.
    pub fn new(me: ReplicaId, cfg: EngineConfig, ring: KeyRing) -> Self {
        let signer = ring.signer(ProcessId::Replica(me)).expect("key for me");
        let state = cfg.params.replicas().map(|r| (r, PeerState::new())).collect();
        // A request re-proposed across a view change may occupy a second
        // slot, and that slot must land inside the acceptance window —
        // within 2 windows of the first. At most `2 · window · max_batch`
        // distinct clients execute in that span, so flooring the dedup
        // capacity there guarantees an in-flight request's entry is never
        // evicted before its duplicate executes: eviction can only forget
        // clients whose requests are fully settled.
        let dedup_floor = 2 * cfg.params.window * cfg.max_batch.max(1);
        let client_cache_cap = cfg.client_cache_cap.map(|c| c.max(dedup_floor));
        Engine {
            me,
            cfg,
            ring,
            signer,
            view: View(0),
            next_slot: Slot(0),
            checkpoint: CheckpointCert::genesis(),
            cp_broadcast_base: Slot(0),
            seal_emitted: View(0),
            exec_next: Slot(0),
            snapshot_pending: None,
            state,
            slots: BTreeMap::new(),
            byzantine: BTreeSet::new(),
            seen_requests: HashMap::new(),
            outstanding: BTreeMap::new(),
            last_exec_seq: crate::lru::LruMap::new(client_cache_cap),
            echoes: HashMap::new(),
            propose_queue: VecDeque::new(),
            propose_solo: HashSet::new(),
            proposed: HashSet::new(),
            my_ctb_sent: 0,
            summary_done_upto: 0,
            queued_ctb: VecDeque::new(),
            summary_shares: BTreeMap::new(),
            vc_shares: HashMap::new(),
            sealing: None,
            new_view_broadcast: None,
            verified_certs: HashSet::new(),
            cp_shares: BTreeMap::new(),
            verified_cp_data: HashSet::new(),
            decide_count: 0,
            armed_marker: 0,
            vc_streak: 0,
            join: None,
            equivocations: Vec::new(),
            decisions: Vec::new(),
            ops: CryptoOps::default(),
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.me
    }

    /// The current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// The current leader.
    pub fn leader(&self) -> ReplicaId {
        self.view.leader(self.cfg.params.n())
    }

    /// Whether this replica currently leads.
    pub fn is_leader(&self) -> bool {
        self.leader() == self.me
    }

    /// Number of requests decided so far.
    pub fn decided_count(&self) -> u64 {
        self.decide_count
    }

    /// First slot not yet executed.
    pub fn exec_next(&self) -> Slot {
        self.exec_next
    }

    /// Replicas this engine has branded Byzantine.
    pub fn byzantine_peers(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.byzantine.iter().copied()
    }

    /// The next CTBcast id this engine expects from `stream`'s broadcast
    /// sequence (FIFO interpretation position; diagnostics).
    pub fn fifo_position(&self, stream: ReplicaId) -> SeqId {
        self.state.get(&stream).map_or(SeqId(1), |ps| ps.fifo_next)
    }

    /// Snapshots the protocol state for diagnostics.
    pub fn diag(&self) -> EngineDiag {
        EngineDiag {
            me: self.me,
            view: self.view,
            sealing: self.sealing,
            decided: self.decide_count,
            exec_next: self.exec_next,
            next_slot: self.next_slot,
            in_flight: self.in_flight_slots(),
            checkpoint_base: self.checkpoint.data.base,
            outstanding: self.outstanding.len(),
            propose_queue: self.propose_queue.len(),
            open_prepares: self
                .slots
                .values()
                .filter(|s| s.prepare.is_some() && s.decided.is_none())
                .count(),
            ctb_sent: self.my_ctb_sent,
            summary_done: self.summary_done_upto,
            ctb_queued: self.queued_ctb.len(),
            byzantine: self.byzantine.len(),
            equivocations: self.equivocations.clone(),
            joining: self.join.is_some(),
        }
    }

    /// Drains the crypto-operation meter accumulated since the last call.
    pub fn take_crypto_ops(&mut self) -> CryptoOps {
        std::mem::take(&mut self.ops)
    }

    /// Drains the decision records accumulated since the last call (always
    /// empty unless [`EngineConfig::record_decisions`] is set).
    pub fn take_decisions(&mut self) -> Vec<DecisionRecord> {
        std::mem::take(&mut self.decisions)
    }

    /// CTBcast messages sent on our own stream (summary-stall detection).
    pub fn ctb_sent_count(&self) -> u64 {
        self.my_ctb_sent
    }

    /// Highest own-stream CTBcast id covered by a completed summary.
    pub fn ctb_summarized_upto(&self) -> u64 {
        self.summary_done_upto
    }

    /// The summary trigger interval this engine runs with
    /// ([`EngineConfig::summary_half`]) — the boundary the runtime's
    /// summary-stall watchdog compares against, read from the engine so
    /// the two can never drift.
    pub fn summary_half(&self) -> u64 {
        self.cfg.summary_half
    }

    fn quorum(&self) -> usize {
        self.cfg.params.quorum()
    }

    fn n(&self) -> usize {
        self.cfg.params.n()
    }

    fn window(&self) -> usize {
        self.cfg.params.window
    }

    fn sign(&mut self, bytes: &[u8]) -> ubft_crypto::Signature {
        self.ops.signs += 1;
        self.signer.sign(bytes)
    }

    fn verify(&mut self, who: ReplicaId, bytes: &[u8], sig: &ubft_crypto::Signature) -> bool {
        self.ops.verifies += 1;
        self.ring.verify(ProcessId::Replica(who), bytes, sig)
    }

    /// Verifies a certificate once per content; repeated identical
    /// certificates cost nothing (verification caching).
    fn verify_cert(&mut self, cert: &Certificate, bytes: &[u8], quorum: usize) -> bool {
        let mut key = bytes.to_vec();
        use ubft_types::wire::Wire;
        cert.encode(&mut key);
        let digest = ubft_crypto::sha256(&key);
        if self.verified_certs.contains(&digest) {
            return true;
        }
        self.ops.verifies += cert.count() as u32;
        let ok = cert.verify(&self.ring, bytes, quorum);
        if ok {
            self.verified_certs.insert(digest);
        }
        ok
    }

    /// Registers a locally-built certificate as verified (it is made of
    /// shares we already checked), so re-verification costs nothing.
    fn note_own_cert(&mut self, cert: &Certificate, bytes: &[u8]) {
        let mut key = bytes.to_vec();
        use ubft_types::wire::Wire;
        cert.encode(&mut key);
        self.verified_certs.insert(ubft_crypto::sha256(&key));
    }

    // ------------------------------------------------------------------
    // CTBcast emission with summary gating (Algorithm 4 lines 4–9)
    // ------------------------------------------------------------------

    fn ctb_gate_open(&self) -> bool {
        // A joining replacement must not broadcast before it has adopted
        // its own stream's cursor: an id below what peers already
        // interpreted would be dropped as a duplicate forever. Everything
        // queues until the join completes and flushes.
        if self.join.is_some() {
            return false;
        }
        // May run at most `t` messages past the last summarized boundary —
        // the CTBcast tail is the hard budget. With summaries triggered
        // every `t/2` (the default), the next summary is already being
        // collected while the second half of the budget is spent (double
        // buffering, §5.2 footnote 3); triggering only every `t` makes the
        // broadcaster stall at each boundary for a full summary round-trip.
        self.my_ctb_sent < self.summary_done_upto + self.cfg.params.tail as u64
    }

    fn emit_ctb(&mut self, fx: &mut Vec<Effect>, msg: CtbMsg) {
        if self.ctb_gate_open() && self.queued_ctb.is_empty() {
            self.my_ctb_sent += 1;
            fx.push(Effect::CtbBroadcast(msg));
        } else {
            self.queued_ctb.push_back(msg);
        }
    }

    fn flush_ctb_queue(&mut self, fx: &mut Vec<Effect>) {
        while !self.queued_ctb.is_empty() && self.ctb_gate_open() {
            let msg = self.queued_ctb.pop_front().expect("nonempty");
            self.my_ctb_sent += 1;
            fx.push(Effect::CtbBroadcast(msg));
        }
    }

    // ------------------------------------------------------------------
    // Client requests and the echo round (§5.4)
    // ------------------------------------------------------------------

    fn already_executed(&self, id: &RequestId) -> bool {
        self.last_exec_seq.get(&id.client).is_some_and(|hi| *hi > id.seq)
    }

    /// A client request arrived directly at this replica.
    pub fn on_client_request(&mut self, req: Request) -> Vec<Effect> {
        let mut fx = Vec::new();
        if self.already_executed(&req.id) {
            // Executed requests are re-answered by the runtime's last-reply
            // cache; nothing to order again.
            return fx;
        }
        if self.seen_requests.contains_key(&req.id) {
            // A duplicate receipt means the client timed out and is
            // retransmitting: our original echo (or the proposal path) may
            // have been lost to a partition or crash — re-drive it instead
            // of swallowing the request.
            if self.is_leader() {
                self.maybe_enqueue_proposal(req.id);
                self.propose_ready(&mut fx);
            } else {
                let req = self.seen_requests[&req.id].clone();
                fx.push(Effect::SendReplica { to: self.leader(), msg: DirectMsg::Echo { req } });
            }
            return fx;
        }
        self.seen_requests.insert(req.id, req.clone());
        self.outstanding.insert(req.id, req.clone());
        if self.is_leader() {
            self.echoes.entry(req.id).or_default();
            self.maybe_enqueue_proposal(req.id);
            if !self.proposed.contains(&req.id) {
                fx.push(Effect::ArmTimer { kind: TimerKind::EchoFallback(req.id) });
            }
        } else {
            fx.push(Effect::SendReplica { to: self.leader(), msg: DirectMsg::Echo { req } });
        }
        // A held prepare may now be acceptable.
        fx.extend(self.retry_held_prepares());
        self.propose_ready(&mut fx);
        fx
    }

    /// A follower echoed a client request to us (we may be the leader).
    pub fn on_echo(&mut self, from: ReplicaId, req: Request) -> Vec<Effect> {
        let mut fx = Vec::new();
        if !self.is_leader() {
            return fx;
        }
        self.echoes.entry(req.id).or_default().insert(from);
        if !self.seen_requests.contains_key(&req.id) && !self.already_executed(&req.id) {
            // We may yet receive it directly; remember the content so an
            // echo-quorum can still propose it.
            self.seen_requests.insert(req.id, req.clone());
            self.outstanding.insert(req.id, req.clone());
        }
        self.maybe_enqueue_proposal(req.id);
        self.propose_ready(&mut fx);
        fx
    }

    /// The echo-fallback timer for `id` fired: propose without full echoes.
    pub fn on_echo_timeout(&mut self, id: RequestId) -> Vec<Effect> {
        let mut fx = Vec::new();
        if self.is_leader() && !self.proposed.contains(&id) {
            if let Some(req) = self.seen_requests.get(&id).cloned() {
                self.proposed.insert(id);
                // Some follower may never have seen this request (that is
                // why the timer fired); keep it out of shared batches so
                // only its own slot is held under §5.4.
                self.propose_solo.insert(id);
                self.propose_queue.push_back(req);
            }
        }
        self.propose_ready(&mut fx);
        fx
    }

    fn maybe_enqueue_proposal(&mut self, id: RequestId) {
        if self.proposed.contains(&id) {
            return;
        }
        let echoes = self.echoes.get(&id).map_or(0, |s| s.len());
        let have_direct = self.seen_requests.contains_key(&id);
        // Echo round: all followers must have echoed (they hold the request)
        // before the leader proposes; the EchoFallback timer covers
        // Byzantine silence. After a view change the echo requirement is
        // dropped (followers accept re-proposals without direct receipt).
        let enough_echoes = !self.cfg.echo_round || echoes >= self.n() - 1 || self.view > View(0);
        if have_direct && enough_echoes {
            self.proposed.insert(id);
            let req = self.seen_requests.get(&id).cloned().expect("have_direct");
            self.propose_queue.push_back(req);
        }
    }

    /// Slots this leader has proposed but not yet executed — the pipeline
    /// fill the `pipeline_depth` gate bounds.
    fn in_flight_slots(&self) -> u64 {
        self.next_slot.0.saturating_sub(self.exec_next.0)
    }

    fn propose_ready(&mut self, fx: &mut Vec<Effect>) {
        if !self.is_leader() || self.sealing.is_some() || self.join.is_some() {
            return;
        }
        // Algorithm 2 line 15: in views > 0 the leader may propose only
        // after broadcasting NEW_VIEW.
        if self.view > View(0) && self.new_view_broadcast != Some(self.view) {
            return;
        }
        // Algorithm 2 line 15: only into open slots; NEW_VIEW must have been
        // broadcast first in views > 0 (ensured by `enter_view_as_leader`).
        let (lo, hi) =
            (self.checkpoint.data.base, Slot(self.checkpoint.data.base.0 + self.window() as u64));
        if self.next_slot < lo {
            self.next_slot = lo;
        }
        let depth = self.cfg.pipeline_depth.max(1) as u64;
        let max_batch = self.cfg.max_batch.max(1);
        while self.next_slot < hi
            && !self.propose_queue.is_empty()
            && self.in_flight_slots() < depth
        {
            // Flush up to `max_batch` queued requests into one slot. While
            // the pipeline is full the queue keeps growing, so under load
            // batches widen toward `max_batch` on their own. Requests whose
            // echo round timed out go alone: the flush stops at (or takes
            // exactly) the first solo request.
            let mut take = 0;
            for req in self.propose_queue.iter().take(max_batch) {
                if self.propose_solo.contains(&req.id) {
                    if take == 0 {
                        take = 1;
                    }
                    break;
                }
                take += 1;
            }
            let reqs: Vec<Request> = self.propose_queue.drain(..take).collect();
            for req in &reqs {
                self.propose_solo.remove(&req.id);
            }
            let slot = self.next_slot;
            self.next_slot = self.next_slot.next();
            let prepare = Prepare { view: self.view, slot, batch: Batch::new(reqs) };
            self.emit_ctb(fx, CtbMsg::Prepare(prepare));
        }
    }

    // ------------------------------------------------------------------
    // CTBcast stream interpretation: FIFO + Byzantine checks (Alg. 5)
    // ------------------------------------------------------------------

    /// A CTBcast message `(k, msg)` was delivered from `stream`.
    pub fn on_ctb_deliver(&mut self, stream: ReplicaId, k: SeqId, msg: CtbMsg) -> Vec<Effect> {
        let mut fx = Vec::new();
        if self.byzantine.contains(&stream) {
            return fx;
        }
        {
            let ps = self.state.get_mut(&stream).expect("known replica");
            if k < ps.fifo_next {
                return fx; // duplicate
            }
            if k > ps.fifo_next {
                ps.pending.insert(k, msg);
                return fx; // gap: wait for predecessors or a summary
            }
        }
        self.process_ctb_in_order(stream, k, msg, &mut fx);
        self.drain_pending(stream, &mut fx);
        fx
    }

    /// CTBcast reported proof of equivocation on `stream` at sequence `k`.
    pub fn on_ctb_equivocation(&mut self, stream: ReplicaId, k: SeqId) -> Vec<Effect> {
        if stream != self.me && !self.byzantine.contains(&stream) {
            // The first proven conflict per stream is the evidence an
            // operator wants; later ones add nothing (the stream is
            // already blocked).
            self.equivocations.push((stream, k));
        }
        self.brand_byzantine(stream, format!("ctbcast equivocation at k={}", k.0))
    }

    fn brand_byzantine(&mut self, who: ReplicaId, reason: String) -> Vec<Effect> {
        if who == self.me || !self.byzantine.insert(who) {
            return Vec::new();
        }
        vec![Effect::ByzantineDetected { replica: who, reason }]
    }

    fn drain_pending(&mut self, stream: ReplicaId, fx: &mut Vec<Effect>) {
        loop {
            if self.byzantine.contains(&stream) {
                return;
            }
            let next = {
                let ps = self.state.get_mut(&stream).expect("known");
                let k = ps.fifo_next;
                match ps.pending.remove(&k) {
                    Some(m) => (k, m),
                    None => return,
                }
            };
            self.process_ctb_in_order(stream, next.0, next.1, fx);
        }
    }

    fn process_ctb_in_order(
        &mut self,
        stream: ReplicaId,
        k: SeqId,
        msg: CtbMsg,
        fx: &mut Vec<Effect>,
    ) {
        {
            let ps = self.state.get_mut(&stream).expect("known");
            debug_assert_eq!(ps.fifo_next, k);
            ps.fifo_next = k.next();
        }
        // Algorithm 5 validity checks; a failure brands the stream.
        if let Err(reason) = self.check_valid(stream, &msg) {
            fx.extend(self.brand_byzantine(stream, reason));
            return;
        }
        match msg {
            CtbMsg::Prepare(p) => self.handle_prepare(stream, p, fx),
            CtbMsg::Commit(c) => self.handle_commit(stream, c, fx),
            CtbMsg::Checkpoint(c) => self.handle_checkpoint_msg(stream, c, fx),
            CtbMsg::SealView { view } => self.handle_seal_view(stream, view, fx),
            CtbMsg::NewView { view, certs } => self.handle_new_view(stream, view, certs, fx),
        }
        // Algorithm 4 line 1: summary shares at every boundary.
        if k.0.is_multiple_of(self.cfg.summary_half) {
            let ps = self.state.get(&stream).expect("known");
            let summary = ps.summary();
            let digest = summary.digest();
            let sig = self.sign(&summary_sign_bytes(stream, k, &digest));
            if stream == self.me {
                // Self-share: start collecting.
                fx.extend(self.accept_summary_share(self.me, k, digest, sig));
            } else {
                fx.push(Effect::SendReplica {
                    to: stream,
                    msg: DirectMsg::CertifySummary { stream, upto: k, digest, sig },
                });
            }
        }
    }

    fn check_valid(&mut self, p: ReplicaId, msg: &CtbMsg) -> Result<(), String> {
        let window = self.window();
        match msg {
            CtbMsg::Prepare(prep) => {
                let ps = self.state.get(&p).expect("known");
                if prep.view.leader(self.n()) != p {
                    return Err(format!("prepare by non-leader of {}", prep.view));
                }
                if ps.view != prep.view {
                    return Err(format!("prepare in {} but peer is in {}", prep.view, ps.view));
                }
                if !ps.in_window(prep.slot, window) {
                    return Err(format!("prepare for {} outside window", prep.slot));
                }
                if ps.prepares.get(&prep.slot).is_some_and(|old| old.view == prep.view) {
                    return Err(format!("double prepare for {}", prep.slot));
                }
                if prep.view > View(0) {
                    let ps = self.state.get(&p).expect("known");
                    let Some(certs) = ps.new_view.clone() else {
                        return Err("prepare before new-view".into());
                    };
                    if let Some(required) = must_propose(prep.slot, &certs) {
                        if required.digest() != prep.batch.digest() {
                            return Err(format!(
                                "prepare for {} ignores committed value",
                                prep.slot
                            ));
                        }
                    }
                }
                Ok(())
            }
            CtbMsg::Commit(c) => {
                let ps = self.state.get(&p).expect("known");
                if !ps.in_window(c.prepare.slot, window) {
                    return Err(format!("commit for {} outside window", c.prepare.slot));
                }
                if c.prepare.view != ps.view {
                    return Err(format!("commit in stale {}", c.prepare.view));
                }
                // The certificate itself: f+1 valid signatures over the
                // prepare. Verified lazily unless we certified it ourselves.
                let bytes = c.prepare.certify_bytes();
                let own =
                    self.slots.get(&c.prepare.slot).and_then(|s| s.prepare.as_ref()).is_some_and(
                        |pp| pp.digest_eq(&c.prepare) && self.slot_cert_complete(c.prepare.slot),
                    );
                if !own && !self.verify_cert(&c.cert.clone(), &bytes, self.quorum()) {
                    return Err("commit with invalid certificate".into());
                }
                Ok(())
            }
            CtbMsg::Checkpoint(c) => {
                let ps = self.state.get(&p).expect("known");
                if !c.supersedes(&ps.checkpoint) {
                    return Err("stale checkpoint".into());
                }
                let proven = self.verified_cp_data.contains(&(
                    c.data.base,
                    c.data.app_digest,
                    c.data.exec_digest,
                ));
                if !proven
                    && !self.verify_cert(&c.cert.clone(), &c.data.sign_bytes(), self.quorum())
                {
                    return Err("checkpoint with invalid certificate".into());
                }
                self.verified_cp_data.insert((c.data.base, c.data.app_digest, c.data.exec_digest));
                Ok(())
            }
            CtbMsg::SealView { view } => {
                let ps = self.state.get(&p).expect("known");
                if ps.view >= *view {
                    return Err(format!("seal of non-future {view}"));
                }
                Ok(())
            }
            CtbMsg::NewView { view, certs } => {
                let ps = self.state.get(&p).expect("known");
                if view.leader(self.n()) != p {
                    return Err(format!("new-view by non-leader of {view}"));
                }
                if ps.view != *view {
                    return Err("new-view for wrong view".into());
                }
                if ps.new_view.is_some() {
                    return Err("duplicate new-view".into());
                }
                if certs.len() < self.quorum() {
                    return Err("new-view with too few certificates".into());
                }
                let mut seen = BTreeSet::new();
                for c in certs {
                    if !seen.insert(c.about) {
                        return Err("new-view with duplicate certificate subject".into());
                    }
                    let digest = c.summary.digest();
                    let bytes = vc_sign_bytes(*view, c.about, &digest);
                    if !self.verify_cert(&c.cert.clone(), &bytes, self.quorum()) {
                        return Err("new-view with invalid certificate".into());
                    }
                }
                Ok(())
            }
        }
    }

    fn slot_cert_complete(&self, slot: Slot) -> bool {
        self.slots.get(&slot).is_some_and(|s| s.cert.count() >= self.quorum())
    }

    // ------------------------------------------------------------------
    // Common case (Algorithm 2)
    // ------------------------------------------------------------------

    fn handle_prepare(&mut self, stream: ReplicaId, prep: Prepare, fx: &mut Vec<Effect>) {
        let ps = self.state.get_mut(&stream).expect("known");
        ps.prepares.insert(prep.slot, prep.clone());
        if prep.view != self.view || !self.in_accept_window(prep.slot) {
            return;
        }
        // §5.4: endorse only requests received directly from the client
        // (no-ops and view-change re-proposals are exempt).
        if prep.view == View(0) && !batch_endorsed(&prep.batch, &self.seen_requests) {
            let entry = self.slots.entry(prep.slot).or_default();
            entry.held_prepare = Some(prep);
            return;
        }
        self.accept_prepare(prep, fx);
    }

    fn retry_held_prepares(&mut self) -> Vec<Effect> {
        let mut fx = Vec::new();
        let held: Vec<Prepare> = self
            .slots
            .values_mut()
            .filter_map(|s| {
                let ok = s
                    .held_prepare
                    .as_ref()
                    .is_some_and(|p| batch_endorsed(&p.batch, &self.seen_requests));
                if ok {
                    s.held_prepare.take()
                } else {
                    None
                }
            })
            .collect();
        for p in held {
            self.accept_prepare(p, &mut fx);
        }
        fx
    }

    fn accept_prepare(&mut self, prep: Prepare, fx: &mut Vec<Effect>) {
        let slot = prep.slot;
        {
            let entry = self.slots.entry(slot).or_default();
            if entry.prepare.is_some() {
                return;
            }
            entry.prepare = Some(prep.clone());
        }
        match self.cfg.path {
            PathMode::FastOnly | PathMode::FastWithFallback => {
                let entry = self.slots.entry(slot).or_default();
                if !entry.sent_will_certify {
                    entry.sent_will_certify = true;
                    fx.push(Effect::TbBroadcast(TbMsg::WillCertify { view: prep.view, slot }));
                }
                if self.cfg.path == PathMode::FastWithFallback {
                    fx.push(Effect::ArmTimer { kind: TimerKind::SlotSlowTrigger(slot) });
                }
            }
            PathMode::SlowOnly => {
                fx.extend(self.start_slow_path(slot));
            }
        }
    }

    /// Starts (or resumes) the slow path for `slot`: sign and broadcast our
    /// CERTIFY share.
    fn start_slow_path(&mut self, slot: Slot) -> Vec<Effect> {
        let mut fx = Vec::new();
        let Some(prep) = self.slots.get(&slot).and_then(|s| s.prepare.clone()) else {
            return fx;
        };
        let entry = self.slots.entry(slot).or_default();
        if entry.sent_certify {
            return fx;
        }
        entry.sent_certify = true;
        let sig = self.sign(&prep.certify_bytes());
        // Our own share counts immediately.
        let entry = self.slots.entry(slot).or_default();
        entry.cert.add(ProcessId::Replica(self.me), sig);
        fx.push(Effect::TbBroadcast(TbMsg::Certify { prepare: prep, sig }));
        fx.extend(self.maybe_commit(slot));
        fx
    }

    /// The fast-path timeout fired for `slot`.
    pub fn on_slot_slow_trigger(&mut self, slot: Slot) -> Vec<Effect> {
        if self.slots.get(&slot).is_some_and(|s| s.decided.is_some()) {
            return Vec::new();
        }
        self.start_slow_path(slot)
    }

    /// A consensus TBcast message arrived from `from`.
    pub fn on_tb_deliver(&mut self, from: ReplicaId, msg: TbMsg) -> Vec<Effect> {
        let mut fx = Vec::new();
        if self.byzantine.contains(&from) {
            return fx;
        }
        match msg {
            TbMsg::WillCertify { view, slot } => {
                if view != self.view || !self.in_accept_window(slot) {
                    return fx;
                }
                let n = self.n();
                let entry = self.slots.entry(slot).or_default();
                entry.will_certify.insert(from);
                if entry.will_certify.len() == n && !entry.sent_will_commit {
                    entry.sent_will_commit = true;
                    entry.promised_in = Some(view);
                    fx.push(Effect::TbBroadcast(TbMsg::WillCommit { view, slot }));
                }
            }
            TbMsg::WillCommit { view, slot } => {
                if view != self.view || !self.in_accept_window(slot) {
                    return fx;
                }
                let entry = self.slots.entry(slot).or_default();
                entry.will_commit.insert(from);
                let votes = entry.will_commit.len();
                // Algorithm 2: the signature-less fast path decides only on
                // *unanimity*. The test_decide_early mutation hook skips
                // that check so the auditor's coverage invariant can be
                // demonstrated to catch the resulting unsafe decision.
                if votes == self.n() || (self.cfg.test_decide_early && votes >= 1) {
                    let leader_prep = self
                        .state
                        .get(&view.leader(self.n()))
                        .and_then(|ps| ps.prepares.get(&slot))
                        .cloned();
                    if let Some(prep) = leader_prep {
                        fx.extend(self.decide(
                            slot,
                            prep.batch,
                            DecisionEvidence::FastQuorum { votes },
                        ));
                    }
                }
            }
            TbMsg::Certify { prepare, sig } => {
                fx.extend(self.handle_certify_share(from, prepare, sig));
            }
            TbMsg::CertifyCheckpoint { data, sig } => {
                fx.extend(self.handle_checkpoint_share(from, data, sig));
            }
            TbMsg::Summary { upto, summary, cert } => {
                fx.extend(self.handle_summary(from, upto, summary, cert));
            }
        }
        fx
    }

    fn handle_certify_share(
        &mut self,
        from: ReplicaId,
        prepare: Prepare,
        sig: ubft_crypto::Signature,
    ) -> Vec<Effect> {
        let mut fx = Vec::new();
        let slot = prepare.slot;
        if prepare.view != self.view || !self.in_accept_window(slot) {
            return fx;
        }
        // Only collect shares matching our accepted prepare.
        let matches = self
            .slots
            .get(&slot)
            .and_then(|s| s.prepare.as_ref())
            .is_some_and(|p| p.digest_eq(&prepare));
        if !matches {
            // We may not have accepted a prepare yet (slow path initiated by
            // a peer); accept it now if valid in the leader's stream.
            if self.slots.get(&slot).and_then(|s| s.prepare.as_ref()).is_none() {
                let in_leader_stream = self
                    .state
                    .get(&prepare.view.leader(self.n()))
                    .and_then(|ps| ps.prepares.get(&slot))
                    .is_some_and(|p| p.digest_eq(&prepare));
                if in_leader_stream {
                    self.accept_prepare(prepare.clone(), &mut fx);
                } else {
                    return fx;
                }
            } else {
                return fx;
            }
        }
        if from != self.me && !self.verify(from, &prepare.certify_bytes(), &sig) {
            return fx;
        }
        // A peer soliciting the slow path recruits us into it, even for a
        // slot we already decided on the fast path: a fast-path decider
        // holds no certificate and its slow trigger skips decided slots,
        // so without this share the peer could be one signature short of
        // `f + 1` forever (the chaos explorer found exactly that — a
        // crashed third replica left a view-changing peer stuck
        // discharging its WILL_COMMIT promise, while the decided replica
        // idled).
        if self.cfg.path != PathMode::FastOnly {
            fx.extend(self.start_slow_path(slot));
        }
        let q = self.quorum();
        let entry = self.slots.entry(slot).or_default();
        entry.cert.add(ProcessId::Replica(from), sig);
        if entry.cert.count() >= q {
            fx.extend(self.maybe_commit(slot));
        }
        fx
    }

    /// Once we hold an `f + 1` certificate for our prepare, broadcast COMMIT
    /// via CTBcast (Algorithm 2 line 36).
    fn maybe_commit(&mut self, slot: Slot) -> Vec<Effect> {
        let mut fx = Vec::new();
        let q = self.quorum();
        let ready = {
            let Some(entry) = self.slots.get(&slot) else { return fx };
            entry.cert.count() >= q && !entry.sent_commit && entry.prepare.is_some()
        };
        if !ready {
            return fx;
        }
        let entry = self.slots.get_mut(&slot).expect("ready");
        entry.sent_commit = true;
        let prepare = entry.prepare.clone().expect("ready");
        let cert = entry.cert.clone();
        self.note_own_cert(&cert, &prepare.certify_bytes());
        self.emit_ctb(&mut fx, CtbMsg::Commit(CommitCert { prepare, cert }));
        fx.extend(self.check_seal_ready());
        fx
    }

    fn handle_commit(&mut self, stream: ReplicaId, c: CommitCert, fx: &mut Vec<Effect>) {
        let slot = c.prepare.slot;
        {
            let ps = self.state.get_mut(&stream).expect("known");
            ps.commits.insert(slot, c.clone());
        }
        if c.prepare.view != self.view || !self.in_accept_window(slot) {
            return;
        }
        // Count COMMITs whose prepare matches; f+1 of them decide the slot
        // (Algorithm 2 lines 38–41).
        let entry = self.slots.entry(slot).or_default();
        if let Some(our_prep) = entry.prepare.clone() {
            if !our_prep.digest_eq(&c.prepare) {
                return; // conflicting commit; view change will sort it out
            }
        } else {
            entry.prepare = Some(c.prepare.clone());
        }
        let entry = self.slots.entry(slot).or_default();
        entry.commit_from.insert(stream);
        let commits = entry.commit_from.len();
        if commits >= self.quorum() || (self.cfg.test_decide_early && commits >= 1) {
            let batch = c.prepare.batch.clone();
            fx.extend(self.decide(slot, batch, DecisionEvidence::CommitQuorum { commits }));
        }
    }

    fn decide(&mut self, slot: Slot, batch: Batch, evidence: DecisionEvidence) -> Vec<Effect> {
        let mut fx = Vec::new();
        let view = self.view;
        let base = self.checkpoint.data.base;
        let record = self.cfg.record_decisions;
        let entry = self.slots.entry(slot).or_default();
        if entry.decided.is_some() {
            return fx;
        }
        if record {
            self.decisions.push(DecisionRecord {
                slot,
                view,
                batch_digest: batch.digest(),
                base,
                evidence,
            });
        }
        // `decide_count` counts individual requests, not slots, so batching
        // leaves the progress-watchdog and throughput accounting comparable
        // across batch sizes.
        self.decide_count += batch.len() as u64;
        entry.decided = Some(batch);
        self.vc_streak = 0;
        self.try_execute(&mut fx);
        // Executed slots leave the pipeline; the gate may have reopened.
        self.propose_ready(&mut fx);
        fx
    }

    fn try_execute(&mut self, fx: &mut Vec<Effect>) {
        // The batch clone releases the `self.slots` borrow; each request is
        // then *moved* into its Execute effect rather than cloned again.
        while let Some(batch) = self.slots.get(&self.exec_next).and_then(|s| s.decided.clone()) {
            for req in batch.into_requests() {
                self.outstanding.remove(&req.id);
                self.propose_solo.remove(&req.id);
                // A request re-proposed across views may occupy two slots;
                // only its first occurrence executes (PBFT-style last-reply
                // dedup).
                if !self.already_executed(&req.id) {
                    let hi = self.last_exec_seq.get(&req.id.client).copied().unwrap_or(0);
                    // No pin predicate here: a pin keyed on local state
                    // (e.g. `outstanding`, which reflects receipt timing)
                    // would make eviction differ across replicas and
                    // break the checkpoint-certified table. The capacity
                    // floor in `Engine::new` is what protects in-flight
                    // duplicates instead — deterministically.
                    self.last_exec_seq.insert(req.id.client, hi.max(req.id.seq + 1), |_| false);
                    fx.push(Effect::Execute { slot: self.exec_next, req });
                }
            }
            self.exec_next = self.exec_next.next();
        }
        // Checkpoint when the whole window is executed (Algorithm 2 line 44).
        let window_end = Slot(self.checkpoint.data.base.0 + self.window() as u64);
        if self.exec_next >= window_end && self.snapshot_pending != Some(window_end) {
            self.snapshot_pending = Some(window_end);
            fx.push(Effect::RequestSnapshot { base: window_end });
        }
    }

    /// The *acceptance* window: one full window beyond the open one.
    ///
    /// A leader proposes into the window its own (already certified)
    /// checkpoint opens, so right after a checkpoint its proposals for the
    /// new window race every peer's adoption of that checkpoint. A peer
    /// whose adoption lags — most visibly a replacement node paying
    /// certificate-verification time — would drop those proposals and the
    /// WILL rounds for them with no way to recover until the *next*
    /// checkpoint. Accepting consensus messages up to `2 × window` ahead
    /// of the local base closes the race for any lag under a full window
    /// while keeping per-slot state bounded (at most two windows of open
    /// slots). Proposing remains confined to the open window.
    fn in_accept_window(&self, slot: Slot) -> bool {
        let base = self.checkpoint.data.base;
        slot >= base && slot < Slot(base.0 + 2 * self.window() as u64)
    }

    // ------------------------------------------------------------------
    // Checkpoints
    // ------------------------------------------------------------------

    /// The request-dedup table (highest executed sequence per client) in
    /// canonical (sorted) order — identical on every correct replica at a
    /// given execution frontier, which is what lets checkpoints certify it.
    pub fn exec_table(&self) -> Vec<(ubft_types::ClientId, u64)> {
        let mut table: Vec<_> = self.last_exec_seq.iter().map(|(c, s)| (*c, *s)).collect();
        table.sort_unstable_by_key(|(c, _)| c.0);
        table
    }

    /// The runtime reports the application digest after applying every slot
    /// `< base`, together with the digest of the dedup table captured at
    /// the same instant ([`crate::msg::exec_table_digest`]).
    pub fn on_snapshot(
        &mut self,
        base: Slot,
        app_digest: Digest,
        exec_digest: Digest,
    ) -> Vec<Effect> {
        let mut fx = Vec::new();
        if self.snapshot_pending != Some(base) {
            return fx;
        }
        self.snapshot_pending = None;
        let data = CheckpointData { base, app_digest, exec_digest };
        let sig = self.sign(&data.sign_bytes());
        fx.push(Effect::TbBroadcast(TbMsg::CertifyCheckpoint { data, sig }));
        // Our own share participates too.
        fx.extend(self.handle_checkpoint_share(self.me, data, sig));
        fx
    }

    /// A state transfer delivered the donor's request-dedup table for the
    /// checkpoint at `base`. Adopted only when it hashes to the *certified*
    /// [`CheckpointData::exec_digest`] (the donor is untrusted). Adoption
    /// also prunes request bookkeeping the table proves executed — without
    /// this, a replacement node keeps long-completed requests `outstanding`
    /// forever, its progress watchdog spirals through views, and it ends
    /// up isolated (a cascade the chaos explorer found).
    pub fn on_exec_table(
        &mut self,
        base: Slot,
        table: Vec<(ubft_types::ClientId, u64)>,
    ) -> Vec<Effect> {
        let mut fx = Vec::new();
        if self.checkpoint.data.base != base
            || crate::msg::exec_table_digest(&table) != self.checkpoint.data.exec_digest
        {
            return fx;
        }
        for (client, seq) in table {
            let hi = self.last_exec_seq.get(&client).copied().unwrap_or(0);
            self.last_exec_seq.insert(client, hi.max(seq), |_| false);
        }
        self.seen_requests
            .retain(|id, _| id.seq >= *self.last_exec_seq.get(&id.client).unwrap_or(&0));
        self.outstanding
            .retain(|id, _| id.seq >= *self.last_exec_seq.get(&id.client).unwrap_or(&0));
        self.propose_queue
            .retain(|req| req.id.seq >= *self.last_exec_seq.get(&req.id.client).unwrap_or(&0));
        self.propose_ready(&mut fx);
        fx
    }

    fn handle_checkpoint_share(
        &mut self,
        from: ReplicaId,
        data: CheckpointData,
        sig: ubft_crypto::Signature,
    ) -> Vec<Effect> {
        let mut fx = Vec::new();
        if data.base <= self.checkpoint.data.base {
            return fx;
        }
        if from != self.me && !self.verify(from, &data.sign_bytes(), &sig) {
            return fx;
        }
        let quorum = self.quorum();
        let entry =
            self.cp_shares.entry((data.base, data.app_digest, data.exec_digest)).or_default();
        entry.add(ProcessId::Replica(from), sig);
        if entry.count() >= quorum {
            let cert = entry.clone();
            self.note_own_cert(&cert, &data.sign_bytes());
            self.verified_cp_data.insert((data.base, data.app_digest, data.exec_digest));
            let cp = CheckpointCert { data, cert };
            // adopt_checkpoint announces the adoption on our stream before
            // any proposal into the freshly opened window.
            fx.extend(self.adopt_checkpoint(cp));
        }
        fx
    }

    fn handle_checkpoint_msg(
        &mut self,
        stream: ReplicaId,
        c: CheckpointCert,
        fx: &mut Vec<Effect>,
    ) {
        {
            let window = self.window();
            let ps = self.state.get_mut(&stream).expect("known");
            ps.checkpoint = c.clone();
            let (lo, hi) = ps.open_window(window);
            ps.prepares.retain(|s, _| *s >= lo && *s < hi);
            ps.commits.retain(|s, _| *s >= lo && *s < hi);
        }
        fx.extend(self.adopt_checkpoint(c));
    }

    fn adopt_checkpoint(&mut self, c: CheckpointCert) -> Vec<Effect> {
        let mut fx = Vec::new();
        if !c.supersedes(&self.checkpoint) {
            return fx;
        }
        self.checkpoint = c.clone();
        let base = c.data.base;
        // Forget decided state below the checkpoint (finite memory!).
        self.slots.retain(|s, _| *s >= base);
        self.cp_shares.retain(|(b, _, _), _| *b > base);
        self.verified_cp_data.retain(|(b, _, _)| *b >= base);
        // Drop request bookkeeping for requests decided below the base.
        if self.exec_next < base {
            // We missed decided slots below the certified base (a
            // replacement node, or a replica that lost a whole window):
            // local replay cannot reach this state, so ask the runtime for
            // a snapshot transfer — verified against the certified digests,
            // so the serving peer is not trusted — then resume from `base`.
            fx.push(Effect::StateTransfer {
                base,
                app_digest: c.data.app_digest,
                exec_digest: c.data.exec_digest,
            });
            self.exec_next = base;
            self.snapshot_pending = None;
        }
        if self.next_slot < base {
            self.next_slot = base;
        }
        fx.push(Effect::CheckpointAdopted { base });
        // Announce the adoption on our own stream before proposing into the
        // new window: peers validate PREPAREs against the checkpoint most
        // recently seen *on our stream* (Algorithm 5), so a PREPARE emitted
        // ahead of the CHECKPOINT would be branded out-of-window.
        if base > self.cp_broadcast_base {
            self.cp_broadcast_base = base;
            self.emit_ctb(&mut fx, CtbMsg::Checkpoint(c));
        }
        let mut more = Vec::new();
        self.propose_ready(&mut more);
        fx.extend(more);
        fx
    }

    // ------------------------------------------------------------------
    // Summaries (Algorithm 4)
    // ------------------------------------------------------------------

    /// A `CERTIFY_SUMMARY` share about our own stream arrived.
    pub fn on_certify_summary(
        &mut self,
        from: ReplicaId,
        stream: ReplicaId,
        upto: SeqId,
        digest: Digest,
        sig: ubft_crypto::Signature,
    ) -> Vec<Effect> {
        if stream != self.me || upto.0 <= self.summary_done_upto {
            return Vec::new();
        }
        if from != self.me && !self.verify(from, &summary_sign_bytes(stream, upto, &digest), &sig) {
            return Vec::new();
        }
        self.accept_summary_share(from, upto, digest, sig)
    }

    fn accept_summary_share(
        &mut self,
        from: ReplicaId,
        upto: SeqId,
        digest: Digest,
        sig: ubft_crypto::Signature,
    ) -> Vec<Effect> {
        let mut fx = Vec::new();
        let quorum = self.quorum();
        let per_digest = self.summary_shares.entry(upto.0).or_default();
        let cert = per_digest.entry(digest).or_default();
        cert.add(ProcessId::Replica(from), sig);
        if cert.count() >= quorum && upto.0 > self.summary_done_upto {
            let cert = cert.clone();
            self.summary_done_upto = upto.0;
            self.summary_shares.retain(|k, _| *k > upto.0);
            let summary = self.state.get(&self.me).expect("self").summary();
            fx.push(Effect::TbBroadcast(TbMsg::Summary { upto, summary, cert }));
            self.flush_ctb_queue(&mut fx);
        }
        fx
    }

    fn handle_summary(
        &mut self,
        from: ReplicaId,
        upto: SeqId,
        summary: StateSummary,
        cert: Certificate,
    ) -> Vec<Effect> {
        let mut fx = Vec::new();
        let digest = summary.digest();
        if !self.verify_cert(&cert, &summary_sign_bytes(from, upto, &digest), self.quorum()) {
            return fx;
        }
        let ps = self.state.get_mut(&from).expect("known");
        if ps.fifo_next > upto {
            return fx; // no gap to fill
        }
        // Fill the gap: adopt the certified state and resume FIFO
        // interpretation after `upto` (Algorithm 4 lines 11–15).
        ps.apply_summary(&summary);
        ps.fifo_next = upto.next();
        ps.pending.retain(|k, _| *k > upto);
        let cp = ps.checkpoint.clone();
        fx.extend(self.adopt_checkpoint(cp));
        self.drain_pending(from, &mut fx);
        fx
    }

    // ------------------------------------------------------------------
    // Replacement & join (uBFT extended version, §replacement)
    // ------------------------------------------------------------------

    /// Most decided slots a [`DirectMsg::JoinAck`] replays; older gaps are
    /// healed by the next checkpoint's state transfer, exactly like
    /// [`StateSummary`]'s bounded commit list heals CTBcast gaps.
    const JOIN_COMMIT_CAP: usize = 4;

    /// Starts this engine's life as a *replacement node*: a fresh process
    /// taking over a crashed replica's identity. Call instead of
    /// [`Engine::start`]. `reg_floor` is the highest own-stream CTBcast id
    /// the runtime recovered from the SWMR register bank on the memory
    /// nodes (the slow-path high-water mark; [`SeqId`]`(0)` if the bank is
    /// empty). The engine announces itself to every peer and completes the
    /// join once `f + 1` [`DirectMsg::JoinAck`]s arrived — no single
    /// replica is trusted: adopted checkpoints and replayed decisions are
    /// verified against their own `f + 1` certificates, and the remaining
    /// fields only steer liveness, which CTBcast summaries repair anyway.
    pub fn begin_join(&mut self, reg_floor: SeqId) -> Vec<Effect> {
        assert!(self.join.is_none(), "join already in progress");
        self.join = Some(JoinState { reg_floor, acks: BTreeMap::new() });
        self.armed_marker = self.decide_count;
        let mut fx = vec![Effect::ArmTimer { kind: TimerKind::Progress }];
        for peer in self.cfg.params.replicas().filter(|r| *r != self.me) {
            fx.push(Effect::SendReplica { to: peer, msg: DirectMsg::Join { reg_floor } });
        }
        fx
    }

    /// A replacement node announced itself: answer with our protocol
    /// coordinates (any replica may serve; the joiner cross-checks).
    pub fn on_join(&mut self, from: ReplicaId) -> Vec<Effect> {
        if from == self.me || self.join.is_some() {
            return Vec::new();
        }
        let streams: Vec<JoinStream> = self
            .state
            .iter()
            .map(|(stream, ps)| JoinStream {
                stream: *stream,
                // For our own stream, report the next id we will *send*
                // (self-delivery may lag emission by a queued message).
                fifo_next: if *stream == self.me {
                    SeqId(self.my_ctb_sent + 1)
                } else {
                    ps.fifo_next
                },
                view: if *stream == self.me { self.view } else { ps.view },
                next_free: if *stream == self.me {
                    self.next_slot
                } else {
                    ps.prepares.keys().max().map_or(Slot(0), |s| s.next())
                },
                checkpoint: if ps.checkpoint.data.base > Slot(0) {
                    Some(ps.checkpoint.clone())
                } else {
                    None
                },
            })
            .collect();
        // Most recent decided slots at or above our stable base, with the
        // certificate that proves each decision (highest view wins per
        // slot, mirroring `must_propose`).
        let mut merged: BTreeMap<Slot, CommitCert> = BTreeMap::new();
        for ps in self.state.values() {
            for (slot, c) in &ps.commits {
                if *slot < self.checkpoint.data.base {
                    continue;
                }
                let replace =
                    merged.get(slot).is_none_or(|existing| c.prepare.view > existing.prepare.view);
                if replace {
                    merged.insert(*slot, c.clone());
                }
            }
        }
        let skip = merged.len().saturating_sub(Self::JOIN_COMMIT_CAP);
        let commits: Vec<(Slot, CommitCert)> = merged.into_iter().skip(skip).collect();
        vec![Effect::SendReplica {
            to: from,
            msg: DirectMsg::JoinAck { view: self.view, streams, commits },
        }]
    }

    /// A peer answered our [`DirectMsg::Join`].
    pub fn on_join_ack(
        &mut self,
        from: ReplicaId,
        view: View,
        streams: Vec<JoinStream>,
        commits: Vec<(Slot, CommitCert)>,
    ) -> Vec<Effect> {
        let Some(join) = self.join.as_mut() else {
            return Vec::new();
        };
        if from == self.me {
            return Vec::new();
        }
        join.acks.insert(from, JoinAckData { view, streams, commits });
        if join.acks.len() >= self.cfg.params.quorum() {
            self.complete_join()
        } else {
            Vec::new()
        }
    }

    /// `f + 1` acks arrived: adopt the group's coordinates and go live.
    fn complete_join(&mut self) -> Vec<Effect> {
        let join = self.join.take().expect("join in progress");
        let mut fx = Vec::new();

        // Liveness fields: per-field maximum over the acks. A lie can only
        // delay us (summaries fill FIFO gaps; view changes correct views);
        // it can never decide anything — that still takes certificates.
        let view = join.acks.values().map(|a| a.view).max().unwrap_or(View(0)).max(self.view);
        let mut best_cp: Option<CheckpointCert> = None;
        let mut tails: Vec<(ReplicaId, SeqId)> = Vec::new();
        for stream in self.cfg.params.replicas().collect::<Vec<_>>() {
            let mut fifo = SeqId(1);
            let mut sview = View(0);
            let mut cp: Option<CheckpointCert> = None;
            for ack in join.acks.values() {
                let Some(js) = ack.streams.iter().find(|s| s.stream == stream) else {
                    continue;
                };
                fifo = fifo.max(js.fifo_next);
                sview = sview.max(js.view);
                if stream == self.me {
                    // Resume proposing past everything our predecessor
                    // prepared: a second PREPARE for one of its slots in
                    // the same view reads as equivocation and brands us.
                    self.next_slot = self.next_slot.max(js.next_free);
                }
                if let Some(c) = &js.checkpoint {
                    if cp.as_ref().is_none_or(|old| c.supersedes(old)) {
                        cp = Some(c.clone());
                    }
                }
            }
            // Adopted stream checkpoints gate validity checks (window
            // membership), so verify their certificates before trusting
            // (once per distinct checkpoint data).
            let cp = cp.filter(|c| {
                self.verified_cp_data.contains(&(
                    c.data.base,
                    c.data.app_digest,
                    c.data.exec_digest,
                )) || self.verify_cert(&c.cert.clone(), &c.data.sign_bytes(), self.quorum())
            });
            if let Some(c) = &cp {
                self.verified_cp_data.insert((c.data.base, c.data.app_digest, c.data.exec_digest));
            }
            if stream == self.me {
                // Our own broadcast cursor: past everything any peer
                // interpreted AND everything the register bank witnessed.
                fifo = fifo.max(join.reg_floor.next());
                self.my_ctb_sent = fifo.0 - 1;
                self.summary_done_upto = self.my_ctb_sent;
                self.seal_emitted = view;
                self.cp_broadcast_base =
                    cp.as_ref().map_or(Slot(0), |c| c.data.base).max(self.cp_broadcast_base);
            }
            let n = self.cfg.params.n();
            let ps = self.state.get_mut(&stream).expect("known replica");
            ps.fifo_next = ps.fifo_next.max(fifo);
            ps.view = ps.view.max(sview);
            // The NEW_VIEW that installed an already-established view was
            // broadcast before we existed and is out of the tail. Accept
            // the established leader's proposals without it: the joiner
            // cannot re-check Algorithm 3's re-proposal constraints, but
            // it also cannot decide anything alone — every decision still
            // takes a quorum of replicas that did check them.
            if ps.view > View(0) && stream == ps.view.leader(n) && ps.new_view.is_none() {
                ps.new_view = Some(Vec::new());
            }
            let floor = ps.fifo_next;
            ps.pending.retain(|k, _| *k >= floor);
            if let Some(c) = cp {
                if c.supersedes(&ps.checkpoint) {
                    ps.checkpoint = c.clone();
                }
                if best_cp.as_ref().is_none_or(|old| c.supersedes(old)) {
                    best_cp = Some(c);
                }
            }
            tails.push((stream, floor));
        }
        self.view = view;
        self.sealing = None;

        // Transport adoption must precede any broadcast the steps below
        // may emit (the runtime moves its CTBcast cursors on this effect).
        fx.push(Effect::AdoptStreams { tails });

        // Adopt the best certified checkpoint; lagging `exec_next` makes
        // `adopt_checkpoint` request the snapshot transfer.
        if let Some(cp) = best_cp {
            fx.extend(self.adopt_checkpoint(cp));
        }

        // Replay decided-but-unexecuted slots the acks prove (highest view
        // wins per slot; each certificate is verified before the decision
        // is honoured).
        let mut merged: BTreeMap<Slot, CommitCert> = BTreeMap::new();
        for ack in join.acks.values() {
            for (slot, c) in &ack.commits {
                let replace =
                    merged.get(slot).is_none_or(|existing| c.prepare.view > existing.prepare.view);
                if replace {
                    merged.insert(*slot, c.clone());
                }
            }
        }
        for (slot, c) in merged {
            if slot < self.checkpoint.data.base
                || self.slots.get(&slot).is_some_and(|s| s.decided.is_some())
            {
                continue;
            }
            if !self.verify_cert(&c.cert.clone(), &c.prepare.certify_bytes(), self.quorum()) {
                continue;
            }
            let entry = self.slots.entry(slot).or_default();
            if entry.prepare.is_none() {
                entry.prepare = Some(c.prepare.clone());
            }
            entry.commit_from.insert(c.prepare.view.leader(self.cfg.params.n()));
            let shares = c.cert.count();
            let batch = c.prepare.batch.clone();
            fx.extend(self.decide(slot, batch, DecisionEvidence::JoinReplay { shares }));
        }

        // Go live: flush whatever queued during the join and interpret any
        // stream messages that arrived ahead of the adopted positions.
        self.flush_ctb_queue(&mut fx);
        for stream in self.cfg.params.replicas().collect::<Vec<_>>() {
            if stream != self.me {
                self.drain_pending(stream, &mut fx);
            }
        }
        fx
    }

    // ------------------------------------------------------------------
    // View change (Algorithm 3)
    // ------------------------------------------------------------------

    /// The progress watchdog fired.
    pub fn on_progress_timeout(&mut self) -> Vec<Effect> {
        let mut fx = Vec::new();
        if let Some(join) = &self.join {
            // A half-initialized replacement must not seal views; its acks
            // are in flight, and peers make progress without it. It must
            // however *re-announce* itself to peers that have not acked:
            // the original Join is a one-shot direct message, so a
            // partition that eats it would otherwise stall the join
            // forever (a liveness hole the chaos explorer found — a
            // replacement booting inside a partition never went live, and
            // a later crash of another replica then stalled the group).
            let reg_floor = join.reg_floor;
            for peer in self.cfg.params.replicas().filter(|r| *r != self.me) {
                if !join.acks.contains_key(&peer) {
                    fx.push(Effect::SendReplica { to: peer, msg: DirectMsg::Join { reg_floor } });
                }
            }
            fx.push(Effect::ArmTimer { kind: TimerKind::Progress });
            return fx;
        }
        let stuck = self.has_pending_work() && self.decide_count == self.armed_marker;
        if stuck {
            fx.extend(self.change_view());
        }
        self.armed_marker = self.decide_count;
        fx.push(Effect::ArmTimer { kind: TimerKind::Progress });
        fx
    }

    fn has_pending_work(&self) -> bool {
        !self.outstanding.is_empty()
            || !self.propose_queue.is_empty()
            || self.slots.values().any(|s| s.prepare.is_some() && s.decided.is_none())
    }

    /// Multiplier for the progress-watchdog period: doubles with every
    /// fruitless view change so slow (signature-bound) view changes get time
    /// to finish before the next one starts, as in PBFT.
    pub fn progress_backoff(&self) -> u32 {
        1 << self.vc_streak.min(6)
    }

    fn change_view(&mut self) -> Vec<Effect> {
        let mut fx = Vec::new();
        if self.sealing.is_some() {
            return fx;
        }
        self.vc_streak = self.vc_streak.saturating_add(1);
        let next = self.view.next();
        self.sealing = Some(next);
        // Algorithm 3 lines 4–5: discharge WILL_COMMIT promises by running
        // the slow path for those slots before sealing.
        let promised: Vec<Slot> = self
            .slots
            .iter()
            .filter(|(_, s)| s.promised_in == Some(self.view) && !s.sent_commit)
            .map(|(slot, _)| *slot)
            .collect();
        for slot in &promised {
            fx.extend(self.start_slow_path(*slot));
        }
        fx.extend(self.check_seal_ready());
        fx
    }

    fn check_seal_ready(&mut self) -> Vec<Effect> {
        let mut fx = Vec::new();
        let Some(next) = self.sealing else { return fx };
        let outstanding =
            self.slots.values().any(|s| s.promised_in == Some(self.view) && !s.sent_commit);
        if outstanding {
            return fx;
        }
        // Seal: enter the next view.
        self.view = next;
        self.sealing = None;
        fx.push(Effect::ViewChanged { view: self.view });
        if self.seal_emitted < next {
            self.seal_emitted = next;
            self.emit_ctb(&mut fx, CtbMsg::SealView { view: next });
        }
        self.reecho_outstanding(&mut fx);
        // Reset per-slot fast-path state for the new view.
        for s in self.slots.values_mut() {
            if s.decided.is_none() {
                s.will_certify.clear();
                s.will_commit.clear();
                s.sent_will_certify = false;
                s.sent_will_commit = false;
                s.sent_certify = false;
                s.sent_commit = false;
                s.cert = Certificate::new();
                s.commit_from.clear();
                s.prepare = None;
            }
        }
        fx
    }

    fn handle_seal_view(&mut self, stream: ReplicaId, view: View, fx: &mut Vec<Effect>) {
        {
            let ps = self.state.get_mut(&stream).expect("known");
            ps.seal_view = Some(view);
            ps.view = view;
            ps.new_view = None;
        }
        // Line 11: certify the sealer's state to the new leader.
        let summary = self.state.get(&stream).expect("known").summary();
        let digest = summary.digest();
        let sig = self.sign(&vc_sign_bytes(view, stream, &digest));
        let leader = view.leader(self.n());
        if leader == self.me {
            fx.extend(self.on_certify_vc(self.me, view, stream, summary, sig));
        } else {
            fx.push(Effect::SendReplica {
                to: leader,
                msg: DirectMsg::CertifyVc { view, about: stream, summary, sig },
            });
        }
        // Follow the majority into the new view: if we observe a quorum of
        // seals for views above ours, join them.
        let seals =
            self.state.values().filter(|ps| ps.seal_view.is_some_and(|v| v > self.view)).count();
        if seals >= self.quorum() && self.sealing.is_none() && view > self.view {
            fx.extend(self.change_view());
        }
    }

    /// A `CRTFY_VC` share arrived (we are, or will be, the leader of `view`).
    pub fn on_certify_vc(
        &mut self,
        from: ReplicaId,
        view: View,
        about: ReplicaId,
        summary: StateSummary,
        sig: ubft_crypto::Signature,
    ) -> Vec<Effect> {
        let mut fx = Vec::new();
        if view.leader(self.n()) != self.me || view < self.view {
            return fx;
        }
        let digest = summary.digest();
        if from != self.me && !self.verify(from, &vc_sign_bytes(view, about, &digest), &sig) {
            return fx;
        }
        // Shares for views we can no longer lead are dead weight.
        self.vc_shares.retain(|(v, _), _| *v >= self.view);
        let per_digest = self.vc_shares.entry((view, about)).or_default();
        let (_, cert) = per_digest.entry(digest).or_insert_with(|| (summary, Certificate::new()));
        cert.add(ProcessId::Replica(from), sig);
        // Line 13: f+1 matching shares about f+1 distinct replicas, all
        // signed for exactly this view.
        let quorum = self.quorum();
        let complete: Vec<VcCert> = self
            .vc_shares
            .iter()
            .filter(|((v, _), _)| *v == view)
            .filter_map(|((_, about), per_digest)| {
                per_digest.values().find(|(_, c)| c.count() >= quorum).map(|(s, c)| VcCert {
                    about: *about,
                    summary: s.clone(),
                    cert: c.clone(),
                })
            })
            .collect();
        if complete.len() >= quorum && self.new_view_broadcast != Some(view) && view >= self.view {
            fx.extend(self.enter_view_as_leader(view, complete));
        }
        fx
    }

    fn enter_view_as_leader(&mut self, view: View, certs: Vec<VcCert>) -> Vec<Effect> {
        let mut fx = Vec::new();
        let entered = self.view == view;
        self.view = view;
        self.sealing = None;
        self.new_view_broadcast = Some(view);
        if !entered {
            fx.push(Effect::ViewChanged { view });
        }
        for c in &certs {
            let bytes = vc_sign_bytes(view, c.about, &c.summary.digest());
            self.note_own_cert(&c.cert, &bytes);
        }
        // A leader may reach this point on collected certificates alone,
        // without having sealed the view itself (its own watchdog never
        // fired). Peers accept a NEW_VIEW only after our stream carried the
        // matching seal, so announce it first.
        if self.seal_emitted < view {
            self.seal_emitted = view;
            self.emit_ctb(&mut fx, CtbMsg::SealView { view });
        }
        self.emit_ctb(&mut fx, CtbMsg::NewView { view, certs: certs.clone() });
        // Line 16: adopt the highest checkpoint in the certificates.
        let highest =
            certs.iter().filter_map(|c| c.summary.checkpoint.clone()).max_by_key(|cp| cp.data.base);
        if let Some(cp) = highest {
            fx.extend(self.adopt_checkpoint(cp));
        }
        // Lines 17–19: re-propose constrained slots across the open window,
        // up to the highest slot any certificate committed.
        let base = self.checkpoint.data.base;
        let max_committed =
            certs.iter().flat_map(|c| c.summary.commits.iter().map(|(s, _)| *s)).max();
        self.vc_shares.clear();
        if let Some(hi) = max_committed {
            for s in base.0..=hi.0 {
                let slot = Slot(s);
                if self.slots.get(&slot).is_some_and(|st| st.decided.is_some()) {
                    continue;
                }
                let batch = must_propose(slot, &certs).unwrap_or_else(|| Batch::noop(slot));
                self.emit_ctb(&mut fx, CtbMsg::Prepare(Prepare { view, slot, batch }));
                if self.next_slot <= slot {
                    self.next_slot = slot.next();
                }
            }
        }
        if self.next_slot < base {
            self.next_slot = base;
        }
        // Never propose into slots already occupied locally.
        let occupied = self
            .slots
            .iter()
            .filter(|(_, st)| st.prepare.is_some() || st.decided.is_some())
            .map(|(s, _)| *s)
            .max();
        if let Some(hi) = occupied {
            if self.next_slot <= hi {
                self.next_slot = hi.next();
            }
        }
        // Adopt responsibility for every request still outstanding.
        let pending: Vec<Request> = self.outstanding.values().cloned().collect();
        for req in pending {
            if !self.proposed.contains(&req.id) {
                self.proposed.insert(req.id);
                self.propose_queue.push_back(req);
            }
        }
        self.propose_ready(&mut fx);
        fx
    }

    fn reecho_outstanding(&mut self, fx: &mut Vec<Effect>) {
        if self.is_leader() {
            let pending: Vec<Request> = self.outstanding.values().cloned().collect();
            for req in pending {
                if !self.proposed.contains(&req.id) {
                    self.proposed.insert(req.id);
                    self.propose_queue.push_back(req);
                }
            }
            let mut more = Vec::new();
            self.propose_ready(&mut more);
            fx.extend(more);
        } else {
            let leader = self.leader();
            for req in self.outstanding.values() {
                fx.push(Effect::SendReplica {
                    to: leader,
                    msg: DirectMsg::Echo { req: req.clone() },
                });
            }
        }
    }

    fn handle_new_view(
        &mut self,
        stream: ReplicaId,
        view: View,
        certs: Vec<VcCert>,
        fx: &mut Vec<Effect>,
    ) {
        {
            let ps = self.state.get_mut(&stream).expect("known");
            ps.new_view = Some(certs.clone());
        }
        // Line 23: catch up to the new view.
        if self.view < view {
            self.view = view;
            self.sealing = None;
            fx.push(Effect::ViewChanged { view });
            for s in self.slots.values_mut() {
                if s.decided.is_none() {
                    s.will_certify.clear();
                    s.will_commit.clear();
                    s.sent_will_certify = false;
                    s.sent_will_commit = false;
                    s.sent_certify = false;
                    s.sent_commit = false;
                    s.cert = Certificate::new();
                    s.commit_from.clear();
                    s.prepare = None;
                }
            }
        }
        let highest =
            certs.iter().filter_map(|c| c.summary.checkpoint.clone()).max_by_key(|cp| cp.data.base);
        if let Some(cp) = highest {
            fx.extend(self.adopt_checkpoint(cp));
        }
        self.reecho_outstanding(fx);
    }

    /// A timer armed via [`Effect::ArmTimer`] fired.
    pub fn on_timer(&mut self, kind: TimerKind) -> Vec<Effect> {
        match kind {
            TimerKind::Progress => self.on_progress_timeout(),
            TimerKind::SlotSlowTrigger(slot) => self.on_slot_slow_trigger(slot),
            TimerKind::EchoFallback(id) => self.on_echo_timeout(id),
        }
    }

    /// A direct message arrived.
    pub fn on_direct(&mut self, from: ReplicaId, msg: DirectMsg) -> Vec<Effect> {
        if self.byzantine.contains(&from) {
            return Vec::new();
        }
        match msg {
            DirectMsg::Echo { req } => self.on_echo(from, req),
            DirectMsg::CertifyVc { view, about, summary, sig } => {
                self.on_certify_vc(from, view, about, summary, sig)
            }
            DirectMsg::CertifySummary { stream, upto, digest, sig } => {
                self.on_certify_summary(from, stream, upto, digest, sig)
            }
            DirectMsg::Join { .. } => self.on_join(from),
            DirectMsg::JoinAck { view, streams, commits } => {
                self.on_join_ack(from, view, streams, commits)
            }
        }
    }

    /// Initialization effects: the progress watchdog.
    pub fn start(&mut self) -> Vec<Effect> {
        self.armed_marker = self.decide_count;
        vec![Effect::ArmTimer { kind: TimerKind::Progress }]
    }
}

impl Prepare {
    /// Content equality via digest (cheap comparison used in hot paths).
    pub fn digest_eq(&self, other: &Prepare) -> bool {
        self == other
    }
}

/// §5.4 endorsement predicate, shared by the hold (in `handle_prepare`) and
/// release (in `retry_held_prepares`) sides so they can never diverge: every
/// non-noop request in the batch must have been received directly from its
/// client.
fn batch_endorsed(batch: &Batch, seen: &HashMap<RequestId, Request>) -> bool {
    batch.requests().iter().all(|r| r.is_noop() || seen.contains_key(&r.id))
}

/// Algorithm 3 lines 25–27: the request batch the new leader is forced to
/// propose for `slot`, if any certificate carries a COMMIT for it (highest
/// view wins). Batches survive view changes whole — a partially re-proposed
/// batch would change the slot's digest and violate agreement.
pub fn must_propose(slot: Slot, certs: &[VcCert]) -> Option<Batch> {
    certs
        .iter()
        .filter_map(|c| {
            c.summary.commits.iter().find(|(s, _)| *s == slot).map(|(_, commit)| commit)
        })
        .max_by_key(|commit| commit.prepare.view)
        .map(|commit| commit.prepare.batch.clone())
}
