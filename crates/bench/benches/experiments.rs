//! Criterion wrappers around the paper experiments: each benchmark runs a
//! small simulated workload end to end, so `cargo bench` exercises every
//! figure's code path. The printed *virtual-time* figures come from the
//! `fig*` binaries; these benchmarks measure the simulator's own wall-clock
//! cost and guard against regressions in the experiment harness.

use criterion::{criterion_group, criterion_main, Criterion};
use ubft_bench::{make_apps, make_workload, run_ubft};
use ubft_minbft::ClientAuth;
use ubft_runtime::{baselines, SimConfig};

const SAMPLES: u64 = 60;

fn bench_fig7_cells(c: &mut Criterion) {
    c.bench_function("fig7/ubft_fast_flip", |b| {
        b.iter(|| run_ubft("flip", 32, SAMPLES, SimConfig::paper_default(1).fast_only()))
    });
    c.bench_function("fig7/mu_flip", |b| {
        b.iter(|| {
            let cfg = SimConfig::paper_default(1);
            let mut app = make_apps("flip", 1).pop().expect("app");
            baselines::run_mu(&cfg, app.as_mut(), make_workload("flip", 32), SAMPLES, 10)
        })
    });
    c.bench_function("fig7/unreplicated_flip", |b| {
        b.iter(|| {
            let cfg = SimConfig::paper_default(1);
            let mut app = make_apps("flip", 1).pop().expect("app");
            baselines::run_unreplicated(&cfg, app.as_mut(), make_workload("flip", 32), SAMPLES, 10)
        })
    });
}

fn bench_fig8_cells(c: &mut Criterion) {
    c.bench_function("fig8/ubft_slow_noop", |b| {
        b.iter(|| run_ubft("noop", 64, 30, SimConfig::paper_default(1).slow_only()))
    });
    c.bench_function("fig8/minbft_hmac_noop", |b| {
        b.iter(|| {
            let cfg = SimConfig::paper_default(1);
            let mut app = make_apps("noop", 1).pop().expect("app");
            baselines::run_minbft(
                &cfg,
                ClientAuth::EnclaveHmac,
                app.as_mut(),
                make_workload("noop", 64),
                SAMPLES,
                10,
            )
        })
    });
}

fn bench_fig11_cell(c: &mut Criterion) {
    c.bench_function("fig11/t16_64B", |b| {
        b.iter(|| {
            run_ubft(
                "noop",
                64,
                SAMPLES,
                SimConfig::paper_default(1).fast_only().with_tail(16).with_max_request(64),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fig7_cells, bench_fig8_cells, bench_fig11_cell
}
criterion_main!(benches);
