//! Criterion micro-benchmarks of the substrates (real wall-clock time of
//! the implementation itself, as opposed to the virtual-time figures).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ubft_crypto::{checksum64, sha256};
use ubft_dmem::register::{ReadOutcome, RegisterBank, RegisterId};
use ubft_rdma::Fabric;
use ubft_sim::net::{LatencyModel, NetworkModel};
use ubft_sim::{HostId, SimRng};
use ubft_transport::channel::{create_channel, ChannelSpec};
use ubft_types::{Duration, Time};

fn bench_crypto(c: &mut Criterion) {
    let data_small = vec![0xA5u8; 64];
    let data_large = vec![0xA5u8; 4096];
    c.bench_function("sha256/64B", |b| b.iter(|| sha256(std::hint::black_box(&data_small))));
    c.bench_function("sha256/4KiB", |b| b.iter(|| sha256(std::hint::black_box(&data_large))));
    c.bench_function("checksum64/64B", |b| {
        b.iter(|| checksum64(0, std::hint::black_box(&data_small)))
    });
    c.bench_function("checksum64/4KiB", |b| {
        b.iter(|| checksum64(0, std::hint::black_box(&data_large)))
    });
}

fn bench_registers(c: &mut Criterion) {
    c.bench_function("swmr_register/write+read", |b| {
        b.iter_batched(
            || {
                let net = NetworkModel::synchronous(LatencyModel::paper_testbed(), 6);
                let mut fabric = Fabric::new(net, SimRng::new(1));
                let mems = [HostId(3), HostId(4), HostId(5)];
                let bank =
                    RegisterBank::create(&mut fabric, &mems, 4, 72, Duration::from_micros(10));
                (fabric, bank.writer(), bank.reader())
            },
            |(mut fabric, mut w, r)| {
                let done = w
                    .write(&mut fabric, HostId(0), RegisterId(0), 1, b"value", Time::ZERO)
                    .expect("write");
                let out = r.read(&mut fabric, HostId(1), RegisterId(0), done);
                assert!(matches!(out, ReadOutcome::Value { .. }));
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_channel(c: &mut Criterion) {
    c.bench_function("channel/send+poll", |b| {
        b.iter_batched(
            || {
                let net = NetworkModel::synchronous(LatencyModel::paper_testbed(), 2);
                let mut fabric = Fabric::new(net, SimRng::new(2));
                let (mut tx, rx) = create_channel(
                    &mut fabric,
                    HostId(1),
                    ChannelSpec { slots: 16, slot_payload: 256 },
                );
                tx.bind_issuer(HostId(0));
                (fabric, tx, rx)
            },
            |(mut fabric, mut tx, mut rx)| {
                let out = tx.send(&mut fabric, Time::ZERO, &[7u8; 128]);
                let arrival = out.issued[0].1;
                let polled = rx.poll(&mut fabric, arrival + Duration::from_nanos(150));
                assert_eq!(polled.delivered.len(), 1);
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_apps(c: &mut Criterion) {
    use ubft_apps::{KvApp, KvFrontend, OrderBookApp};
    use ubft_core::App;
    c.bench_function("kv/set+get", |b| {
        let mut kv = KvApp::new(KvFrontend::Memcached);
        let set = ubft_apps::KvOp::Set { key: vec![1; 16], value: vec![2; 32] };
        let get = ubft_apps::KvOp::Get { key: vec![1; 16] };
        use ubft_types::wire::Wire;
        let (set, get) = (set.to_bytes(), get.to_bytes());
        b.iter(|| {
            kv.execute(&set);
            kv.execute(&get)
        })
    });
    c.bench_function("orderbook/match", |b| {
        let mut book = OrderBookApp::new();
        use ubft_types::wire::Wire;
        let buy = ubft_apps::OrderOp::Buy { price: 100, qty: 2 }.to_bytes();
        let sell = ubft_apps::OrderOp::Sell { price: 100, qty: 2 }.to_bytes();
        b.iter(|| {
            book.execute(&sell);
            book.execute(&buy)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_crypto, bench_registers, bench_channel, bench_apps
}
criterion_main!(benches);
