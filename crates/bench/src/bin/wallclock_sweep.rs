//! Wall-clock thread-scaling sweep of the threaded deployment backend:
//! real requests/sec and p50/p99 vs crypto-pool size and shard count
//! (see EXPERIMENTS.md). Unlike the simulator figures, these numbers are
//! host-dependent; on hosts with >= 8 cores the sweep asserts the >= 4x
//! scale-out claim at G = 8.
fn main() {
    let cli = ubft_bench::cli();
    let (text, json) = ubft_bench::wallclock_sweep(cli.samples, cli.smoke);
    print!("{text}");
    if cli.json {
        ubft_bench::write_bench_json("wallclock_sweep", &json);
    }
}
