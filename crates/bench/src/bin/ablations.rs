//! Regenerates the design-choice ablations listed in DESIGN.md §5:
//! path selection, the client echo round, the SWMR replication factor, and
//! CTBcast summary double-buffering.

fn main() {
    let cli = ubft_bench::cli();
    let samples = cli.samples;
    print!("{}", ubft_bench::ablation_path(samples));
    println!();
    print!("{}", ubft_bench::ablation_echo(samples));
    println!();
    print!("{}", ubft_bench::ablation_dmem(samples));
    println!();
    print!("{}", ubft_bench::ablation_summary(samples));
    if cli.json {
        ubft_bench::emit_standard_json("ablations", samples);
    }
}
