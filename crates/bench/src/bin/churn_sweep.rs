//! Regenerates the replica-replacement churn sweep (see EXPERIMENTS.md).
fn main() {
    let cli = ubft_bench::cli();
    print!("{}", ubft_bench::churn_sweep(cli.samples));
    if cli.json {
        ubft_bench::emit_standard_json("churn_sweep", cli.samples);
    }
}
