//! Regenerates the replica-replacement churn sweep (see EXPERIMENTS.md).
fn main() {
    print!("{}", ubft_bench::churn_sweep(ubft_bench::cli_samples()));
}
