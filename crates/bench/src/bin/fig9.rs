//! Regenerates the paper's Fig9 (see EXPERIMENTS.md).
fn main() {
    print!("{}", ubft_bench::fig9(ubft_bench::cli_samples()));
}
