//! Regenerates the paper's Fig9 (see EXPERIMENTS.md).
fn main() {
    let cli = ubft_bench::cli();
    print!("{}", ubft_bench::fig9(cli.samples));
    if cli.json {
        ubft_bench::emit_standard_json("fig9", cli.samples);
    }
}
