//! Regenerates the paper's Fig11 (see EXPERIMENTS.md).
fn main() {
    print!("{}", ubft_bench::fig11(ubft_bench::cli_samples()));
}
