//! Regenerates the paper's Fig11 (see EXPERIMENTS.md).
fn main() {
    let cli = ubft_bench::cli();
    print!("{}", ubft_bench::fig11(cli.samples));
    if cli.json {
        ubft_bench::emit_standard_json("fig11", cli.samples);
    }
}
