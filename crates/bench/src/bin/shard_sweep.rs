//! Regenerates the multi-group shard-scaling sweep (see EXPERIMENTS.md).
fn main() {
    print!("{}", ubft_bench::shard_sweep(ubft_bench::cli_samples()));
}
