//! Regenerates the multi-group shard-scaling sweep (see EXPERIMENTS.md).
fn main() {
    let cli = ubft_bench::cli();
    print!("{}", ubft_bench::shard_sweep(cli.samples));
    if cli.json {
        ubft_bench::emit_standard_json("shard_sweep", cli.samples);
    }
}
