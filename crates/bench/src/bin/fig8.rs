//! Regenerates the paper's Fig8 (see EXPERIMENTS.md).
fn main() {
    print!("{}", ubft_bench::fig8(ubft_bench::cli_samples()));
}
