//! Regenerates the paper's Fig8 (see EXPERIMENTS.md).
fn main() {
    let cli = ubft_bench::cli();
    print!("{}", ubft_bench::fig8(cli.samples));
    if cli.json {
        ubft_bench::emit_standard_json("fig8", cli.samples);
    }
}
