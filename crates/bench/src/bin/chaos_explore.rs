//! Explores seeded chaos plans under the omniscient safety auditor and
//! shrinks + prints any violating plan (see EXPERIMENTS.md).
fn main() {
    let mut plans = 200u64;
    let mut smoke = false;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--json" {
            json = true;
        } else if let Ok(v) = arg.parse::<u64>() {
            plans = v;
        }
    }
    if smoke {
        plans = plans.min(24);
    }
    let out = ubft_bench::chaos_explore(plans);
    print!("{out}");
    assert!(out.contains("violating: 0"), "chaos exploration found audit violations");
    if json {
        ubft_bench::emit_standard_json("chaos_explore", plans.min(ubft_bench::SMOKE_SAMPLES));
    }
}
