//! Regenerates the paper's Table 2 (see EXPERIMENTS.md).
fn main() {
    print!("{}", ubft_bench::table2());
}
