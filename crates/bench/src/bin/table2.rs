//! Regenerates the paper's Table 2 (see EXPERIMENTS.md).
fn main() {
    let cli = ubft_bench::cli();
    print!("{}", ubft_bench::table2());
    if cli.json {
        ubft_bench::emit_standard_json("table2", cli.samples);
    }
}
