//! Regenerates the paper's Fig7 (see EXPERIMENTS.md).
fn main() {
    let cli = ubft_bench::cli();
    print!("{}", ubft_bench::fig7(cli.samples));
    if cli.json {
        ubft_bench::emit_standard_json("fig7", cli.samples);
    }
}
