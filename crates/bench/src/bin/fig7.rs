//! Regenerates the paper's Fig7 (see EXPERIMENTS.md).
fn main() {
    print!("{}", ubft_bench::fig7(ubft_bench::cli_samples()));
}
