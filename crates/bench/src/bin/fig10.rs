//! Regenerates the paper's Fig10 (see EXPERIMENTS.md).
fn main() {
    let cli = ubft_bench::cli();
    print!("{}", ubft_bench::fig10(cli.samples));
    if cli.json {
        ubft_bench::emit_standard_json("fig10", cli.samples);
    }
}
