//! Regenerates the paper's Fig10 (see EXPERIMENTS.md).
fn main() {
    print!("{}", ubft_bench::fig10(ubft_bench::cli_samples()));
}
