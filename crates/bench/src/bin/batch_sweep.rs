//! Regenerates the request-batching throughput sweep (see EXPERIMENTS.md).
fn main() {
    print!("{}", ubft_bench::batch_sweep(ubft_bench::cli_samples()));
}
