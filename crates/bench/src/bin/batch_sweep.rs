//! Regenerates the request-batching throughput sweep (see EXPERIMENTS.md).
fn main() {
    let samples =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(ubft_bench::SAMPLES);
    print!("{}", ubft_bench::batch_sweep(samples));
}
