//! Regenerates the request-batching throughput sweep (see EXPERIMENTS.md).
fn main() {
    let cli = ubft_bench::cli();
    print!("{}", ubft_bench::batch_sweep(cli.samples));
    if cli.json {
        ubft_bench::emit_standard_json("batch_sweep", cli.samples);
    }
}
