//! Regenerates the §9 throughput figure (see EXPERIMENTS.md).
fn main() {
    print!("{}", ubft_bench::throughput(ubft_bench::cli_samples()));
}
