//! Regenerates the §9 throughput figure (see EXPERIMENTS.md).
fn main() {
    let cli = ubft_bench::cli();
    print!("{}", ubft_bench::throughput(cli.samples));
    if cli.json {
        ubft_bench::emit_standard_json("throughput", cli.samples);
    }
}
