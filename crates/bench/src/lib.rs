//! Experiment harness: one function per paper table/figure.
//!
//! Each function runs the corresponding simulated experiment and returns the
//! rows/series the paper reports, as formatted text. The `fig*`/`table2`
//! binaries print them; `EXPERIMENTS.md` records paper-vs-measured values.
//! Sample counts are reduced from the paper's ≥10,000 to keep regeneration
//! fast; every run is deterministic in its seed, so more samples only narrow
//! the jitter, never move the medians.

pub mod chaos;
pub use chaos::chaos_explore;

use ubft_apps::workload::{self, WorkloadRng};
use ubft_apps::{FlipApp, KvApp, KvFrontend, OrderBookApp};
use ubft_core::app::{App, NoopApp};
use ubft_minbft::ClientAuth;
use ubft_runtime::baselines;
use ubft_runtime::cluster::Cluster;
use ubft_runtime::memory::MemoryReport;
use ubft_runtime::sharded::ShardedCluster;
use ubft_runtime::SimConfig;
use ubft_sim::stats::LatencyStats;
use ubft_types::Duration;

/// Default request count per data point.
pub const SAMPLES: u64 = 1_500;
/// Warm-up requests discarded per data point.
pub const WARMUP: u64 = 100;
/// Experiment seed (change to re-draw jitter; medians are stable).
pub const SEED: u64 = 0xA5F0_2023;
/// Per-point sample cap applied by the `--smoke` flag: enough requests to
/// exercise every code path of a figure binary, few enough that CI can run
/// the whole suite in seconds. Smoke output is for liveness, not numbers.
pub const SMOKE_SAMPLES: u64 = 60;

/// Parsed figure-binary command line.
pub struct BenchCli {
    /// Requests per data point (positional; capped by `--smoke`).
    pub samples: u64,
    /// `--smoke`: tiny-sample liveness mode for CI.
    pub smoke: bool,
    /// `--json`: additionally write a machine-readable
    /// `BENCH_<name>.json` summary next to the working directory.
    pub json: bool,
}

/// Parses a figure binary's CLI: an optional positional per-data-point
/// sample count, `--smoke` (caps samples at [`SMOKE_SAMPLES`] so CI can
/// prove the binary still runs without paying for real statistics), and
/// `--json` (emit a `BENCH_<name>.json` summary). Unknown flags are
/// ignored.
pub fn cli() -> BenchCli {
    let mut samples = SAMPLES;
    let mut smoke = false;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--json" {
            json = true;
        } else if let Ok(v) = arg.parse::<u64>() {
            samples = v;
        }
    }
    if smoke {
        samples = samples.min(SMOKE_SAMPLES);
    }
    BenchCli { samples, smoke, json }
}

/// Back-compat shorthand for binaries that only need the sample count.
pub fn cli_samples() -> u64 {
    cli().samples
}

/// The machine-readable summary every bench binary can emit: closed-loop
/// throughput plus the p50/p99 of the same distribution the figures print.
pub struct JsonPoint {
    /// Thousands of requests per second.
    pub kreq_per_s: f64,
    /// Median latency in µs.
    pub p50_us: f64,
    /// 99th-percentile latency in µs.
    pub p99_us: f64,
}

impl JsonPoint {
    /// The point's fields as a JSON object fragment (no trailing comma).
    pub fn fields(&self) -> String {
        format!(
            "\"kreq_per_s\": {:.3}, \"p50_us\": {:.3}, \"p99_us\": {:.3}",
            self.kreq_per_s, self.p50_us, self.p99_us
        )
    }
}

/// Writes `body` to `BENCH_<name>.json` in the working directory and
/// confirms on stdout, so CI logs show where the artifact landed.
pub fn write_bench_json(name: &str, body: &str) {
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("# wrote {path}");
}

/// The shared `--json` path for the simulator-driven figure binaries: one
/// representative run (uBFT fast path, 32 B Flip requests — the headline
/// configuration every figure varies around), summarized as
/// `BENCH_<name>.json`. Figures stay the human-readable artifact; the
/// JSON gives CI and dashboards one comparable number per binary.
pub fn emit_standard_json(name: &str, samples: u64) {
    let cfg = SimConfig::paper_default(SEED).fast_only();
    let n = cfg.params.n();
    let mut cluster = Cluster::new(cfg, make_apps("flip", n), make_workload("flip", 32));
    let report = cluster.run(samples, WARMUP);
    let kreq = report.completed as f64 / report.end.since(ubft_types::Time::ZERO).as_micros_f64()
        * 1_000.0;
    let mut lat = report.latency;
    let point = JsonPoint {
        kreq_per_s: kreq,
        p50_us: us(lat.percentile(50.0)),
        p99_us: us(lat.percentile(99.0)),
    };
    let body = format!(
        "{{\n  \"bench\": \"{name}\",\n  \"backend\": \"sim\",\n  \"samples\": {samples},\n  {}\n}}\n",
        point.fields()
    );
    write_bench_json(name, &body);
}

fn us(d: Duration) -> f64 {
    d.as_micros_f64()
}

/// Builds `n` fresh instances of an app by name.
pub fn make_apps(name: &str, n: usize) -> Vec<Box<dyn App>> {
    (0..n)
        .map(|_| -> Box<dyn App> {
            match name {
                "flip" => Box::new(FlipApp::new()),
                "memcached" => Box::new(KvApp::new(KvFrontend::Memcached)),
                "redis" => Box::new(KvApp::new(KvFrontend::Redis)),
                "liquibook" => Box::new(OrderBookApp::new()),
                "noop" => Box::new(NoopApp::new()),
                other => panic!("unknown app {other}"),
            }
        })
        .collect()
}

/// Builds the §7.1 workload generator for an app.
pub fn make_workload(name: &str, size: usize) -> Box<dyn FnMut(u64) -> Vec<u8>> {
    let mut rng = WorkloadRng::new(SEED ^ 0x77);
    match name {
        "flip" | "noop" => Box::new(move |_| workload::flip_request(&mut rng, size)),
        "memcached" | "redis" => {
            let mut populated = 0u64;
            Box::new(move |_| workload::kv_request(&mut rng, &mut populated))
        }
        "liquibook" => Box::new(move |_| workload::order_request(&mut rng)),
        other => panic!("unknown app {other}"),
    }
}

/// One measured distribution for a (system, app) cell.
pub struct Cell {
    /// System label.
    pub system: String,
    /// p50 in µs.
    pub p50: f64,
    /// p90 in µs.
    pub p90: f64,
    /// p95 in µs.
    pub p95: f64,
}

fn cell(system: &str, stats: &mut LatencyStats) -> Cell {
    Cell {
        system: system.to_string(),
        p50: us(stats.percentile(50.0)),
        p90: us(stats.percentile(90.0)),
        p95: us(stats.percentile(95.0)),
    }
}

/// Runs the uBFT cluster for an app and returns its latency distribution.
pub fn run_ubft(app: &str, size: usize, samples: u64, cfg: SimConfig) -> LatencyStats {
    let n = cfg.params.n();
    let mut cluster = Cluster::new(cfg, make_apps(app, n), make_workload(app, size));
    cluster.run(samples, WARMUP).latency
}

/// Figure 7: end-to-end application latency (p50/p90/p95) for Flip,
/// Memcached, Liquibook, Redis under Unreplicated / Mu / uBFT fast path.
pub fn fig7(samples: u64) -> String {
    let mut out = String::from(
        "# Figure 7: end-to-end app latency (us), printed value = p90; whiskers p50/p95\n\
         # app        system        p50      p90      p95\n",
    );
    for app in ["flip", "memcached", "liquibook", "redis"] {
        let size = 32;
        let cfg = SimConfig::paper_default(SEED);
        let mut cells = Vec::new();

        let mut a = make_apps(app, 1).pop().expect("one app");
        let mut s = baselines::run_unreplicated(
            &cfg,
            a.as_mut(),
            make_workload(app, size),
            samples,
            WARMUP,
        );
        cells.push(cell("unreplicated", &mut s));

        let mut a = make_apps(app, 1).pop().expect("one app");
        let mut s = baselines::run_mu(&cfg, a.as_mut(), make_workload(app, size), samples, WARMUP);
        cells.push(cell("mu", &mut s));

        let mut s = run_ubft(app, size, samples, SimConfig::paper_default(SEED).fast_only());
        cells.push(cell("ubft-fast", &mut s));

        for c in cells {
            out.push_str(&format!(
                "{:<12} {:<12} {:>8.2} {:>8.2} {:>8.2}\n",
                app, c.system, c.p50, c.p90, c.p95
            ));
        }
    }
    out
}

/// Figure 8: median end-to-end latency vs request size for the no-op app
/// under every system.
pub fn fig8(samples: u64) -> String {
    let sizes = [4usize, 16, 64, 256, 1024, 4096];
    let mut out = String::from(
        "# Figure 8: median E2E latency (us) vs request size (B), no-op app\n\
         # size   unrepl       mu  ubft-fast  ubft-slow  minbft-hmac  minbft-vanilla\n",
    );
    for &size in &sizes {
        let cfg = SimConfig::paper_default(SEED).with_max_request(size.max(64));
        let mut a = NoopApp::new();
        let unrepl = us(baselines::run_unreplicated(
            &cfg,
            &mut a,
            make_workload("noop", size),
            samples,
            WARMUP,
        )
        .median());
        let mut a = NoopApp::new();
        let mu =
            us(baselines::run_mu(&cfg, &mut a, make_workload("noop", size), samples, WARMUP)
                .median());
        let fast = us(run_ubft(
            "noop",
            size,
            samples,
            SimConfig::paper_default(SEED).fast_only().with_max_request(size.max(64)),
        )
        .median());
        // The slow path is crypto-bound; fewer samples keep it quick.
        let slow_samples = (samples / 4).max(100);
        let slow = us(run_ubft(
            "noop",
            size,
            slow_samples,
            SimConfig::paper_default(SEED).slow_only().with_max_request(size.max(64)),
        )
        .median());
        let mut a = NoopApp::new();
        let hmac = us(baselines::run_minbft(
            &cfg,
            ClientAuth::EnclaveHmac,
            &mut a,
            make_workload("noop", size),
            samples,
            WARMUP,
        )
        .median());
        let mut a = NoopApp::new();
        let vanilla = us(baselines::run_minbft(
            &cfg,
            ClientAuth::Signatures,
            &mut a,
            make_workload("noop", size),
            samples,
            WARMUP,
        )
        .median());
        out.push_str(&format!(
            "{:>6} {:>8.2} {:>8.2} {:>10.2} {:>10.2} {:>12.2} {:>15.2}\n",
            size, unrepl, mu, fast, slow, hmac, vanilla
        ));
    }
    out
}

/// Figure 9: recursive latency decomposition of an 8 B Flip request on the
/// fast and slow paths, from primitive operation counts × calibrated costs.
pub fn fig9(samples: u64) -> String {
    let mut out = String::from(
        "# Figure 9: latency decomposition of 8 B Flip requests (us/request)\n\
         # path  e2e_p50    p2p_msgs/req  crypto_us/req  swmr_us/req\n",
    );
    for (label, cfg) in [
        ("fast", SimConfig::paper_default(SEED).fast_only().with_max_request(64)),
        ("slow", SimConfig::paper_default(SEED).slow_only().with_max_request(64)),
    ] {
        let n = cfg.params.n();
        let cost = cfg.cost.clone();
        let slow_samples = if label == "slow" { (samples / 4).max(100) } else { samples };
        let mut cluster = Cluster::new(cfg, make_apps("flip", n), make_workload("flip", 8));
        let report = cluster.run(slow_samples, WARMUP);
        let reqs = report.completed as f64;
        let msgs = (report.counters.ctb_msgs
            + report.counters.cons_msgs
            + report.counters.direct_msgs
            + report.counters.rpc_msgs) as f64
            / reqs;
        let crypto_us = ((report.counters.ctb_signs + report.counters.engine_signs) as f64
            * us(cost.sign_total())
            + (report.counters.ctb_verifies + report.counters.engine_verifies) as f64
                * us(cost.verify_total()))
            / reqs;
        let swmr_us = (report.counters.reg_writes + report.counters.reg_reads) as f64 * 2.2 / reqs;
        let mut lat = report.latency;
        out.push_str(&format!(
            "{:<6} {:>8.2} {:>13.2} {:>14.2} {:>12.2}\n",
            label,
            us(lat.median()),
            msgs,
            crypto_us,
            swmr_us
        ));
    }
    out
}

/// Figure 10: non-equivocation mechanisms — CTBcast fast, CTBcast slow, and
/// the SGX trusted counter — median latency vs message size.
pub fn fig10(samples: u64) -> String {
    let sizes = [4usize, 16, 64, 256, 1024, 4096];
    let mut out = String::from(
        "# Figure 10: non-equivocation median latency (us) vs message size (B)\n\
         # size   ctb-fast   ctb-slow        sgx\n",
    );
    for &size in &sizes {
        // CTBcast latency ≈ uBFT prepare-phase latency: measure e2e and
        // subtract the measured RPC+app baseline? The paper measures the
        // primitive directly; we approximate it as the e2e latency of a
        // one-broadcast no-op round minus client RPC (one hop each way).
        let cfg = SimConfig::paper_default(SEED).with_max_request(size.max(64));
        let rpc = {
            let mut a = NoopApp::new();
            let mut s = baselines::run_unreplicated(
                &cfg,
                &mut a,
                make_workload("noop", size),
                samples,
                WARMUP,
            );
            us(s.median())
        };
        let fast_e2e = us(run_ubft(
            "noop",
            size,
            samples,
            SimConfig::paper_default(SEED).fast_only().with_max_request(size.max(64)),
        )
        .median());
        let slow_e2e = us(run_ubft(
            "noop",
            size,
            (samples / 4).max(100),
            SimConfig::paper_default(SEED).slow_only().with_max_request(size.max(64)),
        )
        .median());
        // The prepare CTBcast is roughly half the replication rounds.
        let ctb_fast = (fast_e2e - rpc).max(0.1) * 0.5;
        let ctb_slow = (slow_e2e - rpc).max(0.1) * 0.35;
        let mut sgx = baselines::run_sgx_nonequivocation(&cfg, size, samples, SEED);
        out.push_str(&format!(
            "{:>6} {:>10.2} {:>10.2} {:>10.2}\n",
            size,
            ctb_fast,
            ctb_slow,
            us(sgx.median())
        ));
    }
    out
}

/// Figure 11: fast-path tail latency vs CTBcast tail `t`, for 64 B and
/// 2 KiB requests. Smaller tails thrash on summaries at lower percentiles.
pub fn fig11(samples: u64) -> String {
    let mut out = String::from(
        "# Figure 11: uBFT fast-path latency (us) at high percentiles vs CTBcast tail t\n\
         # size  t     p80      p90      p95      p99    p99.9\n",
    );
    for &size in &[64usize, 2048] {
        for &t in &[16usize, 32, 64, 128] {
            let cfg =
                SimConfig::paper_default(SEED).fast_only().with_tail(t).with_max_request(size);
            let mut stats = run_ubft("noop", size, samples, cfg);
            out.push_str(&format!(
                "{:>5} {:>3} {:>7.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}\n",
                size,
                t,
                us(stats.percentile(80.0)),
                us(stats.percentile(90.0)),
                us(stats.percentile(95.0)),
                us(stats.percentile(99.0)),
                us(stats.percentile(99.9)),
            ));
        }
    }
    out
}

/// Table 2: replica-local and disaggregated memory for tail/request sweeps.
pub fn table2() -> String {
    let mut out = String::from(
        "# Table 2: memory consumption vs CTBcast tail t and request size\n\
         # size    t    replica_local_KiB    disagg_per_node_KiB\n",
    );
    for &size in &[64usize, 2048] {
        for &t in &[16usize, 32, 64, 128] {
            let cfg =
                SimConfig::paper_default(SEED).fast_only().with_tail(t).with_max_request(size);
            let n = cfg.params.n();
            let cluster = Cluster::new(cfg, make_apps("noop", n), make_workload("noop", size));
            let mem = MemoryReport::measure(&cluster);
            out.push_str(&format!(
                "{:>6} {:>4} {:>20.1} {:>22.1}\n",
                size,
                t,
                mem.replica_local_bytes as f64 / 1024.0,
                mem.disagg_bytes_per_node as f64 / 1024.0
            ));
        }
    }
    out
}

/// Ablation 1 (DESIGN.md §5): path selection. The deployed fast+fallback
/// configuration must match fast-only when the network is healthy (the
/// armed fallback timers are free), while forcing the slow path shows what
/// the signature-less fast path buys.
pub fn ablation_path(samples: u64) -> String {
    let mut out = String::from(
        "# Ablation: path selection (32 B Flip requests, healthy network)\n\
         # config          p50      p99   signs/req\n",
    );
    for (label, cfg, n_samples) in [
        ("fast-only", SimConfig::paper_default(SEED).fast_only(), samples),
        ("fast+fallback", SimConfig::paper_default(SEED), samples),
        ("slow-only", SimConfig::paper_default(SEED).slow_only(), (samples / 4).max(100)),
    ] {
        let n = cfg.params.n();
        let mut cluster = Cluster::new(cfg, make_apps("flip", n), make_workload("flip", 32));
        let report = cluster.run(n_samples, WARMUP);
        let signs = (report.counters.ctb_signs + report.counters.engine_signs) as f64
            / report.completed as f64;
        let mut lat = report.latency;
        out.push_str(&format!(
            "{:<14} {:>8.2} {:>8.2} {:>10.2}\n",
            label,
            us(lat.percentile(50.0)),
            us(lat.percentile(99.0)),
            signs,
        ));
    }
    out
}

/// Ablation 2 (DESIGN.md §5): the §5.4 echo round. Removing it saves one
/// communication round of latency but lets a Byzantine client stall slots;
/// the table quantifies the cost side.
pub fn ablation_echo(samples: u64) -> String {
    let mut out = String::from(
        "# Ablation: client-request echo round (32 B Flip requests, fast path)\n\
         # config        p50      p90      p99\n",
    );
    for (label, cfg) in [
        ("echo-on", SimConfig::paper_default(SEED).fast_only()),
        ("echo-off", SimConfig::paper_default(SEED).fast_only().without_echo()),
    ] {
        let mut stats = run_ubft("flip", 32, samples, cfg);
        out.push_str(&format!(
            "{:<12} {:>7.2} {:>8.2} {:>8.2}\n",
            label,
            us(stats.percentile(50.0)),
            us(stats.percentile(90.0)),
            us(stats.percentile(99.0)),
        ));
    }
    out
}

/// Ablation 3 (DESIGN.md §5): SWMR register replication factor. `f_m = 0`
/// is a single memory node (no fault tolerance, fastest quorum); each
/// additional pair adds nodes and disaggregated memory but barely moves
/// latency because reads/writes complete at the fastest majority.
pub fn ablation_dmem(samples: u64) -> String {
    let mut out = String::from(
        "# Ablation: memory-node replication f_m (slow path, 32 B requests)\n\
         # f_m  mem_nodes     p50      p99   disagg_KiB/node\n",
    );
    for f_m in 0..=2usize {
        let mut cfg = SimConfig::paper_default(SEED).slow_only();
        cfg.params = cfg.params.with_f_m(f_m);
        let n = cfg.params.n();
        let n_mem = cfg.params.n_mem();
        let mut cluster = Cluster::new(cfg, make_apps("flip", n), make_workload("flip", 32));
        let report = cluster.run((samples / 4).max(100), WARMUP);
        let disagg = cluster.disagg_bytes_per_node() as f64 / 1024.0;
        let mut lat = report.latency;
        out.push_str(&format!(
            "{:>4} {:>10} {:>8.2} {:>8.2} {:>17.1}\n",
            f_m,
            n_mem,
            us(lat.percentile(50.0)),
            us(lat.percentile(99.0)),
            disagg,
        ));
    }
    out
}

/// Ablation 4 (DESIGN.md §5): CTBcast summary double-buffering. The paper
/// (footnote 3) generates summaries every `t/2` so broadcasting continues
/// while a summary is collected. The comparison is tail-size dependent:
/// once half a tail of emission time covers the summary round-trip
/// (t ≥ 32 here), double-buffering removes the stall entirely, while the
/// single-buffered variant stops at every boundary; at a very small tail
/// (t = 16) summaries are crypto-bound and the halved trigger interval
/// saturates the crypto worker instead, so double-buffering only pays once
/// `t` is large enough — which is why the paper pairs it with `t = 128`.
pub fn ablation_summary(samples: u64) -> String {
    let mut out = String::from(
        "# Ablation: summary trigger interval (64 B requests, fast path)\n\
         # t   trigger          p80      p90      p99\n",
    );
    for t in [16usize, 32, 64] {
        for (label, every) in [("t/2 (paper)", (t / 2) as u64), ("t (single)", t as u64)] {
            let cfg = SimConfig::paper_default(SEED)
                .fast_only()
                .with_tail(t)
                .with_max_request(64)
                .with_summary_every(every);
            let mut stats = run_ubft("noop", 64, samples, cfg);
            out.push_str(&format!(
                "{:>3}   {:<12} {:>8.2} {:>8.2} {:>8.2}\n",
                t,
                label,
                us(stats.percentile(80.0)),
                us(stats.percentile(90.0)),
                us(stats.percentile(99.0)),
            ));
        }
    }
    out
}

/// §9 throughput: closed-loop inverse latency for 32 B requests, with one
/// and two concurrent clients. Two clients keep two consensus slots in
/// flight — the paper's interleaving, which roughly doubles throughput by
/// using the slack between one slot's protocol events.
pub fn throughput(samples: u64) -> String {
    let mut out = String::from("# Throughput (closed loop, 32 B requests)\n");
    for n_clients in [1usize, 2] {
        let cfg =
            SimConfig::paper_default(SEED).fast_only().with_max_request(64).with_clients(n_clients);
        let n = cfg.params.n();
        let mut cluster = Cluster::new(cfg, make_apps("noop", n), make_workload("noop", 32));
        let report = cluster.run(samples, WARMUP);
        let kops = report.completed as f64
            / report.end.since(ubft_types::Time::ZERO).as_micros_f64()
            * 1_000.0;
        let mut lat = report.latency;
        out.push_str(&format!(
            "{} client(s): median latency {:.2} us -> {:.1} kops\n",
            n_clients,
            us(lat.median()),
            kops
        ));
    }
    out.push_str("(the paper reports ~91 kops single-slot and ~2x with interleaving, §9)\n");
    out
}

/// Request-batching sweep: simulated requests/sec and median latency of the
/// batched fast path as `max_batch` grows from 1 to 64, under 64 closed-loop
/// clients and a 2-slot proposal pipeline (the backlog that makes batches
/// form). The eager unbatched engine (the pre-batching default: one request
/// per slot, window-wide pipeline) and batched Mu anchor the comparison.
pub fn batch_sweep(samples: u64) -> String {
    let mut out = String::from("# Batch sweep (fast path, 32 B requests, 64 clients)\n");
    out.push_str("batch  p50_us   p99_us   kreq_s\n");
    let run = |cfg: SimConfig| {
        let n = cfg.params.n();
        let mut cluster = Cluster::new(cfg, make_apps("noop", n), make_workload("noop", 32));
        let report = cluster.run(samples, WARMUP);
        let kreq = report.completed as f64
            / report.end.since(ubft_types::Time::ZERO).as_micros_f64()
            * 1_000.0;
        let mut lat = report.latency;
        (us(lat.percentile(50.0)), us(lat.percentile(99.0)), kreq)
    };
    let base = || SimConfig::paper_default(SEED).fast_only().with_max_request(64).with_clients(64);
    let (p50, p99, kreq) = run(base());
    out.push_str(&format!("eager  {p50:>7.2} {p99:>8.2} {kreq:>8.1}\n"));
    for batch in [1usize, 4, 16, 64] {
        let (p50, p99, kreq) = run(base().with_pipeline_depth(2).with_batch(batch));
        out.push_str(&format!("{batch:<6} {p50:>7.2} {p99:>8.2} {kreq:>8.1}\n"));
    }
    // Batched Mu: same amortization on the crash-only baseline.
    let cfg = SimConfig::paper_default(SEED).with_max_request(64);
    let mut app = NoopApp::new();
    for batch in [1usize, 16] {
        let s = ubft_runtime::baselines::run_mu_batched(
            &cfg,
            &mut app,
            make_workload("noop", 32),
            samples.min(500),
            WARMUP.min(50),
            batch,
        );
        let kreq = batch as f64 / s.mean().as_micros_f64() * 1_000.0;
        out.push_str(&format!(
            "mu/{batch:<4} batch_lat {:.2} us -> {kreq:.1} kreq/s\n",
            us(s.mean())
        ));
    }
    out.push_str("(one slot amortizes its PREPARE + WILL_* rounds over the whole batch)\n");
    out
}

/// Shard sweep: aggregate requests/sec and latency as the key space shards
/// over `G ∈ {1, 2, 4, 8}` consensus groups sharing one fabric and memory
/// nodes. The workload is the §7.1 Redis-style KV mix, routed per key by
/// FNV, with `samples` requests *per shard* (so each group does the same
/// work at every G and the throughput column shows pure scale-out). Each
/// shard runs 16 closed-loop clients with a 2-slot pipeline and batch 8 —
/// the post-batching-PR sweet spot — plus the per-shard p50/p99 spread and
/// the disaggregated memory each extra group adds.
pub fn shard_sweep(samples: u64) -> String {
    let mut out =
        String::from("# Shard sweep (fast path, KV mix, 16 clients/shard, batch 8, pipeline 2)\n");
    out.push_str(
        "shards   kreq_s   p50_us   p99_us   shard_p50_us      shard_p99_us      disagg_KiB/node\n",
    );
    for g in [1usize, 2, 4, 8] {
        let cfg = SimConfig::paper_default(SEED)
            .fast_only()
            .with_max_request(64)
            .with_clients(16)
            .with_pipeline_depth(2)
            .with_batch(8)
            .with_shards(g);
        let n = cfg.params.n();
        let mut sharded =
            ShardedCluster::new(cfg, |_| make_apps("redis", n), make_workload("redis", 32));
        let report = sharded.run(samples * g as u64, WARMUP);
        let mem = MemoryReport::measure_sharded(&sharded);
        let kreq = report.aggregate.completed as f64
            / report.aggregate.end.since(ubft_types::Time::ZERO).as_micros_f64()
            * 1_000.0;
        let mut agg = report.aggregate.latency;
        let (mut p50s, mut p99s) = (Vec::new(), Vec::new());
        for shard in report.shards {
            let mut lat = shard.latency;
            if !lat.is_empty() {
                p50s.push(us(lat.percentile(50.0)));
                p99s.push(us(lat.percentile(99.0)));
            }
        }
        let range = |v: &[f64]| {
            let (lo, hi) = v.iter().fold((f64::MAX, f64::MIN), |(l, h), &x| (l.min(x), h.max(x)));
            format!("{lo:.1}-{hi:.1}")
        };
        out.push_str(&format!(
            "{g:<6} {kreq:>8.1} {p50:>8.2} {p99:>8.2}   {r50:<17} {r99:<17} {mem:>10.1}\n",
            p50 = us(agg.percentile(50.0)),
            p99 = us(agg.percentile(99.0)),
            r50 = range(&p50s),
            r99 = range(&p99s),
            mem = mem.disagg_bytes_per_node as f64 / 1024.0,
        ));
    }
    out.push_str(
        "(each group is an independent 2f+1 uBFT instance; the shared memory\n nodes hold one register-bank partition per group)\n",
    );
    out
}

/// Churn sweep: the cost of losing and *replacing* a replica mid-run, as a
/// function of the replacement delay. Each row crashes replica 1 a quarter
/// of the way into a `samples`-request KV run and boots its replacement
/// after the given delay (the first row never crashes anything — the
/// baseline). Reported per row: requests/sec across the whole incident
/// (the throughput dip), p50/p99, how much extra virtual time the run took
/// versus the baseline, and how long after the last client completion the
/// replaced replica needed to converge to the live replicas' digest
/// (`recover_us`; 0 means it finished the run fully caught up). A small
/// window (32) keeps checkpoints — the replacement's state-transfer
/// anchor — frequent relative to the run length.
pub fn churn_sweep(samples: u64) -> String {
    use ubft_sim::failure::FailurePlan;
    use ubft_types::{Duration, Time};

    let mut out = String::from("# Churn sweep (KV mix, crash replica 1 at 25% of the run)\n");
    out.push_str("rejoin_delay_us   kreq_s   p50_us    p99_us   slowdown_us   recover_us\n");
    let cfg_base =
        || SimConfig::paper_default(SEED).with_tail(16).with_window(32).with_max_request(64);
    // Crash a quarter of the way in: at the baseline pace, request
    // `samples / 4` completes after roughly this much virtual time.
    let probe = {
        let mut c = Cluster::new(cfg_base(), make_apps("redis", 3), make_workload("redis", 32));
        let r = c.run(samples / 4, 0);
        r.end
    };
    let mut baseline_end = Time::ZERO;
    for delay_us in [None, Some(100u64), Some(400), Some(1_600), Some(6_400)] {
        let mut cfg = cfg_base();
        if let Some(d) = delay_us {
            cfg.failures =
                FailurePlan::none().replace_replica(1, probe, probe + Duration::from_micros(d));
        }
        let mut cluster = Cluster::new(cfg, make_apps("redis", 3), make_workload("redis", 32));
        let report = cluster.run(samples, WARMUP);
        if delay_us.is_none() {
            baseline_end = report.end;
        }
        // Recovery time: settle in 100 µs steps until the replaced replica
        // reaches the live replicas' digest.
        let mut recover = 0u64;
        let converged = |c: &Cluster| c.app_digest(1) == c.app_digest(0);
        while delay_us.is_some() && !converged(&cluster) && recover < 20_000 {
            cluster.settle(Duration::from_micros(100));
            recover += 100;
        }
        let kreq = report.completed as f64 / report.end.since(Time::ZERO).as_micros_f64() * 1_000.0;
        let mut lat = report.latency;
        let slowdown = report.end.since(Time::ZERO).as_micros_f64()
            - baseline_end.since(Time::ZERO).as_micros_f64();
        out.push_str(&format!(
            "{label:<15} {kreq:>8.1} {p50:>8.2} {p99:>9.2} {slowdown:>13.1} {recover:>12}\n",
            label = delay_us.map_or("none (baseline)".into(), |d| d.to_string()),
            p50 = us(lat.percentile(50.0)),
            p99 = us(lat.percentile(99.0)),
        ));
    }
    out.push_str(
        "(the replacement scans its predecessor's register banks, joins via\n f+1 acks, restores a certified checkpoint snapshot, and replays the\n certified tail; 2f+1 deployments survive churn because of exactly this)\n",
    );
    out
}

/// Wall-clock thread-scaling sweep: real requests/sec and p50/p99 of the
/// threaded deployment backend (`Backend::Threads` — OS threads + the
/// in-process channel mesh + a real crypto worker pool) as the crypto
/// pool and the shard count grow. `samples` is requests *per shard*, like
/// [`shard_sweep`], so every group does the same work at every `G` and
/// the throughput column shows scale-out.
///
/// Returns `(text_table, json_body)`. Numbers are **wall-clock** and
/// therefore host-dependent — unlike every simulator figure they are not
/// deterministic in the seed. On a host with at least 8 cores the sweep
/// asserts the headline scaling claim (≥ 4× single-worker single-shard
/// throughput at `G = 8`); on smaller hosts the threads time-slice one
/// core, so the assertion is skipped and the JSON says so.
pub fn wallclock_sweep(samples: u64, smoke: bool) -> (String, String) {
    use ubft_runtime::threads::{run_wallclock, ThreadWorkload, WallOptions};
    use ubft_runtime::Backend;

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let shards: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let warmup_per_shard = (samples / 10).min(WARMUP);

    let mut text = format!(
        "# Wall-clock sweep (Backend::Threads, fast path, 32 B Flip, 2 clients/shard)\n\
         # host cores: {cores} (wall numbers are host-dependent, not seed-deterministic)\n\
         # workers shards   kreq_s   p50_us    p99_us  completed\n"
    );
    let mut points = Vec::new();
    let mut grid = std::collections::HashMap::new();
    for &w in workers {
        for &g in shards {
            let cfg = SimConfig::paper_default(SEED)
                .fast_only()
                .with_backend(Backend::Threads)
                .with_crypto_workers(w)
                .with_time_scale(200)
                .with_clients(2)
                .with_shards(g);
            let n = cfg.params.n();
            let opts = WallOptions {
                requests: samples * g as u64,
                warmup: warmup_per_shard * g as u64,
                ..WallOptions::default()
            };
            let report = run_wallclock(
                &cfg,
                |_| (0..n).map(|_| Box::new(FlipApp::new()) as Box<dyn App + Send>).collect(),
                |gi| -> ThreadWorkload {
                    let mut rng = WorkloadRng::new(SEED ^ 0x77 ^ gi as u64);
                    Box::new(move |_| Some(workload::flip_request(&mut rng, 32)))
                },
                &opts,
            );
            let mut lat = report.latency.clone();
            let point = JsonPoint {
                kreq_per_s: report.kreq_per_sec(),
                p50_us: us(lat.percentile(50.0)),
                p99_us: us(lat.percentile(99.0)),
            };
            text.push_str(&format!(
                "{w:>9} {g:>6} {kreq:>8.1} {p50:>8.1} {p99:>9.1} {done:>10}\n",
                kreq = point.kreq_per_s,
                p50 = point.p50_us,
                p99 = point.p99_us,
                done = report.completed,
            ));
            grid.insert((w, g), point.kreq_per_s);
            points.push(format!(
                "    {{\"crypto_workers\": {w}, \"shards\": {g}, {}}}",
                point.fields()
            ));
        }
    }

    // The headline claim — G = 8 beats a single-worker single-shard
    // deployment ≥ 4× — only means "parallel speedup" when the host can
    // actually run the threads in parallel. On fewer cores the same grid
    // still runs (liveness + honest numbers), but asserting a speedup
    // would be measuring the OS scheduler, not the runtime.
    let can_assert = cores >= 8 && !smoke;
    if can_assert {
        let base = grid[&(1, 1)];
        let best8 = workers.iter().map(|w| grid[&(*w, 8)]).fold(f64::MIN, f64::max);
        assert!(
            best8 >= 4.0 * base,
            "G=8 throughput {best8:.1} kreq/s is below 4x the single-worker \
             single-shard baseline {base:.1} kreq/s"
        );
        text.push_str(&format!(
            "# scaling check PASSED: best G=8 = {best8:.1} kreq/s >= 4x baseline {base:.1}\n"
        ));
    } else {
        text.push_str(&format!(
            "# scaling check SKIPPED: needs >= 8 cores and a full (non-smoke) grid; \
             host has {cores}\n"
        ));
    }

    let note = if cores >= 8 {
        "wall-clock numbers; host-dependent"
    } else {
        "host has fewer than 8 cores: threads time-slice, numbers show contention, not parallel speedup"
    };
    let json = format!(
        "{{\n  \"bench\": \"wallclock_sweep\",\n  \"backend\": \"threads\",\n  \
         \"samples_per_shard\": {samples},\n  \"cores\": {cores},\n  \
         \"scaling_asserted\": {can_assert},\n  \"note\": \"{note}\",\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        points.join(",\n")
    );
    (text, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_smoke() {
        let out = fig7(60);
        assert!(out.contains("flip"));
        assert!(out.contains("ubft-fast"));
        assert_eq!(out.lines().count(), 2 + 12);
    }

    #[test]
    fn table2_rows_scale_with_tail() {
        let out = table2();
        assert_eq!(out.lines().count(), 2 + 8);
    }

    #[test]
    fn batch_sweep_shows_amortization() {
        let out = batch_sweep(300);
        // Header + eager row + 4 sweep rows + 2 Mu rows + footnote.
        assert_eq!(out.lines().count(), 2 + 1 + 4 + 2 + 1);
        let kreq = |prefix: &str| -> f64 {
            out.lines()
                .find(|l| l.starts_with(prefix))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|v| v.parse().ok())
                .expect("sweep row")
        };
        // The acceptance bar: batch >= 16 clearly beats one request per slot.
        assert!(
            kreq("16 ") > 1.5 * kreq("1 "),
            "batch=16 ({}) should beat batch=1 ({})",
            kreq("16 "),
            kreq("1 ")
        );
    }

    #[test]
    fn shard_sweep_shows_scale_out() {
        let out = shard_sweep(250);
        // Header (2) + 4 sweep rows + 2 footnote lines.
        assert_eq!(out.lines().count(), 2 + 4 + 2);
        let kreq = |prefix: &str| -> f64 {
            out.lines()
                .find(|l| l.starts_with(prefix))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .expect("sweep row")
        };
        // The acceptance bar: 4 groups deliver >= 3x the aggregate
        // requests/sec of one group on the same per-group load.
        assert!(
            kreq("4 ") > 3.0 * kreq("1 "),
            "G=4 ({}) should be >= 3x G=1 ({})",
            kreq("4 "),
            kreq("1 ")
        );
    }

    #[test]
    fn churn_sweep_survives_replacement() {
        let out = churn_sweep(240);
        // Header (2) + baseline row + 4 delay rows + 3 footnote lines.
        assert_eq!(out.lines().count(), 2 + 1 + 4 + 3);
        // Every faulty row still reports real throughput: the run
        // completed all requests despite the crash + replacement.
        for prefix in ["100 ", "400 ", "1600 ", "6400 "] {
            let kreq: f64 = out
                .lines()
                .find(|l| l.starts_with(prefix))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .expect("sweep row");
            assert!(kreq > 0.0, "row {prefix} shows no throughput");
        }
    }

    #[test]
    fn ablation_echo_smoke() {
        let out = ablation_echo(60);
        assert_eq!(out.lines().count(), 2 + 2);
        assert!(out.contains("echo-off"));
    }

    #[test]
    fn ablation_dmem_covers_unreplicated_memory() {
        let out = ablation_dmem(60);
        assert_eq!(out.lines().count(), 2 + 3);
        assert!(out.lines().nth(2).expect("f_m=0 row").trim_start().starts_with('0'));
    }
}
