//! Chaos exploration: generated fault schedules + the omniscient auditor.
//!
//! Instead of one test file per fault shape, [`chaos_explore`] *generates*
//! scenarios: each seed draws a [`ChaosPlan`] from the full fault
//! vocabulary (crashes, all five Byzantine modes, memory-node crashes,
//! replacements, partitions, pre-GST asynchrony), runs it on a fully
//! audited deployment, and checks the safety invariants *every event*
//! through [`ubft_runtime::audit`]. Any violating plan is greedily shrunk
//! to its smallest still-violating core and printed as a copy-pasteable
//! [`FailurePlan`](ubft_sim::failure::FailurePlan) builder chain, ready to
//! become a regression test in `tests/chaos.rs`.
//!
//! Everything is deterministic: seed `i` of a run with base seed `B`
//! always draws the same plan and replays the same schedule, so a
//! violation found in CI reproduces on a laptop from two numbers.

use ubft_runtime::audit::AuditReport;
use ubft_runtime::{ShardedCluster, SimConfig};
use ubft_sim::chaos::{shrink, ChaosPlan, ChaosSpace};
use ubft_types::{Duration, Time};

use crate::{make_apps, make_workload, SEED};

/// Requests per chaos run: enough to cross a checkpoint boundary under
/// the small window below, few enough that hundreds of runs stay fast.
const REQUESTS: u64 = 60;

/// Virtual-time deadline per run: generously past the fault horizon, the
/// exponential watchdog backoff (which reaches 160 ms periods after six
/// fruitless view changes), and a worst-case all-slow-path schedule, so
/// healthy plans always finish and genuinely stalled ones are observed
/// (and audited) instead of panicking.
fn run_deadline() -> Time {
    Time::ZERO + Duration::from_millis(400)
}

/// The application a seed exercises: rotating through all four keeps every
/// sequential model honest.
fn app_for(seed: u64) -> &'static str {
    ["flip", "redis", "noop", "liquibook"][(seed % 4) as usize]
}

/// The fault space a seed draws from: every fourth plan runs two sharded
/// groups (with the shared memory nodes), the rest a single group.
fn space_for(seed: u64) -> ChaosSpace {
    let base = ChaosSpace::paper_default();
    if seed % 4 == 3 {
        base.with_groups(2)
    } else {
        base
    }
}

/// One audited chaos run. Small tail/window keep checkpoints — and thus
/// the checkpoint-digest and state-transfer invariants — inside the run.
fn run_plan(plan: &ChaosPlan, seed: u64) -> (AuditReport, u64) {
    let app = app_for(seed);
    let groups = space_for(seed).groups;
    let cfg = SimConfig::paper_default(SEED ^ seed)
        .with_tail(16)
        .with_window(32)
        .with_shards(groups)
        .with_audit()
        .with_chaos(plan);
    let n = cfg.params.n();
    let mut cluster = ShardedCluster::new(cfg, |_| make_apps(app, n), make_workload(app, 32));
    let report = cluster.run_until(REQUESTS, 0, run_deadline());
    cluster.settle(Duration::from_millis(3));
    let audit = cluster.audit_report().expect("audited run");
    (audit, report.aggregate.completed)
}

/// Drives `plans` seeded chaos plans, audits each, and shrinks + prints
/// any violator. The returned text is the exploration record
/// (EXPERIMENTS.md keeps a sample); a non-zero violation count is the
/// explorer's way of failing CI.
pub fn chaos_explore(plans: u64) -> String {
    let mut out = String::from("# Chaos exploration: seeded fault plans + omniscient audit\n");
    let started = std::time::Instant::now();
    let mut distinct = std::collections::BTreeSet::new();
    let (mut clean, mut violating) = (0u64, 0u64);
    let mut stalled: Vec<(u64, u64)> = Vec::new();
    let (mut decisions, mut executions, mut faults_total) = (0u64, 0u64, 0u64);
    for seed in 0..plans {
        let space = space_for(seed);
        let plan = ChaosPlan::generate(seed, &space);
        distinct.insert(format!("{plan:?}"));
        faults_total += plan.faults.len() as u64;
        let (audit, completed) = run_plan(&plan, seed);
        decisions += audit.decisions_checked;
        executions += audit.executions_checked;
        if !audit.is_clean() {
            violating += 1;
            out.push_str(&format!(
                "\nVIOLATION under seed {seed} ({} fault(s), app {}):\n",
                plan.faults.len(),
                app_for(seed)
            ));
            for v in audit.violations.iter().take(4) {
                out.push_str(&format!("  {v:?}\n"));
            }
            // Shrink to the smallest still-violating core and print the
            // copy-pasteable repro.
            let shrunk = shrink(&plan, &space, |cand| !run_plan(cand, seed).0.is_clean());
            out.push_str(&format!(
                "shrunk to {} fault(s); repro:\n{}",
                shrunk.faults.len(),
                shrunk.repro_string()
            ));
        } else if completed < REQUESTS {
            // Liveness, not safety: the run gave up at the deadline. The
            // audit above still checked everything it did execute.
            stalled.push((seed, completed));
        } else {
            clean += 1;
        }
    }
    out.push_str(&format!(
        "plans tried: {plans} ({} distinct; {:.1} faults/plan; apps flip/redis/noop/liquibook; \
         shapes g=1,2)\n",
        distinct.len(),
        faults_total as f64 / plans.max(1) as f64
    ));
    out.push_str(&format!(
        "clean: {clean}  stalled-at-deadline: {}  violating: {violating}\n",
        stalled.len()
    ));
    if !stalled.is_empty() {
        let sample: Vec<String> =
            stalled.iter().take(12).map(|(s, c)| format!("{s} ({c}/{REQUESTS})")).collect();
        out.push_str(&format!("stalled seeds (completed): {}\n", sample.join(", ")));
    }
    out.push_str(&format!(
        "decisions audited: {decisions}  executions audited: {executions}  wall: {:.1}s\n",
        started.elapsed().as_secs_f64()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_explore_smoke_is_clean() {
        let out = chaos_explore(8);
        assert!(out.contains("violating: 0"), "{out}");
        assert!(out.contains("plans tried: 8"), "{out}");
    }
}
