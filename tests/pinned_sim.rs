//! Pinned simulator outputs: exact digests, counters, and end times of
//! representative runs, captured before the `Transport` refactor. The
//! simulator backend is a calibrated instrument — any change to these
//! values means virtual-time behaviour drifted, which invalidates every
//! figure the repo reproduces. A deliberate behaviour change must update
//! the pins in the same commit and say why.

use ubft::runtime::cluster::Cluster;
use ubft::runtime::sharded::ShardedCluster;
use ubft::runtime::SimConfig;
use ubft_core::app::App;
use ubft_types::Time;

fn flip_apps(n: usize) -> Vec<Box<dyn App>> {
    (0..n).map(|_| Box::new(ubft_apps::FlipApp::new()) as Box<dyn App>).collect()
}

fn payload32() -> Box<dyn FnMut(u64) -> Vec<u8>> {
    Box::new(|i| {
        let mut p = vec![0u8; 32];
        p[..8].copy_from_slice(&i.to_le_bytes());
        p
    })
}

fn hex(d: &ubft_crypto::Digest) -> String {
    d.as_bytes().iter().map(|b| format!("{b:02x}")).collect()
}

/// One run's pinned observables, formatted as a single comparable string.
fn fingerprint(cfg: SimConfig, requests: u64, warmup: u64) -> String {
    let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
    let report = cluster.run(requests, warmup);
    let mut lat = report.latency;
    format!(
        "digest={} completed={} end={} mean={} p50={} counters={:?} views={:?}",
        hex(&cluster.app_digest(0)),
        report.completed,
        report.end.since(Time::ZERO).as_nanos(),
        lat.mean().as_nanos(),
        lat.median().as_nanos(),
        report.counters,
        report.views,
    )
}

#[test]
fn fast_path_run_is_pinned() {
    let got = fingerprint(SimConfig::paper_default(42).fast_only(), 100, 10);
    assert_eq!(got, "digest=988e13629eb4fdf6e90745cae887a8509c215729319f72e2d4101a3724265381 completed=110 end=1117417 mean=10287 p50=8743 counters=OpCounters { rpc_msgs: 990, ctb_msgs: 880, cons_msgs: 1322, direct_msgs: 222, ctb_signs: 0, ctb_verifies: 0, engine_signs: 3, engine_verifies: 7, reg_writes: 0, reg_reads: 0 } views=[View(0), View(0), View(0)]");
}

#[test]
fn slow_path_run_is_pinned() {
    let got = fingerprint(SimConfig::paper_default(43).slow_only(), 50, 5);
    assert_eq!(got, "digest=ab6eb7e3868e84bd8e40dde4f910ae1738298c00e83a112b8ed8831b0d6da6a3 completed=55 end=11299424 mean=205578 p50=203906 counters=OpCounters { rpc_msgs: 495, ctb_msgs: 686, cons_msgs: 540, direct_msgs: 112, ctb_signs: 220, ctb_verifies: 660, engine_signs: 168, engine_verifies: 337, reg_writes: 660, reg_reads: 660 } views=[View(0), View(0), View(0)]");
}

#[test]
fn default_path_run_is_pinned() {
    let got = fingerprint(SimConfig::paper_default(7), 100, 10);
    assert_eq!(got, "digest=988e13629eb4fdf6e90745cae887a8509c215729319f72e2d4101a3724265381 completed=110 end=1113638 mean=10253 p50=8770 counters=OpCounters { rpc_msgs: 990, ctb_msgs: 880, cons_msgs: 1322, direct_msgs: 222, ctb_signs: 0, ctb_verifies: 0, engine_signs: 3, engine_verifies: 7, reg_writes: 0, reg_reads: 0 } views=[View(0), View(0), View(0)]");
}

#[test]
fn batched_multiclient_run_is_pinned() {
    let cfg = SimConfig::paper_default(11)
        .fast_only()
        .with_clients(8)
        .with_pipeline_depth(2)
        .with_batch(4);
    let got = fingerprint(cfg, 120, 12);
    assert_eq!(got, "digest=7ddbd0addad3b83fdb5b89d5b00cae4646611d44d608ba0a162539f40a0dc522 completed=132 end=174336 mean=9991 p50=9962 counters=OpCounters { rpc_msgs: 1230, ctb_msgs: 448, cons_msgs: 660, direct_msgs: 274, ctb_signs: 0, ctb_verifies: 0, engine_signs: 0, engine_verifies: 0, reg_writes: 0, reg_reads: 0 } views=[View(0), View(0), View(0)]");
}

#[test]
fn sharded_run_is_pinned() {
    let cfg = SimConfig::paper_default(9).fast_only().with_shards(4);
    let mut cluster = ShardedCluster::new(cfg, |_| flip_apps(3), payload32());
    let report = cluster.run(200, 20);
    let digests: Vec<String> = (0..4).map(|g| hex(&cluster.app_digest(g, 0))).collect();
    let got = format!(
        "digests={:?} completed={} end={} counters={:?}",
        digests,
        report.aggregate.completed,
        report.aggregate.end.since(Time::ZERO).as_nanos(),
        report.aggregate.counters,
    );
    assert_eq!(got, "digests=[\"0f0e7d028dcdd24b217a9584c805799e694c1fbf5387a29a7b13b9cf6ad6a358\", \"8efaf11b7774fe29158960b9b050881a33f5ca12d5606b8042afff3d9075ec21\", \"8d9cde770fc930b8c9e4ed4e1493f5df4e19f683a1dc77f23880e708126d0276\", \"3d811869f014b4ffb870318609363503337e4a29dd93ec35f5c871e11f368f1b\"] completed=220 end=483524 counters=OpCounters { rpc_msgs: 1994, ctb_msgs: 1760, cons_msgs: 2640, direct_msgs: 443, ctb_signs: 0, ctb_verifies: 0, engine_signs: 0, engine_verifies: 0, reg_writes: 0, reg_reads: 0 }");
}
