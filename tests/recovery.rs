//! Live replica replacement: crash-then-replace schedules pinned by the
//! headline *digest equivalence* property — under a fixed RNG seed, a run
//! that crashes and replaces a replica must decide every submitted request
//! and end with the same executed request sequence and final application
//! digest as the fault-free run, for both the single-group [`Cluster`] and
//! the sharded deployment.
//!
//! Convergence mechanics being tested end to end: the replacement boots on
//! a fresh host, scans its predecessor's SWMR register banks on the memory
//! nodes, completes the `Join`/`JoinAck` handshake against `f + 1` peers,
//! restores the application from a certified checkpoint snapshot, replays
//! certificate-backed decided slots, and then participates normally. The
//! bounded replay means full convergence is guaranteed by the first
//! checkpoint *after* the rejoin, so every schedule here leaves at least a
//! window's worth of traffic behind the replacement.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::OnceLock;

use proptest::prelude::*;
use ubft::runtime::cluster::Cluster;
use ubft::runtime::sharded::ShardedCluster;
use ubft::runtime::SimConfig;
use ubft_apps::workload::{kv_request, WorkloadRng};
use ubft_apps::{KvApp, KvFrontend, KvOp, ShardRouter};
use ubft_core::app::App;
use ubft_crypto::Digest;
use ubft_sim::failure::FailurePlan;
use ubft_sim::net::LatencyModel;
use ubft_types::wire::Wire;
use ubft_types::{Duration, Time};

const SEED: u64 = 0xA5F0_2026;
const REQUESTS: u64 = 600;

fn us(n: u64) -> Time {
    Time::ZERO + Duration::from_micros(n)
}

/// Small tail/window so checkpoints — the replacement's state-transfer
/// anchor — happen every 32 slots instead of every 256.
fn recovery_cfg(seed: u64) -> SimConfig {
    SimConfig::paper_default(seed).with_tail(16).with_window(32)
}

fn kv_apps(n: usize) -> Vec<Box<dyn App>> {
    (0..n).map(|_| Box::new(KvApp::new(KvFrontend::Redis)) as Box<dyn App>).collect()
}

fn kv_workload(seed: u64) -> Box<dyn FnMut(u64) -> Vec<u8>> {
    let mut rng = WorkloadRng::new(seed);
    let mut populated = 0u64;
    Box::new(move |_| kv_request(&mut rng, &mut populated))
}

/// Wraps an [`App`] and records every executed *client* request payload
/// (view-change noop fillers are skipped: they carry no payload and leave
/// KV state untouched, and the fault-free run has none to compare with).
struct RecordingKv {
    inner: KvApp,
    log: Rc<RefCell<Vec<Vec<u8>>>>,
}

impl App for RecordingKv {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        if !request.is_empty() {
            self.log.borrow_mut().push(request.to_vec());
        }
        self.inner.execute(request)
    }
    fn snapshot_digest(&self) -> Digest {
        self.inner.snapshot_digest()
    }
    fn snapshot_bytes(&self) -> Vec<u8> {
        self.inner.snapshot_bytes()
    }
    fn restore_bytes(&mut self, bytes: &[u8]) {
        self.inner.restore_bytes(bytes);
    }
    fn name(&self) -> &'static str {
        "recording-kv"
    }
}

type Logs = Vec<Rc<RefCell<Vec<Vec<u8>>>>>;

fn recording_apps(n: usize) -> (Vec<Box<dyn App>>, Logs) {
    let logs: Logs = (0..n).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
    let apps = logs
        .iter()
        .map(|log| {
            Box::new(RecordingKv { inner: KvApp::new(KvFrontend::Redis), log: Rc::clone(log) })
                as Box<dyn App>
        })
        .collect();
    (apps, logs)
}

/// The fault-free reference: final digest and executed request sequence of
/// `REQUESTS` requests under `SEED`, fully settled. Computed once.
fn fault_free_reference() -> &'static (Digest, Vec<Vec<u8>>) {
    static REF: OnceLock<(Digest, Vec<Vec<u8>>)> = OnceLock::new();
    REF.get_or_init(|| {
        let (apps, logs) = recording_apps(3);
        let mut cluster = Cluster::new(recovery_cfg(SEED), apps, kv_workload(SEED ^ 0xF00D));
        let report = cluster.run(REQUESTS, 0);
        assert_eq!(report.completed, REQUESTS);
        cluster.settle(Duration::from_millis(3));
        let digest = cluster.app_digest(0);
        for r in 1..3 {
            assert_eq!(cluster.app_digest(r), digest, "fault-free replicas disagree");
        }
        let log = logs[0].borrow().clone();
        assert_eq!(log.len(), REQUESTS as usize);
        (digest, log)
    })
}

/// The acceptance-criterion run: `SimConfig::with_replacement` crashes and
/// replaces one replica; the run decides *all* submitted requests and ends
/// with an app digest — and executed request sequence — identical to the
/// fault-free run, on every replica including the replacement.
#[test]
fn replacement_run_matches_fault_free_digest_g1() {
    let (reference_digest, reference_log) = fault_free_reference();
    let (apps, logs) = recording_apps(3);
    let victim = 1;
    let cfg = recovery_cfg(SEED).with_replacement(victim, us(300), Duration::from_micros(400));
    let mut cluster = Cluster::new(cfg, apps, kv_workload(SEED ^ 0xF00D));
    let report = cluster.run(REQUESTS, 0);
    assert_eq!(report.completed, REQUESTS, "requests lost across the replacement");
    cluster.settle(Duration::from_millis(3));

    for r in 0..3 {
        assert_eq!(
            cluster.app_digest(r),
            *reference_digest,
            "replica {r} diverged from the fault-free run"
        );
    }
    // Executed request sequences: the live replicas replayed exactly the
    // fault-free sequence; the replacement executed exactly a suffix of it
    // (everything from its state-transfer base onward).
    for r in (0..3).filter(|r| *r != victim) {
        assert_eq!(&*logs[r].borrow(), reference_log, "replica {r} reordered execution");
    }
    // The replacement executes *fragments* of the reference sequence — a
    // genesis-era replay before its first state transfer, then everything
    // live — with state transfers bridging the gaps. Its log must be an
    // in-order subsequence of the fault-free sequence (same requests, same
    // relative order, nothing invented, nothing reordered), and its tail
    // must coincide exactly with the fault-free tail (it finished fully
    // caught up and live).
    let joiner = logs[victim].borrow();
    assert!(!joiner.is_empty(), "the replacement never executed anything");
    let mut cursor = reference_log.iter();
    let in_order = joiner.iter().all(|p| cursor.any(|q| q == p));
    assert!(in_order, "the replacement executed requests out of order or out of thin air");
    let tail = 32.min(joiner.len());
    assert_eq!(
        joiner[joiner.len() - tail..],
        reference_log[reference_log.len() - tail..],
        "the replacement's final stretch diverges from the fault-free tail"
    );
    // The replacement really did skip a prefix it learned via snapshot.
    assert!(joiner.len() < reference_log.len());
}

/// The same property on a `G = 4` sharded deployment: every request is
/// keyed into shard 1, whose replica 2 is crashed and replaced mid-run.
/// The whole deployment must complete everything and end bit-for-bit at
/// the fault-free digests (idle shards stay at genesis in both runs).
#[test]
fn replacement_run_matches_fault_free_digest_g4_sharded() {
    const G: usize = 4;
    const TARGET_SHARD: usize = 1;
    // Keys pre-filtered to route into the target shard.
    let shard1_workload = || {
        let mut state = SEED ^ 0xBEEF;
        let router = ShardRouter::new(G);
        Box::new(move |i: u64| loop {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = state.to_le_bytes().to_vec();
            if router.route_key(&key) == TARGET_SHARD {
                let value = i.to_le_bytes().to_vec();
                return KvOp::Set { key, value }.to_bytes();
            }
        }) as Box<dyn FnMut(u64) -> Vec<u8>>
    };
    let digests = |sharded: &ShardedCluster| -> Vec<Digest> {
        (0..G)
            .flat_map(|g| (0..3).map(move |r| (g, r)))
            .map(|(g, r)| sharded.app_digest(g, r))
            .collect()
    };

    let mut clean =
        ShardedCluster::new(recovery_cfg(SEED).with_shards(G), |_| kv_apps(3), shard1_workload());
    let clean_report = clean.run(400, 0);
    assert_eq!(clean_report.aggregate.completed, 400);
    clean.settle(Duration::from_millis(3));

    let plan = FailurePlan::none().replace_replica(2, us(300), us(700));
    let cfg = recovery_cfg(SEED).with_shards(G).with_shard_failures(TARGET_SHARD, plan);
    let mut faulty = ShardedCluster::new(cfg, |_| kv_apps(3), shard1_workload());
    let report = faulty.run(400, 0);
    assert_eq!(report.aggregate.completed, 400, "requests lost across the replacement");
    faulty.settle(Duration::from_millis(3));

    assert_eq!(digests(&faulty), digests(&clean), "sharded digests diverged");
    // The fault was real: only shard 1 served traffic, and it really did
    // lose and replace a replica (snapshots were retained there).
    assert_eq!(report.shards[TARGET_SHARD].completed, 400);
    assert!(faulty.replica_snapshot_bytes(TARGET_SHARD, 0) > 0);
}

/// A replacement inside one shard must leave the other shards' entire
/// reports — completions, counters, views, latency samples, app digests —
/// bit-for-bit unchanged (extends the PR 3 containment tests: under zero
/// jitter the shared fabric consumes no randomness, so shard trajectories
/// are independent).
#[test]
fn replacement_is_contained_to_its_shard() {
    let fingerprint =
        |report: &ubft::runtime::sharded::ShardReport, sc: &ShardedCluster, g: usize| {
            let shard = &report.shards[g];
            let mut lat = shard.latency.clone();
            let lat_print = if lat.is_empty() {
                (0, Duration::ZERO, Duration::ZERO)
            } else {
                (lat.len(), lat.mean(), lat.percentile(99.0))
            };
            (
                shard.completed,
                shard.counters,
                shard.views.clone(),
                lat_print,
                (0..3).map(|r| sc.app_digest(g, r)).collect::<Vec<_>>(),
                (0..3).map(|r| sc.decided_of(g, r)).collect::<Vec<_>>(),
            )
        };
    let run = |shard1_plan: Option<FailurePlan>| {
        let mut cfg = SimConfig::paper_default(47).with_tail(16).with_window(32).with_shards(3);
        if let Some(plan) = shard1_plan {
            cfg = cfg.with_shard_failures(1, plan);
        }
        cfg.latency = LatencyModel {
            base: Duration::from_nanos(850),
            picos_per_byte: 80,
            jitter: Duration::ZERO,
        };
        let mut sharded = ShardedCluster::new(cfg, |_| kv_apps(3), kv_workload(0xD15C));
        let report = sharded.run_until(1_000_000, 0, Time::ZERO + Duration::from_millis(4));
        (report, sharded)
    };

    let (clean, clean_sc) = run(None);
    let plan = FailurePlan::none().replace_replica(0, us(200), us(600));
    let (faulty, faulty_sc) = run(Some(plan));

    for g in [0usize, 2] {
        assert_eq!(
            fingerprint(&clean, &clean_sc, g),
            fingerprint(&faulty, &faulty_sc, g),
            "shard {g} was perturbed by shard 1's replacement"
        );
    }
    // The replacement was real and the shard kept serving afterwards.
    assert!(faulty.shards[1].completed > 0);
    // Within shard 1, the live replicas agree among themselves.
    assert_eq!(faulty_sc.app_digest(1, 1), faulty_sc.app_digest(1, 2));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Randomized (victim, crash time, replacement delay) schedules on the
    /// single-group cluster: every schedule decides all requests and every
    /// replica — including the replacement — converges to the fault-free
    /// digest. Crash and rejoin land in the first few milliseconds of a
    /// ~15 ms run, so at least one post-rejoin checkpoint always completes
    /// the catch-up.
    #[test]
    fn randomized_replacement_converges_to_fault_free_digest(
        victim in 0usize..3,
        crash_us in 120u64..1_500,
        delay_us in 50u64..1_200,
    ) {
        let (reference_digest, _) = fault_free_reference();
        let cfg = recovery_cfg(SEED)
            .with_replacement(victim, us(crash_us), Duration::from_micros(delay_us));
        let mut cluster = Cluster::new(cfg, kv_apps(3), kv_workload(SEED ^ 0xF00D));
        let report = cluster.run(REQUESTS, 0);
        prop_assert_eq!(report.completed, REQUESTS);
        cluster.settle(Duration::from_millis(3));
        for r in 0..3 {
            prop_assert_eq!(
                cluster.app_digest(r),
                *reference_digest,
                "victim {} crash {}us delay {}us: replica {} diverged",
                victim, crash_us, delay_us, r
            );
        }
    }

    /// The same randomized schedules on a sharded deployment (uniform
    /// traffic, replacement in a random shard): the replaced replica
    /// converges to the bit-for-bit digest of its shard's live replicas,
    /// and every shard's replicas agree internally.
    #[test]
    fn randomized_sharded_replacement_converges(
        shard in 0usize..3,
        victim in 0usize..3,
        crash_us in 150u64..900,
        delay_us in 100u64..700,
    ) {
        let plan = FailurePlan::none()
            .replace_replica(victim, us(crash_us), us(crash_us + delay_us));
        let cfg = recovery_cfg(31).with_shards(3).with_shard_failures(shard, plan);
        let mut sharded = ShardedCluster::new(cfg, |_| kv_apps(3), kv_workload(0xCAFE));
        let report = sharded.run(900, 0);
        prop_assert_eq!(report.aggregate.completed, 900);
        sharded.settle(Duration::from_millis(4));
        for g in 0..3 {
            let d: Vec<Digest> = (0..3).map(|r| sharded.app_digest(g, r)).collect();
            prop_assert!(
                d.windows(2).all(|w| w[0] == w[1]),
                "shard {} (replacement in shard {}, victim {}): replicas diverged",
                g, shard, victim
            );
        }
    }
}
