//! Byzantine-behaviour and adverse-network integration tests.
//!
//! These exercise the safety claims the paper makes: with up to `f`
//! Byzantine replicas and an eventually synchronous network, correct
//! replicas never diverge (SMR agreement) and clients keep completing
//! requests (liveness after GST). Every scenario is deterministic in its
//! seed, so a failure here is a reproducible counterexample.

use std::cell::RefCell;
use std::rc::Rc;

use ubft::runtime::cluster::Cluster;
use ubft::runtime::SimConfig;
use ubft_apps::FlipApp;
use ubft_core::app::App;
use ubft_core::PathMode;
use ubft_crypto::Digest;
use ubft_sim::failure::{ByzantineMode, FailurePlan};
use ubft_types::{Duration, Time};

/// Shared per-replica execution logs, for prefix-consistency assertions.
type Logs = Vec<Rc<RefCell<Vec<Vec<u8>>>>>;

/// Wraps an [`App`] and records every executed request payload.
struct RecordingApp {
    inner: FlipApp,
    log: Rc<RefCell<Vec<Vec<u8>>>>,
}

impl App for RecordingApp {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        self.log.borrow_mut().push(request.to_vec());
        self.inner.execute(request)
    }

    fn snapshot_digest(&self) -> Digest {
        self.inner.snapshot_digest()
    }

    fn snapshot_bytes(&self) -> Vec<u8> {
        self.inner.snapshot_bytes()
    }

    fn restore_bytes(&mut self, bytes: &[u8]) {
        self.inner.restore_bytes(bytes);
    }

    fn execute_cost(&self, request: &[u8]) -> ubft_types::Duration {
        self.inner.execute_cost(request)
    }

    fn name(&self) -> &'static str {
        "recording-flip"
    }
}

fn recording_apps(n: usize) -> (Vec<Box<dyn App>>, Logs) {
    let logs: Logs = (0..n).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
    let apps = logs
        .iter()
        .map(|log| {
            Box::new(RecordingApp { inner: FlipApp::new(), log: Rc::clone(log) }) as Box<dyn App>
        })
        .collect();
    (apps, logs)
}

fn payload(size: usize) -> Box<dyn FnMut(u64) -> Vec<u8>> {
    Box::new(move |i| {
        let mut p = vec![0u8; size];
        let k = 8.min(size);
        p[..k].copy_from_slice(&i.to_le_bytes()[..k]);
        p
    })
}

/// SMR agreement: for every pair of correct replicas, one execution log is a
/// prefix of the other (they apply the same requests in the same order; one
/// may lag).
fn assert_prefix_consistent(logs: &Logs, correct: &[usize]) {
    for (i, &a) in correct.iter().enumerate() {
        for &b in &correct[i + 1..] {
            let la = logs[a].borrow();
            let lb = logs[b].borrow();
            let n = la.len().min(lb.len());
            assert_eq!(la[..n], lb[..n], "replicas {a} and {b} diverge within their common prefix");
        }
    }
}

fn us(n: u64) -> Time {
    Time::ZERO + Duration::from_micros(n)
}

#[test]
fn equivocating_leader_cannot_violate_agreement() {
    let mut cfg = SimConfig::paper_default(21);
    cfg.path = PathMode::FastWithFallback;
    cfg.failures = FailurePlan::none().byzantine(0, ByzantineMode::EquivocateProposals, Time::ZERO);
    let (apps, logs) = recording_apps(3);
    let mut cluster = Cluster::new(cfg, apps, payload(32));
    let report = cluster.run(40, 0);
    assert_eq!(report.completed, 40);
    // The equivocating fast path can never reach unanimity, so requests
    // decide through the signed slow path (or a view change).
    assert!(report.counters.engine_signs > 0);
    // Replicas 1 and 2 are correct; their logs must agree.
    assert_prefix_consistent(&logs, &[1, 2]);
}

#[test]
fn censoring_leader_is_voted_out() {
    let mut cfg = SimConfig::paper_default(22);
    cfg.path = PathMode::FastWithFallback;
    cfg.failures = FailurePlan::none().byzantine(0, ByzantineMode::CensorRequests, Time::ZERO);
    let (apps, logs) = recording_apps(3);
    let mut cluster = Cluster::new(cfg, apps, payload(32));
    let report = cluster.run(30, 0);
    assert_eq!(report.completed, 30);
    // The censoring leader of view 0 never proposes; the survivors must
    // have moved past its view to decide anything.
    assert!(report.views[1].0 >= 1, "follower 1 stuck in the censored view");
    assert!(report.views[2].0 >= 1, "follower 2 stuck in the censored view");
    assert_prefix_consistent(&logs, &[1, 2]);
}

#[test]
fn silent_replica_is_no_worse_than_a_crash() {
    let mut cfg = SimConfig::paper_default(23);
    cfg.path = PathMode::FastWithFallback;
    cfg.failures = FailurePlan::none().byzantine(2, ByzantineMode::Silent, us(100));
    let (apps, logs) = recording_apps(3);
    let mut cluster = Cluster::new(cfg, apps, payload(32));
    let report = cluster.run(40, 0);
    assert_eq!(report.completed, 40);
    // A mute follower breaks fast-path unanimity: the slow path signs.
    assert!(report.counters.ctb_signs > 0);
    assert_prefix_consistent(&logs, &[0, 1]);
}

#[test]
fn corrupt_registers_cannot_block_slow_path() {
    let mut cfg = SimConfig::paper_default(24).slow_only();
    cfg.failures = FailurePlan::none().byzantine(1, ByzantineMode::CorruptRegisters, Time::ZERO);
    let (apps, logs) = recording_apps(3);
    let mut cluster = Cluster::new(cfg, apps, payload(32));
    let report = cluster.run(30, 5);
    // Every slow-path delivery reads replica 1's garbled register entries,
    // must fail their signature check, and deliver anyway (§6.1).
    assert_eq!(report.completed, 35);
    assert!(report.counters.reg_reads > 0);
    assert_prefix_consistent(&logs, &[0, 2]);
}

#[test]
fn laggard_replica_slows_but_does_not_stop_the_fast_path() {
    let healthy = {
        let cfg = SimConfig::paper_default(25).fast_only();
        let (apps, _) = recording_apps(3);
        Cluster::new(cfg, apps, payload(32)).run(50, 5)
    };
    let mut cfg = SimConfig::paper_default(25);
    cfg.path = PathMode::FastWithFallback;
    cfg.failures = FailurePlan::none().byzantine(2, ByzantineMode::Laggard, Time::ZERO);
    let (apps, logs) = recording_apps(3);
    let mut cluster = Cluster::new(cfg, apps, payload(32));
    let report = cluster.run(50, 5);
    assert_eq!(report.completed, 55);
    let (mut h, mut l) = (healthy.latency, report.latency);
    assert!(
        l.median() > h.median(),
        "a 50 µs laggard must show up in the median: healthy {} vs laggard {}",
        h.median(),
        l.median()
    );
    assert_prefix_consistent(&logs, &[0, 1]);
}

#[test]
fn partition_stalls_one_follower_but_not_the_service() {
    let mut cfg = SimConfig::paper_default(26);
    cfg.path = PathMode::FastWithFallback;
    // Leader 0 and follower 2 cannot talk for ~3 ms; the client and the
    // memory nodes are unaffected. f+1 = 2 connected replicas keep serving.
    cfg.failures = FailurePlan::none().partition(0, 2, us(50), us(3_000));
    let (apps, logs) = recording_apps(3);
    let mut cluster = Cluster::new(cfg, apps, payload(32));
    let report = cluster.run(40, 0);
    assert_eq!(report.completed, 40);
    assert_prefix_consistent(&logs, &[0, 1, 2]);
}

#[test]
fn partition_heals_and_straggler_catches_up() {
    let mut cfg = SimConfig::paper_default(27);
    cfg.path = PathMode::FastWithFallback;
    // Short partition early in the run; after it heals, TBcast
    // retransmission must bring replica 2 back without manual recovery.
    cfg.failures = FailurePlan::none().partition(0, 2, us(50), us(800));
    let (apps, logs) = recording_apps(3);
    let mut cluster = Cluster::new(cfg, apps, payload(32));
    let report = cluster.run(60, 0);
    assert_eq!(report.completed, 60);
    assert_prefix_consistent(&logs, &[0, 1, 2]);
    // The healed follower must have executed most of the log, not just the
    // pre-partition prefix.
    let healed = logs[2].borrow().len();
    assert!(healed >= 40, "replica 2 only executed {healed}/60 after healing");
}

#[test]
fn pre_gst_asynchrony_does_not_violate_safety() {
    let mut cfg = SimConfig::paper_default(28);
    cfg.path = PathMode::FastWithFallback;
    // Until GST at 2 ms every hop may take up to 300 µs extra: timeouts
    // misfire, the slow path and view changes kick in spuriously. Safety
    // must hold throughout and liveness must return after GST.
    cfg.failures = FailurePlan::none().with_asynchrony(us(2_000), Duration::from_micros(300));
    let (apps, logs) = recording_apps(3);
    let mut cluster = Cluster::new(cfg, apps, payload(32));
    let report = cluster.run(80, 0);
    assert_eq!(report.completed, 80);
    assert_prefix_consistent(&logs, &[0, 1, 2]);
}

#[test]
fn five_replicas_tolerate_one_byzantine_and_one_crash() {
    let mut cfg = SimConfig::paper_default(29);
    cfg.path = PathMode::FastWithFallback;
    cfg.params = cfg.params.with_f(2);
    cfg.failures =
        FailurePlan::none().byzantine(3, ByzantineMode::Silent, us(50)).crash_replica(4, us(150));
    let (apps, logs) = recording_apps(5);
    let mut cluster = Cluster::new(cfg, apps, payload(32));
    let report = cluster.run(30, 0);
    assert_eq!(report.completed, 30);
    assert_prefix_consistent(&logs, &[0, 1, 2]);
}

#[test]
fn agreement_holds_across_random_crash_schedules() {
    // A miniature search over crash timings: whichever replica crashes and
    // whenever it does, the survivors' logs never diverge and the client
    // finishes. Each seed is an independent, reproducible schedule.
    for seed in 0..6u64 {
        let victim = (seed % 3) as usize;
        let crash_at = us(40 + 137 * seed);
        let mut cfg = SimConfig::paper_default(1_000 + seed);
        cfg.path = PathMode::FastWithFallback;
        cfg.failures = FailurePlan::none().crash_replica(victim, crash_at);
        let (apps, logs) = recording_apps(3);
        let mut cluster = Cluster::new(cfg, apps, payload(32));
        let report = cluster.run(50, 0);
        assert_eq!(report.completed, 50, "seed {seed}: stalled");
        let correct: Vec<usize> = (0..3).filter(|r| *r != victim).collect();
        assert_prefix_consistent(&logs, &correct);
    }
}

#[test]
fn equivocation_sequence_is_recorded_in_diagnostics() {
    // Regression for the dropped `_k`: proof of equivocation must carry the
    // offending CTBcast sequence number into the branding reason and the
    // engine diagnostics, where operators (and these tests) can see it.
    use ubft_core::engine::{Effect, Engine, EngineConfig, PathMode};
    use ubft_crypto::KeyRing;
    use ubft_types::{ClusterParams, ProcessId, ReplicaId, SeqId};

    let params = ClusterParams::paper_default();
    let ring = KeyRing::generate(7, (0..3u32).map(|i| ProcessId::Replica(ReplicaId(i))));
    let mut engine =
        Engine::new(ReplicaId(1), EngineConfig::new(params, PathMode::FastWithFallback), ring);
    let fx = engine.on_ctb_equivocation(ReplicaId(0), SeqId(42));
    assert!(matches!(
        &fx[..],
        [Effect::ByzantineDetected { replica: ReplicaId(0), reason }] if reason.contains("k=42")
    ));
    assert_eq!(engine.diag().equivocations, vec![(ReplicaId(0), SeqId(42))]);
    // Later proofs on the same (already blocked) stream add nothing.
    assert!(engine.on_ctb_equivocation(ReplicaId(0), SeqId(43)).is_empty());
    assert_eq!(engine.diag().equivocations, vec![(ReplicaId(0), SeqId(42))]);
}
