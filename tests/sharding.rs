//! Sharded-deployment tests: the `ShardedCluster` facade equivalence, key
//! routing, and fault isolation between consensus groups.
//!
//! The isolation tests exploit a deliberate property of the simulator:
//! with a zero-jitter latency model the shared fabric never consumes
//! randomness, so the only coupling between groups is the shared event
//! queue's *ordering* — which cannot move any group's virtual-time
//! trajectory. A fault injected into shard 1 must therefore leave shard
//! 0's entire report bit-for-bit unchanged.

use proptest::prelude::*;
use ubft::runtime::cluster::Cluster;
use ubft::runtime::memory::MemoryReport;
use ubft::runtime::sharded::{ShardReport, ShardedCluster};
use ubft::runtime::SimConfig;
use ubft_apps::workload::{kv_request, WorkloadRng};
use ubft_apps::{KvApp, KvFrontend, KvOp, ShardRouter};
use ubft_core::app::App;
use ubft_sim::failure::{ByzantineMode, FailurePlan};
use ubft_sim::net::LatencyModel;
use ubft_types::wire::Wire;
use ubft_types::{Duration, Time, View};

fn kv_apps(n: usize) -> Vec<Box<dyn App>> {
    (0..n).map(|_| Box::new(KvApp::new(KvFrontend::Redis)) as Box<dyn App>).collect()
}

fn kv_workload(seed: u64) -> Box<dyn FnMut(u64) -> Vec<u8>> {
    let mut rng = WorkloadRng::new(seed);
    let mut populated = 0u64;
    Box::new(move |_| kv_request(&mut rng, &mut populated))
}

/// Strips the fields of a report that are meaningful for cross-run
/// comparison of one shard (the global `end` timestamp is shared across
/// shards, so it is excluded).
type ShardFingerprint = (
    u64,
    ubft::runtime::OpCounters,
    Vec<View>,
    (usize, Duration, Duration),
    Vec<ubft_crypto::Digest>,
    Vec<u64>,
);

fn shard_fingerprint(report: &ShardReport, cluster: &ShardedCluster, g: usize) -> ShardFingerprint {
    let shard = &report.shards[g];
    let mut lat = shard.latency.clone();
    let lat_print = if lat.is_empty() {
        (0, Duration::ZERO, Duration::ZERO)
    } else {
        (lat.len(), lat.mean(), lat.percentile(99.0))
    };
    (
        shard.completed,
        shard.counters,
        shard.views.clone(),
        lat_print,
        (0..3).map(|r| cluster.app_digest(g, r)).collect(),
        (0..3).map(|r| cluster.decided_of(g, r)).collect(),
    )
}

/// The tentpole equivalence: one shard is *exactly* the classic cluster.
/// Same seed, same workload stream, same knobs — the sharded runtime must
/// reproduce `Cluster`'s report, app digests, and decided counts
/// bit-for-bit (mirroring the batching PR's degenerate-knob guarantee).
#[test]
fn sharded_g1_reproduces_cluster_bit_for_bit() {
    let cfg = || SimConfig::paper_default(33).fast_only().with_clients(2);

    let mut single = Cluster::new(cfg(), kv_apps(3), kv_workload(77));
    let single_report = single.run(300, 30);

    let mut sharded = ShardedCluster::new(cfg().with_shards(1), |_| kv_apps(3), kv_workload(77));
    let ShardReport { aggregate, shards } = sharded.run(300, 30);

    assert_eq!(shards.len(), 1);
    assert_eq!(aggregate.completed, single_report.completed);
    assert_eq!(aggregate.counters, single_report.counters);
    assert_eq!(aggregate.end, single_report.end);
    assert_eq!(aggregate.views, single_report.views);
    let (mut a, mut b) = (aggregate.latency, single_report.latency);
    assert_eq!(a.len(), b.len());
    assert_eq!(a.mean(), b.mean());
    assert_eq!(a.percentile(99.0), b.percentile(99.0));
    for r in 0..3 {
        assert_eq!(sharded.app_digest(0, r), single.app_digest(r), "digest of replica {r}");
        assert_eq!(sharded.decided_of(0, r), single.decided_of(r), "decided of replica {r}");
    }
    // The per-shard breakdown of a single-shard run is the aggregate.
    assert_eq!(shards[0].completed, aggregate.completed);
    assert_eq!(shards[0].counters, aggregate.counters);
}

/// Sharded runs complete their total target and spread keys over groups.
#[test]
fn sharded_run_distributes_work_across_groups() {
    let cfg = SimConfig::paper_default(12).fast_only().with_shards(4);
    let mut sharded = ShardedCluster::new(cfg, |_| kv_apps(3), kv_workload(9));
    let report = sharded.run(400, 40);
    assert_eq!(report.aggregate.completed, 440);
    assert_eq!(report.shards.len(), 4);
    // FNV spreads the key space: every group did real work.
    for (g, shard) in report.shards.iter().enumerate() {
        assert!(shard.completed > 0, "shard {g} idle");
        // Within a shard, correct replicas agree.
        let d: Vec<_> = (0..3).map(|r| sharded.app_digest(g, r)).collect();
        assert!(d.windows(2).all(|w| w[0] == w[1]), "shard {g} diverged");
    }
    let sum: u64 = report.shards.iter().map(|s| s.completed).sum();
    assert_eq!(sum, report.aggregate.completed);
}

/// Register banks are partitioned per group on the shared memory nodes:
/// each shard adds its own banks, so per-node disaggregated bytes scale
/// with the shard count while each shard's slice stays constant.
#[test]
fn shard_memory_is_partitioned_on_shared_nodes() {
    let one = ShardedCluster::new(
        SimConfig::paper_default(1).with_shards(1),
        |_| kv_apps(3),
        kv_workload(1),
    );
    let four = ShardedCluster::new(
        SimConfig::paper_default(1).with_shards(4),
        |_| kv_apps(3),
        kv_workload(1),
    );
    let m1 = MemoryReport::measure_sharded(&one);
    let m4 = MemoryReport::measure_sharded(&four);
    assert_eq!(m1.disagg_bytes_per_shard.len(), 1);
    assert_eq!(m4.disagg_bytes_per_shard.len(), 4);
    assert_eq!(m4.disagg_bytes_per_node, 4 * m1.disagg_bytes_per_node);
    assert!(m4.disagg_bytes_per_shard.iter().all(|&b| b == m1.disagg_bytes_per_node));
    // Replica-local memory does not grow with the shard count: groups
    // stay small — that is the point of sharding.
    assert_eq!(m4.replica_local_bytes, m1.replica_local_bytes);
}

/// Runs a 3-shard deployment for a fixed slice of virtual time under a
/// zero-jitter network and returns the shard-0 fingerprint. `plan`
/// addresses shard 1.
fn run_fixed_window(seed: u64, shard1_plan: Option<FailurePlan>) -> (ShardReport, ShardedCluster) {
    let mut cfg = SimConfig::paper_default(seed).with_shards(3);
    if let Some(plan) = shard1_plan {
        cfg = cfg.with_shard_failures(1, plan);
    }
    // Zero jitter: the fabric consumes no randomness, so shard
    // trajectories are fully independent (see module docs).
    cfg.latency = LatencyModel {
        base: Duration::from_nanos(850),
        picos_per_byte: 80,
        jitter: Duration::ZERO,
    };
    let mut sharded = ShardedCluster::new(cfg, |_| kv_apps(3), kv_workload(seed ^ 0xF00D));
    // Huge target + fixed deadline: every shard issues continuously for
    // the same virtual window in every run.
    let report = sharded.run_until(1_000_000, 0, Time::ZERO + Duration::from_millis(3));
    (report, sharded)
}

/// A replica crash inside shard 1 must leave shard 0's and shard 2's
/// entire reports — completions, counters, views, latency samples, app
/// digests, decided counts — bit-for-bit unchanged.
#[test]
fn replica_crash_is_contained_to_its_shard() {
    let (clean, clean_sc) = run_fixed_window(41, None);
    let plan = FailurePlan::none().crash_replica(0, Time::ZERO + Duration::from_micros(200));
    let (faulty, faulty_sc) = run_fixed_window(41, Some(plan));

    for g in [0usize, 2] {
        assert_eq!(
            shard_fingerprint(&clean, &clean_sc, g),
            shard_fingerprint(&faulty, &faulty_sc, g),
            "shard {g} was perturbed by shard 1's crash"
        );
        assert!(clean.shards[g].views.iter().all(|v| *v == View(0)));
    }
    // The fault was real: shard 1's leader crashed, so it either rode a
    // view change or lost throughput inside the window.
    let views_moved = faulty.shards[1].views.iter().any(|v| v.0 >= 1);
    assert!(
        views_moved || faulty.shards[1].completed < clean.shards[1].completed,
        "shard 1 shows no effect of its leader crash"
    );
    assert!(faulty.shards[1].completed < clean.shards[1].completed);
}

/// Same containment for a Byzantine fault: a censoring leader in shard 1
/// cannot move a single bit of the other shards' reports.
#[test]
fn byzantine_fault_is_contained_to_its_shard() {
    let (clean, clean_sc) = run_fixed_window(43, None);
    let plan = FailurePlan::none().byzantine(
        0,
        ByzantineMode::CensorRequests,
        Time::ZERO + Duration::from_micros(150),
    );
    let (faulty, faulty_sc) = run_fixed_window(43, Some(plan));

    for g in [0usize, 2] {
        assert_eq!(
            shard_fingerprint(&clean, &clean_sc, g),
            shard_fingerprint(&faulty, &faulty_sc, g),
            "shard {g} was perturbed by shard 1's Byzantine leader"
        );
    }
    // Censorship must have cost shard 1 throughput (it needs a view
    // change to make progress again).
    assert!(faulty.shards[1].completed < clean.shards[1].completed);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// Routing is a pure function of the key: two independent routers
    /// agree, every KV operation on a key colocates with it, and the
    /// result is always a valid group index.
    #[test]
    fn routing_is_deterministic(
        key in proptest::collection::vec(any::<u8>(), 0..48),
        value in proptest::collection::vec(any::<u8>(), 0..48),
        shards in 1usize..12,
    ) {
        let mut a = ShardRouter::new(shards);
        let mut b = ShardRouter::new(shards);
        let set = KvOp::Set { key: key.clone(), value }.to_bytes();
        let get = KvOp::Get { key: key.clone() }.to_bytes();
        let del = KvOp::Del { key: key.clone() }.to_bytes();
        let g = a.route(&set);
        prop_assert!(g < shards);
        prop_assert_eq!(g, b.route(&get));
        prop_assert_eq!(g, a.route(&del));
        prop_assert_eq!(g, a.route_key(&key));
        prop_assert_eq!(g, ShardRouter::new(shards).route_key(&key));
    }

    /// Keyless payloads that do not parse as KV operations round-robin
    /// over all groups, one per call.
    #[test]
    fn keyless_payloads_round_robin(shards in 1usize..8, rounds in 1usize..4) {
        // 0xFF is never a valid KvOp tag, so this payload is keyless.
        let payload = vec![0xFFu8, 0x01, 0x02];
        let mut r = ShardRouter::new(shards);
        for round in 0..rounds {
            for g in 0..shards {
                prop_assert_eq!(r.route(&payload), g, "round {}", round);
            }
        }
    }
}
