//! Workspace smoke test: the `ubft` façade must re-export every layer, and
//! the paper-default configuration must be stable and reproducible.

use ubft::core::app::App;
use ubft::runtime::SimConfig;

/// Every `pub use` in the façade resolves and names the same types as the
/// underlying crates (one load-bearing item per layer).
#[test]
fn facade_reexports_resolve() {
    // types / crypto
    let replica = ubft::types::ReplicaId(0);
    let digest: ubft::crypto::Digest = ubft::crypto::sha256(b"ubft");
    assert_eq!(digest, ubft_crypto::sha256(b"ubft"));

    // sim / rdma: an RNG driving a fabric over the paper-testbed network
    let net =
        ubft::sim::net::NetworkModel::synchronous(ubft::sim::net::LatencyModel::paper_testbed(), 6);
    let mut fabric = ubft::rdma::Fabric::new(net, ubft::sim::SimRng::new(1));

    // dmem: a register bank on the fabric's memory nodes
    let mems = [ubft::sim::HostId(3), ubft::sim::HostId(4), ubft::sim::HostId(5)];
    let bank = ubft::dmem::register::RegisterBank::create(
        &mut fabric,
        &mems,
        1,
        4,
        ubft::types::Duration::from_micros(10),
    );
    let _ = bank.reader();

    // transport / ctb / core / apps / mu / minbft
    let spec = ubft::transport::channel::ChannelSpec { slots: 4, slot_payload: 64 };
    assert_eq!(spec.slots, 4);
    let cfg = ubft::ctb::ctbcast::CtbConfig {
        n: 3,
        tail: 4,
        fast_enabled: true,
        slow: ubft::ctb::ctbcast::SlowMode::OnTimeout,
    };
    assert_eq!(cfg.n, 3);
    assert_eq!(ubft::core::PathMode::FastOnly, ubft_core::PathMode::FastOnly);
    let mut flip = ubft::apps::FlipApp::new();
    let _ = flip.execute(&[1]);
    let _ = ubft::mu::MuFollower::new();
    let _ = ubft::minbft::ClientAuth::EnclaveHmac;

    let _ = replica;
}

/// `SimConfig::paper_default` round-trips: the same seed yields an
/// identical configuration (field-for-field, via the Debug projection,
/// since randomness only enters at run time), builders compose without
/// losing the paper defaults, and the façade path names the same type as
/// `ubft_runtime`.
#[test]
fn paper_default_round_trips() {
    let a = SimConfig::paper_default(42);
    let b = ubft_runtime::SimConfig::paper_default(42);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));

    let tweaked = SimConfig::paper_default(42).fast_only().with_tail(16).with_max_request(64);
    assert_eq!(tweaked.params.tail, 16);
    assert_eq!(tweaked.params.max_request_bytes, 64);
    assert_eq!(tweaked.seed, 42);
    // Un-tweaked fields keep the paper defaults.
    let base = SimConfig::paper_default(42);
    assert_eq!(tweaked.slow_trigger, base.slow_trigger);
    assert_eq!(tweaked.n_clients, base.n_clients);
    assert_eq!(format!("{:?}", tweaked.latency), format!("{:?}", base.latency));
}
