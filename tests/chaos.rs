//! Chaos regression corpus + auditor self-tests.
//!
//! Two halves:
//!
//! * A fixed corpus of shrunk [`ChaosPlan`]s — fault compositions the
//!   generated explorer (`chaos_explore`) covers but no hand-written suite
//!   did before (partition racing a replacement, Byzantine leader under
//!   pre-GST asynchrony, memory-node crashes composed with everything).
//!   Every plan must complete all requests, audit clean under the
//!   omniscient [`Auditor`](ubft::runtime::audit::Auditor), and leave
//!   every correct replica at the *fault-free run's* digest.
//! * Mutation self-tests: an auditor that cannot fail is untested, so
//!   deliberate bugs are injected behind
//!   [`SimConfig::with_audit_mutation`] and each must be caught — plus a
//!   control run proving the auditor does not cry wolf.
//!
//! Everything is deterministic in the fixed seeds; a failure here is a
//! reproducible counterexample (print the plan with
//! [`ChaosPlan::repro_string`]).

use std::sync::OnceLock;

use ubft::runtime::audit::{AuditMutation, ViolationKind};
use ubft::runtime::cluster::Cluster;
use ubft::runtime::sharded::ShardedCluster;
use ubft::runtime::SimConfig;
use ubft_apps::workload::{kv_request, WorkloadRng};
use ubft_apps::{FlipApp, KvApp, KvFrontend};
use ubft_core::app::App;
use ubft_crypto::Digest;
use ubft_sim::chaos::{shrink, ChaosFault, ChaosPlan, ChaosSpace};
use ubft_sim::failure::{ByzantineMode, Fault};
use ubft_types::{Duration, Time};

const SEED: u64 = 0xC4A0_2026;
const REQUESTS: u64 = 300;

fn us(n: u64) -> Time {
    Time::ZERO + Duration::from_micros(n)
}

/// Small tail/window so checkpoints — the anchor of state transfers and
/// the auditor's checkpoint-digest invariant — happen many times per run.
fn chaos_cfg() -> SimConfig {
    SimConfig::paper_default(SEED).with_tail(16).with_window(32).with_audit()
}

fn kv_apps(n: usize) -> Vec<Box<dyn App>> {
    (0..n).map(|_| Box::new(KvApp::new(KvFrontend::Redis)) as Box<dyn App>).collect()
}

fn kv_workload() -> Box<dyn FnMut(u64) -> Vec<u8>> {
    let mut rng = WorkloadRng::new(SEED ^ 0xF00D);
    let mut populated = 0u64;
    Box::new(move |_| kv_request(&mut rng, &mut populated))
}

fn flip_apps(n: usize) -> Vec<Box<dyn App>> {
    (0..n).map(|_| Box::new(FlipApp::new()) as Box<dyn App>).collect()
}

fn flip_payload() -> Box<dyn FnMut(u64) -> Vec<u8>> {
    Box::new(|i| {
        let mut p = vec![0u8; 32];
        p[..8].copy_from_slice(&i.to_le_bytes());
        p
    })
}

/// The fault-free reference digest (single client, so the executed request
/// sequence — and hence every digest — is schedule-independent).
fn fault_free_reference() -> &'static Digest {
    static REF: OnceLock<Digest> = OnceLock::new();
    REF.get_or_init(|| {
        let mut cluster = Cluster::new(chaos_cfg(), kv_apps(3), kv_workload());
        let report = cluster.run(REQUESTS, 0);
        assert_eq!(report.completed, REQUESTS);
        assert!(report.audit.expect("audited").is_clean());
        cluster.settle(Duration::from_millis(4));
        let digest = cluster.app_digest(0);
        for r in 1..3 {
            assert_eq!(cluster.app_digest(r), digest, "fault-free replicas disagree");
        }
        digest
    })
}

/// Replicas whose final digest must equal the fault-free reference: all
/// except plan-Byzantine ones (legally divergent) and crashed-for-good
/// ones (frozen at a prefix).
fn comparable_replicas(plan: &ChaosPlan) -> Vec<usize> {
    (0..3usize)
        .filter(|r| {
            !plan.faults.iter().any(|f| {
                matches!(f.fault,
                    Fault::Byzantine { index, .. } | Fault::ReplicaCrash { index, .. }
                    if index == *r)
            })
        })
        .collect()
}

fn g0(fault: Fault) -> ChaosFault {
    ChaosFault { group: 0, fault }
}

/// Runs one corpus plan: completes every request, audits clean, and every
/// comparable replica ends at the fault-free digest.
fn run_corpus_plan(name: &str, plan: &ChaosPlan) {
    assert!(plan.is_valid(&ChaosSpace::paper_default()), "{name}: invalid plan");
    let reference = *fault_free_reference();
    let cfg = chaos_cfg().with_chaos(plan);
    let mut cluster = Cluster::new(cfg, kv_apps(3), kv_workload());
    let report = cluster.run(REQUESTS, 0);
    assert_eq!(report.completed, REQUESTS, "{name}: requests lost");
    cluster.settle(Duration::from_millis(12));
    let audit = cluster.audit_report().expect("audited run");
    assert!(
        audit.is_clean(),
        "{name}: audit violations under\n{}{:#?}",
        plan.repro_string(),
        audit.violations
    );
    assert!(audit.decisions_checked > 0 && audit.executions_checked > 0);
    for r in comparable_replicas(plan) {
        assert_eq!(
            cluster.app_digest(r),
            reference,
            "{name}: replica {r} diverged from the fault-free run\n{}",
            plan.repro_string()
        );
    }
}

#[test]
fn corpus_partition_racing_a_replacement() {
    // The replacement boots *inside* the partition window: its Join must
    // survive message loss (the chaos explorer caught the one-shot Join
    // stalling forever; this pins the re-announce fix).
    let plan = ChaosPlan {
        seed: 0,
        faults: vec![
            g0(Fault::Replace { index: 1, crash_at: us(300), rejoin_at: us(900) }),
            g0(Fault::Partition { a: 1, b: 2, from: us(400), until: us(1_400) }),
        ],
        asynchrony: None,
    };
    run_corpus_plan("partition+replacement", &plan);
}

#[test]
fn corpus_byzantine_leader_equivocation_under_asynchrony() {
    let plan = ChaosPlan {
        seed: 0,
        faults: vec![g0(Fault::Byzantine {
            index: 0,
            mode: ByzantineMode::EquivocateProposals,
            from: Time::ZERO,
        })],
        asynchrony: Some((us(1_000), Duration::from_micros(100))),
    };
    run_corpus_plan("equivocating-leader+asynchrony", &plan);
}

#[test]
fn corpus_censoring_leader_behind_partition() {
    let plan = ChaosPlan {
        seed: 0,
        faults: vec![
            g0(Fault::Byzantine { index: 0, mode: ByzantineMode::CensorRequests, from: us(200) }),
            g0(Fault::Partition { a: 1, b: 2, from: us(300), until: us(900) }),
        ],
        asynchrony: None,
    };
    run_corpus_plan("censoring-leader+partition", &plan);
}

#[test]
fn corpus_silent_replica_with_mem_node_crash() {
    let plan = ChaosPlan {
        seed: 0,
        faults: vec![
            g0(Fault::Byzantine { index: 2, mode: ByzantineMode::Silent, from: us(150) }),
            g0(Fault::MemNodeCrash { index: 1, at: us(400) }),
        ],
        asynchrony: None,
    };
    run_corpus_plan("silent+mem-crash", &plan);
}

#[test]
fn corpus_laggard_with_partition() {
    let plan = ChaosPlan {
        seed: 0,
        faults: vec![
            g0(Fault::Byzantine { index: 1, mode: ByzantineMode::Laggard, from: Time::ZERO }),
            g0(Fault::Partition { a: 0, b: 2, from: us(500), until: us(1_300) }),
        ],
        asynchrony: None,
    };
    run_corpus_plan("laggard+partition", &plan);
}

#[test]
fn corpus_corrupt_registers_with_mem_node_crash() {
    // Garbled SWMR entries *and* a crashed memory node: the slow path must
    // still deliver off the surviving quorum.
    let plan = ChaosPlan {
        seed: 0,
        faults: vec![
            g0(Fault::Byzantine {
                index: 1,
                mode: ByzantineMode::CorruptRegisters,
                from: Time::ZERO,
            }),
            g0(Fault::MemNodeCrash { index: 2, at: us(600) }),
        ],
        asynchrony: None,
    };
    run_corpus_plan("corrupt-registers+mem-crash", &plan);
}

#[test]
fn corpus_follower_crash_under_asynchrony() {
    let plan = ChaosPlan {
        seed: 0,
        faults: vec![g0(Fault::ReplicaCrash { index: 2, at: us(700) })],
        asynchrony: Some((us(800), Duration::from_micros(150))),
    };
    run_corpus_plan("crash+asynchrony", &plan);
}

#[test]
fn corpus_replacement_with_mem_node_crash() {
    // The joiner scans its predecessor's register banks while one memory
    // node is already gone: the scan must settle for the surviving quorum.
    let plan = ChaosPlan {
        seed: 0,
        faults: vec![
            g0(Fault::MemNodeCrash { index: 0, at: us(300) }),
            g0(Fault::Replace { index: 0, crash_at: us(500), rejoin_at: us(1_100) }),
        ],
        asynchrony: None,
    };
    run_corpus_plan("replacement+mem-crash", &plan);
}

#[test]
fn corpus_sequential_partitions_sweep_every_pair() {
    let plan = ChaosPlan {
        seed: 0,
        faults: vec![
            g0(Fault::Partition { a: 0, b: 1, from: us(100), until: us(500) }),
            g0(Fault::Partition { a: 1, b: 2, from: us(600), until: us(1_000) }),
            g0(Fault::Partition { a: 0, b: 2, from: us(1_100), until: us(1_400) }),
        ],
        asynchrony: None,
    };
    run_corpus_plan("sequential-partitions", &plan);
}

#[test]
fn corpus_generated_plan_is_pinned_end_to_end() {
    // One generated plan pinned by seed: generation determinism and the
    // runner compose (if generation ever changes, this test names it).
    let space = ChaosSpace::paper_default();
    let plan = ChaosPlan::generate(0xC0FFEE, &space);
    assert!(!plan.faults.is_empty());
    run_corpus_plan("generated(0xC0FFEE)", &plan);
}

#[test]
fn corpus_sharded_byzantine_is_contained_and_clean() {
    // Two groups over one fabric and shared memory nodes; group 1's leader
    // censors. The auditor checks cross-shard containment for every keyed
    // request, and both shards audit clean.
    let plan = ChaosPlan {
        seed: 0,
        faults: vec![ChaosFault {
            group: 1,
            fault: Fault::Byzantine {
                index: 0,
                mode: ByzantineMode::CensorRequests,
                from: us(200),
            },
        }],
        asynchrony: None,
    };
    assert!(plan.is_valid(&ChaosSpace::paper_default().with_groups(2)));
    let cfg = chaos_cfg().with_shards(2).with_chaos(&plan);
    let n = cfg.params.n();
    let mut sharded = ShardedCluster::new(cfg, |_| kv_apps(n), kv_workload());
    let report = sharded.run(REQUESTS, 0);
    assert_eq!(report.aggregate.completed, REQUESTS);
    sharded.settle(Duration::from_millis(4));
    let audit = sharded.audit_report().expect("audited");
    assert!(audit.is_clean(), "violations: {:#?}", audit.violations);
    // Both shards really executed (keyed traffic spreads), so containment
    // was exercised, not vacuous.
    assert!(report.shards.iter().all(|s| s.completed > 0));
}

// ----------------------------------------------------------------------
// Auditor self-tests: injected bugs must be caught.
// ----------------------------------------------------------------------

fn mutated_audit(mutation: AuditMutation) -> ubft::runtime::audit::AuditReport {
    let cfg = SimConfig::paper_default(77).with_window(32).with_audit_mutation(mutation);
    let mut cluster = Cluster::new(cfg, flip_apps(3), flip_payload());
    let report = cluster.run(60, 0);
    assert_eq!(report.completed, 60, "mutations break safety, not the closed loop");
    cluster.settle(Duration::from_millis(2));
    cluster.audit_report().expect("audited")
}

#[test]
fn auditor_catches_a_skipped_certificate_check() {
    // Replica 1 decides on the first WILL_COMMIT / COMMIT instead of the
    // full quorum: certified-commit coverage must flag every such slot.
    let audit = mutated_audit(AuditMutation::DecideEarly { replica: 1 });
    assert!(!audit.is_clean(), "auditor missed the skipped certificate check");
    assert!(
        audit
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::CommitCoverage && v.replica == Some(1)),
        "wrong violation kinds: {:#?}",
        audit.violations
    );
}

#[test]
fn auditor_catches_a_double_executed_slot() {
    // Replica 2 applies every request twice: its state leaves the
    // canonical prefix lattice, which the sequential-model comparison (and
    // checkpoint-digest agreement) must flag.
    let audit = mutated_audit(AuditMutation::DoubleExecute { replica: 2 });
    assert!(!audit.is_clean(), "auditor missed the double execution");
    assert!(
        audit.violations.iter().any(|v| v.kind == ViolationKind::Linearizability),
        "wrong violation kinds: {:#?}",
        audit.violations
    );
}

#[test]
fn auditor_catches_corrupted_execution() {
    // Replica 1 flips a payload byte before executing: per-slot execution
    // agreement (payload/response vs the canonical record) must flag it.
    let audit = mutated_audit(AuditMutation::CorruptExecution { replica: 1 });
    assert!(!audit.is_clean(), "auditor missed the corrupted execution");
    assert!(
        audit.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::SlotAgreement | ViolationKind::Linearizability
        )),
        "wrong violation kinds: {:#?}",
        audit.violations
    );
}

#[test]
fn auditor_does_not_cry_wolf() {
    // The exact configuration of the mutation tests, minus the mutation:
    // a clean bill, or the three tests above prove nothing.
    let cfg = SimConfig::paper_default(77).with_window(32).with_audit();
    let mut cluster = Cluster::new(cfg, flip_apps(3), flip_payload());
    let report = cluster.run(60, 0);
    assert_eq!(report.completed, 60);
    cluster.settle(Duration::from_millis(2));
    let audit = cluster.audit_report().expect("audited");
    assert!(audit.is_clean(), "false positives: {:#?}", audit.violations);
    assert!(audit.replicas_compared >= 3);
}

// ----------------------------------------------------------------------
// Shrinking a hand-broken plan to its core.
// ----------------------------------------------------------------------

/// A five-part plan whose *only* deadline-breaking ingredient is the
/// follower crash (it forces every later slot onto the signed slow path);
/// the shrinker must strip the decoys and isolate it.
#[test]
fn hand_broken_plan_shrinks_to_its_core() {
    let space = ChaosSpace::paper_default().with_horizon(Duration::from_micros(4_000));
    let culprit = g0(Fault::ReplicaCrash { index: 2, at: us(600) });
    let plan = ChaosPlan {
        seed: 0,
        faults: vec![
            g0(Fault::Partition { a: 0, b: 1, from: us(100), until: us(400) }),
            g0(Fault::MemNodeCrash { index: 1, at: us(300) }),
            culprit,
            g0(Fault::MemNodeCrash { index: 0, at: us(900) }),
        ],
        asynchrony: Some((us(250), Duration::from_micros(40))),
    };
    // f_m = 1 admits one memory-node crash; hand-written plans may exceed
    // the generator's budget, but this one must not (two mem crashes of
    // three nodes is legal only for f_m = 2) — use a wider space for
    // validity and keep the budget honest in the run itself.
    let wide = ChaosSpace { f_m: 2, ..space.clone() };
    assert!(plan.is_valid(&wide));

    // "Fails" = the run cannot finish 80 requests by a 8 ms virtual
    // deadline. Fault-free flip traffic needs ~1 ms; every decoy costs a
    // little; the crash forces ~70 slow-path slots at hundreds of µs each,
    // blowing the budget deterministically.
    let deadline = Time::ZERO + Duration::from_millis(8);
    let fails = |p: &ChaosPlan| {
        let cfg = SimConfig::paper_default(123).with_audit().with_chaos(p);
        let mut cluster = Cluster::new(cfg, flip_apps(3), flip_payload());
        let report = cluster.run_until(80, 0, deadline);
        // Safety is audited on every probe run, failing or not.
        assert!(report.audit.expect("audited").is_clean());
        report.completed < 80
    };
    assert!(fails(&plan), "the hand-broken plan must actually fail");
    let shrunk = shrink(&plan, &wide, fails);
    println!(
        "shrunk {} faults -> {}; repro:\n{}",
        plan.faults.len() + 1,
        shrunk.faults.len(),
        shrunk.repro_string()
    );
    assert!(shrunk.is_subset_of(&plan));
    assert!(shrunk.faults.len() <= 3, "core too large: {}", shrunk.repro_string());
    assert!(shrunk.faults.contains(&culprit), "core lost the culprit");
    assert!(fails(&shrunk));
}
