//! Batch-boundary equivalence: executing `N` requests through batches of
//! size `b` must be observably identical to executing them one per slot —
//! same per-replica execution sequence, same application digest, same
//! decided count — for any `b`, any pipeline depth, and also across a view
//! change. Batching may only change *how many slots* carry the requests,
//! never *what* the replicated application sees.

use std::collections::VecDeque;

use proptest::prelude::*;
use ubft::apps::FlipApp;
use ubft::core::app::App;
use ubft::core::engine::{Effect, Engine, EngineConfig, PathMode, TimerKind};
use ubft::core::msg::{CtbMsg, Request};
use ubft::crypto::{Digest, KeyRing};
use ubft::types::{ClientId, ClusterParams, ProcessId, ReplicaId, RequestId, SeqId};

/// A perfect-network synchronous harness (CTBcast ids in order, instant
/// delivery), small enough to rerun hundreds of times under proptest.
struct Net {
    engines: Vec<Engine>,
    apps: Vec<FlipApp>,
    ctb_next: Vec<u64>,
    /// Batch sizes of every PREPARE on the leader-of-view-0 stream.
    proposed_batches: Vec<usize>,
    executed: Vec<Vec<Vec<u8>>>,
    timers: Vec<Vec<TimerKind>>,
    crashed: Vec<bool>,
    queue: VecDeque<(usize, Effect)>,
}

impl Net {
    fn new(max_batch: usize, pipeline_depth: usize) -> Self {
        let params = ClusterParams::paper_default();
        let n = params.n();
        let ring = KeyRing::generate(5, (0..n as u32).map(|i| ProcessId::Replica(ReplicaId(i))));
        let mut cfg = EngineConfig::new(params, PathMode::FastWithFallback);
        cfg.max_batch = max_batch;
        cfg.pipeline_depth = pipeline_depth;
        let engines: Vec<Engine> =
            (0..n as u32).map(|i| Engine::new(ReplicaId(i), cfg.clone(), ring.clone())).collect();
        let mut net = Net {
            engines,
            apps: (0..n).map(|_| FlipApp::new()).collect(),
            ctb_next: vec![1; n],
            proposed_batches: Vec::new(),
            executed: vec![Vec::new(); n],
            timers: vec![Vec::new(); n],
            crashed: vec![false; n],
            queue: VecDeque::new(),
        };
        for i in 0..n {
            let fx = net.engines[i].start();
            net.enqueue(i, fx);
        }
        net.drain();
        net
    }

    fn n(&self) -> usize {
        self.engines.len()
    }

    fn enqueue(&mut self, who: usize, fx: Vec<Effect>) {
        for e in fx {
            self.queue.push_back((who, e));
        }
    }

    fn drain(&mut self) {
        let mut steps = 0;
        while let Some((who, effect)) = self.queue.pop_front() {
            steps += 1;
            assert!(steps < 1_000_000, "effect loop diverged");
            if self.crashed[who] {
                continue;
            }
            match effect {
                Effect::CtbBroadcast(msg) => {
                    let k = SeqId(self.ctb_next[who]);
                    self.ctb_next[who] += 1;
                    if who == 0 {
                        if let CtbMsg::Prepare(p) = &msg {
                            self.proposed_batches.push(p.batch.len());
                        }
                    }
                    for r in 0..self.n() {
                        if self.crashed[r] {
                            continue;
                        }
                        let fx =
                            self.engines[r].on_ctb_deliver(ReplicaId(who as u32), k, msg.clone());
                        self.enqueue(r, fx);
                    }
                }
                Effect::TbBroadcast(msg) => {
                    for r in 0..self.n() {
                        if self.crashed[r] {
                            continue;
                        }
                        let fx = self.engines[r].on_tb_deliver(ReplicaId(who as u32), msg.clone());
                        self.enqueue(r, fx);
                    }
                }
                Effect::SendReplica { to, msg } => {
                    let r = to.0 as usize;
                    if !self.crashed[r] {
                        let fx = self.engines[r].on_direct(ReplicaId(who as u32), msg);
                        self.enqueue(r, fx);
                    }
                }
                Effect::Execute { slot: _, req } => {
                    self.apps[who].execute(&req.payload);
                    self.executed[who].push(req.payload);
                }
                Effect::RequestSnapshot { base } => {
                    let digest = self.apps[who].snapshot_digest();
                    let table = self.engines[who].exec_table();
                    let exec_digest = ubft_core::msg::exec_table_digest(&table);
                    let fx = self.engines[who].on_snapshot(base, digest, exec_digest);
                    self.enqueue(who, fx);
                }
                Effect::ArmTimer { kind } => {
                    self.timers[who].push(kind);
                }
                Effect::CheckpointAdopted { .. }
                | Effect::ViewChanged { .. }
                | Effect::ByzantineDetected { .. } => {}
                // No crashes in the batching harness: state transfers and
                // stream adoption never fire.
                Effect::StateTransfer { .. } | Effect::AdoptStreams { .. } => {
                    unreachable!("no replacements in the batching harness")
                }
            }
        }
    }

    fn client_request_no_drain(&mut self, seq: u64, payload: Vec<u8>) {
        let req = Request { id: RequestId::new(ClientId(1), seq), payload };
        for r in 0..self.n() {
            if self.crashed[r] {
                continue;
            }
            let fx = self.engines[r].on_client_request(req.clone());
            self.enqueue(r, fx);
        }
    }

    /// Fires every armed timer matching `filter`; returns how many fired.
    fn fire_timers(&mut self, filter: impl Fn(&TimerKind) -> bool) -> usize {
        let mut fired = 0;
        for r in 0..self.n() {
            let kinds: Vec<TimerKind> = self.timers[r].drain(..).collect();
            for k in kinds {
                if filter(&k) {
                    fired += 1;
                    let fx = self.engines[r].on_timer(k);
                    self.enqueue(r, fx);
                } else {
                    self.timers[r].push(k);
                }
            }
        }
        self.drain();
        fired
    }
}

fn payload_for(i: u64) -> Vec<u8> {
    // Order-sensitive content: FlipApp folds each payload into its digest.
    let mut p = vec![0u8; 24];
    p[..8].copy_from_slice(&i.to_le_bytes());
    p[8..16].copy_from_slice(&(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).to_le_bytes());
    p
}

/// What a run looks like from the outside: per-replica executed payload
/// sequences, app digests, and decided counts for live replicas.
struct Observed {
    executed: Vec<Vec<Vec<u8>>>,
    digests: Vec<Digest>,
    decided: Vec<u64>,
    max_batch_seen: usize,
    slots_used: usize,
}

fn run_failure_free(n_requests: u64, max_batch: usize, pipeline_depth: usize) -> Observed {
    let mut net = Net::new(max_batch, pipeline_depth);
    for i in 0..n_requests {
        net.client_request_no_drain(i, payload_for(i));
    }
    net.drain();
    Observed {
        executed: net.executed.clone(),
        digests: net.apps.iter().map(|a| a.snapshot_digest()).collect(),
        decided: net.engines.iter().map(|e| e.decided_count()).collect(),
        max_batch_seen: net.proposed_batches.iter().copied().max().unwrap_or(0),
        slots_used: net.proposed_batches.len(),
    }
}

fn run_with_view_change(n_requests: u64, max_batch: usize, pipeline_depth: usize) -> Observed {
    let mut net = Net::new(max_batch, pipeline_depth);
    let half = n_requests / 2;
    for i in 0..half {
        net.client_request_no_drain(i, payload_for(i));
    }
    net.drain();
    // Crash the leader of view 0 and push the rest of the load through the
    // view change; survivors decide via the slow path.
    net.crashed[0] = true;
    for i in half..n_requests {
        net.client_request_no_drain(i, payload_for(i));
    }
    net.drain();
    net.fire_timers(|k| matches!(k, TimerKind::Progress));
    net.fire_timers(|k| matches!(k, TimerKind::Progress));
    // Each decided slot lets the bounded pipeline propose the next batch,
    // which arms a fresh fast-path timeout — keep firing until quiescent.
    for _ in 0..200 {
        if net.fire_timers(|k| matches!(k, TimerKind::SlotSlowTrigger(_))) == 0 {
            break;
        }
    }
    let live: Vec<usize> = (1..net.n()).collect();
    Observed {
        executed: live.iter().map(|&r| net.executed[r].clone()).collect(),
        digests: live.iter().map(|&r| net.apps[r].snapshot_digest()).collect(),
        decided: live.iter().map(|&r| net.engines[r].decided_count()).collect(),
        max_batch_seen: net.proposed_batches.iter().copied().max().unwrap_or(0),
        slots_used: net.proposed_batches.len(),
    }
}

proptest! {
    /// Failure-free runs: any (batch, depth) combination yields exactly the
    /// b = 1 outcome — same executed sequences, digests, and decided counts.
    #[test]
    fn batches_are_execution_equivalent(
        n_requests in 1u64..60,
        max_batch in 1usize..=32,
        pipeline_depth in 1usize..=8,
    ) {
        let reference = run_failure_free(n_requests, 1, usize::MAX);
        let batched = run_failure_free(n_requests, max_batch, pipeline_depth);
        for r in 0..reference.executed.len() {
            prop_assert_eq!(&batched.executed[r], &reference.executed[r], "replica {}", r);
            prop_assert_eq!(batched.digests[r], reference.digests[r], "digest of replica {}", r);
            prop_assert_eq!(batched.decided[r], n_requests, "decided count of replica {}", r);
            prop_assert_eq!(reference.decided[r], n_requests);
        }
        // The reference run really is unbatched, and the batched run never
        // exceeds its configured bound.
        prop_assert_eq!(reference.max_batch_seen, 1);
        prop_assert!(batched.max_batch_seen <= max_batch);
        prop_assert!(batched.slots_used <= reference.slots_used);
    }

    /// The same equivalence holds when the leader crashes mid-load and the
    /// remaining replicas finish the run in view 1: batches survive the view
    /// change whole, so survivors' executions and digests match b = 1.
    #[test]
    fn batches_are_execution_equivalent_across_view_change(
        n_requests in 2u64..40,
        max_batch in 1usize..=16,
        pipeline_depth in 1usize..=4,
    ) {
        let reference = run_with_view_change(n_requests, 1, usize::MAX);
        let batched = run_with_view_change(n_requests, max_batch, pipeline_depth);
        for r in 0..reference.executed.len() {
            prop_assert_eq!(&batched.executed[r], &reference.executed[r], "survivor {}", r);
            prop_assert_eq!(batched.digests[r], reference.digests[r], "digest of survivor {}", r);
        }
        // Every request decides exactly once on the survivors (the harness
        // is lossless, so nothing is double-proposed across the change).
        for (b, a) in batched.decided.iter().zip(reference.decided.iter()) {
            prop_assert_eq!(*b, *a, "decided counts diverged across batch sizes");
            prop_assert_eq!(*a, n_requests);
        }
    }
}

/// `max_batch = 1` with a single-slot pipeline is the seed engine: one
/// request per PREPARE, and the whole run's observable outcome matches the
/// window-wide default exactly.
#[test]
fn unit_batch_unit_pipeline_matches_default_engine() {
    let a = run_failure_free(50, 1, 1);
    let b = run_failure_free(50, 1, usize::MAX);
    assert_eq!(a.executed, b.executed);
    assert_eq!(a.digests, b.digests);
    assert_eq!(a.decided, b.decided);
    assert_eq!(a.max_batch_seen, 1);
    assert_eq!(b.max_batch_seen, 1);
    assert_eq!(a.slots_used, 50);
    assert_eq!(b.slots_used, 50);
}
